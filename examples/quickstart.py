"""Quickstart: protect a memory system with AQUA and watch it work.

Runs three scenarios against a default AQUA instance (T_RH = 1K,
Equation-3-sized quarantine area, memory-mapped tables):

1. benign access -- nothing happens;
2. a hammered row -- it gets quarantined and keeps migrating;
3. a Table II SPEC workload -- measure the slowdown and migration rate.

Usage: python examples/quickstart.py
"""

from repro import AquaConfig, AquaMitigation
from repro.sim import SystemSimulator
from repro.workloads import workload


def benign_access(aqua: AquaMitigation) -> None:
    print("== Benign access ==")
    result = aqua.access(logical_row=12_345, now_ns=0.0)
    print(f"row 12345 serviced at physical row {result.physical_row}")
    print(f"quarantined? {aqua.is_quarantined(12_345)}")


def hammered_row(aqua: AquaMitigation) -> None:
    print("\n== Hammering row 777 ==")
    trigger = aqua.config.effective_threshold
    aqua.data.write(777, "victim data")
    for i in range(3 * trigger):
        aqua.access(logical_row=777, now_ns=float(i) * 45.0)
    location = aqua.locate(777)
    print(f"after {3 * trigger} activations:")
    print(f"  row 777 now lives at physical row {location}")
    print(f"  inside the quarantine area? {location >= aqua.rqa_base}")
    print(f"  migrations performed: {aqua.stats.migrations}")
    print(f"  intra-RQA migrations: {aqua.internal_migrations}")
    print(f"  data intact? {aqua.data.read(location) == 'victim data'}")


def spec_workload() -> None:
    print("\n== SPEC2017 'lbm' under AQUA (2 epochs) ==")
    aqua = AquaMitigation(AquaConfig(rowhammer_threshold=1000, table_mode="memory-mapped"))
    result = SystemSimulator(aqua).run(workload("lbm"), epochs=2)
    print(f"  activations simulated: {result.activations:,}")
    print(f"  row migrations per 64ms: {result.migrations_per_epoch:,.0f}")
    print(f"  slowdown: {result.percent_slowdown:.2f}%")
    print(f"  DRAM reserved for quarantine: "
          f"{aqua.config.dram_overhead * 100:.2f}%")
    print(f"  SRAM for mapping + migration: "
          f"{aqua.sram_bytes() / 1024:.0f} KB")


def main() -> None:
    aqua = AquaMitigation(AquaConfig(rowhammer_threshold=1000, table_mode="memory-mapped"))
    print(f"AQUA ready: RQA of {aqua.rqa.num_slots:,} rows "
          f"({aqua.config.dram_overhead * 100:.2f}% of memory), "
          f"trigger threshold {aqua.config.effective_threshold}")
    benign_access(aqua)
    hammered_row(aqua)
    spec_workload()


if __name__ == "__main__":
    main()
