"""Defense matrix: every mitigation vs every attack pattern.

Runs the full cross product of the repository's mitigation schemes and
attack patterns on a scaled-down system and prints who survives what --
the security landscape the AQUA paper situates itself in:

* no defense falls to everything;
* TRR's tiny sampler falls to many-sided (TRRespass) and -- like every
  refresh-based scheme -- to Half-Double variants;
* PARA and Graphene-style victim refresh stop classic patterns but
  their own refreshes lose to Half-Double;
* AQUA survives all of them by moving the aggressor to the quarantine
  area, where per-location activation counts stay bounded.

A reproduction-specific finding surfaces for RRS: our disturbance
oracle counts *mitigation writes* as activations (they are, physically)
and each RRS re-swap writes the hammered row's fixed home location
once, so under sustained single-row hammering the home's neighbours
accumulate disturbance that the RRS literature's analysis (which models
attacker activations only) does not account for.  AQUA is immune by
construction: a row returns home at most once per refresh window.

Usage: python examples/defense_matrix.py   (takes ~half a minute)
"""

from repro.attacks import patterns
from repro.attacks.adversary import AttackHarness
from repro.core.aqua import AquaMitigation
from repro.core.config import AquaConfig
from repro.dram.address import AddressMapper
from repro.dram.geometry import DramGeometry
from repro.mitigations.none import NoMitigation
from repro.mitigations.para import Para
from repro.mitigations.rrs import RandomizedRowSwap
from repro.mitigations.trr import TargetRowRefresh
from repro.mitigations.victim_refresh import VictimRefresh

GEOMETRY = DramGeometry(banks_per_rank=4, rows_per_bank=4096)
TRH = 128
TRIGGER = TRH // 2


def build_scheme(name):
    """Fresh scheme instance per experiment (state must not leak)."""
    if name == "none":
        return NoMitigation(total_rows=GEOMETRY.rows_per_rank)
    if name == "trr(4-entry)":
        return TargetRowRefresh(
            geometry=GEOMETRY, sampler_entries=4, refresh_burst=16
        )
    if name == "para":
        return Para(
            rowhammer_threshold=TRH,
            geometry=GEOMETRY,
            probability=0.2,
            seed=9,
        )
    if name == "victim-refresh":
        return VictimRefresh(
            rowhammer_threshold=TRH,
            geometry=GEOMETRY,
            tracker_entries_per_bank=64,
        )
    if name == "rrs":
        return RandomizedRowSwap(
            rowhammer_threshold=TRH,
            geometry=GEOMETRY,
            tracker_entries_per_bank=64,
        )
    if name == "AQUA":
        return AquaMitigation(
            AquaConfig(
                rowhammer_threshold=TRH,
                geometry=GEOMETRY,
                rqa_slots=2048,
                tracker_entries_per_bank=64,
            )
        )
    raise KeyError(name)


def build_pattern(name, mapper):
    if name == "single":
        return patterns.single_sided(mapper, 1, 100, 3000)
    if name == "double":
        return patterns.double_sided(mapper, 1, 100, pairs=1500)
    if name == "many(12)":
        return patterns.many_sided(mapper, 1, 100, aggressors=12, rounds=300)
    if name == "half-double":
        return patterns.half_double(
            mapper,
            1,
            100,
            far_hammers=100 * TRIGGER,
            near_hammers_per_epoch=TRIGGER - 1,
        )
    raise KeyError(name)


SCHEMES = ("none", "trr(4-entry)", "para", "victim-refresh", "rrs", "AQUA")
ATTACKS = ("single", "double", "many(12)", "half-double")


def main() -> None:
    mapper = AddressMapper(GEOMETRY)
    print(f"{'scheme':>16} " + " ".join(f"{n:>12}" for n in ATTACKS))
    for scheme_name in SCHEMES:
        cells = []
        for attack_name in ATTACKS:
            harness = AttackHarness(
                build_scheme(scheme_name),
                rowhammer_threshold=TRH,
                geometry=GEOMETRY,
            )
            report = harness.run(build_pattern(attack_name, mapper))
            cells.append("FLIPS" if report.succeeded else "ok")
        print(f"{scheme_name:>16} " + " ".join(f"{c:>12}" for c in cells))
    print(
        "\n'ok' = no predicted bit flips (disturbance oracle); "
        "'FLIPS' = attack succeeds."
        "\nNote: refresh/swap-based schemes flip via their *own* "
        "mitigation traffic\n(refreshes and re-swap writes are "
        "activations too) -- see the module docstring."
    )


if __name__ == "__main__":
    main()
