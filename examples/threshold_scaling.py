"""Design-space exploration: how AQUA scales as T_RH keeps dropping.

Sweeps the Rowhammer threshold and reports, for each point:

* the Equation-3 quarantine-area size (Table III),
* the SRAM cost of SRAM-resident vs memory-mapped tables,
* the measured slowdown on a heavy workload (lbm).

This is the scalability story of the paper (Fig. 1c): where RRS's
costs explode as thresholds fall, AQUA's grow gently.

Usage: python examples/threshold_scaling.py
"""

from repro.analysis.storage import aqua_mapping_bytes, rrs_rit_bytes
from repro.core.config import AquaConfig
from repro.core.aqua import AquaMitigation
from repro.core.sizing import RqaSizing
from repro.mitigations.rrs import RandomizedRowSwap
from repro.sim import SystemSimulator
from repro.workloads import workload


THRESHOLDS = (4000, 2000, 1000, 500)


def main() -> None:
    header = (
        f"{'T_RH':>6} {'RQA rows':>9} {'DRAM':>6} "
        f"{'AQUA SRAM':>10} {'RRS SRAM':>10} "
        f"{'AQUA lbm':>9} {'RRS lbm':>9}"
    )
    print("AQUA vs RRS as the Rowhammer threshold scales down")
    print(header)
    print("-" * len(header))
    for trh in THRESHOLDS:
        sizing = RqaSizing.for_threshold(max(1, trh // 2))
        aqua = AquaMitigation(
            AquaConfig(rowhammer_threshold=trh, table_mode="memory-mapped")
        )
        aqua_result = SystemSimulator(aqua).run(workload("lbm"), epochs=2)
        rrs_result = SystemSimulator(
            RandomizedRowSwap(rowhammer_threshold=trh)
        ).run(workload("lbm"), epochs=2)
        aqua_kb = aqua_mapping_bytes(trh, "memory-mapped") / 1024
        rrs_mb = rrs_rit_bytes(trh) / 1e6
        print(
            f"{trh:>6} {sizing.rows:>9,} {sizing.dram_overhead * 100:>5.1f}% "
            f"{aqua_kb:>7.0f} KB {rrs_mb:>7.2f} MB "
            f"{aqua_result.percent_slowdown:>8.2f}% "
            f"{rrs_result.percent_slowdown:>8.2f}%"
        )
    print(
        "\nAQUA's SRAM stays flat (bloom + cache) and its DRAM cost "
        "stays ~1-2%,\nwhile RRS's indirection table and slowdown blow "
        "up as T_RH falls."
    )


if __name__ == "__main__":
    main()
