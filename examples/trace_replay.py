"""Record-and-replay: archive a workload trace and re-run it anywhere.

The original artifact ships gem5 checkpoints so reviewers replay the
exact same workload state; this reproduction's equivalent is the trace
archive: record a synthetic (or externally captured) activation trace
once, then replay it bit-for-bit against any mitigation configuration.

Usage: python examples/trace_replay.py [workload] [epochs]
"""

import sys
import tempfile
import os

from repro.core.aqua import AquaMitigation
from repro.core.config import AquaConfig
from repro.mitigations.rrs import RandomizedRowSwap
from repro.sim import SystemSimulator
from repro.workloads import workload
from repro.workloads.persistence import TraceArchive


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    epochs = int(sys.argv[2]) if len(sys.argv) > 2 else 2

    print(f"Recording {epochs} epoch(s) of '{name}'...")
    archive = TraceArchive.record(workload(name), epochs=epochs)
    path = os.path.join(tempfile.gettempdir(), f"{name}.trace.npz")
    archive.save(path)
    size_kb = os.path.getsize(path) / 1024
    total = sum(
        archive.epoch_trace(e).total_activations for e in range(epochs)
    )
    print(f"  saved {total:,} activations to {path} ({size_kb:,.0f} KB)")

    print("\nReplaying the identical trace against two mitigations:")
    replayed = TraceArchive.load(path)
    for label, scheme in (
        ("AQUA-MM", AquaMitigation(
            AquaConfig(rowhammer_threshold=1000,
                       table_mode="memory-mapped"))),
        ("RRS", RandomizedRowSwap(rowhammer_threshold=1000)),
    ):
        result = SystemSimulator(scheme).run(replayed, epochs=epochs)
        print(f"  {label:>8}: slowdown {result.percent_slowdown:6.2f}%, "
              f"{result.migrations_per_epoch:8.0f} migrations/epoch")
    print("\nSame input, same numbers, every run -- the archive replaces "
          "the artifact's checkpoints.")


if __name__ == "__main__":
    main()
