"""Half-Double: why victim refresh fails and quarantining does not.

Reproduces the paper's motivating experiment (Fig. 1): an attacker
hammers row A heavily and row A+1 lightly (below the mitigation
trigger).  Victim-refresh's own mitigative refreshes of A+1 act as
extra activations of A+1, hammering the row at distance 2 -- the
Half-Double attack.  AQUA breaks the spatial correlation by moving the
aggressor away, so the same pattern is harmless.

Usage: python examples/half_double_attack.py
"""

from repro.attacks import half_double
from repro.attacks.adversary import AttackHarness
from repro.core.aqua import AquaMitigation
from repro.core.config import AquaConfig
from repro.dram.geometry import DramGeometry
from repro.mitigations.victim_refresh import VictimRefresh

GEOMETRY = DramGeometry(banks_per_rank=4, rows_per_bank=4096)
TRH = 128  # scaled-down threshold so the demo runs in seconds


def attack(scheme, label: str) -> None:
    harness = AttackHarness(scheme, rowhammer_threshold=TRH, geometry=GEOMETRY)
    pattern = half_double(
        harness.mapper,
        bank=1,
        far_aggressor_bank_row=100,
        far_hammers=100 * (TRH // 2),
        near_hammers_per_epoch=TRH // 2 - 1,
    )
    report = harness.run(pattern)
    print(f"\n== {label} ==")
    print(f"  attacker activations: {report.activations:,}")
    print(f"  mitigations performed: {report.migrations}")
    print(f"  peak per-row activations in 64ms: "
          f"{report.peak_row_activations} (T_RH = {TRH})")
    if report.flips:
        rows = ", ".join(str(flip.row) for flip in report.flips)
        print(f"  *** BIT FLIPS at physical rows: {rows} ***")
        victim = harness.mapper.encode(1, 102)
        if any(flip.row == victim for flip in report.flips):
            print(f"  row {victim} is distance-2 from the aggressor: "
                  "this is Half-Double")
    else:
        print("  no bit flips; invariant holds: "
              f"{harness.invariant_holds()}")


def main() -> None:
    print("Half-Double attack: heavy hammering of A + light hammering "
          "of A+1,\nleveraging the defender's own victim refreshes "
          "against row A+2.")
    attack(
        VictimRefresh(
            rowhammer_threshold=TRH,
            geometry=GEOMETRY,
            tracker_entries_per_bank=64,
        ),
        "Victim refresh (Graphene-style)",
    )
    attack(
        AquaMitigation(
            AquaConfig(
                rowhammer_threshold=TRH,
                geometry=GEOMETRY,
                rqa_slots=512,
                tracker_entries_per_bank=64,
            )
        ),
        "AQUA (quarantine)",
    )


if __name__ == "__main__":
    main()
