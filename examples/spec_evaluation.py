"""Mini Fig. 7: evaluate mitigation schemes on SPEC2017 workloads.

Runs a representative slice of the paper's evaluation -- the seven
workloads with aggressor rows plus one cold one -- under AQUA (both
table designs) and RRS, and prints the per-workload slowdowns and
migration counts side by side.

Pass workload names as arguments to pick your own subset, e.g.::

    python examples/spec_evaluation.py lbm mcf xz

Run with no arguments for the default subset (takes ~1 minute).
"""

import sys

from repro.sim import SystemSimulator, gmean
from repro.sim.runner import aqua_memory_mapped, aqua_sram, rrs
from repro.workloads import workload
from repro.workloads.table2 import TABLE_II


DEFAULT_SUBSET = (
    "lbm", "blender", "gcc", "mcf", "cactuBSSN", "roms", "xz", "wrf",
)

SCHEMES = (
    ("AQUA-SRAM", aqua_sram(1000)),
    ("AQUA-MM", aqua_memory_mapped(1000)),
    ("RRS", rrs(1000)),
)


def main() -> None:
    names = sys.argv[1:] or DEFAULT_SUBSET
    unknown = [name for name in names if name not in TABLE_II]
    if unknown:
        raise SystemExit(
            f"unknown workloads: {unknown}; choose from {sorted(TABLE_II)}"
        )
    print(f"{'Workload':>10} " + " ".join(f"{label:>22}" for label, _ in SCHEMES))
    slowdowns = {label: [] for label, _ in SCHEMES}
    for name in names:
        cells = []
        for label, factory in SCHEMES:
            result = SystemSimulator(factory()).run(workload(name), epochs=2)
            slowdowns[label].append(result.slowdown)
            cells.append(
                f"{result.percent_slowdown:6.2f}% "
                f"({result.migrations_per_epoch:7.0f} mig)"
            )
        print(f"{name:>10} " + " ".join(f"{cell:>22}" for cell in cells))
    print(f"{'GMEAN':>10} " + " ".join(
        f"{(gmean(slowdowns[label]) - 1) * 100:21.2f}%"
        for label, _ in SCHEMES
    ))
    print(
        "\nPaper (all 34 workloads): AQUA-SRAM 1.8%, AQUA-MM 2.1%, "
        "RRS 19.8% gmean loss."
    )


if __name__ == "__main__":
    main()
