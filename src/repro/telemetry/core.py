"""The ``Telemetry`` facade threaded through the simulation stack.

One ``Telemetry`` object pairs a :class:`MetricsRegistry` with an
:class:`EventTracer` and owns the per-epoch snapshot timeline.  It is
handed to :class:`~repro.mitigations.base.MitigationScheme` at
construction and flows from there into the quarantine area, the table
backend, and the tracker, so every layer records against the same
registry and trace.

The default is :data:`NULL_TELEMETRY`, a shared null object whose
methods are no-ops: the disabled path allocates nothing per access and
instrumented code only pays one attribute load and branch
(``if telemetry.enabled``) on its hot paths.

Snapshot-time **collectors** are the zero-hot-path-cost instrument:
components register a callable that copies their internal counters
(scheme stats, cache hit counts, RQA occupancy) into the registry, and
it runs only at epoch boundaries and final collection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.telemetry.events import DEFAULT_CAPACITY, EventTracer
from repro.telemetry.metrics import MetricsRegistry


@dataclass
class EpochSnapshot:
    """Metric deltas accumulated over one 64 ms epoch."""

    epoch: int
    ts_ns: float
    deltas: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "epoch": self.epoch,
            "ts_ns": self.ts_ns,
            "deltas": dict(self.deltas),
        }

    @staticmethod
    def from_dict(data: dict) -> "EpochSnapshot":
        return EpochSnapshot(
            epoch=int(data["epoch"]),
            ts_ns=float(data["ts_ns"]),
            deltas={k: float(v) for k, v in data.get("deltas", {}).items()},
        )


class NullTelemetry:
    """Shared do-nothing telemetry: the allocation-free disabled path."""

    __slots__ = ()

    enabled = False
    registry = None
    tracer = None
    timeline: tuple = ()

    def event(self, kind: str, ts_ns: float, **attrs) -> bool:
        return False

    def inc(self, name: str, amount: float = 1.0, **labels) -> None:
        pass

    def set_gauge(self, name: str, value: float, **labels) -> None:
        pass

    def observe(self, name: str, value: float, **labels) -> None:
        pass

    def add_collector(self, fn: Callable) -> None:
        pass

    def collect(self) -> None:
        pass

    def epoch_snapshot(self, epoch: int, ts_ns: float, **attrs) -> None:
        return None


NULL_TELEMETRY = NullTelemetry()
"""The singleton every un-instrumented component shares."""


class Telemetry:
    """Live telemetry: metrics registry + event tracer + epoch timeline."""

    enabled = True

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        sample_rate: float = 1.0,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[EventTracer] = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = (
            tracer
            if tracer is not None
            else EventTracer(capacity=capacity, sample_rate=sample_rate)
        )
        self.timeline: List[EpochSnapshot] = []
        self._collectors: List[Callable[["Telemetry"], None]] = []
        self._epoch_base: Dict[str, float] = {}

    # ------------------------------------------------------------ recording

    def event(self, kind: str, ts_ns: float, **attrs) -> bool:
        """Record one structured event at simulated time ``ts_ns``."""
        return self.tracer.emit(kind, ts_ns, **attrs)

    def inc(self, name: str, amount: float = 1.0, **labels) -> None:
        self.registry.counter(name).inc(amount, **labels)

    def set_gauge(self, name: str, value: float, **labels) -> None:
        self.registry.gauge(name).set(value, **labels)

    def observe(self, name: str, value: float, **labels) -> None:
        self.registry.histogram(name).observe(value, **labels)

    # ----------------------------------------------------------- collection

    def add_collector(self, fn: Callable[["Telemetry"], None]) -> None:
        """Register a snapshot-time stats exporter (idempotent)."""
        if fn not in self._collectors:
            self._collectors.append(fn)

    def collect(self) -> None:
        """Run every collector (refreshing collector-fed series)."""
        for fn in self._collectors:
            fn(self)

    def epoch_snapshot(
        self, epoch: int, ts_ns: float, **attrs
    ) -> EpochSnapshot:
        """Close out one epoch: collect, diff the registry, record.

        Emits a ``refresh_window`` boundary event carrying ``attrs``
        (e.g. the RQA occupancy at the boundary) and appends an
        :class:`EpochSnapshot` of every series' delta since the last
        boundary to :attr:`timeline`.
        """
        self.collect()
        snapshot = self.registry.snapshot()
        deltas = {}
        for key, value in snapshot.items():
            delta = value - self._epoch_base.get(key, 0.0)
            if delta != 0.0:
                deltas[key] = delta
        self._epoch_base = snapshot
        entry = EpochSnapshot(epoch=epoch, ts_ns=ts_ns, deltas=deltas)
        self.timeline.append(entry)
        self.event("refresh_window", ts_ns, epoch=epoch, **attrs)
        return entry

    # -------------------------------------------------------------- reports

    def metrics_table(self) -> str:
        """Collect and render the current metrics as an aligned table."""
        self.collect()
        return self.registry.render_table()

    def reset(self) -> None:
        """Clear metrics, events, timeline, and epoch baselines."""
        self.registry.reset()
        self.tracer.clear()
        self.timeline.clear()
        self._epoch_base.clear()
