"""Structured event tracing with a bounded ring buffer.

Every event carries a **simulated-time** timestamp (nanoseconds of
simulated DRAM time, epoch-relative to the run's start), a ``kind``
from the taxonomy in DESIGN.md (``migration``, ``eviction``,
``quarantine_rotation``, ``tracker_install``, ``tracker_evict``,
``refresh_window``, ``throttle``, ...), and free-form attributes.

The tracer is bounded two ways:

* a **ring buffer** (``capacity`` events) so a runaway trace cannot
  exhaust memory -- the oldest events are overwritten and counted in
  ``dropped``;
* an optional **sampling rate**: ``sample_rate=0.1`` keeps a
  deterministic 1-in-10 of offered events (error-diffusion accumulator,
  not RNG, so traces are reproducible run-to-run).

Export formats: JSON Lines (one event object per line) and the Chrome
trace-event format loadable in ``chrome://tracing`` / Perfetto.
"""

from __future__ import annotations

import json
import zlib
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple


@dataclass
class TraceEvent:
    """One structured simulation event."""

    ts_ns: float
    kind: str
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_json_dict(self, extra: Optional[Dict[str, Any]] = None) -> dict:
        record = {"ts_ns": self.ts_ns, "kind": self.kind}
        record.update(self.attrs)
        if extra:
            record.update(extra)
        return record


DEFAULT_CAPACITY = 1 << 18
"""Default ring size (262144 events, comfortably one traced workload)."""


class EventTracer:
    """Bounded, optionally sampled recorder of :class:`TraceEvent`."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        sample_rate: float = 1.0,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if not 0.0 < sample_rate <= 1.0:
            raise ValueError("sample_rate must be in (0, 1]")
        self.capacity = capacity
        self.sample_rate = sample_rate
        self._ring: "deque[TraceEvent]" = deque(maxlen=capacity)
        self.offered = 0
        self.sampled_out = 0
        self._acc = 0.0

    @property
    def recorded(self) -> int:
        """Events accepted past sampling (may exceed the ring size)."""
        return self.offered - self.sampled_out

    @property
    def dropped(self) -> int:
        """Recorded events lost to ring-buffer wraparound."""
        return self.recorded - len(self._ring)

    def emit(self, kind: str, ts_ns: float, **attrs) -> bool:
        """Offer one event; returns whether it was recorded."""
        self.offered += 1
        if self.sample_rate < 1.0:
            self._acc += self.sample_rate
            if self._acc < 1.0:
                self.sampled_out += 1
                return False
            self._acc -= 1.0
        self._ring.append(TraceEvent(ts_ns=ts_ns, kind=kind, attrs=attrs))
        return True

    def events(self) -> List[TraceEvent]:
        return list(self._ring)

    def clear(self) -> None:
        self._ring.clear()
        self.offered = 0
        self.sampled_out = 0
        self._acc = 0.0

    def kind_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self._ring:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def export_jsonl(self, path: str, extra: Optional[dict] = None) -> int:
        return write_jsonl(path, [(e, extra) for e in self._ring])

    def export_chrome_trace(
        self, path: str, extra: Optional[dict] = None
    ) -> int:
        return write_chrome_trace(path, [(e, extra) for e in self._ring])


TaggedEvent = Tuple[TraceEvent, Optional[Dict[str, Any]]]


def write_jsonl(path: str, tagged_events: Iterable[TaggedEvent]) -> int:
    """Write events (with optional per-event extra fields) as JSONL."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for event, extra in tagged_events:
            fh.write(json.dumps(event.to_json_dict(extra)))
            fh.write("\n")
            count += 1
    return count


def write_chrome_trace(
    path: str, tagged_events: Iterable[TaggedEvent]
) -> int:
    """Write events in the Chrome trace-event ("catapult") format.

    Events become instant events (``ph: "i"``); timestamps convert from
    simulated nanoseconds to the format's microseconds.  The per-event
    extra tag (e.g. the workload name) becomes the track (``tid``) so
    multi-workload traces separate into lanes.
    """
    trace_events = []
    for event, extra in tagged_events:
        args = dict(event.attrs)
        tid = 0
        if extra:
            args.update(extra)
            # crc32 for a run-to-run-stable track id (hash() is salted).
            tag = ",".join(f"{k}={v}" for k, v in sorted(extra.items()))
            tid = zlib.crc32(tag.encode("utf-8")) % 1_000_000
        trace_events.append(
            {
                "name": event.kind,
                "ph": "i",
                "s": "t",
                "ts": event.ts_ns / 1_000.0,
                "pid": 0,
                "tid": tid,
                "args": args,
            }
        )
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(
            {"traceEvents": trace_events, "displayTimeUnit": "ns"}, fh
        )
    return len(trace_events)


def load_trace(path: str) -> List[dict]:
    """Read a trace back as a list of flat event dicts.

    Accepts both export formats: JSONL (one object per line) and the
    Chrome trace-event JSON (``{"traceEvents": [...]}``), which is
    normalised back to the JSONL shape (``ts_ns``/``kind`` + attrs).
    """
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    try:
        document = json.loads(text)
    except ValueError:
        document = None  # more than one line: JSONL
    if isinstance(document, dict) and "traceEvents" in document:
        records = []
        for entry in document["traceEvents"]:
            record = {
                "ts_ns": float(entry.get("ts", 0.0)) * 1_000.0,
                "kind": entry.get("name", "unknown"),
            }
            record.update(entry.get("args", {}))
            records.append(record)
        return records
    return [
        json.loads(line) for line in text.splitlines() if line.strip()
    ]


def load_trace_lenient(path: str) -> Tuple[List[dict], int]:
    """Like :func:`load_trace`, but tolerate corrupt JSONL lines.

    Returns ``(records, skipped)`` where ``skipped`` counts lines that
    failed to parse (truncated trailing writes from a killed run, disk
    corruption, editor damage).  Valid Chrome-trace documents never
    skip; a Chrome-trace file that fails to parse as a whole falls back
    to line-by-line JSONL recovery, salvaging whatever parses.
    """
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    try:
        document = json.loads(text)
    except ValueError:
        document = None
    if isinstance(document, dict) and "traceEvents" in document:
        records = []
        for entry in document["traceEvents"]:
            record = {
                "ts_ns": float(entry.get("ts", 0.0)) * 1_000.0,
                "kind": entry.get("name", "unknown"),
            }
            record.update(entry.get("args", {}))
            records.append(record)
        return records, 0
    records = []
    skipped = 0
    for line in text.splitlines():
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError:
            skipped += 1
            continue
        if not isinstance(record, dict):
            skipped += 1
            continue
        records.append(record)
    return records, skipped
