"""Metrics registry: counters, gauges, and histograms with labels.

The registry is the *pull* side of the telemetry substrate: schemes and
simulators either increment metrics inline (cheap, on cold paths) or
register collectors that copy their internal statistics into the
registry at snapshot time (free on the hot path).  ``snapshot()``
flattens every series into a ``{series_name: value}`` dict, which is
what the per-epoch timeline diffs (Prometheus-style exposition, scoped
to one simulated run).

Series names follow the ``name{label=value,...}`` convention, e.g.::

    migrations_total{reason=demand,scheme=aqua}
    fpt_lookup_ns_bucket{le=25,scheme=aqua}
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple


LabelKey = Tuple[Tuple[str, str], ...]


def label_key(labels: Dict[str, object]) -> LabelKey:
    """Canonical (sorted, stringified) form of a label set."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def series_name(name: str, key: LabelKey) -> str:
    """Render ``name{k=v,...}`` (bare ``name`` when unlabeled)."""
    if not key:
        return name
    inner = ",".join(f"{k}={v}" for k, v in key)
    return f"{name}{{{inner}}}"


class Metric:
    """Base class: a named family of labeled series."""

    kind = "metric"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._values: Dict[LabelKey, float] = {}

    def series(self) -> Dict[str, float]:
        """Flattened ``{series_name: value}`` for every label set."""
        return {
            series_name(self.name, key): value
            for key, value in self._values.items()
        }

    def reset(self) -> None:
        self._values.clear()


class Counter(Metric):
    """Monotone counter; ``set_total`` supports snapshot-time collectors."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def set_total(self, value: float, **labels) -> None:
        """Overwrite the running total (for collectors mirroring an
        externally maintained monotone count)."""
        self._values[label_key(labels)] = float(value)

    def value(self, **labels) -> float:
        return self._values.get(label_key(labels), 0.0)


class Gauge(Metric):
    """Point-in-time value (occupancy, configured cost, ...)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        self._values[label_key(labels)] = float(value)

    def add(self, amount: float, **labels) -> None:
        key = label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        return self._values.get(label_key(labels), 0.0)


#: Default histogram bucket upper bounds, tuned for nanosecond-scale
#: latencies (lookups are ~1 ns SRAM to ~100 ns DRAM; migrations ~1 us).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1_000.0, 2_500.0, 5_000.0, 10_000.0,
)


class Histogram(Metric):
    """Fixed-bucket histogram with per-label-set count/sum/buckets."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Iterable[float]] = None,
    ) -> None:
        super().__init__(name, help)
        bounds = (
            DEFAULT_BUCKETS if buckets is None else tuple(sorted(buckets))
        )
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        # key -> [bucket counts..., +Inf count], plus count/sum scalars.
        self._hist: Dict[LabelKey, List[float]] = {}
        self._count: Dict[LabelKey, int] = {}
        self._sum: Dict[LabelKey, float] = {}

    def observe(self, value: float, **labels) -> None:
        key = label_key(labels)
        counts = self._hist.get(key)
        if counts is None:
            counts = [0.0] * (len(self.bounds) + 1)
            self._hist[key] = counts
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                counts[i] += 1
                break
        else:
            counts[-1] += 1
        self._count[key] = self._count.get(key, 0) + 1
        self._sum[key] = self._sum.get(key, 0.0) + value

    def count(self, **labels) -> int:
        return self._count.get(label_key(labels), 0)

    def sum(self, **labels) -> float:
        return self._sum.get(label_key(labels), 0.0)

    def mean(self, **labels) -> float:
        n = self.count(**labels)
        return self.sum(**labels) / n if n else math.nan

    def series(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for key, counts in self._hist.items():
            cumulative = 0.0
            for bound, bucket in zip(self.bounds, counts):
                cumulative += bucket
                bkey = key + (("le", f"{bound:g}"),)
                out[series_name(self.name + "_bucket", tuple(sorted(bkey)))] = (
                    cumulative
                )
            ikey = key + (("le", "+Inf"),)
            out[series_name(self.name + "_bucket", tuple(sorted(ikey)))] = (
                cumulative + counts[-1]
            )
            out[series_name(self.name + "_count", key)] = float(
                self._count[key]
            )
            out[series_name(self.name + "_sum", key)] = self._sum[key]
        return out

    def reset(self) -> None:
        self._hist.clear()
        self._count.clear()
        self._sum.clear()


def render_series_table(
    series: Dict[str, float], hide_buckets: bool = True
) -> str:
    """Render a flat ``{series_name: value}`` snapshot as an aligned table.

    Shared by :meth:`MetricsRegistry.render_table` and the parallel
    sweep path, where worker registries arrive as flat snapshots rather
    than live objects (see :meth:`MetricsRegistry.merge_flat`).
    """
    rows = sorted(series.items())
    if hide_buckets:
        rows = [(k, v) for k, v in rows if "_bucket{" not in k]
    if not rows:
        return "  (no metrics recorded)"
    width = max(len(k) for k, _ in rows)
    lines = []
    for key, value in rows:
        rendered = f"{value:g}" if value == int(value) else f"{value:.3f}"
        lines.append(f"  {key:<{width}}  {rendered}")
    return "\n".join(lines)


class MetricsRegistry:
    """Names metrics and produces flat snapshots of every series.

    Cross-process merging: worker processes cannot share live metric
    objects with the parent, so they ship ``snapshot()`` dicts back and
    the parent folds them in with :meth:`merge_flat`.  Merged series
    accumulate additively (the right semantics for counters and
    histogram buckets; gauges merged this way become sums, which the
    parallel runner documents) and appear in :meth:`snapshot` /
    :meth:`render_table` alongside locally registered series.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}
        self._external: Dict[str, float] = {}

    def _get(self, name: str, cls, help: str, **kwargs) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help, **kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, Counter, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, Gauge, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Iterable[float]] = None,
    ) -> Histogram:
        return self._get(name, Histogram, help, buckets=buckets)

    def metrics(self) -> List[Metric]:
        return list(self._metrics.values())

    def merge_flat(self, series: Dict[str, float]) -> None:
        """Fold one worker's flat snapshot into this registry.

        Values add into a side table keyed by full series name (the
        worker's label sets are already baked into the names), so
        merging N worker snapshots yields the same totals as one
        process recording everything -- for monotone series.  Merge in
        a deterministic order (run-key order, not completion order)
        when byte-stable output matters: float addition is not
        associative.
        """
        for key, value in series.items():
            self._external[key] = self._external.get(key, 0.0) + float(value)

    def snapshot(self) -> Dict[str, float]:
        """Flat ``{series_name: value}`` across every registered metric."""
        out: Dict[str, float] = {}
        for metric in self._metrics.values():
            out.update(metric.series())
        for key, value in self._external.items():
            out[key] = out.get(key, 0.0) + value
        return out

    def reset(self) -> None:
        """Zero every series (registrations are kept)."""
        for metric in self._metrics.values():
            metric.reset()
        self._external.clear()

    def render_table(self, hide_buckets: bool = True) -> str:
        """Human-readable metrics table for the CLI ``--metrics`` flag."""
        return render_series_table(self.snapshot(), hide_buckets=hide_buckets)
