"""Trace summarisation backing ``python -m repro inspect``.

Consumes the flat event dicts produced by
:func:`repro.telemetry.events.load_trace` (either export format) and
derives the three standing diagnostics:

* event counts by kind (and by workload, when the trace is tagged),
* the migration inter-arrival distribution per workload track
  (simulated time between consecutive ``migration`` events -- the
  burstiness instrument for quarantine pressure),
* per-epoch quarantine occupancy, read off the ``refresh_window``
  boundary events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


#: Inter-arrival histogram bucket bounds, in simulated microseconds.
INTERARRIVAL_BOUNDS_US: Tuple[float, ...] = (
    1.0, 10.0, 100.0, 1_000.0, 10_000.0,
)


@dataclass
class TraceSummary:
    """Aggregated view of one exported trace."""

    total_events: int = 0
    kind_counts: Dict[str, int] = field(default_factory=dict)
    workload_kind_counts: Dict[str, Dict[str, int]] = field(
        default_factory=dict
    )
    #: bucket label -> count of migration inter-arrival gaps.
    interarrival_hist: Dict[str, int] = field(default_factory=dict)
    interarrival_count: int = 0
    interarrival_mean_us: float = 0.0
    #: (workload, epoch) -> RQA occupancy at the epoch boundary.
    epoch_occupancy: Dict[Tuple[str, int], float] = field(
        default_factory=dict
    )
    span_ns: float = 0.0


def _bucket_label(gap_us: float) -> str:
    for bound in INTERARRIVAL_BOUNDS_US:
        if gap_us <= bound:
            return f"<= {bound:g} us"
    return f"> {INTERARRIVAL_BOUNDS_US[-1]:g} us"


def summarize_trace(records: List[dict]) -> TraceSummary:
    """Build a :class:`TraceSummary` from flat event dicts."""
    summary = TraceSummary()
    summary.total_events = len(records)
    migration_ts: Dict[str, List[float]] = {}
    min_ts: Optional[float] = None
    max_ts: Optional[float] = None
    for record in records:
        kind = record.get("kind", "unknown")
        track = str(record.get("workload", ""))
        ts = float(record.get("ts_ns", 0.0))
        min_ts = ts if min_ts is None else min(min_ts, ts)
        max_ts = ts if max_ts is None else max(max_ts, ts)
        summary.kind_counts[kind] = summary.kind_counts.get(kind, 0) + 1
        per_workload = summary.workload_kind_counts.setdefault(track, {})
        per_workload[kind] = per_workload.get(kind, 0) + 1
        if kind == "migration":
            migration_ts.setdefault(track, []).append(ts)
        elif kind == "refresh_window":
            occupancy = record.get("rqa_occupancy")
            if occupancy is not None:
                epoch = int(record.get("epoch", 0))
                summary.epoch_occupancy[(track, epoch)] = float(occupancy)
    if min_ts is not None:
        summary.span_ns = max_ts - min_ts
    gap_sum_us = 0.0
    for stamps in migration_ts.values():
        stamps.sort()
        for earlier, later in zip(stamps, stamps[1:]):
            gap_us = (later - earlier) / 1_000.0
            gap_sum_us += gap_us
            label = _bucket_label(gap_us)
            summary.interarrival_hist[label] = (
                summary.interarrival_hist.get(label, 0) + 1
            )
            summary.interarrival_count += 1
    if summary.interarrival_count:
        summary.interarrival_mean_us = (
            gap_sum_us / summary.interarrival_count
        )
    return summary


def _ordered_buckets(hist: Dict[str, int]) -> List[Tuple[str, int]]:
    order = [f"<= {b:g} us" for b in INTERARRIVAL_BOUNDS_US]
    order.append(f"> {INTERARRIVAL_BOUNDS_US[-1]:g} us")
    return [(label, hist[label]) for label in order if label in hist]


def render_summary(summary: TraceSummary) -> str:
    """Render a :class:`TraceSummary` for terminal output."""
    lines: List[str] = []
    lines.append(
        f"trace: {summary.total_events:,} events spanning "
        f"{summary.span_ns / 1e6:.2f} ms of simulated time"
    )
    lines.append("event counts:")
    for kind in sorted(summary.kind_counts):
        lines.append(f"  {kind:<22} {summary.kind_counts[kind]:>10,}")
    if summary.interarrival_count:
        lines.append(
            "migration inter-arrival "
            f"(n={summary.interarrival_count:,}, "
            f"mean={summary.interarrival_mean_us:.1f} us):"
        )
        peak = max(summary.interarrival_hist.values())
        for label, count in _ordered_buckets(summary.interarrival_hist):
            bar = "#" * max(1, round(24 * count / peak))
            lines.append(f"  {label:<14} {count:>10,}  {bar}")
    if summary.epoch_occupancy:
        lines.append("per-epoch quarantine occupancy:")
        for (track, epoch), occupancy in sorted(
            summary.epoch_occupancy.items()
        ):
            name = track if track else "(untagged)"
            lines.append(
                f"  {name:<12} epoch {epoch}: {occupancy:,.0f} rows in RQA"
            )
    return "\n".join(lines)
