"""Observability substrate: metrics, event tracing, epoch snapshots.

Three pieces, designed to be threaded through the whole simulation
stack via ``MitigationScheme(telemetry=...)``:

* :class:`~repro.telemetry.metrics.MetricsRegistry` -- labeled
  counters, gauges, and histograms with cheap ``snapshot()``/``reset()``.
* :class:`~repro.telemetry.events.EventTracer` -- a bounded ring buffer
  of structured events at simulated-time timestamps, exportable as
  JSONL or the Chrome trace-event format.
* :class:`~repro.telemetry.core.Telemetry` -- the facade combining both
  plus the per-epoch snapshot timeline; :data:`NULL_TELEMETRY` is the
  shared no-op default, so uninstrumented runs stay allocation-free.

See DESIGN.md ("Telemetry and the event taxonomy") for the event kinds
and the timestamp convention.
"""

from repro.telemetry.core import (
    EpochSnapshot,
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
)
from repro.telemetry.events import (
    DEFAULT_CAPACITY,
    EventTracer,
    TraceEvent,
    load_trace,
    load_trace_lenient,
    write_chrome_trace,
    write_jsonl,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_series_table,
)
from repro.telemetry.summary import (
    TraceSummary,
    render_summary,
    summarize_trace,
)

__all__ = [
    "Counter",
    "DEFAULT_CAPACITY",
    "EpochSnapshot",
    "EventTracer",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "Telemetry",
    "TraceEvent",
    "TraceSummary",
    "load_trace",
    "load_trace_lenient",
    "render_series_table",
    "render_summary",
    "summarize_trace",
    "write_chrome_trace",
    "write_jsonl",
]
