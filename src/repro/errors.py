"""Structured exception hierarchy for the whole toolkit.

Every error the simulator raises deliberately derives from
:class:`ReproError`, split into two broad classes with different
handling contracts (see DESIGN.md §8, "degradation taxonomy"):

* :class:`ConfigError` -- the *inputs* are wrong (bad parameter, bad
  checkpoint header, unknown workload).  Never retried: the caller must
  fix the configuration.  Subclasses :class:`ValueError` so existing
  ``except ValueError`` call sites (and tests) keep working.
* :class:`SimulationError` -- the *run* went wrong (security alarm,
  exhausted fault-retry budget, per-run timeout).  Subclasses
  :class:`RuntimeError` for the same compatibility reason.  The sweep
  runner treats :class:`RunTimeoutError` as transient (retried with
  backoff) and everything else as a per-run failure to report.

:class:`FaultExhaustedError` marks the boundary of graceful
degradation: a fault-tolerant path (migration retry, throttle fallback)
ran out of budget and the scheme could neither complete nor degrade.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every deliberate error raised by this package."""


class ConfigError(ReproError, ValueError):
    """Invalid configuration or input.

    Messages name the offending field and its allowed range, e.g.
    ``"rowhammer_threshold must be >= 2 (got 1)"``, so failures surface
    at construction instead of deep inside Equation-3 sizing.
    """


class SimulationError(ReproError, RuntimeError):
    """A simulation run failed after starting with valid inputs."""


class RunTimeoutError(SimulationError):
    """A single workload run exceeded its wall-clock budget.

    Classified *transient* by the sweep runner: the run is retried with
    backoff up to the configured attempt budget.
    """


class FaultExhaustedError(SimulationError):
    """A degradation path ran out of retry budget.

    Raised when a fault-tolerant operation (e.g. an interrupted row
    migration) exhausted its retries *and* the configured policy forbids
    falling back further (``rqa_full_policy="fail"``).
    """


class ServiceError(ReproError, RuntimeError):
    """The simulation job service could not honor a request."""


class QueueFullError(ServiceError):
    """The job queue is at ``max_depth``; backpressure to the client.

    Mapped to HTTP 429 by the API layer.  Deliberately *not* a
    :class:`ConfigError`: the submission itself is valid, the server is
    momentarily saturated, and the client may retry later.
    """


class JobNotFoundError(ServiceError):
    """No job (or cached result) exists under the requested ID."""
