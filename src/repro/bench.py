"""``repro bench``: the perf harness behind the benchmark-regression CI.

Times representative sweeps -- serial vs ``--jobs N``, with and
without tracing and fault injection -- and reports, per case:

* ``wall_s``: end-to-end wall time of the case,
* ``acts_per_s``: simulated DRAM activations processed per second (the
  throughput figure of merit: evaluation throughput bounds the design
  space a sweep can explore),
* ``peak_rss_kb``: peak resident set, max over self and children,
* per-stage wall time (``expand`` / ``execute`` / ``aggregate``),
  recorded as gauges in a telemetry
  :class:`~repro.telemetry.MetricsRegistry` and echoed into the JSON.

The report is written as machine-readable ``BENCH_<rev>.json``::

    {
      "schema_version": 1,
      "rev": "<git short rev>",
      "timestamp": <unix seconds>,
      "config_digest": "<sha256 of the case grid>",
      "cases": {"<name>": {"wall_s": ..., "acts_per_s": ...,
                           "peak_rss_kb": ..., "stages": {...},
                           "runs": N, "failures": 0}}
    }

CI runs ``repro bench --quick --check benchmarks/baseline/
BENCH_baseline.json`` on every PR and fails on a >25% wall-time
regression in any case.  To accept an intentional change, regenerate
the baseline with ``--update-baseline`` and commit it.
"""

from __future__ import annotations

import argparse
import cProfile
import hashlib
import json
import os
import pstats
import subprocess
import sys
import time
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.faults import FaultSpec
from repro.parallel import expand_grid, run_sweep_parallel
from repro.telemetry import MetricsRegistry, render_series_table


BENCH_SCHEMA_VERSION = 1

DEFAULT_TOLERANCE = 0.25
"""CI fails when a case's wall time regresses past baseline * 1.25."""


@dataclass(frozen=True)
class BenchCase:
    """One timed configuration of the sweep executor."""

    name: str
    schemes: Tuple[str, ...]
    workloads: Tuple[str, ...]
    thresholds: Tuple[int, ...] = (1000,)
    epochs: int = 1
    jobs: int = 1
    trace: bool = False
    fault_rate: float = 0.0
    seed: int = 7


#: The quick grid CI runs on every PR: one serial / parallel pair over
#: the same work (so their ratio exposes executor overhead), plus the
#: instrumented and faulted variants of a small sweep.
QUICK_CASES: Tuple[BenchCase, ...] = (
    BenchCase("serial", ("aqua-mm",), ("xz", "gcc")),
    BenchCase("parallel-j2", ("aqua-mm",), ("xz", "gcc"), jobs=2),
    BenchCase("traced", ("aqua-mm",), ("xz",), trace=True),
    BenchCase("faulted", ("aqua-sram",), ("xz",), fault_rate=1e-3),
)

#: The full grid adds a wider scheme mix, more workloads, and a
#: 4-way-parallel point for scaling trend lines.
FULL_CASES: Tuple[BenchCase, ...] = QUICK_CASES + (
    BenchCase(
        "serial-wide",
        ("aqua-mm", "aqua-sram", "victim-refresh"),
        ("xz", "gcc", "wrf", "lbm"),
    ),
    BenchCase(
        "parallel-j4",
        ("aqua-mm", "aqua-sram", "victim-refresh"),
        ("xz", "gcc", "wrf", "lbm"),
        jobs=4,
    ),
    BenchCase(
        "traced-parallel",
        ("aqua-mm",),
        ("xz", "gcc"),
        jobs=2,
        trace=True,
    ),
)


def git_rev() -> str:
    """Short git revision, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def config_digest(cases: Sequence[BenchCase]) -> str:
    """SHA-256 over the case grid: regression comparisons are only
    meaningful between reports that measured the same work."""
    blob = json.dumps([asdict(case) for case in cases], sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _peak_rss_kb() -> float:
    """Peak RSS in KB, max over this process and reaped children."""
    try:
        import resource
    except ImportError:  # non-Unix: report 0 rather than fail the bench
        return 0.0
    peak = max(
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss,
    )
    # ru_maxrss is KB on Linux, bytes on macOS.
    if sys.platform == "darwin":
        peak /= 1024.0
    return float(peak)


PROFILE_TOP = 20
"""Number of hottest (cumulative) functions kept by ``--profile``."""


def _profile_summary(profiler: cProfile.Profile) -> List[dict]:
    """Top-``PROFILE_TOP`` functions by cumulative time, JSON-ready."""
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative")
    rows: List[dict] = []
    for func in stats.fcn_list[:PROFILE_TOP]:  # (file, line, name)
        cc, nc, tt, ct, _callers = stats.stats[func]
        filename, line, name = func
        rows.append({
            "func": f"{os.path.basename(filename)}:{line}({name})",
            "ncalls": nc,
            "tottime_s": round(tt, 6),
            "cumtime_s": round(ct, 6),
        })
    return rows


def _echo_profile(name: str, rows: List[dict]) -> None:
    """Human-readable top-N profile for one case, on stderr (keeps
    stdout reserved for the metric table CI parses)."""
    print(f"  profile[{name}]: top {len(rows)} by cumulative time",
          file=sys.stderr)
    for row in rows:
        print(
            f"    {row['cumtime_s']:9.4f}s cum "
            f"{row['tottime_s']:9.4f}s tot "
            f"{row['ncalls']:>9} calls  {row['func']}",
            file=sys.stderr,
        )


def run_case(
    case: BenchCase, registry: MetricsRegistry, profile: bool = False
) -> dict:
    """Time one case; stage walls land in ``registry`` as gauges.

    With ``profile=True`` the execute stage runs under :mod:`cProfile`
    (parent process only: parallel cases' worker time shows up as pool
    waits, so profile serial cases to see simulator internals) and the
    result dict gains a ``profile`` block.
    """
    stages: Dict[str, float] = {}

    def stage(name: str, started: float) -> None:
        elapsed = time.perf_counter() - started
        stages[name] = elapsed
        registry.gauge(
            "bench_stage_seconds", "per-stage wall time of a bench case"
        ).set(elapsed, case=case.name, stage=name)

    case_start = time.perf_counter()
    t = time.perf_counter()
    points = expand_grid(
        list(case.schemes),
        list(case.workloads),
        thresholds=case.thresholds,
        epochs=case.epochs,
        seed=case.seed,
    )
    stage("expand", t)
    fault_spec = (
        FaultSpec(seed=case.seed, fault_rate=case.fault_rate)
        if case.fault_rate > 0.0
        else None
    )
    t = time.perf_counter()
    profiler = cProfile.Profile() if profile else None
    if profiler is not None:
        profiler.enable()
    try:
        report = run_sweep_parallel(
            points,
            jobs=case.jobs,
            trace=case.trace,
            fault_spec=fault_spec,
        )
    finally:
        if profiler is not None:
            profiler.disable()
    stage("execute", t)
    t = time.perf_counter()
    total_acts = sum(
        result.activations for result in report.results.values()
    )
    stage("aggregate", t)
    wall_s = time.perf_counter() - case_start
    registry.gauge(
        "bench_wall_seconds", "end-to-end wall time of a bench case"
    ).set(wall_s, case=case.name)
    registry.gauge(
        "bench_acts_per_second", "simulated activations per wall second"
    ).set(total_acts / wall_s if wall_s > 0 else 0.0, case=case.name)
    payload = {
        "wall_s": wall_s,
        "acts_per_s": total_acts / wall_s if wall_s > 0 else 0.0,
        "peak_rss_kb": _peak_rss_kb(),
        "stages": stages,
        "runs": len(report.results),
        "failures": len(report.failures),
    }
    if profiler is not None:
        rows = _profile_summary(profiler)
        payload["profile"] = rows
        _echo_profile(case.name, rows)
    return payload


def run_bench(
    cases: Sequence[BenchCase],
    registry: Optional[MetricsRegistry] = None,
    echo=None,
    profile: bool = False,
) -> dict:
    """Run every case and assemble the BENCH report dict."""
    registry = registry if registry is not None else MetricsRegistry()
    results: Dict[str, dict] = {}
    for case in cases:
        if echo is not None:
            echo(f"  case {case.name} ...")
        results[case.name] = run_case(case, registry, profile=profile)
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "rev": git_rev(),
        "timestamp": time.time(),
        "config_digest": config_digest(cases),
        "python": sys.version.split()[0],
        "cases": results,
    }


def validate_report(report: dict) -> None:
    """Schema check on a BENCH report; :class:`ConfigError` on failure."""
    if not isinstance(report, dict):
        raise ConfigError("BENCH report is not a JSON object")
    for key in ("schema_version", "rev", "timestamp", "config_digest",
                "cases"):
        if key not in report:
            raise ConfigError(f"BENCH report is missing {key!r}")
    if report["schema_version"] != BENCH_SCHEMA_VERSION:
        raise ConfigError(
            f"BENCH report schema_version {report['schema_version']!r}; "
            f"this build reads {BENCH_SCHEMA_VERSION}"
        )
    if not isinstance(report["cases"], dict) or not report["cases"]:
        raise ConfigError("BENCH report has no cases")
    for name, case in report["cases"].items():
        for key in ("wall_s", "acts_per_s", "peak_rss_kb"):
            if not isinstance(case.get(key), (int, float)):
                raise ConfigError(
                    f"BENCH case {name!r} is missing numeric {key!r}"
                )


def write_report(report: dict, out: str) -> str:
    """Write ``BENCH_<rev>.json`` under ``out`` (dir) or to ``out``
    itself when it names a ``.json`` file; returns the path."""
    if out.endswith(".json"):
        path = out
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
    else:
        os.makedirs(out, exist_ok=True)
        path = os.path.join(out, f"BENCH_{report['rev']}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_report(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            report = json.load(fh)
    except OSError as exc:
        raise ConfigError(f"cannot read BENCH report: {exc}")
    except ValueError as exc:
        raise ConfigError(f"BENCH report {path!r} is not valid JSON: {exc}")
    validate_report(report)
    return report


DEFAULT_SLACK_S = 0.25
"""Absolute grace added to every case limit: a 25% relative gate on a
30 ms case would fail on scheduler noise alone, so the limit is
``baseline * (1 + tolerance) + slack``."""

#: Parallel cases gated against the serial case that measures the same
#: grid: the pair's ratio is pure executor overhead, so a parallel case
#: drifting past its serial sibling is a dispatch regression even when
#: both still beat the historical baseline.
PARALLEL_SERIAL_PAIRS: Dict[str, str] = {
    "parallel-j2": "serial",
    "parallel-j4": "serial-wide",
}


def compare_parallel_overhead(
    current: dict,
    tolerance: float = DEFAULT_TOLERANCE,
    slack_s: float = DEFAULT_SLACK_S,
) -> List[str]:
    """In-report executor-overhead gate (needs no baseline file).

    For every measured parallel case with a serial sibling over the
    same work (:data:`PARALLEL_SERIAL_PAIRS`), regress when the
    parallel wall exceeds ``serial * (1 + tolerance) + slack_s`` --
    the pool must amortise its own dispatch cost, not just stay under
    an old absolute number.
    """
    regressions: List[str] = []
    cases = current.get("cases", {})
    for parallel_name, serial_name in PARALLEL_SERIAL_PAIRS.items():
        par = cases.get(parallel_name)
        ser = cases.get(serial_name)
        if par is None or ser is None:
            continue
        limit = float(ser["wall_s"]) * (1.0 + tolerance) + slack_s
        if float(par["wall_s"]) > limit:
            regressions.append(
                f"{parallel_name}: wall_s {par['wall_s']:.3f} > "
                f"{limit:.3f} (serial sibling {serial_name} "
                f"{ser['wall_s']:.3f} +{tolerance:.0%} +{slack_s:g}s)"
            )
    return regressions


def compare(
    current: dict,
    baseline: dict,
    tolerance: float = DEFAULT_TOLERANCE,
    slack_s: float = DEFAULT_SLACK_S,
) -> Tuple[List[str], List[str]]:
    """Gate ``current`` against ``baseline``.

    Returns ``(regressions, warnings)``: a case regresses when its wall
    time exceeds ``baseline * (1 + tolerance) + slack_s``.  Cases
    absent from the baseline (or vice versa) and a config-digest
    mismatch are warnings, not failures -- a stale baseline should say
    so, not silently pass.
    """
    regressions: List[str] = []
    warnings: List[str] = []
    if current.get("config_digest") != baseline.get("config_digest"):
        warnings.append(
            "config digest mismatch: the baseline measured a different "
            "case grid; comparing shared case names only"
        )
    base_cases = baseline.get("cases", {})
    for name, case in current.get("cases", {}).items():
        base = base_cases.get(name)
        if base is None:
            warnings.append(f"case {name!r} has no baseline entry")
            continue
        limit = float(base["wall_s"]) * (1.0 + tolerance) + slack_s
        if float(case["wall_s"]) > limit:
            regressions.append(
                f"{name}: wall_s {case['wall_s']:.3f} > "
                f"{limit:.3f} (baseline {base['wall_s']:.3f} "
                f"+{tolerance:.0%} +{slack_s:g}s)"
            )
    for name in base_cases:
        if name not in current.get("cases", {}):
            warnings.append(f"baseline case {name!r} was not measured")
    regressions.extend(
        compare_parallel_overhead(
            current, tolerance=tolerance, slack_s=slack_s
        )
    )
    return regressions, warnings


# ------------------------------------------------------------------- CLI


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="time representative sweeps and gate on regressions",
    )
    parser.add_argument("--quick", action="store_true",
                        help="run the small PR-gate case grid")
    parser.add_argument("--out", metavar="PATH", default=".",
                        help="directory (or .json path) for "
                             "BENCH_<rev>.json (default: cwd)")
    parser.add_argument("--check", metavar="BASELINE", default=None,
                        help="compare against a baseline BENCH json; "
                             "exit 1 on regression")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE, metavar="FRAC",
                        help="allowed wall-time growth before --check "
                             "fails (default 0.25)")
    parser.add_argument("--slack", type=float, default=DEFAULT_SLACK_S,
                        metavar="SEC",
                        help="absolute per-case grace on top of the "
                             "relative tolerance (default 0.25s)")
    parser.add_argument("--update-baseline", metavar="PATH", default=None,
                        help="also write the report to PATH (the "
                             "baseline-refresh escape hatch)")
    parser.add_argument("--profile", action="store_true",
                        help="cProfile each case's execute stage: top "
                             f"{PROFILE_TOP} cumulative functions to "
                             "stderr and a 'profile' block per case in "
                             "the BENCH json")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.tolerance < 0 or args.slack < 0:
        print("error: --tolerance and --slack must be >= 0")
        return 2
    cases = QUICK_CASES if args.quick else FULL_CASES
    label = "quick" if args.quick else "full"
    print(f"repro bench ({label}: {len(cases)} cases)")
    registry = MetricsRegistry()
    report = run_bench(
        cases, registry=registry, echo=print, profile=args.profile
    )
    validate_report(report)
    print(render_series_table(registry.snapshot()))
    path = write_report(report, args.out)
    print(f"wrote {path}")
    if args.update_baseline:
        baseline_path = write_report(report, args.update_baseline)
        print(f"updated baseline {baseline_path}")
    failures = sum(
        case["failures"] for case in report["cases"].values()
    )
    if failures:
        print(f"error: {failures} sweep run(s) failed during benching")
        return 1
    if args.check:
        try:
            baseline = load_report(args.check)
        except ConfigError as exc:
            print(f"error: {exc}")
            return 2
        regressions, warnings = compare(
            report, baseline, tolerance=args.tolerance, slack_s=args.slack
        )
        for warning in warnings:
            print(f"warning: {warning}")
        if regressions:
            print(f"PERF REGRESSION vs {args.check}:")
            for line in regressions:
                print(f"  {line}")
            print(
                "intentional? refresh the baseline: repro bench "
                f"{'--quick ' if args.quick else ''}--update-baseline "
                f"{args.check} (then commit it)"
            )
            return 1
        print(
            f"bench ok: {len(report['cases'])} case(s) within "
            f"{args.tolerance:.0%} of baseline"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
