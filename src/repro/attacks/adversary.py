"""Attack harness: run a pattern against a scheme and judge the outcome.

The harness wires a mitigation scheme into a timed
:class:`~repro.controller.memctrl.MemoryController` with both security
oracles attached, replays an attack pattern at hammering cadence, and
reports:

* predicted **bit flips** (disturbance oracle),
* the **peak per-physical-row activation count** in any 64 ms window
  (the invariant AQUA guarantees stays below ``T_RH``),
* the attack's **elapsed time** vs its unimpeded time (the slowdown a
  throttling scheme like Blockhammer imposes, and the DoS headroom of
  Sec. VI-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.analysis.security import ActivationLedger, BitFlip, DisturbanceOracle
from repro.controller.memctrl import MemoryController
from repro.dram.address import AddressMapper
from repro.dram.geometry import DramGeometry, DEFAULT_GEOMETRY
from repro.dram.timing import DDR4Timing, DDR4_2400
from repro.mitigations.base import MitigationScheme


@dataclass
class AttackReport:
    """Outcome of one attack run."""

    scheme: str
    activations: int
    elapsed_ns: float
    unimpeded_ns: float
    flips: List[BitFlip]
    peak_row_activations: int
    migrations: int

    @property
    def succeeded(self) -> bool:
        """True if the oracle predicts at least one bit flip."""
        return bool(self.flips)

    @property
    def slowdown(self) -> float:
        """How much the mitigation slowed the attacker's loop."""
        if self.unimpeded_ns <= 0:
            return 1.0
        return self.elapsed_ns / self.unimpeded_ns

    def to_dict(self) -> dict:
        """JSON-ready dict (``repro attack --out``, service submissions).

        Derived verdicts (``succeeded``, ``slowdown``) are included so
        a cached report is judgeable without rebuilding the object.
        """
        return {
            "scheme": self.scheme,
            "activations": self.activations,
            "elapsed_ns": self.elapsed_ns,
            "unimpeded_ns": self.unimpeded_ns,
            "flips": [
                {
                    "row": flip.row,
                    "time_ns": flip.time_ns,
                    "disturbance": flip.disturbance,
                }
                for flip in self.flips
            ],
            "peak_row_activations": self.peak_row_activations,
            "migrations": self.migrations,
            "succeeded": self.succeeded,
            "slowdown": self.slowdown,
        }


class AttackHarness:
    """Replay attack patterns through a scheme with full instrumentation."""

    def __init__(
        self,
        scheme: MitigationScheme,
        rowhammer_threshold: int,
        geometry: DramGeometry = DEFAULT_GEOMETRY,
        timing: DDR4Timing = DDR4_2400,
        mapping_policy: str = "interleaved",
    ) -> None:
        self.scheme = scheme
        self.rowhammer_threshold = rowhammer_threshold
        self.geometry = geometry
        self.timing = timing
        self.mapper = AddressMapper(geometry, policy=mapping_policy)
        self.ledger = ActivationLedger(window_ns=timing.trefw_ns)
        self.oracle = DisturbanceOracle(
            neighbors=self.mapper.neighbors,
            rowhammer_threshold=rowhammer_threshold,
        )
        self.controller = MemoryController(
            scheme,
            geometry=geometry,
            timing=timing,
            ledger=self.ledger,
            oracle=self.oracle,
        )

    def run(
        self,
        pattern: Sequence[int],
        start_ns: float = 0.0,
        spacing_ns: float = None,
    ) -> AttackReport:
        """Replay ``pattern`` at hammering cadence and report the outcome."""
        if spacing_ns is None:
            spacing_ns = self.timing.trc_ns
        finish = self.controller.hammer(
            pattern, start_ns=start_ns, spacing_ns=spacing_ns
        )
        unimpeded = len(pattern) * spacing_ns
        return AttackReport(
            scheme=self.scheme.name,
            activations=len(pattern),
            elapsed_ns=finish - start_ns,
            unimpeded_ns=unimpeded,
            flips=list(self.oracle.flips),
            peak_row_activations=self.ledger.max_peak(),
            migrations=self.scheme.stats.migrations,
        )

    def invariant_holds(self) -> bool:
        """AQUA's security invariant: no physical row reached ``T_RH``
        activations within any refresh window."""
        return self.ledger.max_peak() < self.rowhammer_threshold
