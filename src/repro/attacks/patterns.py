"""Attack pattern generators.

Each generator returns a list of *logical* row ids, in activation order.
Rows are chosen through an :class:`~repro.dram.address.AddressMapper` so
that "adjacent" means physically adjacent within a bank -- the adjacency
the Rowhammer physics (and the disturbance oracle) operate on.

All patterns take a ``base`` (bank, bank_row) anchor so tests can place
attacks anywhere in memory.
"""

from __future__ import annotations

import random
from typing import List

from repro.dram.address import AddressMapper


def _row(mapper: AddressMapper, bank: int, bank_row: int) -> int:
    return mapper.encode(bank, bank_row)


def single_sided(
    mapper: AddressMapper, bank: int, bank_row: int, count: int
) -> List[int]:
    """Hammer one aggressor row ``count`` times."""
    if count < 0:
        raise ValueError("count must be non-negative")
    return [_row(mapper, bank, bank_row)] * count


def double_sided(
    mapper: AddressMapper, bank: int, victim_bank_row: int, pairs: int
) -> List[int]:
    """Alternate the two rows sandwiching a victim, ``pairs`` rounds."""
    if victim_bank_row < 1:
        raise ValueError("victim needs a row on each side")
    above = _row(mapper, bank, victim_bank_row - 1)
    below = _row(mapper, bank, victim_bank_row + 1)
    pattern: List[int] = []
    for _ in range(pairs):
        pattern.append(above)
        pattern.append(below)
    return pattern


def many_sided(
    mapper: AddressMapper,
    bank: int,
    first_bank_row: int,
    aggressors: int,
    rounds: int,
    stride: int = 2,
) -> List[int]:
    """TRRespass-style many-sided pattern: ``aggressors`` rows, round-robin.

    ``stride=2`` places aggressors on alternating rows so every gap row
    is a double-sided victim.
    """
    if aggressors < 1:
        raise ValueError("need at least one aggressor")
    rows = [
        _row(mapper, bank, first_bank_row + i * stride)
        for i in range(aggressors)
    ]
    pattern: List[int] = []
    for _ in range(rounds):
        pattern.extend(rows)
    return pattern


def half_double(
    mapper: AddressMapper,
    bank: int,
    far_aggressor_bank_row: int,
    far_hammers: int,
    near_hammers_per_epoch: int,
    epochs: int = 1,
) -> List[int]:
    """Half-Double (Sec. I, Fig. 1a): exploit victim refreshes at distance 2.

    The *far* aggressor ``A`` is hammered heavily; each victim-refresh
    mitigation it provokes refreshes (= activates) the *near* row
    ``A+1``, which hammers the true victim ``A+2``.  The attacker also
    hammers ``A+1`` directly, keeping it just below the mitigation
    trigger so those activations are never themselves mitigated.

    The returned pattern interleaves ``far_hammers`` activations of A
    with ``near_hammers_per_epoch`` activations of A+1 per epoch.
    """
    if far_hammers < 1 or near_hammers_per_epoch < 0:
        raise ValueError("hammer counts must be positive")
    far = _row(mapper, bank, far_aggressor_bank_row)
    near = _row(mapper, bank, far_aggressor_bank_row + 1)
    pattern: List[int] = []
    for _ in range(epochs):
        near_budget = near_hammers_per_epoch
        interval = max(1, far_hammers // max(1, near_hammers_per_epoch))
        for i in range(far_hammers):
            pattern.append(far)
            if near_budget > 0 and i % interval == interval - 1:
                pattern.append(near)
                near_budget -= 1
    return pattern


def reset_straddling(
    mapper: AddressMapper,
    bank: int,
    bank_row: int,
    per_side: int,
) -> List[int]:
    """Hammer ``per_side`` times just before and after a tracker reset.

    The pattern itself is a plain single-sided burst of ``2*per_side``
    activations; the harness times it to straddle an epoch boundary.
    This is the attack that forces the effective threshold to
    ``T_RH / 2`` (Sec. IV-B).
    """
    return single_sided(mapper, bank, bank_row, 2 * per_side)


def dos_pattern(
    mapper: AddressMapper,
    threshold: int,
    rows_per_bank_used: int,
    banks: int = None,
    first_bank_row: int = 0,
) -> List[int]:
    """Worst-case migration-rate pattern (Sec. VI-C).

    Hammer a fresh row in every bank to exactly the trigger threshold,
    then move on, forcing one migration per ``threshold`` activations
    per bank.  Rows rotate so each trigger quarantines a new row.
    """
    if banks is None:
        banks = mapper.geometry.banks_per_rank
    pattern: List[int] = []
    for index in range(rows_per_bank_used):
        bank_row = first_bank_row + index
        # Interleave the banks activation-by-activation: the attacker
        # drives all banks concurrently.
        rows = [_row(mapper, bank, bank_row) for bank in range(banks)]
        for _ in range(threshold):
            pattern.extend(rows)
    return pattern


def blacksmith(
    mapper: AddressMapper,
    bank: int,
    first_bank_row: int,
    aggressors: int,
    total_activations: int,
    seed: int = 0xB5,
) -> List[int]:
    """Blacksmith-style non-uniform pattern (Jattke et al., S&P 2022).

    Aggressors are hammered at *different* frequencies, phases, and
    amplitudes, which defeats in-DRAM samplers tuned to uniform
    many-sided patterns.  Each aggressor ``i`` is assigned a random
    period and burst length; the pattern interleaves the resulting
    schedules.
    """
    if aggressors < 1 or total_activations < 1:
        raise ValueError("aggressors and total_activations must be >= 1")
    rng = random.Random(seed)
    rows = [
        _row(mapper, bank, first_bank_row + 2 * i) for i in range(aggressors)
    ]
    periods = [rng.randint(1, 4) for _ in rows]
    bursts = [rng.randint(1, 3) for _ in rows]
    pattern: List[int] = []
    tick = 0
    while len(pattern) < total_activations:
        for index, row in enumerate(rows):
            if tick % periods[index] == 0:
                pattern.extend([row] * bursts[index])
        tick += 1
    return pattern[:total_activations]


def bank_conflict_pattern(
    mapper: AddressMapper, bank: int, bank_row: int, rounds: int
) -> List[int]:
    """Two conflicting rows in one bank, alternating (Sec. VII-B).

    The benign-but-pathological pattern that exposes Blockhammer's
    worst-case 1280x throttling at low thresholds.
    """
    row_a = _row(mapper, bank, bank_row)
    row_b = _row(mapper, bank, bank_row + 64)
    pattern: List[int] = []
    for _ in range(rounds):
        pattern.append(row_a)
        pattern.append(row_b)
    return pattern
