"""Rowhammer attack patterns and the adversarial harness.

Pattern generators produce logical-row activation sequences for the
attack classes the paper's threat model covers (Sec. II-A, VI):
single-sided, double-sided, many-sided, Half-Double, tracker-reset
straddling, and the denial-of-service pattern of Sec. VI-C.
"""

from repro.attacks.patterns import (
    bank_conflict_pattern,
    blacksmith,
    double_sided,
    dos_pattern,
    half_double,
    many_sided,
    reset_straddling,
    single_sided,
)
from repro.attacks.adversary import AttackHarness, AttackReport

__all__ = [
    "blacksmith",
    "single_sided",
    "double_sided",
    "many_sided",
    "half_double",
    "dos_pattern",
    "bank_conflict_pattern",
    "reset_straddling",
    "AttackHarness",
    "AttackReport",
]
