"""Simulation layer: CPU model, system simulator, and experiment runner."""

from repro.sim.cpu import gmean, normalized_performance, slowdown_from_busy
from repro.sim.stats import WorkloadResult
from repro.sim.system import SystemSimulator
from repro.sim.runner import (
    all_workloads,
    aqua_memory_mapped,
    aqua_sram,
    average_migrations_per_epoch,
    baseline,
    blockhammer,
    gmean_slowdown,
    rrs,
    run_suite,
    run_workload,
    victim_refresh,
)

__all__ = [
    "gmean",
    "normalized_performance",
    "slowdown_from_busy",
    "WorkloadResult",
    "SystemSimulator",
    "all_workloads",
    "aqua_memory_mapped",
    "aqua_sram",
    "average_migrations_per_epoch",
    "baseline",
    "blockhammer",
    "gmean_slowdown",
    "rrs",
    "run_suite",
    "run_workload",
    "victim_refresh",
]
