"""Result records produced by the simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class WorkloadResult:
    """Outcome of running one workload under one mitigation scheme."""

    workload: str
    scheme: str
    epochs: int
    activations: int
    migrations: int
    row_moves: int
    evictions: int
    busy_ns: float
    table_dram_ns: float
    peak_stall_ns: float
    slowdown: float
    mem_fraction: float
    lookup_breakdown: Optional[Dict[str, float]] = None
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def migrations_per_epoch(self) -> float:
        """Mitigative actions per 64 ms (the y-axis of Fig. 6)."""
        if self.epochs == 0:
            return 0.0
        return self.migrations / self.epochs

    @property
    def normalized_performance(self) -> float:
        """Performance relative to baseline (Figs. 7 and 9)."""
        return 1.0 / self.slowdown

    @property
    def percent_slowdown(self) -> float:
        """Slowdown expressed as a percentage loss."""
        return (self.slowdown - 1.0) * 100.0

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.workload:>10s} [{self.scheme}] "
            f"slowdown={self.percent_slowdown:6.2f}% "
            f"migrations/epoch={self.migrations_per_epoch:9.1f}"
        )
