"""Result records produced by the simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.telemetry import EpochSnapshot


@dataclass
class WorkloadResult:
    """Outcome of running one workload under one mitigation scheme."""

    workload: str
    scheme: str
    epochs: int
    activations: int
    migrations: int
    row_moves: int
    evictions: int
    busy_ns: float
    table_dram_ns: float
    peak_stall_ns: float
    slowdown: float
    mem_fraction: float
    lookup_breakdown: Optional[Dict[str, float]] = None
    extra: Dict[str, float] = field(default_factory=dict)
    #: Per-epoch metric deltas (populated when the run is telemetered;
    #: ``None`` for uninstrumented runs).
    timeline: Optional[List[EpochSnapshot]] = None

    @property
    def migrations_per_epoch(self) -> float:
        """Mitigative actions per 64 ms (the y-axis of Fig. 6)."""
        if self.epochs == 0:
            return 0.0
        return self.migrations / self.epochs

    @property
    def normalized_performance(self) -> float:
        """Performance relative to baseline (Figs. 7 and 9)."""
        return 1.0 / self.slowdown

    @property
    def percent_slowdown(self) -> float:
        """Slowdown expressed as a percentage loss."""
        return (self.slowdown - 1.0) * 100.0

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.workload:>10s} [{self.scheme}] "
            f"slowdown={self.percent_slowdown:6.2f}% "
            f"migrations/epoch={self.migrations_per_epoch:9.1f}"
        )

    # --------------------------------------------------------- serialization

    def to_dict(self) -> dict:
        """JSON-ready dict (inverse of :meth:`from_dict`)."""
        return {
            "workload": self.workload,
            "scheme": self.scheme,
            "epochs": self.epochs,
            "activations": self.activations,
            "migrations": self.migrations,
            "row_moves": self.row_moves,
            "evictions": self.evictions,
            "busy_ns": self.busy_ns,
            "table_dram_ns": self.table_dram_ns,
            "peak_stall_ns": self.peak_stall_ns,
            "slowdown": self.slowdown,
            "mem_fraction": self.mem_fraction,
            "lookup_breakdown": (
                dict(self.lookup_breakdown)
                if self.lookup_breakdown is not None
                else None
            ),
            "extra": dict(self.extra),
            "timeline": (
                [snapshot.to_dict() for snapshot in self.timeline]
                if self.timeline is not None
                else None
            ),
        }

    @staticmethod
    def from_dict(data: dict) -> "WorkloadResult":
        """Rebuild a result from :meth:`to_dict` output."""
        lookup = data.get("lookup_breakdown")
        timeline = data.get("timeline")
        return WorkloadResult(
            workload=data["workload"],
            scheme=data["scheme"],
            epochs=int(data["epochs"]),
            activations=int(data["activations"]),
            migrations=int(data["migrations"]),
            row_moves=int(data["row_moves"]),
            evictions=int(data["evictions"]),
            busy_ns=float(data["busy_ns"]),
            table_dram_ns=float(data["table_dram_ns"]),
            peak_stall_ns=float(data["peak_stall_ns"]),
            slowdown=float(data["slowdown"]),
            mem_fraction=float(data["mem_fraction"]),
            lookup_breakdown=(
                {k: float(v) for k, v in lookup.items()}
                if lookup is not None
                else None
            ),
            extra={
                k: float(v) for k, v in data.get("extra", {}).items()
            },
            timeline=(
                [EpochSnapshot.from_dict(entry) for entry in timeline]
                if timeline is not None
                else None
            ),
        )
