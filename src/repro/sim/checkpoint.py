"""Crash-safe sweep checkpointing.

A :class:`SweepCheckpoint` is an append-only JSONL file recording one
sweep's progress: a header line pinning the sweep's parameters, then
one result line per completed (scheme, workload) run.  Each record is
flushed *and* fsynced as it is written, so a run killed at any point
loses at most the line it was writing -- and resume tolerates exactly
that truncated trailing line.

Resuming (``repro sweep --resume``) replays the file: the header must
match the requested sweep (same schemes, threshold, epochs, seed --
silently mixing results from a different configuration would poison
the aggregate), completed pairs are skipped, and the runner appends
the remaining runs to the same file.  A sweep interrupted and resumed
therefore produces a checkpoint whose result records are identical to
an uninterrupted run's (the CI chaos-smoke job asserts this).

Format (DESIGN.md §8)::

    {"record": "header", "version": 1, "meta": {...}}
    {"record": "result", "scheme": "aqua-sram", "workload": "mcf", "result": {...}}
    ...
"""

from __future__ import annotations

import glob
import json
import os
from typing import Dict, List, Optional, Tuple

from repro.core.canon import canonical_dumps
from repro.errors import ConfigError, SimulationError
from repro.sim.stats import WorkloadResult

CHECKPOINT_VERSION = 1

RunKey = Tuple[str, str]
"""(scheme label, workload name) -- the unit of sweep progress."""


def repair_torn_tail(path: str) -> bool:
    """Truncate a trailing line that lost its newline (crash mid-write).

    Replay already skips the torn fragment, but skipping alone is not
    enough for a journal that is *reopened for appending*: the first
    record written after restart would glue onto the fragment, forming
    one invalid line that the next replay drops -- silently losing a
    durably fsynced record.  Truncating the fragment before reopening
    keeps append mode safe.  Returns whether a torn tail was removed,
    so callers can count it exactly as they count skipped lines.
    """
    with open(path, "rb+") as fh:
        fh.seek(0, os.SEEK_END)
        size = fh.tell()
        if size == 0:
            return False
        fh.seek(size - 1)
        if fh.read(1) == b"\n":
            return False
        # Scan backwards for the last intact line ending.
        pos = size
        while pos > 0:
            step = min(4096, pos)
            pos -= step
            fh.seek(pos)
            chunk = fh.read(step)
            cut = chunk.rfind(b"\n")
            if cut >= 0:
                fh.truncate(pos + cut + 1)
                return True
        fh.truncate(0)
        return True


class SweepCheckpoint:
    """Append-only JSONL journal of completed sweep runs."""

    def __init__(self, path: str, meta: dict) -> None:
        self.path = path
        self.meta = dict(meta)
        self.completed: Dict[RunKey, WorkloadResult] = {}
        self.skipped_lines = 0
        self.skipped_writes = 0
        """Results that could not be canonically serialized (non-finite
        metrics) and were kept in memory but not journaled."""
        self._fh = None

    # ------------------------------------------------------------ constructors

    @classmethod
    def create(cls, path: str, meta: dict) -> "SweepCheckpoint":
        """Start a fresh checkpoint, truncating any existing file."""
        checkpoint = cls(path, meta)
        checkpoint._fh = open(path, "w", encoding="utf-8")
        checkpoint._append(
            {
                "record": "header",
                "version": CHECKPOINT_VERSION,
                "meta": checkpoint.meta,
            }
        )
        return checkpoint

    @classmethod
    def resume(cls, path: str, meta: Optional[dict] = None) -> "SweepCheckpoint":
        """Load a checkpoint and reopen it for appending.

        ``meta``, when given, must match the stored header exactly --
        resuming a sweep under different parameters raises
        :class:`~repro.errors.ConfigError` instead of silently mixing
        incompatible results.  A truncated trailing line (the crash
        artifact of a killed run) is truncated away and counted in
        ``skipped_lines`` -- removed, not just skipped, so the records
        this resume appends can never glue onto the torn fragment.
        Corruption anywhere else is tolerated and counted too, so
        resume salvages every intact record.
        """
        if not os.path.exists(path):
            raise ConfigError(f"checkpoint {path!r} does not exist")
        header = None
        results: List[dict] = []
        skipped = 1 if repair_torn_tail(path) else 0
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    skipped += 1
                    continue
                if not isinstance(record, dict):
                    skipped += 1
                    continue
                kind = record.get("record")
                if kind == "header":
                    header = record
                elif kind == "result":
                    results.append(record)
                else:
                    skipped += 1
        if header is None:
            raise ConfigError(
                f"checkpoint {path!r} has no header record; not a sweep "
                f"checkpoint (or corrupted beyond recovery)"
            )
        if header.get("version") != CHECKPOINT_VERSION:
            raise ConfigError(
                f"checkpoint {path!r} is version {header.get('version')}, "
                f"this build reads version {CHECKPOINT_VERSION}"
            )
        stored_meta = header.get("meta", {})
        if meta is not None and dict(meta) != dict(stored_meta):
            mismatched = sorted(
                set(meta) | set(stored_meta),
            )
            detail = ", ".join(
                f"{key}: requested {meta.get(key)!r} vs stored "
                f"{stored_meta.get(key)!r}"
                for key in mismatched
                if meta.get(key) != stored_meta.get(key)
            )
            raise ConfigError(
                f"checkpoint {path!r} was written by a different sweep "
                f"({detail}); start a fresh checkpoint instead"
            )
        checkpoint = cls(path, stored_meta)
        checkpoint.skipped_lines = skipped
        for record in results:
            try:
                result = WorkloadResult.from_dict(record["result"])
                key = (str(record["scheme"]), str(record["workload"]))
            except (KeyError, TypeError, ValueError):
                checkpoint.skipped_lines += 1
                continue
            checkpoint.completed[key] = result
        checkpoint._fh = open(path, "a", encoding="utf-8")
        return checkpoint

    # ----------------------------------------------------------------- writing

    def _append(self, record: dict) -> None:
        self._append_line(canonical_dumps(record))

    def _append_line(self, line: str) -> None:
        fh = self._fh
        if fh is None:
            raise SimulationError(f"checkpoint {self.path!r} is closed")
        fh.write(line)
        fh.write("\n")
        # Crash safety: the record must be durable before the runner
        # moves on, or a kill could lose a finished run.
        fh.flush()
        os.fsync(fh.fileno())

    def record(self, scheme: str, workload: str, result: WorkloadResult) -> None:
        """Durably record one completed run.

        A result whose metrics cannot be canonically serialized (a NaN
        rate from a zero denominator, say) is counted in
        ``skipped_writes`` and kept in memory -- the sweep continues
        and that one run degrades to re-execution on resume, instead
        of the journal write aborting the whole sweep mid-run.
        """
        try:
            line = canonical_dumps(
                {
                    "record": "result",
                    "scheme": scheme,
                    "workload": workload,
                    "result": result.to_dict(),
                }
            )
        except ConfigError:
            self.skipped_writes += 1
            self.completed[(scheme, workload)] = result
            return
        self._append_line(line)
        self.completed[(scheme, workload)] = result

    def has(self, scheme: str, workload: str) -> bool:
        """Whether this (scheme, workload) pair already completed."""
        return (scheme, workload) in self.completed

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SweepCheckpoint":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ------------------------------------------------------- worker-side journals
#
# The parallel executor cannot funnel every worker through one fsynced
# file descriptor, so each worker process appends result records (the
# same JSONL shape as the main checkpoint, headerless) to its own
# sidecar ``<ckpt>.w<k>.jsonl`` (k = worker pid).  The parent absorbs
# the sidecars into the main checkpoint -- on clean completion and,
# crucially, on ``--resume`` after a crash, so no durably journaled run
# is ever re-executed.


def worker_journal_path(checkpoint_path: str, worker_id: int) -> str:
    """The sidecar journal path for one worker of one checkpoint."""
    return f"{checkpoint_path}.w{worker_id}.jsonl"


def worker_journal_paths(checkpoint_path: str) -> List[str]:
    """Existing sidecar journals for a checkpoint, in sorted order."""
    return sorted(glob.glob(glob.escape(checkpoint_path) + ".w*.jsonl"))


def append_result_record(
    path: str, scheme: str, workload: str, result_dict: dict
) -> bool:
    """Durably append one headerless result record to a journal file.

    Opens, fsyncs, and closes per record: worker journals are written
    once per completed run (seconds apart), and short-lived descriptors
    survive pool shutdown and crash-isolation restarts.

    Returns whether the record was journaled: a result that cannot be
    canonically serialized (non-finite metrics) is dropped -- the run
    still reaches the parent through the pool's normal return path; it
    just is not crash-durable.
    """
    try:
        line = canonical_dumps(
            {
                "record": "result",
                "scheme": scheme,
                "workload": workload,
                "result": result_dict,
            }
        )
    except ConfigError:
        return False
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(line)
        fh.write("\n")
        fh.flush()
        os.fsync(fh.fileno())
    return True


def load_result_records(
    path: str,
) -> Tuple[List[Tuple[str, str, WorkloadResult]], int]:
    """Tolerantly read result records from a (headerless) journal.

    Returns ``(records, skipped)``; corrupt lines -- the truncated tail
    of a killed worker -- are counted, never fatal, mirroring
    :meth:`SweepCheckpoint.resume`.
    """
    records: List[Tuple[str, str, WorkloadResult]] = []
    skipped = 0
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                skipped += 1
                continue
            if not isinstance(record, dict) or record.get("record") != "result":
                skipped += 1
                continue
            try:
                result = WorkloadResult.from_dict(record["result"])
                key = (str(record["scheme"]), str(record["workload"]))
            except (KeyError, TypeError, ValueError):
                skipped += 1
                continue
            records.append((key[0], key[1], result))
    return records, skipped


def absorb_worker_journals(checkpoint: SweepCheckpoint) -> Tuple[int, int]:
    """Merge every sidecar journal into the main checkpoint, then delete.

    Records already present in the checkpoint (a parent that
    consolidated but died before unlinking) are skipped.  Returns
    ``(absorbed, skipped_lines)``.
    """
    absorbed = 0
    skipped = 0
    for path in worker_journal_paths(checkpoint.path):
        records, bad = load_result_records(path)
        skipped += bad
        for scheme, workload, result in records:
            if checkpoint.has(scheme, workload):
                continue
            checkpoint.record(scheme, workload, result)
            absorbed += 1
        os.remove(path)
    return absorbed, skipped
