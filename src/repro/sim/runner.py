"""Experiment runner: scheme factories, suite sweeps, and aggregates.

This is the layer the benchmarks and examples drive: build a fresh
scheme per workload, run the 18 SPEC + 16 mix workloads (Sec. III),
and aggregate with geometric means, exactly as the paper reports.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.aqua import AquaMitigation
from repro.core.config import AquaConfig
from repro.mitigations.base import MitigationScheme
from repro.mitigations.blockhammer import Blockhammer
from repro.mitigations.none import NoMitigation
from repro.mitigations.rrs import RandomizedRowSwap
from repro.mitigations.victim_refresh import VictimRefresh
from repro.sim.cpu import gmean
from repro.sim.stats import WorkloadResult
from repro.sim.system import SystemSimulator
from repro.workloads.mixes import all_mixes
from repro.workloads.spec import workload
from repro.workloads.table2 import SPEC_NAMES


SchemeFactory = Callable[..., MitigationScheme]
"""Zero-argument builder; accepts an optional ``telemetry`` kwarg."""


def aqua_sram(rowhammer_threshold: int = 1000, **kwargs) -> SchemeFactory:
    """Factory: AQUA with SRAM tables (Sec. IV)."""

    def build(telemetry=None) -> MitigationScheme:
        return AquaMitigation(
            AquaConfig(
                rowhammer_threshold=rowhammer_threshold,
                table_mode="sram",
                **kwargs,
            ),
            telemetry=telemetry,
        )

    return build


def aqua_memory_mapped(
    rowhammer_threshold: int = 1000, **kwargs
) -> SchemeFactory:
    """Factory: AQUA with memory-mapped tables (Sec. V)."""

    def build(telemetry=None) -> MitigationScheme:
        return AquaMitigation(
            AquaConfig(
                rowhammer_threshold=rowhammer_threshold,
                table_mode="memory-mapped",
                **kwargs,
            ),
            telemetry=telemetry,
        )

    return build


def rrs(rowhammer_threshold: int = 1000, **kwargs) -> SchemeFactory:
    """Factory: Randomized Row-Swap at the given threshold."""

    def build(telemetry=None) -> MitigationScheme:
        return RandomizedRowSwap(
            rowhammer_threshold=rowhammer_threshold,
            telemetry=telemetry,
            **kwargs,
        )

    return build


def blockhammer(rowhammer_threshold: int = 1000, **kwargs) -> SchemeFactory:
    """Factory: Blockhammer rate-limiting."""

    def build(telemetry=None) -> MitigationScheme:
        return Blockhammer(
            rowhammer_threshold=rowhammer_threshold,
            telemetry=telemetry,
            **kwargs,
        )

    return build


def victim_refresh(rowhammer_threshold: int = 1000, **kwargs) -> SchemeFactory:
    """Factory: classic victim refresh."""

    def build(telemetry=None) -> MitigationScheme:
        return VictimRefresh(
            rowhammer_threshold=rowhammer_threshold,
            telemetry=telemetry,
            **kwargs,
        )

    return build


def baseline() -> SchemeFactory:
    """Factory: unprotected baseline."""
    return NoMitigation


def all_workloads(spec_only: bool = False) -> List:
    """The paper's evaluation set: 18 SPEC + 16 mixes (34 workloads)."""
    workloads = [workload(name) for name in SPEC_NAMES]
    if not spec_only:
        workloads.extend(all_mixes())
    return workloads


def run_workload(
    factory: SchemeFactory, target, epochs: int = 2, telemetry=None
) -> WorkloadResult:
    """Run one workload on a freshly built scheme.

    ``telemetry`` is only forwarded when given, so factories that take
    no arguments (benchmark lambdas) keep working untouched.
    """
    scheme = factory(telemetry=telemetry) if telemetry is not None else factory()
    simulator = SystemSimulator(scheme)
    return simulator.run(target, epochs=epochs)


def run_suite(
    factory: SchemeFactory,
    workloads: Optional[List] = None,
    epochs: int = 2,
    telemetry=None,
) -> Dict[str, WorkloadResult]:
    """Run a scheme across a workload list (default: all 34).

    When telemetered, every workload shares the one registry/trace
    (events are distinguishable by their epoch-relative timestamps and
    the per-epoch ``refresh_window`` markers' ``workload`` attribute).
    """
    if workloads is None:
        workloads = all_workloads()
    return {
        target.name: run_workload(
            factory, target, epochs=epochs, telemetry=telemetry
        )
        for target in workloads
    }


def gmean_slowdown(results: Dict[str, WorkloadResult]) -> float:
    """Geometric-mean slowdown across a suite (the paper's Gmean-34)."""
    return gmean([result.slowdown for result in results.values()])


def average_migrations_per_epoch(
    results: Dict[str, WorkloadResult],
) -> float:
    """Arithmetic-mean mitigations per 64 ms (Fig. 6's 'Average' bar)."""
    if not results:
        raise ValueError("no results")
    return sum(
        result.migrations_per_epoch for result in results.values()
    ) / len(results)
