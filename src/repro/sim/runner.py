"""Experiment runner: scheme factories, suite sweeps, and aggregates.

This is the layer the benchmarks and examples drive: build a fresh
scheme per workload, run the 18 SPEC + 16 mix workloads (Sec. III),
and aggregate with geometric means, exactly as the paper reports.
"""

from __future__ import annotations

import signal
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.aqua import AquaMitigation
from repro.core.config import AquaConfig
from repro.errors import RunTimeoutError
from repro.mitigations.base import MitigationScheme
from repro.mitigations.blockhammer import Blockhammer
from repro.mitigations.none import NoMitigation
from repro.mitigations.rrs import RandomizedRowSwap
from repro.mitigations.victim_refresh import VictimRefresh
from repro.sim.checkpoint import SweepCheckpoint
from repro.sim.cpu import gmean
from repro.sim.stats import WorkloadResult
from repro.sim.system import SystemSimulator
from repro.workloads.mixes import all_mixes
from repro.workloads.spec import workload
from repro.workloads.table2 import SPEC_NAMES


SchemeFactory = Callable[..., MitigationScheme]
"""Zero-argument builder; accepts an optional ``telemetry`` kwarg."""


def aqua_sram(rowhammer_threshold: int = 1000, **kwargs) -> SchemeFactory:
    """Factory: AQUA with SRAM tables (Sec. IV)."""

    def build(telemetry=None) -> MitigationScheme:
        return AquaMitigation(
            AquaConfig(
                rowhammer_threshold=rowhammer_threshold,
                table_mode="sram",
                **kwargs,
            ),
            telemetry=telemetry,
        )

    return build


def aqua_memory_mapped(
    rowhammer_threshold: int = 1000, **kwargs
) -> SchemeFactory:
    """Factory: AQUA with memory-mapped tables (Sec. V)."""

    def build(telemetry=None) -> MitigationScheme:
        return AquaMitigation(
            AquaConfig(
                rowhammer_threshold=rowhammer_threshold,
                table_mode="memory-mapped",
                **kwargs,
            ),
            telemetry=telemetry,
        )

    return build


def rrs(rowhammer_threshold: int = 1000, **kwargs) -> SchemeFactory:
    """Factory: Randomized Row-Swap at the given threshold."""

    def build(telemetry=None) -> MitigationScheme:
        return RandomizedRowSwap(
            rowhammer_threshold=rowhammer_threshold,
            telemetry=telemetry,
            **kwargs,
        )

    return build


def blockhammer(rowhammer_threshold: int = 1000, **kwargs) -> SchemeFactory:
    """Factory: Blockhammer rate-limiting."""

    def build(telemetry=None) -> MitigationScheme:
        return Blockhammer(
            rowhammer_threshold=rowhammer_threshold,
            telemetry=telemetry,
            **kwargs,
        )

    return build


def victim_refresh(rowhammer_threshold: int = 1000, **kwargs) -> SchemeFactory:
    """Factory: classic victim refresh."""

    def build(telemetry=None) -> MitigationScheme:
        return VictimRefresh(
            rowhammer_threshold=rowhammer_threshold,
            telemetry=telemetry,
            **kwargs,
        )

    return build


def baseline() -> SchemeFactory:
    """Factory: unprotected baseline."""
    return NoMitigation


SCHEME_BUILDERS: Dict[str, Callable[..., SchemeFactory]] = {
    "aqua-sram": aqua_sram,
    "aqua-mm": aqua_memory_mapped,
    "rrs": rrs,
    "blockhammer": blockhammer,
    "victim-refresh": victim_refresh,
}
"""Name -> factory builder.  This registry is the picklable currency of
the parallel executor: a :class:`~repro.parallel.RunPoint` carries only
the builder *name* and kwargs across the process boundary, and each
worker rebuilds the (unpicklable) factory closure locally."""


def register_scheme_builder(
    name: str, builder: Callable[..., SchemeFactory]
) -> None:
    """Register (or replace) a scheme builder under ``name``.

    Extension hook for experiments and tests; under the default Unix
    ``fork`` start method, registrations made before the pool spawns
    are visible inside workers.
    """
    SCHEME_BUILDERS[name] = builder


def all_workloads(spec_only: bool = False) -> List:
    """The paper's evaluation set: 18 SPEC + 16 mixes (34 workloads)."""
    workloads = [workload(name) for name in SPEC_NAMES]
    if not spec_only:
        workloads.extend(all_mixes())
    return workloads


def run_workload(
    factory: SchemeFactory, target, epochs: int = 2, telemetry=None
) -> WorkloadResult:
    """Run one workload on a freshly built scheme.

    ``telemetry`` is only forwarded when given, so factories that take
    no arguments (benchmark lambdas) keep working untouched.
    """
    scheme = factory(telemetry=telemetry) if telemetry is not None else factory()
    simulator = SystemSimulator(scheme)
    return simulator.run(target, epochs=epochs)


def run_suite(
    factory: SchemeFactory,
    workloads: Optional[List] = None,
    epochs: int = 2,
    telemetry=None,
) -> Dict[str, WorkloadResult]:
    """Run a scheme across a workload list (default: all 34).

    When telemetered, every workload shares the one registry/trace
    (events are distinguishable by their epoch-relative timestamps and
    the per-epoch ``refresh_window`` markers' ``workload`` attribute).
    """
    if workloads is None:
        workloads = all_workloads()
    return {
        target.name: run_workload(
            factory, target, epochs=epochs, telemetry=telemetry
        )
        for target in workloads
    }


# ------------------------------------------------------------- hardened sweep


@dataclass
class RunFailure:
    """One (scheme, workload) run that did not produce a result."""

    scheme: str
    workload: str
    error: str
    attempts: int


@dataclass
class SweepReport:
    """Outcome of a hardened sweep: results plus an error ledger."""

    results: Dict[Tuple[str, str], WorkloadResult] = field(
        default_factory=dict
    )
    failures: List[RunFailure] = field(default_factory=list)
    resumed: int = 0
    """Runs skipped because the checkpoint already held them."""

    @property
    def ok(self) -> bool:
        return not self.failures

    def by_scheme(self) -> Dict[str, Dict[str, WorkloadResult]]:
        """Results regrouped as {scheme: {workload: result}}."""
        grouped: Dict[str, Dict[str, WorkloadResult]] = {}
        for (scheme, name), result in self.results.items():
            grouped.setdefault(scheme, {})[name] = result
        return grouped


def _call_with_timeout(fn: Callable[[], WorkloadResult], timeout_s: float):
    """Run ``fn`` under a wall-clock deadline.

    Uses ``signal.setitimer`` (Unix, main thread).  Where the timer is
    unavailable -- non-main thread, platforms without SIGALRM -- the
    call runs unbounded rather than failing: a missing guard degrades
    to the old behaviour, it does not break the sweep.
    """
    if timeout_s <= 0 or not hasattr(signal, "setitimer"):
        return fn()
    try:
        previous = signal.signal(signal.SIGALRM, _raise_timeout)
    except ValueError:  # not the main thread
        return fn()
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        return fn()
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _raise_timeout(signum, frame):
    raise RunTimeoutError("per-run wall-clock timeout expired")


def run_hardened(
    factory: SchemeFactory,
    target,
    epochs: int = 2,
    telemetry=None,
    fault_injector=None,
    timeout_s: float = 0.0,
    retries: int = 0,
    backoff_s: float = 0.5,
) -> WorkloadResult:
    """Run one workload with timeout and transient-failure retry.

    Only :class:`~repro.errors.RunTimeoutError` and ``OSError`` are
    treated as transient (retried with exponential backoff up to
    ``retries`` times); everything else is a real bug in the run and
    propagates immediately so the sweep's error ledger sees it.
    """

    def attempt() -> WorkloadResult:
        scheme = (
            factory(telemetry=telemetry)
            if telemetry is not None
            else factory()
        )
        if fault_injector is not None:
            scheme.attach_faults(fault_injector)
        simulator = SystemSimulator(scheme)
        return simulator.run(target, epochs=epochs)

    for retry in range(retries + 1):
        try:
            return _call_with_timeout(attempt, timeout_s)
        except (RunTimeoutError, OSError):
            if retry == retries:
                raise
            time.sleep(backoff_s * (2 ** retry))
    raise AssertionError("unreachable")


def run_sweep(
    factories: Dict[str, SchemeFactory],
    workloads: Optional[List] = None,
    epochs: int = 2,
    telemetry=None,
    checkpoint: Optional[SweepCheckpoint] = None,
    injector_factory: Optional[Callable[[str, str], object]] = None,
    timeout_s: float = 0.0,
    retries: int = 0,
    backoff_s: float = 0.5,
    progress: Optional[Callable[[str, str, str], None]] = None,
) -> SweepReport:
    """Run every (scheme, workload) pair, surviving individual failures.

    One failing run no longer aborts the sweep: it is recorded in the
    report's ``failures`` ledger and the sweep moves on.  With a
    ``checkpoint``, each completed run is durably journaled and pairs
    already present (a ``--resume``) are skipped.  ``injector_factory``
    (scheme label, workload name) -> injector wires per-run fault
    injection for the chaos harness; ``progress`` receives
    (scheme, workload, status) callbacks with status in
    ``{"resumed", "ok", "failed"}``.
    """
    if workloads is None:
        workloads = all_workloads()
    report = SweepReport()
    for label, factory in factories.items():
        for target in workloads:
            if checkpoint is not None and checkpoint.has(label, target.name):
                report.results[(label, target.name)] = checkpoint.completed[
                    (label, target.name)
                ]
                report.resumed += 1
                if progress is not None:
                    progress(label, target.name, "resumed")
                continue
            injector = (
                injector_factory(label, target.name)
                if injector_factory is not None
                else None
            )
            try:
                result = run_hardened(
                    factory,
                    target,
                    epochs=epochs,
                    telemetry=telemetry,
                    fault_injector=injector,
                    timeout_s=timeout_s,
                    retries=retries,
                    backoff_s=backoff_s,
                )
            except KeyboardInterrupt:
                raise
            except Exception as exc:  # ledger, not crash: see docstring
                report.failures.append(
                    RunFailure(
                        scheme=label,
                        workload=target.name,
                        error=f"{type(exc).__name__}: {exc}",
                        attempts=retries + 1,
                    )
                )
                if progress is not None:
                    progress(label, target.name, "failed")
                continue
            report.results[(label, target.name)] = result
            if checkpoint is not None:
                checkpoint.record(label, target.name, result)
            if progress is not None:
                progress(label, target.name, "ok")
    return report


def gmean_slowdown(results: Dict[str, WorkloadResult]) -> float:
    """Geometric-mean slowdown across a suite (the paper's Gmean-34)."""
    return gmean([result.slowdown for result in results.values()])


def average_migrations_per_epoch(
    results: Dict[str, WorkloadResult],
) -> float:
    """Arithmetic-mean mitigations per 64 ms (Fig. 6's 'Average' bar)."""
    if not results:
        raise ValueError("no results")
    return sum(
        result.migrations_per_epoch for result in results.values()
    ) / len(results)
