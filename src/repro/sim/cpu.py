"""Analytic CPU slowdown model.

The paper's slowdown (Sec. IV-G) is dominated by channel time stolen by
row migrations, plus (for memory-mapped tables) in-DRAM table traffic,
plus (for Blockhammer) per-row throttling stalls.  We convert the
channel time a mitigation consumes into IPC loss with a standard
memory-boundness coupling::

    execution_time = t_cpu + t_mem
    slowdown       = 1 + mem_fraction * (extra_memory_time / wall_time)

``mem_fraction`` is the MPKI-derived fraction of the workload's
execution time that dilates with memory time
(:func:`repro.workloads.trace.memory_boundness`).  Mitigation busy time
is measured by simulation; the wall time is the simulated interval, so
``extra_memory_time / wall_time`` is the extra channel utilisation the
mitigation imposes.
"""

from __future__ import annotations

import math
from typing import Iterable


def slowdown_from_busy(
    mem_fraction: float,
    mitigation_busy_ns: float,
    wall_ns: float,
    table_dram_ns: float = 0.0,
    peak_stall_ns: float = 0.0,
) -> float:
    """IPC-normalised slowdown (1.0 = no loss).

    ``mitigation_busy_ns`` is channel time blocked by migrations or
    refreshes; ``table_dram_ns`` is in-DRAM mapping-table traffic;
    ``peak_stall_ns`` is the worst per-row serialised throttle delay
    (Blockhammer), which stretches the critical path directly.
    """
    if not 0.0 <= mem_fraction <= 1.0:
        raise ValueError("mem_fraction must be in [0, 1]")
    if wall_ns <= 0:
        raise ValueError("wall time must be positive")
    extra = mitigation_busy_ns + table_dram_ns + peak_stall_ns
    return 1.0 + mem_fraction * (extra / wall_ns)


def normalized_performance(slowdown: float) -> float:
    """Performance normalised to baseline (the y-axis of Figs. 7 and 9)."""
    if slowdown <= 0:
        raise ValueError("slowdown must be positive")
    return 1.0 / slowdown


def gmean(values: Iterable[float]) -> float:
    """Geometric mean (the paper reports Gmean-34 across workloads)."""
    values = list(values)
    if not values:
        raise ValueError("gmean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("gmean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
