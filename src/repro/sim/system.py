"""System simulator: drive a workload through a mitigation scheme.

The performance path works at activation granularity with chunked
batching: each (row, burst) chunk of the workload's epoch trace is fed
to the scheme with a timestamp spread uniformly through the 64 ms
epoch.  The scheme accumulates mitigation channel-busy time, which the
CPU model converts to slowdown.

Demand-side DRAM timing needs no per-access simulation here because the
baseline is common-mode: the slowdown of a row-migration scheme is its
*extra* channel occupancy (Sec. IV-G), which the scheme reports
exactly.  The fully-timed path (bank state, row-buffer hits, queueing)
lives in :mod:`repro.controller` and is used by attacks and
integration tests.
"""

from __future__ import annotations

from typing import Optional

from repro.dram.timing import DDR4Timing, DDR4_2400
from repro.mitigations.base import MitigationScheme
from repro.sim.cpu import slowdown_from_busy
from repro.sim.stats import WorkloadResult
from repro.telemetry import NULL_TELEMETRY


class SystemSimulator:
    """Run workloads against one mitigation scheme instance.

    A simulator (and its scheme) is single-use per workload: schemes
    accumulate tracker/table state that must not leak across workloads.
    """

    def __init__(
        self,
        scheme: MitigationScheme,
        timing: DDR4Timing = DDR4_2400,
        telemetry=None,
    ) -> None:
        self.scheme = scheme
        self.timing = timing
        #: Defaults to the scheme's own sink, so building the scheme
        #: with a Telemetry is all it takes to get epoch snapshots.
        self.telemetry = (
            telemetry
            if telemetry is not None
            else getattr(scheme, "telemetry", NULL_TELEMETRY)
        )

    def run(self, workload, epochs: int = 2) -> WorkloadResult:
        """Simulate ``epochs`` refresh windows of ``workload``.

        Two epochs by default: the first fills the quarantine area, the
        second exercises steady-state lazy draining (evictions), which
        is the regime the paper measures.
        """
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        scheme = self.scheme
        telemetry = self.telemetry
        timeline_start = 0
        if telemetry.enabled:
            telemetry.add_collector(scheme.collect_metrics)
            timeline_start = len(telemetry.timeline)
        epoch_ns = self.timing.trefw_ns
        total_acts = 0
        peak_stall = 0.0
        for epoch in range(epochs):
            trace = workload.epoch_trace(epoch)
            total = trace.total_activations
            total_acts += total
            start = epoch * epoch_ns
            dt = epoch_ns / (total + 1)
            # The scheme owns the per-chunk loop (or a vectorized
            # equivalent); timestamps spread uniformly through the epoch.
            scheme.access_epoch(trace.rows, trace.counts, start, dt)
            peak_stall += self._epoch_peak_stall()
            if telemetry.enabled:
                telemetry.epoch_snapshot(
                    epoch, ts_ns=(epoch + 1) * epoch_ns,
                    workload=workload.name, **self._boundary_attrs()
                )
        wall_ns = epochs * epoch_ns
        busy = scheme.stats.busy_ns
        table_dram = scheme.table_dram_busy_ns()
        mem_fraction = workload.memory_boundness
        slowdown = slowdown_from_busy(
            mem_fraction,
            busy,
            wall_ns,
            table_dram_ns=table_dram,
            peak_stall_ns=peak_stall,
        )
        return WorkloadResult(
            workload=workload.name,
            scheme=scheme.name,
            epochs=epochs,
            activations=total_acts,
            migrations=scheme.stats.migrations,
            row_moves=scheme.stats.row_moves,
            evictions=scheme.stats.evictions,
            busy_ns=busy,
            table_dram_ns=table_dram,
            peak_stall_ns=peak_stall,
            slowdown=slowdown,
            mem_fraction=mem_fraction,
            lookup_breakdown=self._lookup_breakdown(),
            extra=self._extra_stats(),
            timeline=(
                list(self.telemetry.timeline[timeline_start:])
                if self.telemetry.enabled
                else None
            ),
        )

    def _boundary_attrs(self) -> dict:
        """Structure-state attributes for epoch-boundary events."""
        attrs = {}
        rqa = getattr(self.scheme, "rqa", None)
        if rqa is not None:
            attrs["rqa_occupancy"] = rqa.occupancy()
        return attrs

    def _extra_stats(self) -> dict:
        """Scheme-specific extras (e.g. spurious Misra-Gries installs)."""
        extra = {}
        tracker = getattr(self.scheme, "tracker", None)
        spurious = getattr(tracker, "spurious_installs", None)
        if spurious is not None:
            extra["spurious_installs"] = float(spurious)
        rqa = getattr(self.scheme, "rqa", None)
        if rqa is not None:
            extra["rqa_allocations"] = float(rqa.allocations)
        return extra

    def _epoch_peak_stall(self) -> float:
        """Worst per-row throttle delay this epoch (Blockhammer only)."""
        peak_fn = getattr(self.scheme, "epoch_peak_row_stall_ns", None)
        if peak_fn is None:
            return 0.0
        return peak_fn()

    def _lookup_breakdown(self) -> Optional[dict]:
        """FPT-lookup outcome fractions, when the scheme tracks them."""
        breakdown_fn = getattr(self.scheme, "lookup_breakdown", None)
        if breakdown_fn is None:
            return None
        return {
            outcome.value: fraction
            for outcome, fraction in breakdown_fn().items()
        }
