"""Blockhammer baseline: rate-limiting flagged rows (Yaglikci et al., HPCA 2021).

Blockhammer prevents Rowhammer without migrations or refreshes by
*throttling*: once a row's activation count crosses a blacklisting
threshold, further activations of that row are delayed so it cannot
exceed its activation quota within the refresh window.

The AQUA paper evaluates Blockhammer with an ideal tracker and a
blacklisting threshold of 256 (Sec. VII-B) and shows its pathology at
low thresholds: a row limited to 500 ACTs per 64 ms may only activate
once every 128 us, so a benign-but-hot pattern (e.g. two conflicting
rows alternating, 100 ns per round unthrottled) suffers a worst-case
slowdown of 64 ms / 500 rounds = 1280x.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.dram.geometry import DramGeometry, DEFAULT_GEOMETRY
from repro.dram.timing import DDR4Timing, DDR4_2400
from repro.mitigations.base import AccessResult, MitigationScheme
from repro.trackers import ExactTracker
from repro.trackers.cbf import RowBlocker


_ESTIMATORS = ("exact", "cbf")


class Blockhammer(MitigationScheme):
    """Throttle rows beyond the blacklist threshold to a safe ACT rate.

    ``estimator`` selects the activation-count source: ``"exact"`` is
    the idealised tracker the AQUA paper evaluates with (Sec. VII-B);
    ``"cbf"`` is Blockhammer's own dual counting-bloom-filter
    RowBlocker, which never under-counts but may over-throttle on hash
    aliasing.
    """

    name = "blockhammer"

    def __init__(
        self,
        rowhammer_threshold: int = 1000,
        geometry: DramGeometry = DEFAULT_GEOMETRY,
        timing: DDR4Timing = DDR4_2400,
        blacklist_threshold: int = 256,
        estimator: str = "exact",
        cbf_counters: int = 8192,
        telemetry=None,
    ) -> None:
        super().__init__(telemetry)
        if blacklist_threshold < 1:
            raise ValueError("blacklist_threshold must be >= 1")
        if estimator not in _ESTIMATORS:
            raise ValueError(f"estimator must be one of {_ESTIMATORS}")
        self.geometry = geometry
        self.timing = timing
        self.rowhammer_threshold = rowhammer_threshold
        self.blacklist_threshold = blacklist_threshold
        self.estimator = estimator
        #: Per-row activation quota per refresh window (T_RH / 2, so the
        #: quota holds even across a tracker reset boundary).
        self.quota = max(1, rowhammer_threshold // 2)
        #: Minimum spacing between ACTs of a blacklisted row.
        self.min_interval_ns = timing.trefw_ns / self.quota
        self.tracker = ExactTracker(blacklist_threshold)
        self.row_blocker = (
            RowBlocker(counters=cbf_counters, timing=timing)
            if estimator == "cbf"
            else None
        )
        self._now_ns = 0.0
        self._next_allowed_ns: Dict[int, float] = {}
        self._row_stall_ns: Dict[int, float] = {}
        self.throttled_accesses = 0

    @property
    def visible_rows(self) -> int:
        return self.geometry.rows_per_rank

    def _translate(self, logical_row: int) -> Tuple[int, float, Optional[object]]:
        if not 0 <= logical_row < self.visible_rows:
            raise ValueError(f"row {logical_row} outside memory")
        return logical_row, 0.0, None

    def _sync_epoch(self, now_ns: float) -> None:
        self._now_ns = now_ns
        super()._sync_epoch(now_ns)

    def _estimate_after(self, physical_row: int, amount: int = 1) -> int:
        """Count ``amount`` ACTs and return the post-count estimate."""
        self.tracker.observe_batch(physical_row, amount)
        if self.row_blocker is not None:
            return self.row_blocker.observe(
                physical_row, self._now_ns, amount
            )
        return self.tracker.estimate(physical_row)

    def _observe(self, physical_row: int) -> bool:
        # Blacklisting engages at the blacklist threshold and stays
        # engaged for the epoch.
        return self._estimate_after(physical_row) >= self.blacklist_threshold

    def _mitigate(
        self, logical_row: int, physical_row: int, now_ns: float
    ) -> AccessResult:
        next_allowed = self._next_allowed_ns.get(physical_row, 0.0)
        stall = max(0.0, next_allowed - now_ns)
        release = max(now_ns, next_allowed) + self.min_interval_ns
        self._next_allowed_ns[physical_row] = release
        if stall > 0:
            self.throttled_accesses += 1
            self._row_stall_ns[physical_row] = (
                self._row_stall_ns.get(physical_row, 0.0) + stall
            )
            if self.telemetry.enabled:
                self.telemetry.event(
                    "throttle", now_ns,
                    scheme=self.name, row=physical_row, stall_ns=stall,
                )
                self.telemetry.inc("throttles_total", scheme=self.name)
        return AccessResult(physical_row=physical_row, stalled_ns=stall)

    def access_batch(self, logical_row: int, n: int, now_ns: float):
        """Batched throttling: every blacklisted ACT pays the interval.

        Once a row is blacklisted its activations are spaced at
        ``min_interval_ns``; for a batch of ``n`` activations the added
        delay relative to unthrottled issue is one interval per
        throttled activation.
        """
        if n < 1:
            raise ValueError("batch size must be >= 1")
        self._sync_epoch(now_ns)
        self.stats.accesses += n
        physical, lookup_ns, outcome = self._translate(logical_row)
        if self.faults.enabled:
            self._maybe_drop_tracker(physical)
        after = self._estimate_after(physical, n)
        before = after - n
        throttled = max(0, after - max(before, self.blacklist_threshold))
        stall = throttled * self.min_interval_ns
        if throttled:
            self.throttled_accesses += throttled
            self._row_stall_ns[physical] = (
                self._row_stall_ns.get(physical, 0.0) + stall
            )
            if self.telemetry.enabled:
                self.telemetry.event(
                    "throttle", now_ns,
                    scheme=self.name, row=physical, stall_ns=stall,
                    batched=throttled,
                )
                self.telemetry.inc(
                    "throttles_total", throttled, scheme=self.name
                )
        result = AccessResult(
            physical_row=physical, lookup_ns=lookup_ns, stalled_ns=stall
        )
        result.lookup_outcome = outcome
        self.stats.stall_ns += stall
        return result

    def access_epoch(
        self,
        rows: np.ndarray,
        counts: np.ndarray,
        start_ns: float,
        dt_ns: float,
    ) -> None:
        """Vectorized epoch feed for the exact estimator.

        With exact per-row counters the post-chunk estimate is a
        segmented running sum, so every chunk's throttle count
        ``max(0, after - max(before, B))`` -- equivalently
        ``clip(after - B, 0, n)`` -- vectorizes; only the (sparse)
        throttled chunks are walked in stream order to preserve the
        float accumulation of ``stats.stall_ns`` and the per-row stall
        ledger.  The CBF RowBlocker's estimates are rotation- and
        order-dependent, so that estimator keeps the scalar loop.
        """
        if self.row_blocker is not None or not self._epoch_fast_path_ok(
            rows, counts
        ):
            return self._scalar_epoch(rows, counts, start_ns, dt_ns)
        total = int(counts.sum())
        last_now = start_ns + dt_ns * (total - int(counts[-1]))
        epoch_of = self.refresh.epoch_of
        if epoch_of(start_ns) != epoch_of(last_now):
            return self._scalar_epoch(rows, counts, start_ns, dt_ns)
        self._sync_epoch(start_ns)
        stats = self.stats
        stats.accesses += total
        # Post-chunk estimates: carry-in from the tracker plus the
        # stream's segmented cumulative sum (read the carry-ins before
        # the tracker consumes the epoch below).
        tracker_counts = self.tracker._counts
        sorted_idx = np.argsort(rows, kind="stable")
        sorted_rows = rows[sorted_idx]
        sorted_counts = counts[sorted_idx]
        cum = np.cumsum(sorted_counts)
        seg_starts = np.flatnonzero(
            np.concatenate(([True], sorted_rows[1:] != sorted_rows[:-1]))
        )
        base = np.fromiter(
            (tracker_counts[row] for row in sorted_rows[seg_starts].tolist()),
            dtype=np.int64,
            count=len(seg_starts),
        )
        seg_lengths = np.diff(np.append(seg_starts, len(sorted_rows)))
        carry = np.repeat(
            base - (cum[seg_starts] - sorted_counts[seg_starts]),
            seg_lengths,
        )
        after = np.empty(len(rows), dtype=np.int64)
        after[sorted_idx] = cum + carry
        self.tracker.observe_epoch(rows, counts)
        throttled = np.minimum(
            counts, np.maximum(after - self.blacklist_threshold, 0)
        )
        hot = np.flatnonzero(throttled)
        if len(hot):
            interval = self.min_interval_ns
            row_stall = self._row_stall_ns
            for row, n_throttled in zip(
                rows[hot].tolist(), throttled[hot].tolist()
            ):
                stall = n_throttled * interval
                self.throttled_accesses += n_throttled
                row_stall[row] = row_stall.get(row, 0.0) + stall
                stats.stall_ns += stall
        self._now_ns = last_now
        self.now_ns = last_now

    def epoch_peak_row_stall_ns(self) -> float:
        """Largest cumulative stall imposed on any single row this epoch.

        Rows throttle independently (per-row quotas), so a workload's
        completion time stretches by roughly the worst row's serialised
        stall, not the sum across rows.
        """
        return max(self._row_stall_ns.values(), default=0.0)

    def _end_epoch(self, new_epoch: int) -> None:
        super()._end_epoch(new_epoch)
        self.tracker.reset()
        self._next_allowed_ns.clear()
        self._row_stall_ns.clear()

    def collect_metrics(self, telemetry) -> None:
        """Snapshot-time export of throttling pressure."""
        super().collect_metrics(telemetry)
        registry = telemetry.registry
        registry.counter("throttled_accesses_total").set_total(
            self.throttled_accesses, scheme=self.name
        )
        registry.gauge("blacklisted_rows").set(
            len(self._next_allowed_ns), scheme=self.name
        )
        registry.gauge("epoch_peak_row_stall_ns").set(
            self.epoch_peak_row_stall_ns(), scheme=self.name
        )
        self.tracker.collect_metrics(telemetry, scheme=self.name)

    def worst_case_slowdown(self) -> float:
        """Analytical worst case (Sec. VII-B).

        A two-row conflict pattern completes a round in ~100 ns
        unthrottled (two ACTs at tRC but overlapping precharge), but
        only ``quota`` rounds fit in the window once blacklisted.
        """
        unthrottled_rounds = self.timing.trefw_ns / (100.0)
        return unthrottled_rounds / self.quota
