"""Common interface for Rowhammer mitigation schemes.

The memory controller drives every scheme the same way: for each row
activation it calls :meth:`MitigationScheme.access` with the *logical*
(software-visible) row and the current time, and receives back

* the *physical* row the access was routed to (after any indirection),
* extra channel-busy time imposed by mitigative actions (migrations,
  victim refreshes, or rate-limit stalls), and
* the physical rows the mitigation itself activated (so the security
  ledger sees migration traffic too).

Schemes own their tracker and their epoch housekeeping; the controller
only needs to keep calling ``access`` with monotonically non-decreasing
timestamps.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.dram.refresh import RefreshScheduler
from repro.faults import NULL_INJECTOR
from repro.telemetry import NULL_TELEMETRY
from repro.workloads.trace import iter_chunks


@dataclass
class AccessResult:
    """Outcome of routing one activation through a mitigation scheme."""

    physical_row: int
    lookup_ns: float = 0.0
    busy_ns: float = 0.0
    """Channel time consumed by mitigative action for this access."""
    migrated: bool = False
    evicted: bool = False
    stalled_ns: float = 0.0
    """Delay imposed on the *request itself* (Blockhammer throttling)."""
    extra_activations: Tuple[int, ...] = ()
    """Physical rows the mitigation *wrote* (migration destinations).

    Migration source reads are excluded: they restore the departing
    row's charge, like a refresh, so they are not attack-usable
    activations of that row (the accounting behind Sec. VI-A's
    invariant arithmetic)."""
    refreshed_rows: Tuple[int, ...] = ()
    """Physical rows the mitigation refreshed (victim-refresh schemes)."""
    lookup_outcome: Optional[object] = None


@dataclass
class SchemeStats:
    """Counters every scheme maintains."""

    accesses: int = 0
    migrations: int = 0
    """Mitigative actions performed (quarantines for AQUA, swaps for RRS)."""
    row_moves: int = 0
    """Unit row transfers (one read + one write each)."""
    evictions: int = 0
    victim_refreshes: int = 0
    busy_ns: float = 0.0
    stall_ns: float = 0.0
    epochs: int = 0


class MitigationScheme(abc.ABC):
    """Base class: epoch bookkeeping plus the ``access`` contract."""

    name = "abstract"

    def __init__(self, telemetry=None) -> None:
        self.stats = SchemeStats()
        self.refresh = RefreshScheduler()
        self.current_epoch = 0
        #: Shared observability sink; the null object keeps the
        #: uninstrumented path allocation-free (one attribute load and
        #: branch on ``telemetry.enabled`` per batch).
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        #: Last timestamp seen by ``access``/``access_batch``: gives
        #: time-less internal paths (table-row quarantines, tracker
        #: installs) a simulated-time stamp for their events.
        self.now_ns = 0.0
        #: Fault-injection sink (see :mod:`repro.faults`); the null
        #: object keeps un-faulted runs at one attribute load and branch
        #: per hook.  Two sites are handled generically here:
        #: ``refresh_postpone`` (the epoch boundary slips by up to
        #: 8 tREFI, the DDR4 postponement allowance) and
        #: ``tracker_drop`` (an ART entry is lost mid-epoch).
        self.faults = NULL_INJECTOR
        self._postpone_epoch = -1
        self._postpone_until_ns = 0.0
        self.postponed_refreshes = 0
        self.tracker_drops = 0

    def attach_faults(self, injector) -> None:
        """Wire a :class:`~repro.faults.FaultInjector` into the scheme.

        Separate from ``__init__`` so scheme factories built for clean
        runs can be reused by the chaos harness unchanged.  Subclasses
        extend this to thread the injector into owned structures.
        """
        self.faults = injector if injector is not None else NULL_INJECTOR

    @abc.abstractmethod
    def _translate(self, logical_row: int) -> Tuple[int, float, Optional[object]]:
        """Map a logical row to (physical row, lookup ns, outcome)."""

    @abc.abstractmethod
    def _mitigate(
        self, logical_row: int, physical_row: int, now_ns: float
    ) -> AccessResult:
        """Perform the scheme's mitigative action for a flagged row."""

    @abc.abstractmethod
    def _observe(self, physical_row: int) -> bool:
        """Feed the tracker; return True when mitigation must fire."""

    def _end_epoch(self, new_epoch: int) -> None:
        """Hook for epoch-boundary housekeeping (tracker reset etc.)."""
        self.current_epoch = new_epoch
        self.stats.epochs += 1

    def _sync_epoch(self, now_ns: float) -> None:
        self.now_ns = now_ns
        epoch = self.refresh.epoch_of(now_ns)
        if epoch != self.current_epoch:
            if self.faults.enabled and self._refresh_postponed(epoch, now_ns):
                return
            self._end_epoch(epoch)

    def _refresh_postponed(self, epoch: int, now_ns: float) -> bool:
        """Fault site ``refresh_postpone``: hold an epoch boundary open.

        DDR4 lets a controller postpone up to 8 refresh commands; the
        injected fault models the worst case of that allowance by
        keeping the previous epoch's tracker state live for 8 tREFI
        past the boundary.  Delaying the ART reset only *over*-counts
        rows (detection is never missed), so this degrades performance,
        not the security invariant.
        """
        if self._postpone_epoch == epoch:
            if now_ns < self._postpone_until_ns:
                return True
            return False
        if self.faults.inject(
            "refresh_postpone", ts_ns=now_ns, scheme=self.name, epoch=epoch
        ):
            self._postpone_epoch = epoch
            self._postpone_until_ns = now_ns + 8 * self.refresh.timing.trefi_ns
            self.postponed_refreshes += 1
            return True
        # Remember the decision so one boundary consumes one draw.
        self._postpone_epoch = epoch
        self._postpone_until_ns = now_ns
        return False

    def _maybe_drop_tracker(self, physical_row: int) -> None:
        """Fault site ``tracker_drop``: lose the ART entry for a row."""
        if self.faults.inject(
            "tracker_drop", ts_ns=self.now_ns,
            scheme=self.name, row=physical_row,
        ):
            tracker = getattr(self, "tracker", None)
            if tracker is not None and tracker.drop(physical_row):
                self.tracker_drops += 1

    def collect_metrics(self, telemetry) -> None:
        """Copy scheme statistics into the metrics registry.

        Registered as a snapshot-time collector so the hot path pays
        nothing; subclasses extend this with their own structures.
        """
        stats = self.stats
        registry = telemetry.registry
        scheme = self.name
        counters = (
            ("scheme_accesses_total", stats.accesses),
            ("scheme_migrations_total", stats.migrations),
            ("scheme_row_moves_total", stats.row_moves),
            ("scheme_evictions_total", stats.evictions),
            ("scheme_victim_refreshes_total", stats.victim_refreshes),
            ("scheme_busy_ns_total", stats.busy_ns),
            ("scheme_stall_ns_total", stats.stall_ns),
            ("scheme_epochs_total", stats.epochs),
        )
        for name, value in counters:
            registry.counter(name).set_total(value, scheme=scheme)
        if self.faults.enabled:
            registry.counter("fault_tracker_drops_total").set_total(
                self.tracker_drops, scheme=scheme
            )
            registry.counter("fault_postponed_refreshes_total").set_total(
                self.postponed_refreshes, scheme=scheme
            )

    def access(self, logical_row: int, now_ns: float) -> AccessResult:
        """Route one activation of ``logical_row`` at time ``now_ns``."""
        self._sync_epoch(now_ns)
        self.stats.accesses += 1
        physical, lookup_ns, outcome = self._translate(logical_row)
        if self.faults.enabled:
            self._maybe_drop_tracker(physical)
        if self._observe(physical):
            result = self._mitigate(logical_row, physical, now_ns)
        else:
            result = AccessResult(physical_row=physical)
        result.lookup_ns = lookup_ns
        result.lookup_outcome = outcome
        self.stats.busy_ns += result.busy_ns
        self.stats.stall_ns += result.stalled_ns
        if self.telemetry.enabled:
            self.telemetry.observe(
                "fpt_lookup_ns", lookup_ns, scheme=self.name
            )
        return result

    # ------------------------------------------------------------ batch path

    def _translate_batch(
        self, logical_row: int, n: int
    ) -> Tuple[int, float, Optional[object]]:
        """Batch translation hook; defaults to a single lookup.

        Schemes with lookup-statistics backends (AQUA's memory-mapped
        tables) override this to weight their counters by ``n``.
        """
        return self._translate(logical_row)

    def _observe_batch(self, physical_row: int, n: int) -> int:
        """Feed ``n`` activations to the tracker; return crossings.

        The default uses the scheme's ``tracker`` attribute when present
        (all tracker-based schemes), else loops over ``_observe``.
        """
        tracker = getattr(self, "tracker", None)
        if tracker is not None:
            return tracker.observe_batch(physical_row, n)
        return sum(1 for _ in range(n) if self._observe(physical_row))

    def access_batch(
        self, logical_row: int, n: int, now_ns: float
    ) -> AccessResult:
        """Route ``n`` back-to-back activations of ``logical_row``.

        Equivalent to ``n`` calls to :meth:`access` up to intra-batch
        interleaving (the performance sweeps use batches far smaller
        than any mitigation threshold, so at most one crossing occurs
        per batch in practice).
        """
        if n < 1:
            raise ValueError("batch size must be >= 1")
        self._sync_epoch(now_ns)
        self.stats.accesses += n
        physical, lookup_ns, outcome = self._translate_batch(logical_row, n)
        if self.faults.enabled:
            self._maybe_drop_tracker(physical)
        crossings = self._observe_batch(physical, n)
        if crossings == 0:
            result = AccessResult(physical_row=physical)
        else:
            busy = 0.0
            stall = 0.0
            extras: list = []
            refreshed: list = []
            evicted = False
            for _ in range(crossings):
                step = self._mitigate(logical_row, physical, now_ns)
                busy += step.busy_ns
                stall += step.stalled_ns
                extras.extend(step.extra_activations)
                refreshed.extend(step.refreshed_rows)
                evicted = evicted or step.evicted
                physical = step.physical_row
            result = AccessResult(
                physical_row=physical,
                busy_ns=busy,
                stalled_ns=stall,
                migrated=True,
                evicted=evicted,
                extra_activations=tuple(extras),
                refreshed_rows=tuple(refreshed),
            )
        result.lookup_ns = lookup_ns
        result.lookup_outcome = outcome
        self.stats.busy_ns += result.busy_ns
        self.stats.stall_ns += result.stalled_ns
        if self.telemetry.enabled:
            self.telemetry.observe(
                "fpt_lookup_ns", lookup_ns, scheme=self.name
            )
        return result

    # ------------------------------------------------------------ epoch path

    def access_epoch(
        self,
        rows: np.ndarray,
        counts: np.ndarray,
        start_ns: float,
        dt_ns: float,
    ) -> None:
        """Route one epoch's chunked activation stream.

        ``rows``/``counts`` are the trace's parallel int64 arrays; chunk
        ``i`` is stamped ``start_ns + dt_ns * (activations before it)``,
        exactly as the simulator's historical per-chunk loop did.

        This scalar loop *defines* the semantics: subclasses that
        override it with vectorized fast paths must produce bit-identical
        scheme state (the equivalence suite enforces this), and must
        fall back to this loop whenever faults or telemetry are
        attached, since those observe individual chunks.
        """
        access_batch = self.access_batch
        now = start_ns
        for row, count in iter_chunks(rows, counts):
            access_batch(row, count, now)
            now += count * dt_ns

    def _scalar_epoch(
        self,
        rows: np.ndarray,
        counts: np.ndarray,
        start_ns: float,
        dt_ns: float,
    ) -> None:
        """The scalar reference loop, callable from overrides as a fallback."""
        MitigationScheme.access_epoch(self, rows, counts, start_ns, dt_ns)

    def _epoch_fast_path_ok(self, rows: np.ndarray, counts: np.ndarray) -> bool:
        """Whether a vectorized epoch override may engage.

        Faults and telemetry hook individual chunk events, and the
        scalar path reports bounds/validation errors at the exact
        offending chunk; vectorized paths bail to the scalar loop in
        all those cases.
        """
        if self.faults.enabled or self.telemetry.enabled:
            return False
        if len(rows) == 0:
            return False
        if int(counts.min()) < 1:
            return False
        return 0 <= int(rows.min()) and int(rows.max()) < self.visible_rows

    def table_dram_busy_ns(self) -> float:
        """Channel time consumed by in-DRAM mapping-table accesses."""
        return 0.0

    @property
    @abc.abstractmethod
    def visible_rows(self) -> int:
        """Number of software-visible rows under this scheme."""

    def sram_bytes(self) -> int:
        """SRAM footprint of the scheme's mapping structures (not tracker)."""
        return 0

    def migrations_this_run(self) -> int:
        """Total mitigative actions since construction."""
        return self.stats.migrations
