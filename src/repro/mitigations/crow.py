"""CROW analytical model: copy-rows per subarray (Sec. VII-B, Table V).

CROW (Hassan et al., ISCA 2019) provisions spare *copy rows* inside each
512-row subarray and uses RowClone-style in-DRAM copies for migration.
Because copies cannot leave the subarray, an attacker who focuses all
activations on one subarray must be absorbed by that subarray's spare
rows alone.  The AQUA paper's security arithmetic:

* A bank supports at most ``ACTmax`` (~1.36 M) activations per window.
  With victim-movement CROW, each flagged aggressor consumes **two**
  copy rows (its two neighbouring victims move), so ``C`` copy rows
  tolerate ``C / 2`` aggressors, and the tolerated threshold is
  ``T_RH = ACTmax / (C / 2)`` -- Table V's rows.
* Conversely, to be secure at a *target* ``T_RH``, every row that can
  reach the conservative trigger ``T_RH / 2`` needs its mitigation:
  ``ACTmax / (T_RH / 2)`` aggressors, i.e. ``2 * ACTmax / (T_RH / 2)``
  copy rows for CROW (1060 % of a 512-row subarray at 1 K) and half
  that for CROW-Agg, which moves only the aggressor (530 %).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.dram.timing import DDR4Timing, DDR4_2400


SUBARRAY_ROWS = 512
"""Rows per subarray in CROW's design."""


@dataclass(frozen=True)
class CrowSizing:
    """One row of Table V."""

    copy_rows: int
    dram_overhead: float
    aggressors_tolerated: int
    trh_tolerated: float


class CrowModel:
    """Analytical CROW / CROW-Agg sizing and security model."""

    def __init__(
        self,
        timing: DDR4Timing = DDR4_2400,
        subarray_rows: int = SUBARRAY_ROWS,
        aggressor_only: bool = False,
    ) -> None:
        self.timing = timing
        self.subarray_rows = subarray_rows
        #: CROW moves the 2 victims of each aggressor; CROW-Agg moves
        #: only the aggressor itself (AQUA-style), halving the demand.
        self.rows_per_aggressor = 1 if aggressor_only else 2

    def aggressors_tolerated(self, copy_rows: int) -> int:
        """How many concurrent aggressors ``copy_rows`` can absorb."""
        if copy_rows < self.rows_per_aggressor:
            return 0
        return copy_rows // self.rows_per_aggressor

    def trh_tolerated(self, copy_rows: int) -> float:
        """Lowest Rowhammer threshold ``copy_rows`` protects against.

        An attacker splitting the bank's activation budget across more
        aggressors than the subarray can absorb wins; the break-even is
        ``ACTmax / aggressors`` (Table V).
        """
        aggressors = self.aggressors_tolerated(copy_rows)
        if aggressors == 0:
            return float("inf")
        return self.timing.act_max / aggressors

    def copy_rows_required(self, rowhammer_threshold: int) -> int:
        """Copy rows per subarray for security at ``rowhammer_threshold``.

        Uses the conservative trigger ``T_RH / 2`` (tracker-reset
        compensation), matching the paper's 1060 % claim at 1 K.
        """
        if rowhammer_threshold < 2:
            raise ValueError("threshold must be >= 2")
        effective = rowhammer_threshold // 2
        aggressors = -(-self.timing.act_max // effective)  # ceil division
        return aggressors * self.rows_per_aggressor

    def dram_overhead(self, copy_rows: int) -> float:
        """Copy rows as a fraction of the subarray's data rows."""
        return copy_rows / self.subarray_rows

    def dram_overhead_at(self, rowhammer_threshold: int) -> float:
        """DRAM overhead to be secure at ``rowhammer_threshold``.

        10.6x (1060 %) for CROW and 5.3x (530 %) for CROW-Agg at 1 K.
        """
        return self.dram_overhead(self.copy_rows_required(rowhammer_threshold))

    def sizing(self, copy_rows: int) -> CrowSizing:
        """Full Table V row for ``copy_rows``."""
        return CrowSizing(
            copy_rows=copy_rows,
            dram_overhead=self.dram_overhead(copy_rows),
            aggressors_tolerated=self.aggressors_tolerated(copy_rows),
            trh_tolerated=self.trh_tolerated(copy_rows),
        )


TABLE_V_COPY_ROWS = (8, 32, 128, 512)
"""Copy-row provisioning points evaluated in Table V."""


def crow_table_v(timing: DDR4Timing = DDR4_2400) -> List[CrowSizing]:
    """Regenerate Table V for the default victim-movement CROW."""
    model = CrowModel(timing=timing)
    return [model.sizing(copy_rows) for copy_rows in TABLE_V_COPY_ROWS]
