"""Randomized Row-Swap (RRS) baseline (Saileshwar et al., ASPLOS 2022).

RRS mitigates Rowhammer by swapping an aggressor row with a uniformly
random row once the aggressor crosses a swap threshold.  Because its
security is *probabilistic* -- an attacker may rediscover the row's new
location by chance (birthday-paradox attacks) -- the swap threshold must
sit well below the Rowhammer threshold: ``T_RRS = T_RH / 6`` (Sec. II-F).

Cost model, from Sec. IV-F of the AQUA paper:

* A first-time swap of ``X`` with random ``Y`` migrates **two** rows
  (two reads + two writes, 2.74 us of channel time).
* Re-swapping a row that is already part of a pair ⟨X, Y⟩ first restores
  both rows and then creates two new pairs ⟨X, A⟩ and ⟨Y, B⟩ -- **four**
  row migrations.

The Row Indirection Table (RIT) is kept entirely in SRAM (a CAT, like
MIRAGE) because RRS's security requires constant-latency lookups that
do not leak the swap destination.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.migration import MigrationCosts, publish_costs
from repro.dram.data import RowDataStore
from repro.dram.geometry import DramGeometry, DEFAULT_GEOMETRY
from repro.dram.power import DramEnergyCounters
from repro.dram.timing import DDR4Timing, DDR4_2400
from repro.mitigations.base import AccessResult, MitigationScheme
from repro.trackers import MisraGriesTracker


RRS_THRESHOLD_DIVISOR = 6
"""RRS swaps at one-sixth of the Rowhammer threshold (Sec. II-F)."""


class RandomizedRowSwap(MitigationScheme):
    """Functional + timing model of RRS on the shared scheme interface."""

    name = "rrs"

    def __init__(
        self,
        rowhammer_threshold: int = 1000,
        geometry: DramGeometry = DEFAULT_GEOMETRY,
        timing: DDR4Timing = DDR4_2400,
        seed: int = 0x5EED_077,
        track_data: bool = True,
        tracker_entries_per_bank: Optional[int] = None,
        telemetry=None,
    ) -> None:
        super().__init__(telemetry)
        if rowhammer_threshold < RRS_THRESHOLD_DIVISOR:
            raise ValueError(
                f"Rowhammer threshold must be >= {RRS_THRESHOLD_DIVISOR}"
            )
        self.rowhammer_threshold = rowhammer_threshold
        self.geometry = geometry
        self.timing = timing
        self.swap_threshold = max(1, rowhammer_threshold // RRS_THRESHOLD_DIVISOR)
        banks = geometry.banks_per_rank
        self.tracker = MisraGriesTracker(
            self.swap_threshold,
            num_banks=banks,
            bank_of=lambda row: row % banks,
            entries_per_bank=tracker_entries_per_bank,
        )
        self._rng = random.Random(seed)
        # RIT, functionally: logical -> physical (absent = identity),
        # with the inverse map for tracker-trigger resolution.
        self._map: Dict[int, int] = {}
        self._rev: Dict[int, int] = {}
        # Current swap partner of each swapped logical row.
        self._partner: Dict[int, int] = {}
        self.data = RowDataStore() if track_data else None
        self.energy = DramEnergyCounters()
        self._move_ns = timing.migration_ns(geometry.row_bytes)
        self.swaps = 0
        self.unswaps = 0
        if self.telemetry.enabled:
            self.tracker.attach_telemetry(
                self.telemetry, lambda: self.now_ns
            )
            publish_costs(
                self.telemetry,
                MigrationCosts.for_row(geometry.row_bytes, timing),
                scheme=self.name,
            )

    # ------------------------------------------------------------ scheme API

    @property
    def visible_rows(self) -> int:
        # RRS reserves no memory; every row stays software-visible.
        return self.geometry.rows_per_rank

    def _translate(self, logical_row: int) -> Tuple[int, float, Optional[object]]:
        if not 0 <= logical_row < self.visible_rows:
            raise ValueError(f"row {logical_row} outside memory")
        physical = self._map.get(logical_row, logical_row)
        # Constant-latency SRAM RIT lookup (3-4 cycles).
        return physical, 1.5, None

    def _observe(self, physical_row: int) -> bool:
        return self.tracker.observe(physical_row)

    def _mitigate(
        self, logical_row: int, physical_row: int, now_ns: float
    ) -> AccessResult:
        busy = 0.0
        moves = []
        reswap = logical_row in self._partner
        if reswap:
            # Re-swap of an already-swapped row: the existing pair is
            # first restored (2 row moves) and the aggressor is then
            # re-swapped (2 more), the 4-migration cost of Sec. IV-F.
            old_partner = self._unswap(logical_row)
            busy += 2 * self._move_ns
            moves.extend((logical_row, old_partner))
        busy += self._swap_with_random(logical_row, moves)
        self.stats.migrations += 1
        if self.telemetry.enabled:
            reason = "reswap" if reswap else "swap"
            self.telemetry.event(
                "migration", now_ns,
                scheme=self.name, row=logical_row,
                dest=self._map.get(logical_row, logical_row),
                reason=reason, busy_ns=busy,
            )
            self.telemetry.inc(
                "migrations_total", scheme=self.name, reason=reason
            )
        return AccessResult(
            physical_row=self._map.get(logical_row, logical_row),
            busy_ns=busy,
            migrated=True,
            extra_activations=tuple(moves),
        )

    def _end_epoch(self, new_epoch: int) -> None:
        super()._end_epoch(new_epoch)
        self.tracker.reset()

    def access_epoch(
        self,
        rows: np.ndarray,
        counts: np.ndarray,
        start_ns: float,
        dt_ns: float,
    ) -> None:
        """Fused epoch feed (exact-equivalent to the scalar loop).

        The RIT lookup is a dict probe and swaps draw from a seeded RNG
        in stream order, so the stream must be walked chunk-by-chunk --
        but the per-chunk :meth:`access_batch` framing (AccessResult
        construction, telemetry branches) is fused away, and an epoch
        with no swapped rows and a provably crossing-free stream
        settles as bulk counter arithmetic.
        """
        if not self._epoch_fast_path_ok(rows, counts):
            return self._scalar_epoch(rows, counts, start_ns, dt_ns)
        total = int(counts.sum())
        last_now = start_ns + dt_ns * (total - int(counts[-1]))
        epoch_of = self.refresh.epoch_of
        if epoch_of(start_ns) != epoch_of(last_now):
            return self._scalar_epoch(rows, counts, start_ns, dt_ns)
        self._sync_epoch(start_ns)
        tracker = self.tracker
        stats = self.stats
        if not self._map:
            uniq, inverse = np.unique(rows, return_inverse=True)
            totals = np.bincount(
                inverse, weights=counts, minlength=len(uniq)
            ).astype(np.int64)
            # With an empty RIT every translation is the identity, so
            # the logical totals are the physical totals the tracker
            # would see; a crossing-free verdict settles everything.
            if tracker.epoch_cannot_cross(uniq, totals):
                stats.accesses += total
                tracker.settle_epoch_counters(rows, counts)
                self.now_ns = last_now
                return
        kernel = tracker.chunk_kernel()
        map_get = self._map.get
        mitigate = self._mitigate
        now = start_ns
        for row, cnt in zip(rows.tolist(), counts.tolist()):
            stats.accesses += cnt
            physical = map_get(row, row)
            crossings = kernel(physical, cnt)
            if crossings:
                self.now_ns = now
                busy = 0.0
                for _ in range(crossings):
                    step = mitigate(row, physical, now)
                    busy += step.busy_ns
                    physical = step.physical_row
                stats.busy_ns += busy
            now += cnt * dt_ns
        self.now_ns = last_now

    # -------------------------------------------------------------- internals

    def _physical_of(self, logical_row: int) -> int:
        return self._map.get(logical_row, logical_row)

    def _set_mapping(self, logical_row: int, physical_row: int) -> None:
        if logical_row == physical_row:
            self._map.pop(logical_row, None)
            self._rev.pop(physical_row, None)
        else:
            self._map[logical_row] = physical_row
            self._rev[physical_row] = logical_row

    def logical_of(self, physical_row: int) -> int:
        """Logical row currently stored at ``physical_row``."""
        return self._rev.get(physical_row, physical_row)

    def _swap_rows(self, row_a: int, row_b: int) -> None:
        """Exchange the physical locations of logical rows a and b."""
        pa, pb = self._physical_of(row_a), self._physical_of(row_b)
        if self.data is not None:
            self.data.swap(pa, pb)
        self._set_mapping(row_a, pb)
        self._set_mapping(row_b, pa)
        self._partner[row_a] = row_b
        self._partner[row_b] = row_a
        self.energy.add_migration(self.geometry.row_bytes)
        self.energy.add_migration(self.geometry.row_bytes)
        self.stats.row_moves += 2
        self.swaps += 1

    def _unswap(self, logical_row: int) -> int:
        """Restore ``logical_row`` and its partner to their own homes."""
        partner = self._partner.pop(logical_row)
        self._partner.pop(partner, None)
        pa, pb = self._physical_of(logical_row), self._physical_of(partner)
        if self.data is not None:
            self.data.swap(pa, pb)
        # After the data swap both rows are back home; drop both mappings.
        self._map.pop(logical_row, None)
        self._rev.pop(pa, None)
        self._map.pop(partner, None)
        self._rev.pop(pb, None)
        self.energy.add_migration(self.geometry.row_bytes)
        self.energy.add_migration(self.geometry.row_bytes)
        self.stats.row_moves += 2
        self.unswaps += 1
        return partner

    def _swap_with_random(self, logical_row: int, moves: list) -> float:
        """Swap ``logical_row`` with a fresh random unswapped row."""
        while True:
            candidate = self._rng.randrange(self.visible_rows)
            if candidate != logical_row and candidate not in self._partner:
                break
        self._swap_rows(logical_row, candidate)
        moves.extend(
            (self._physical_of(logical_row), self._physical_of(candidate))
        )
        return 2 * self._move_ns

    def collect_metrics(self, telemetry) -> None:
        """Snapshot-time export of RRS swap-pair state."""
        super().collect_metrics(telemetry)
        registry = telemetry.registry
        registry.counter("rrs_swaps_total").set_total(
            self.swaps, scheme=self.name
        )
        registry.counter("rrs_unswaps_total").set_total(
            self.unswaps, scheme=self.name
        )
        registry.gauge("rrs_swapped_pairs").set(
            len(self._partner) // 2, scheme=self.name
        )
        self.tracker.collect_metrics(telemetry, scheme=self.name)

    def sram_bytes(self) -> int:
        """SRAM for the RIT at this threshold (see analysis.storage)."""
        from repro.analysis.storage import rrs_rit_bytes

        return rrs_rit_bytes(self.rowhammer_threshold, self.geometry)
