"""Victim-refresh mitigation (Graphene-style) -- the vulnerable baseline.

When the tracker flags an aggressor, the rows physically adjacent to it
(at the configured blast radius) are refreshed, restoring their charge
(Sec. II-D).  This defeats classic single/double-sided Rowhammer but has
two pitfalls the paper highlights (Table IV):

* It requires knowing the DRAM-internal row adjacency (``AddressMapper``
  here plays the role of that proprietary knowledge).
* The refreshes themselves are row activations, so they *hammer the
  victims' own neighbours*: the Half-Double attack turns the mitigation
  into an amplifier against rows at distance 2 from the aggressor.  The
  security oracle (:mod:`repro.analysis.security`) counts refreshes
  issued by this scheme as activations of the refreshed row, which is
  exactly the physics Half-Double exploits.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.dram.address import AddressMapper
from repro.dram.geometry import DramGeometry, DEFAULT_GEOMETRY
from repro.dram.timing import DDR4Timing, DDR4_2400
from repro.mitigations.base import AccessResult, MitigationScheme
from repro.trackers import MisraGriesTracker


class VictimRefresh(MitigationScheme):
    """Refresh rows adjacent to a flagged aggressor."""

    name = "victim-refresh"

    def __init__(
        self,
        rowhammer_threshold: int = 1000,
        geometry: DramGeometry = DEFAULT_GEOMETRY,
        timing: DDR4Timing = DDR4_2400,
        blast_radius: int = 1,
        tracker_entries_per_bank: Optional[int] = None,
        mapper: Optional[AddressMapper] = None,
        knows_mapping: bool = True,
        telemetry=None,
    ) -> None:
        super().__init__(telemetry)
        if blast_radius < 1:
            raise ValueError("blast_radius must be >= 1")
        self.geometry = geometry
        self.timing = timing
        self.blast_radius = blast_radius
        self.rowhammer_threshold = rowhammer_threshold
        #: Whether the memory controller knows the DRAM-internal row
        #: order.  Vendors do not disclose it (Table IV): without it,
        #: the defense refreshes the rows it *assumes* are adjacent,
        #: which under a scrambled mapping are the wrong rows.
        self.knows_mapping = knows_mapping
        # Same epoch-reset compensation as AQUA: trigger at T_RH / 2.
        self.threshold = max(1, rowhammer_threshold // 2)
        banks = geometry.banks_per_rank
        self.mapper = mapper if mapper is not None else AddressMapper(geometry)
        self.tracker = MisraGriesTracker(
            self.threshold,
            num_banks=banks,
            bank_of=self.mapper.bank_of,
            entries_per_bank=tracker_entries_per_bank,
        )

    @property
    def visible_rows(self) -> int:
        return self.geometry.rows_per_rank

    def _translate(self, logical_row: int) -> Tuple[int, float, Optional[object]]:
        if not 0 <= logical_row < self.visible_rows:
            raise ValueError(f"row {logical_row} outside memory")
        return logical_row, 0.0, None

    def _observe(self, physical_row: int) -> bool:
        return self.tracker.observe(physical_row)

    def _mitigate(
        self, logical_row: int, physical_row: int, now_ns: float
    ) -> AccessResult:
        victims = []
        neighbor_fn = (
            self.mapper.neighbors
            if self.knows_mapping
            else self.mapper.assumed_neighbors
        )
        for distance in range(1, self.blast_radius + 1):
            victims.extend(neighbor_fn(physical_row, distance))
        self.stats.victim_refreshes += len(victims)
        self.stats.migrations += 1
        if self.telemetry.enabled:
            self.telemetry.event(
                "victim_refresh", now_ns,
                scheme=self.name, aggressor=physical_row,
                victims=list(victims),
            )
            self.telemetry.inc(
                "victim_refreshes_total", len(victims), scheme=self.name
            )
        # Each victim refresh is one row activation's worth of bank time.
        busy = len(victims) * self.timing.trc_ns
        return AccessResult(
            physical_row=physical_row,
            busy_ns=busy,
            refreshed_rows=tuple(victims),
        )

    def _end_epoch(self, new_epoch: int) -> None:
        super()._end_epoch(new_epoch)
        self.tracker.reset()

    def access_epoch(
        self,
        rows: np.ndarray,
        counts: np.ndarray,
        start_ns: float,
        dt_ns: float,
    ) -> None:
        """Vectorized epoch feed (exact-equivalent to the scalar loop).

        Translation is the identity and refreshes never touch the
        tracker, so the tracker's array kernel can consume the whole
        stream up front; only the (sparse) crossing chunks then replay
        their mitigations in stream order, at their original
        timestamps, preserving the float accumulation order of
        ``stats.busy_ns`` (non-crossing chunks add exactly ``0.0``).
        """
        if not self._epoch_fast_path_ok(rows, counts):
            return self._scalar_epoch(rows, counts, start_ns, dt_ns)
        total = int(counts.sum())
        last_now = start_ns + dt_ns * (total - int(counts[-1]))
        epoch_of = self.refresh.epoch_of
        if epoch_of(start_ns) != epoch_of(last_now):
            return self._scalar_epoch(rows, counts, start_ns, dt_ns)
        self._sync_epoch(start_ns)
        tracker = self.tracker
        stats = self.stats
        stats.accesses += total
        uniq, inverse = np.unique(rows, return_inverse=True)
        totals = np.bincount(
            inverse, weights=counts, minlength=len(uniq)
        ).astype(np.int64)
        if tracker.epoch_cannot_cross(uniq, totals):
            tracker.settle_epoch_counters(rows, counts)
            self.now_ns = last_now
            return
        crossings = tracker.observe_epoch(rows, counts)
        hot = np.flatnonzero(crossings)
        if len(hot):
            acts_before = np.cumsum(counts) - counts
            mitigate = self._mitigate
            for row, n_cross, before in zip(
                rows[hot].tolist(),
                crossings[hot].tolist(),
                acts_before[hot].tolist(),
            ):
                now = start_ns + dt_ns * before
                self.now_ns = now
                busy = 0.0
                for _ in range(n_cross):
                    step = mitigate(row, row, now)
                    busy += step.busy_ns
                stats.busy_ns += busy
        self.now_ns = last_now
