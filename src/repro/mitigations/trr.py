"""TRR: in-DRAM Target Row Refresh, and why TRRespass defeats it.

Production "TRR" implementations (as reverse-engineered by TRRespass,
Frigo et al. 2020 [7]) keep only a handful of per-bank sampler entries
and refresh the neighbours of sampled aggressors during refresh
commands.  With N sampler entries, a pattern hammering more than N
aggressor rows in a bank cycles the sampler: some aggressor always
escapes sampling, and its victims never get refreshed -- the
*many-sided* TRRespass bypass.

This model captures exactly that failure mode: a small FIFO-ish sampler
of ``sampler_entries`` rows per bank, neighbour refreshes issued every
``refresh_burst`` activations for the currently-sampled rows.  It is
the motivating contrast for principled trackers (Graphene/Misra-Gries)
and, ultimately, for migration-based mitigation.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro.dram.address import AddressMapper
from repro.dram.geometry import DramGeometry, DEFAULT_GEOMETRY
from repro.dram.timing import DDR4Timing, DDR4_2400
from repro.mitigations.base import AccessResult, MitigationScheme


class TargetRowRefresh(MitigationScheme):
    """Sampler-based in-DRAM victim refresh (TRR)."""

    name = "trr"

    def __init__(
        self,
        geometry: DramGeometry = DEFAULT_GEOMETRY,
        timing: DDR4Timing = DDR4_2400,
        sampler_entries: int = 4,
        refresh_burst: int = 64,
        telemetry=None,
    ) -> None:
        super().__init__(telemetry)
        if sampler_entries < 1:
            raise ValueError("sampler_entries must be >= 1")
        if refresh_burst < 1:
            raise ValueError("refresh_burst must be >= 1")
        self.geometry = geometry
        self.timing = timing
        self.sampler_entries = sampler_entries
        self.refresh_burst = refresh_burst
        self.mapper = AddressMapper(geometry)
        # Per-bank sampler: insertion-ordered row -> activation count.
        self._samplers: Dict[int, OrderedDict] = {
            bank: OrderedDict() for bank in range(geometry.banks_per_rank)
        }
        self._since_refresh = 0

    @property
    def visible_rows(self) -> int:
        return self.geometry.rows_per_rank

    def _translate(self, logical_row: int) -> Tuple[int, float, Optional[object]]:
        if not 0 <= logical_row < self.visible_rows:
            raise ValueError(f"row {logical_row} outside memory")
        return logical_row, 0.0, None

    def _observe(self, physical_row: int) -> bool:
        sampler = self._samplers[self.mapper.bank_of(physical_row)]
        if physical_row in sampler:
            sampler[physical_row] += 1
        else:
            # FIFO replacement: a stream of more distinct aggressors
            # than entries cycles the sampler (the TRRespass weakness).
            if len(sampler) >= self.sampler_entries:
                sampler.popitem(last=False)
            sampler[physical_row] = 1
        self._since_refresh += 1
        if self._since_refresh >= self.refresh_burst:
            self._since_refresh = 0
            return True
        return False

    def _mitigate(
        self, logical_row: int, physical_row: int, now_ns: float
    ) -> AccessResult:
        # At each refresh opportunity, TRR refreshes the neighbours of
        # the hottest currently-sampled row in the accessed bank.
        sampler = self._samplers[self.mapper.bank_of(physical_row)]
        if not sampler:
            return AccessResult(physical_row=physical_row)
        target = max(sampler, key=sampler.get)
        sampler[target] = 0
        victims = tuple(self.mapper.neighbors(target))
        self.stats.victim_refreshes += len(victims)
        self.stats.migrations += 1
        return AccessResult(
            physical_row=physical_row,
            busy_ns=len(victims) * self.timing.trc_ns,
            refreshed_rows=victims,
        )

    def sampled_rows(self, bank: int) -> list:
        """Rows currently tracked by ``bank``'s sampler (for tests)."""
        return list(self._samplers[bank])
