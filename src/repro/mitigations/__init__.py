"""Rowhammer mitigation schemes sharing one scheme interface.

* :class:`~repro.mitigations.none.NoMitigation` -- the unprotected
  baseline against which slowdowns are normalised.
* :class:`~repro.core.aqua.AquaMitigation` -- the paper's contribution
  (lives in :mod:`repro.core`).
* :class:`~repro.mitigations.rrs.RandomizedRowSwap` -- RRS baseline.
* :class:`~repro.mitigations.victim_refresh.VictimRefresh` -- classic
  neighbour-refresh mitigation (vulnerable to Half-Double).
* :class:`~repro.mitigations.blockhammer.Blockhammer` -- rate-limiting
  baseline.
* :mod:`~repro.mitigations.crow` -- analytical CROW model (Table V).
"""

from repro.mitigations.base import AccessResult, MitigationScheme
from repro.mitigations.none import NoMitigation
from repro.mitigations.rrs import RandomizedRowSwap
from repro.mitigations.victim_refresh import VictimRefresh
from repro.mitigations.blockhammer import Blockhammer
from repro.mitigations.crow import CrowModel, crow_table_v
from repro.mitigations.para import Para, recommended_probability
from repro.mitigations.trr import TargetRowRefresh

__all__ = [
    "AccessResult",
    "MitigationScheme",
    "NoMitigation",
    "RandomizedRowSwap",
    "VictimRefresh",
    "Blockhammer",
    "CrowModel",
    "crow_table_v",
    "Para",
    "recommended_probability",
    "TargetRowRefresh",
]
