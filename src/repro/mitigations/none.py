"""Unprotected baseline: identity mapping, no tracker, no mitigation.

Used as the normalisation point for every slowdown figure, and as the
control in security experiments (attacks *should* succeed against it).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.mitigations.base import AccessResult, MitigationScheme


class NoMitigation(MitigationScheme):
    """A scheme that routes every access straight through."""

    name = "baseline"

    def __init__(
        self, total_rows: int = 2 * 1024 * 1024, telemetry=None
    ) -> None:
        super().__init__(telemetry)
        self.total_rows = total_rows

    @property
    def visible_rows(self) -> int:
        return self.total_rows

    def _translate(self, logical_row: int) -> Tuple[int, float, Optional[object]]:
        if not 0 <= logical_row < self.total_rows:
            raise ValueError(f"row {logical_row} outside memory")
        return logical_row, 0.0, None

    def _observe(self, physical_row: int) -> bool:
        return False

    def _observe_batch(self, physical_row: int, n: int) -> int:
        return 0

    def _mitigate(
        self, logical_row: int, physical_row: int, now_ns: float
    ) -> AccessResult:  # pragma: no cover - never reached
        raise AssertionError("NoMitigation never mitigates")
