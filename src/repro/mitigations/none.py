"""Unprotected baseline: identity mapping, no tracker, no mitigation.

Used as the normalisation point for every slowdown figure, and as the
control in security experiments (attacks *should* succeed against it).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.mitigations.base import AccessResult, MitigationScheme


class NoMitigation(MitigationScheme):
    """A scheme that routes every access straight through."""

    name = "baseline"

    def __init__(
        self, total_rows: int = 2 * 1024 * 1024, telemetry=None
    ) -> None:
        super().__init__(telemetry)
        self.total_rows = total_rows

    @property
    def visible_rows(self) -> int:
        return self.total_rows

    def _translate(self, logical_row: int) -> Tuple[int, float, Optional[object]]:
        if not 0 <= logical_row < self.total_rows:
            raise ValueError(f"row {logical_row} outside memory")
        return logical_row, 0.0, None

    def _observe(self, physical_row: int) -> bool:
        return False

    def _observe_batch(self, physical_row: int, n: int) -> int:
        return 0

    def _mitigate(
        self, logical_row: int, physical_row: int, now_ns: float
    ) -> AccessResult:  # pragma: no cover - never reached
        raise AssertionError("NoMitigation never mitigates")

    def access_epoch(
        self,
        rows: np.ndarray,
        counts: np.ndarray,
        start_ns: float,
        dt_ns: float,
    ) -> None:
        """With no tracker and identity translation, an epoch is pure
        bulk arithmetic: the access counter and the final timestamp."""
        if not self._epoch_fast_path_ok(rows, counts):
            return self._scalar_epoch(rows, counts, start_ns, dt_ns)
        total = int(counts.sum())
        last_now = start_ns + dt_ns * (total - int(counts[-1]))
        epoch_of = self.refresh.epoch_of
        if epoch_of(start_ns) != epoch_of(last_now):
            return self._scalar_epoch(rows, counts, start_ns, dt_ns)
        self._sync_epoch(start_ns)
        self.stats.accesses += total
        self.now_ns = last_now
