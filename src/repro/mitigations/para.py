"""PARA: Probabilistic Adjacent Row Activation (Kim et al., ISCA 2014).

The original trackerless mitigation: on *every* activation, with a
small probability ``p``, refresh one neighbour of the activated row.
An aggressor hammered ``A`` times leaves each neighbour un-refreshed
with probability ``(1 - p/2)^A``, which is negligible for
``p ~ 0.001`` at classic thresholds -- but the guarantee is
probabilistic, weakens as ``T_RH`` falls (fewer activations per attack,
fewer refresh chances), and, being victim-refresh based, PARA inherits
the Half-Double exposure (its refreshes hammer rows one step further
out).

Included as the classic point of comparison in the victim-refresh
family (Sec. II-D / VII-A context).
"""

from __future__ import annotations

import random
from typing import Optional, Tuple

from repro.dram.address import AddressMapper
from repro.dram.geometry import DramGeometry, DEFAULT_GEOMETRY
from repro.dram.timing import DDR4Timing, DDR4_2400
from repro.mitigations.base import AccessResult, MitigationScheme


def recommended_probability(rowhammer_threshold: int, target_failures: float = 1e-15) -> float:
    """Refresh probability for a desired per-window failure bound.

    Solves ``(1 - p/2)^T <= target`` for ``p``: the chance that a row
    hammered ``T`` times never triggers a neighbour refresh.
    """
    if rowhammer_threshold < 1:
        raise ValueError("threshold must be >= 1")
    if not 0 < target_failures < 1:
        raise ValueError("target_failures must be in (0, 1)")
    # (1 - p/2)^T = target  ->  p = 2 * (1 - target^(1/T))
    return min(1.0, 2.0 * (1.0 - target_failures ** (1.0 / rowhammer_threshold)))


class Para(MitigationScheme):
    """Trackerless probabilistic neighbour refresh."""

    name = "para"

    def __init__(
        self,
        rowhammer_threshold: int = 1000,
        geometry: DramGeometry = DEFAULT_GEOMETRY,
        timing: DDR4Timing = DDR4_2400,
        probability: Optional[float] = None,
        seed: int = 0xBA5E,
        telemetry=None,
    ) -> None:
        super().__init__(telemetry)
        self.geometry = geometry
        self.timing = timing
        self.rowhammer_threshold = rowhammer_threshold
        self.probability = (
            probability
            if probability is not None
            else recommended_probability(rowhammer_threshold)
        )
        if not 0.0 < self.probability <= 1.0:
            raise ValueError("probability must be in (0, 1]")
        self.mapper = AddressMapper(geometry)
        self._rng = random.Random(seed)

    @property
    def visible_rows(self) -> int:
        return self.geometry.rows_per_rank

    def _translate(self, logical_row: int) -> Tuple[int, float, Optional[object]]:
        if not 0 <= logical_row < self.visible_rows:
            raise ValueError(f"row {logical_row} outside memory")
        return logical_row, 0.0, None

    def _observe(self, physical_row: int) -> bool:
        # No tracker: each activation independently rolls the dice.
        return self._rng.random() < self.probability

    def _mitigate(
        self, logical_row: int, physical_row: int, now_ns: float
    ) -> AccessResult:
        neighbors = self.mapper.neighbors(physical_row)
        victim = neighbors[self._rng.randrange(len(neighbors))]
        self.stats.victim_refreshes += 1
        self.stats.migrations += 1
        return AccessResult(
            physical_row=physical_row,
            busy_ns=self.timing.trc_ns,
            refreshed_rows=(victim,),
        )

    def _observe_batch(self, physical_row: int, n: int) -> int:
        # Binomially distributed refresh count over the batch.
        return sum(
            1 for _ in range(n) if self._rng.random() < self.probability
        )
