"""CRA/Panopticon-style per-row counters stored in DRAM.

The oldest exact-tracking proposal (Kim et al., CAL 2014 [14];
Panopticon [4]): one activation counter per DRAM row, held in DRAM
itself because SRAM cannot afford two million counters.  Counting is
exact (no Misra-Gries estimation error, no spurious mitigations), but
every activation needs a counter read-modify-write, so a small SRAM
counter cache is essential; the miss traffic is the scheme's cost.

This tracker is exact by construction -- the property-based tests use
it as a reference -- and reports its DRAM counter traffic so the cost
argument can be evaluated (``counter_dram_accesses``).
"""

from __future__ import annotations

from collections import Counter, OrderedDict

import numpy as np

from repro.trackers.base import AggressorTracker, segmented_stream_crossings


class PerRowCounterTracker(AggressorTracker):
    """Exact per-row counters in DRAM behind a small SRAM cache."""

    def __init__(
        self,
        threshold: int,
        cache_entries: int = 2048,
        writeback: bool = True,
    ) -> None:
        super().__init__(threshold)
        if cache_entries < 1:
            raise ValueError("cache_entries must be >= 1")
        self.cache_entries = cache_entries
        self.writeback = writeback
        self._counts: Counter = Counter()
        self._cache: OrderedDict = OrderedDict()
        self.counter_dram_accesses = 0
        self.cache_hits = 0

    def _touch_cache(self, row_id: int) -> None:
        if row_id in self._cache:
            self._cache.move_to_end(row_id)
            self.cache_hits += 1
            return
        # Miss: fetch the counter from DRAM (one access; writeback of
        # the evicted dirty counter adds another).
        self.counter_dram_accesses += 1
        self._cache[row_id] = True
        if len(self._cache) > self.cache_entries:
            self._cache.popitem(last=False)
            if self.writeback:
                self.counter_dram_accesses += 1

    def observe(self, row_id: int) -> bool:
        self.observations += 1
        self._touch_cache(row_id)
        self._counts[row_id] += 1
        triggered = self._counts[row_id] % self.threshold == 0
        if triggered:
            self.note_trigger()
        return triggered

    def observe_batch(self, row_id: int, count: int) -> int:
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return 0
        self.observations += count
        self._touch_cache(row_id)
        before = self._counts[row_id]
        after = before + count
        self._counts[row_id] = after
        crossings = after // self.threshold - before // self.threshold
        self.triggers += crossings
        return crossings

    def observe_epoch(
        self, rows: np.ndarray, counts: np.ndarray
    ) -> np.ndarray:
        """Hybrid kernel: the LRU counter cache is stream-order
        dependent so it is touched chunk by chunk, while the exact
        counter math (order-free) settles as one segmented sum."""
        if len(rows) != len(counts):
            raise ValueError("rows and counts must align")
        if len(rows) == 0:
            return np.zeros(0, dtype=np.int64)
        if int(counts.min()) < 0:
            raise ValueError("count must be non-negative")
        out_len = len(rows)
        zero_mask = None
        if int(counts.min()) == 0:
            # observe_batch skips zero-count chunks entirely (no cache
            # touch); mirror that so LRU state matches the scalar path.
            zero_mask = counts > 0
            rows = rows[zero_mask]
            counts = counts[zero_mask]
            if len(rows) == 0:
                return np.zeros(out_len, dtype=np.int64)
        touch = self._touch_cache
        for row in rows.tolist():
            touch(row)
        crossings, uniq, totals = segmented_stream_crossings(
            rows, counts, self._counts, self.threshold
        )
        for row, total in zip(uniq.tolist(), totals.tolist()):
            self._counts[row] += total
        self.observations += int(counts.sum())
        self.triggers += int(crossings.sum())
        if zero_mask is not None:
            out = np.zeros(out_len, dtype=np.int64)
            out[zero_mask] = crossings
            return out
        return crossings

    def estimate(self, row_id: int) -> int:
        return self._counts[row_id]

    def reset(self) -> None:
        # Bulk-clearing two million in-DRAM counters is itself a cost
        # (Panopticon interleaves it with refresh); we model the state
        # change only.
        self._counts.clear()
        self._cache.clear()

    @property
    def dram_traffic_per_activation(self) -> float:
        """Average DRAM counter accesses per observed activation."""
        if self.observations == 0:
            return 0.0
        return self.counter_dram_accesses / self.observations
