"""Misra-Gries (Graphene-style) aggressor tracker.

This is the default ART of the paper (Sec. IV-B): a per-bank Misra-Gries
frequent-item summary with a spill counter, as used by Graphene and RRS.

Semantics, per activation of row ``r``:

1. If ``r`` has an entry, increment its counter.
2. Else if a slot is free, install ``r`` with count ``spill + 1``.
3. Else increment the spill counter; if the spill counter reaches the
   minimum entry count, evict a minimum entry and install ``r`` with
   count ``spill + 1``.

A row fires a mitigation whenever its estimate reaches its *next
trigger point* (every ``threshold`` estimated activations).  Two
faithful artefacts of this design matter to the evaluation:

* **Guaranteed detection**: Misra-Gries never under-counts, so a row
  reaching the threshold is always flagged (security property P1).
* **Spurious mitigations** (Sec. IV-F): a newly installed row inherits
  ``spill + 1`` as its estimate; under streaming workloads with many
  distinct rows (e.g. ``imagick``) the spill counter itself can exceed
  the threshold, so a brand-new row fires a mitigation immediately,
  without ever having been activated ``threshold`` times.

The number of entries follows Graphene's provisioning: a bank can issue
at most ``ACTmax`` activations per epoch, so at most ``ACTmax / T`` rows
can truly cross the threshold ``T``, and that many entries suffice.

Implementation notes: counters live in frequency buckets (the classic
LFU structure) so every operation is O(1) amortised, and
:meth:`MisraGriesBank.observe_batch` folds ``n`` back-to-back
activations of one row into O(1) work -- the simulator feeds tens of
millions of activations through this code.  The minimum-bucket pointer
only moves up within an epoch (counts only grow, and installs never
land below the previous minimum), keeping the walk-up amortised
constant.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.dram.timing import DDR4_2400
from repro.trackers.base import AggressorTracker, PerBankTracker


def graphene_entries(threshold: int, act_max: int = None) -> int:
    """Number of Misra-Gries entries per bank for a given threshold.

    Graphene provisions ``ACTmax / T`` entries so that every row that can
    reach ``T`` activations in an epoch has a dedicated counter.
    """
    if act_max is None:
        act_max = DDR4_2400.act_max
    if threshold < 1:
        raise ValueError("threshold must be >= 1")
    return max(1, act_max // threshold)


class MisraGriesBank(AggressorTracker):
    """Misra-Gries summary for one bank."""

    def __init__(self, threshold: int, capacity: int = None) -> None:
        super().__init__(threshold)
        if capacity is None:
            capacity = graphene_entries(threshold)
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.spill = 0
        self._counts: Dict[int, int] = {}
        # Frequency buckets: count -> {row: None} (dict used as an
        # ordered set for O(1) membership and pop).
        self._buckets: Dict[int, Dict[int, None]] = {}
        self._min_count = 0
        self.spurious_installs = 0

    # ------------------------------------------------------------- internals

    def _bucket_add(self, row_id: int, count: int) -> None:
        self._buckets.setdefault(count, {})[row_id] = None

    def _bucket_remove(self, row_id: int, count: int) -> None:
        bucket = self._buckets[count]
        del bucket[row_id]
        if not bucket:
            del self._buckets[count]

    def _advance_min(self) -> None:
        """Move the min pointer up to the next non-empty bucket."""
        while self._counts and self._min_count not in self._buckets:
            self._min_count += 1

    def _crossings(self, old: int, new: int) -> int:
        """Multiples of the threshold crossed moving from old to new."""
        return new // self.threshold - old // self.threshold

    def _install(self, row_id: int, base: int, count: int) -> int:
        """Install ``row_id`` at estimate ``count``; return crossings.

        ``base`` is the estimate's starting context (the spill value the
        entry inherited): a mitigation fires only if the estimate
        *crossed* a threshold multiple on the way from ``base`` to
        ``count``, matching Graphene's multiple-of-T trigger rule.  When
        ``count`` itself exceeds the threshold, any such firing is a
        spurious mitigation (Sec. IV-F): the row never truly received
        ``threshold`` activations.
        """
        self._counts[row_id] = count
        self._bucket_add(row_id, count)
        if len(self._counts) == 1 or count < self._min_count:
            self._min_count = count
        crossings = self._crossings(base, count)
        if crossings > 0 and count >= self.threshold and base > 0:
            self.spurious_installs += crossings
        if self._telemetry.enabled:
            self._telemetry.event(
                "tracker_install", self._clock(),
                row=row_id, estimate=count, spill=base,
                spurious=bool(crossings > 0 and base > 0),
            )
            self._telemetry.inc("tracker_installs_total")
        return crossings

    # -------------------------------------------------------------- interface

    def observe(self, row_id: int) -> bool:
        return self.observe_batch(row_id, 1) > 0

    def observe_batch(self, row_id: int, n: int) -> int:
        if n < 0:
            raise ValueError("count must be non-negative")
        if n == 0:
            return 0
        self.observations += n
        crossings = 0
        count = self._counts.get(row_id)
        if count is not None:
            self._bucket_remove(row_id, count)
            new_count = count + n
            self._counts[row_id] = new_count
            self._bucket_add(row_id, new_count)
            self._advance_min()
            crossings = self._crossings(count, new_count)
        elif len(self._counts) < self.capacity:
            crossings = self._install(row_id, self.spill, self.spill + n)
        else:
            self._advance_min()
            # Every miss increments the spill counter; the row installs
            # at the first miss where the spill reaches the current
            # minimum (evicting a minimum entry), and the batch's
            # remaining activations then increment the fresh entry.
            misses_until_install = max(1, self._min_count - self.spill)
            if n >= misses_until_install:
                self.spill += misses_until_install
                victim = next(iter(self._buckets[self._min_count]))
                self._bucket_remove(victim, self._min_count)
                del self._counts[victim]
                if self._telemetry.enabled:
                    self._telemetry.event(
                        "tracker_evict", self._clock(),
                        row=victim, estimate=self._min_count,
                        replaced_by=row_id,
                    )
                    self._telemetry.inc("tracker_evictions_total")
                self._advance_min()
                remaining = n - misses_until_install
                crossings = self._install(
                    row_id, self.spill, self.spill + 1 + remaining
                )
            else:
                self.spill += n
        if crossings:
            self.triggers += crossings
        return crossings

    def observe_fast(self, row_id: int, n: int) -> int:
        """Telemetry-free :meth:`observe_batch` with the helpers inlined.

        Callers (``PerBankTracker.chunk_kernel`` and the schemes'
        vectorized epoch paths) guarantee ``n >= 1`` and no attached
        telemetry.  This must mirror ``observe_batch`` *exactly* -- the
        equivalence suite compares full bank state after interleaved
        use of both entry points -- the only deltas are skipped
        telemetry branches and inlined bucket/min-pointer maintenance.
        """
        self.observations += n
        threshold = self.threshold
        counts = self._counts
        buckets = self._buckets
        count = counts.get(row_id)
        if count is not None:
            bucket = buckets[count]
            del bucket[row_id]
            if not bucket:
                del buckets[count]
            new_count = count + n
            counts[row_id] = new_count
            other = buckets.get(new_count)
            if other is None:
                buckets[new_count] = {row_id: None}
            else:
                other[row_id] = None
            min_count = self._min_count
            while min_count not in buckets:
                min_count += 1
            self._min_count = min_count
            crossings = new_count // threshold - count // threshold
            if crossings:
                self.triggers += crossings
            return crossings
        if len(counts) < self.capacity:
            base = self.spill
            new_count = base + n
        else:
            min_count = self._min_count
            while min_count not in buckets:
                min_count += 1
            spill = self.spill
            misses = min_count - spill
            if misses < 1:
                misses = 1
            if n < misses:
                self.spill = spill + n
                self._min_count = min_count
                return 0
            spill += misses
            self.spill = spill
            bucket = buckets[min_count]
            victim = next(iter(bucket))
            del bucket[victim]
            if not bucket:
                del buckets[min_count]
            del counts[victim]
            if counts:
                while min_count not in buckets:
                    min_count += 1
            self._min_count = min_count
            base = spill
            new_count = spill + 1 + (n - misses)
        # _install, inlined.
        counts[row_id] = new_count
        other = buckets.get(new_count)
        if other is None:
            buckets[new_count] = {row_id: None}
        else:
            other[row_id] = None
        if len(counts) == 1 or new_count < self._min_count:
            self._min_count = new_count
        crossings = new_count // threshold - base // threshold
        if crossings > 0:
            if new_count >= threshold and base > 0:
                self.spurious_installs += crossings
            self.triggers += crossings
            return crossings
        return 0

    def epoch_cannot_cross(self, unique_rows, unique_totals) -> bool:
        """No crossings possible: fresh bank, room for every distinct
        row (the spill counter never moves, so estimates stay exact),
        and no row total reaching the threshold.  Spurious installs
        need a moving spill counter, so they are excluded too.
        """
        if self._counts or self.spill:
            return False
        if len(unique_rows) > self.capacity:
            return False
        return bool((unique_totals < self.threshold).all())

    def sparse_feed_mask(
        self,
        unique_rows: np.ndarray,
        unique_totals: np.ndarray,
        reserve: int = 0,
    ) -> np.ndarray:
        """Rows safe to omit from a fresh, never-full bank.

        When the bank starts empty and every distinct row -- plus up to
        ``reserve`` extra installs the caller may still cause -- fits in
        the table, no eviction ever happens and the spill counter never
        moves, so each row's estimate is its exact count, independent
        of every other row.  Omitting sub-threshold rows then changes
        nothing observable: they could not cross, and their absence
        cannot alter any other row's estimate.  Otherwise (non-empty
        bank, moving spill, or capacity pressure) everything must
        stream.
        """
        if (
            self._counts
            or self.spill
            or len(unique_rows) + reserve > self.capacity
        ):
            return np.ones(len(unique_rows), dtype=bool)
        return unique_totals >= self.threshold

    def estimate(self, row_id: int) -> int:
        return self._counts.get(row_id, 0)

    def drop(self, row_id: int) -> bool:
        count = self._counts.get(row_id)
        if count is None:
            return False
        self._bucket_remove(row_id, count)
        del self._counts[row_id]
        self._advance_min()
        return True

    def min_count(self) -> int:
        """Smallest tracked estimate (0 when the table is empty)."""
        if not self._counts:
            return 0
        self._advance_min()
        return self._min_count

    def reset(self) -> None:
        self.spill = 0
        self._counts.clear()
        self._buckets.clear()
        self._min_count = 0

    def __len__(self) -> int:
        return len(self._counts)


class MisraGriesTracker(PerBankTracker):
    """Rank-level ART: one Misra-Gries summary per bank."""

    def __init__(
        self,
        threshold: int,
        num_banks: int = 16,
        bank_of: Callable[[int], int] = None,
        entries_per_bank: int = None,
    ) -> None:
        if bank_of is None:
            bank_of = lambda row: row % num_banks  # noqa: E731
        super().__init__(
            threshold,
            num_banks,
            bank_of,
            factory=lambda t: MisraGriesBank(t, capacity=entries_per_bank),
        )

    @property
    def spurious_installs(self) -> int:
        """Total spill-inherited threshold crossings across banks."""
        return sum(
            bank.spurious_installs
            for bank in self._banks.values()
        )

    def collect_metrics(self, telemetry, **labels) -> None:
        super().collect_metrics(telemetry, **labels)
        telemetry.registry.counter(
            "tracker_spurious_installs_total"
        ).set_total(self.spurious_installs, **labels)
        telemetry.registry.gauge("tracker_entries").set(
            sum(len(bank) for bank in self._banks.values()), **labels
        )
