"""Exact per-row activation tracker.

An idealised tracker with one counter per row, equivalent to CRA-style
per-row counters with no estimation error.  The paper uses an ideal
tracker for its Blockhammer evaluation (Sec. VII-B); we also use it as
the ground-truth oracle in tests (the Misra-Gries summary must never
report a count *lower* than this tracker).
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.trackers.base import AggressorTracker, segmented_stream_crossings


class ExactTracker(AggressorTracker):
    """One exact counter per row; triggers at every threshold multiple."""

    def __init__(self, threshold: int) -> None:
        super().__init__(threshold)
        self._counts: Counter = Counter()

    def observe(self, row_id: int) -> bool:
        self.observations += 1
        self._counts[row_id] += 1
        triggered = self._counts[row_id] % self.threshold == 0
        if triggered:
            self.note_trigger()
        return triggered

    def observe_batch(self, row_id: int, count: int) -> int:
        """Count all threshold multiples crossed by ``count`` activations."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return 0
        self.observations += count
        before = self._counts[row_id]
        after = before + count
        self._counts[row_id] = after
        crossings = after // self.threshold - before // self.threshold
        self.triggers += crossings
        return crossings

    def observe_epoch(
        self, rows: np.ndarray, counts: np.ndarray
    ) -> np.ndarray:
        """Array kernel: exact counters commute across rows, so the
        whole stream reduces to a segmented cumulative sum."""
        if len(rows) != len(counts):
            raise ValueError("rows and counts must align")
        if len(rows) == 0:
            return np.zeros(0, dtype=np.int64)
        if int(counts.min()) < 0:
            raise ValueError("count must be non-negative")
        out_len = len(rows)
        zero_mask = None
        if int(counts.min()) == 0:
            # observe_batch returns early on zero counts without even
            # materialising a Counter entry; mirror that.
            zero_mask = counts > 0
            rows = rows[zero_mask]
            counts = counts[zero_mask]
            if len(rows) == 0:
                return np.zeros(out_len, dtype=np.int64)
        crossings, uniq, totals = segmented_stream_crossings(
            rows, counts, self._counts, self.threshold
        )
        for row, total in zip(uniq.tolist(), totals.tolist()):
            self._counts[row] += total
        self.observations += int(counts.sum())
        self.triggers += int(crossings.sum())
        if zero_mask is not None:
            out = np.zeros(out_len, dtype=np.int64)
            out[zero_mask] = crossings
            return out
        return crossings

    def epoch_cannot_cross(
        self, unique_rows: np.ndarray, unique_totals: np.ndarray
    ) -> bool:
        """Exact counters cross only when a row's running total steps
        over a threshold multiple within the epoch."""
        if len(unique_rows) == 0:
            return True
        threshold = self.threshold
        if not self._counts:
            return bool((unique_totals < threshold).all())
        rem = np.fromiter(
            (self._counts[row] % threshold for row in unique_rows.tolist()),
            dtype=np.int64,
            count=len(unique_rows),
        )
        return bool((rem + unique_totals < threshold).all())

    def sparse_feed_mask(
        self,
        unique_rows: np.ndarray,
        unique_totals: np.ndarray,
        reserve: int = 0,
    ) -> np.ndarray:
        """Exact counters are independent per row, so a row may be
        settled out of the stream whenever its own running total cannot
        step over a threshold multiple (``reserve`` is irrelevant:
        there is no shared capacity)."""
        if len(unique_rows) == 0:
            return np.ones(0, dtype=bool)
        threshold = self.threshold
        if not self._counts:
            return unique_totals >= threshold
        rem = np.fromiter(
            (self._counts[row] % threshold for row in unique_rows.tolist()),
            dtype=np.int64,
            count=len(unique_rows),
        )
        return rem + unique_totals >= threshold

    def settle_epoch_counters(
        self, rows: np.ndarray, counts: np.ndarray
    ) -> None:
        """Bulk-settle a provably eventless epoch, counters included.

        Unlike estimators, exact counts are observable state (``estimate``
        and ``rows_at_or_above`` read them), so the per-row totals are
        applied, not skipped.
        """
        self.observations += int(counts.sum())
        uniq, inverse = np.unique(rows, return_inverse=True)
        totals = np.bincount(
            inverse, weights=counts, minlength=len(uniq)
        ).astype(np.int64)
        for row, total in zip(uniq.tolist(), totals.tolist()):
            self._counts[row] += total

    def estimate(self, row_id: int) -> int:
        return self._counts[row_id]

    def drop(self, row_id: int) -> bool:
        if row_id in self._counts:
            del self._counts[row_id]
            return True
        return False

    def reset(self) -> None:
        self._counts.clear()

    def rows_at_or_above(self, count: int) -> int:
        """Number of rows with at least ``count`` activations this epoch."""
        return sum(1 for value in self._counts.values() if value >= count)

    def max_count(self) -> int:
        """Highest per-row activation count this epoch (0 if none)."""
        return max(self._counts.values(), default=0)
