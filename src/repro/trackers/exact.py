"""Exact per-row activation tracker.

An idealised tracker with one counter per row, equivalent to CRA-style
per-row counters with no estimation error.  The paper uses an ideal
tracker for its Blockhammer evaluation (Sec. VII-B); we also use it as
the ground-truth oracle in tests (the Misra-Gries summary must never
report a count *lower* than this tracker).
"""

from __future__ import annotations

from collections import Counter


from repro.trackers.base import AggressorTracker


class ExactTracker(AggressorTracker):
    """One exact counter per row; triggers at every threshold multiple."""

    def __init__(self, threshold: int) -> None:
        super().__init__(threshold)
        self._counts: Counter = Counter()

    def observe(self, row_id: int) -> bool:
        self.observations += 1
        self._counts[row_id] += 1
        triggered = self._counts[row_id] % self.threshold == 0
        if triggered:
            self.note_trigger()
        return triggered

    def observe_batch(self, row_id: int, count: int) -> int:
        """Count all threshold multiples crossed by ``count`` activations."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return 0
        self.observations += count
        before = self._counts[row_id]
        after = before + count
        self._counts[row_id] = after
        crossings = after // self.threshold - before // self.threshold
        self.triggers += crossings
        return crossings

    def estimate(self, row_id: int) -> int:
        return self._counts[row_id]

    def drop(self, row_id: int) -> bool:
        if row_id in self._counts:
            del self._counts[row_id]
            return True
        return False

    def reset(self) -> None:
        self._counts.clear()

    def rows_at_or_above(self, count: int) -> int:
        """Number of rows with at least ``count`` activations this epoch."""
        return sum(1 for value in self._counts.values() if value >= count)

    def max_count(self) -> int:
        """Highest per-row activation count this epoch (0 if none)."""
        return max(self._counts.values(), default=0)
