"""Aggressor-row trackers (the ART of Fig. 4).

AQUA is compatible with any hardware tracker; this package provides the
three designs discussed in the paper:

* :class:`~repro.trackers.misra_gries.MisraGriesTracker` -- the default
  per-bank Misra-Gries summary used by Graphene and RRS (Sec. IV-B).
* :class:`~repro.trackers.hydra.HydraTracker` -- the storage-optimised
  hybrid SRAM/DRAM tracker (Appendix B).
* :class:`~repro.trackers.exact.ExactTracker` -- an idealised per-row
  counter tracker (used for the Blockhammer comparison, Sec. VII-B).

All trackers share the :class:`~repro.trackers.base.AggressorTracker`
interface: ``observe(row)`` is called once per activation with the
*physical* row address (after FPT translation, security property P3) and
returns ``True`` whenever that row crosses a multiple of the effective
threshold within the current epoch.
"""

from repro.trackers.base import AggressorTracker, PerBankTracker
from repro.trackers.misra_gries import MisraGriesBank, MisraGriesTracker
from repro.trackers.exact import ExactTracker
from repro.trackers.hydra import HydraTracker
from repro.trackers.per_row import PerRowCounterTracker
from repro.trackers.cbf import CountingBloomFilter, RowBlocker

__all__ = [
    "AggressorTracker",
    "PerBankTracker",
    "MisraGriesBank",
    "MisraGriesTracker",
    "ExactTracker",
    "HydraTracker",
    "PerRowCounterTracker",
    "CountingBloomFilter",
    "RowBlocker",
]
