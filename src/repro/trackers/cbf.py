"""Counting bloom filters and Blockhammer's dual-CBF RowBlocker.

Blockhammer (Yaglikci et al., HPCA 2021) does not keep exact per-row
counters: its *RowBlocker* estimates activation counts with a pair of
counting bloom filters.  A CBF never under-counts (every hash bucket is
incremented, the estimate is the minimum over buckets), so blacklisting
is conservative: a row past the threshold is always caught, at the cost
of occasional over-throttling from hash aliasing.

Because a CBF cannot delete, Blockhammer uses **two** filters in
rotating roles: one *active* (counting and consulted) and one *shadow*
(counting only).  Every half refresh-window the roles swap and the
newly-active filter's history already covers the previous half-window,
so estimates span a full window without ever clearing live state.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.cat import _mix
from repro.dram.timing import DDR4Timing, DDR4_2400

_M64 = (1 << 64) - 1


def _mix_array(values: np.ndarray, seed: int) -> np.ndarray:
    """Vectorized :func:`repro.core.cat._mix` over a uint64 array.

    uint64 multiplication wraps modulo 2**64, which is exactly the
    ``& _M64`` masking of the scalar version.
    """
    with np.errstate(over="ignore"):
        v = values.astype(np.uint64) ^ np.uint64(seed & _M64)
        v = v * np.uint64(0x9E3779B97F4A7C15)
        v ^= v >> np.uint64(29)
        v = v * np.uint64(0xBF58476D1CE4E5B9)
        v ^= v >> np.uint64(32)
    return v


class CountingBloomFilter:
    """k-hash counting bloom filter over row addresses."""

    def __init__(
        self, counters: int = 1024, hashes: int = 4, seed: int = 0xCBF0
    ) -> None:
        if counters < 1 or hashes < 1:
            raise ValueError("counters and hashes must be >= 1")
        self.num_counters = counters
        self.num_hashes = hashes
        self._seeds = [_mix(seed, i * 0x9E37) for i in range(hashes)]
        self._counters = np.zeros(counters, dtype=np.int64)

    def _buckets(self, row_id: int) -> List[int]:
        return [
            _mix(row_id, seed) % self.num_counters for seed in self._seeds
        ]

    def increment(self, row_id: int, amount: int = 1) -> int:
        """Count ``amount`` activations; return the new estimate."""
        if amount < 0:
            raise ValueError("amount must be non-negative")
        estimate = None
        for bucket in self._buckets(row_id):
            self._counters[bucket] += amount
            value = int(self._counters[bucket])
            estimate = value if estimate is None else min(estimate, value)
        return estimate

    def increment_batch(
        self, rows: np.ndarray, amounts: np.ndarray
    ) -> None:
        """Bulk-count ``amounts[i]`` activations of ``rows[i]``.

        Equivalent to calling :meth:`increment` per pair (increments
        commute), without returning the order-dependent intermediate
        estimates.  Hash buckets are computed vectorized and the
        scatter-add uses ``np.add.at`` so aliasing rows accumulate.
        """
        if len(rows) != len(amounts):
            raise ValueError("rows and amounts must align")
        if len(rows) == 0:
            return
        if int(amounts.min()) < 0:
            raise ValueError("amount must be non-negative")
        num = self.num_counters
        amounts64 = amounts.astype(np.int64)
        rows_u = rows.astype(np.uint64)
        for seed in self._seeds:
            buckets = (_mix_array(rows_u, seed) % np.uint64(num)).astype(
                np.int64
            )
            np.add.at(self._counters, buckets, amounts64)

    def estimate(self, row_id: int) -> int:
        """Never-undercounting activation estimate for ``row_id``."""
        return int(min(self._counters[b] for b in self._buckets(row_id)))

    def clear(self) -> None:
        """Reset all counters (role rotation)."""
        self._counters[:] = 0

    @property
    def sram_bytes(self) -> int:
        """2-byte counters."""
        return 2 * self.num_counters


class RowBlocker:
    """Dual-CBF activation estimator with half-window role rotation."""

    def __init__(
        self,
        counters: int = 1024,
        hashes: int = 4,
        timing: DDR4Timing = DDR4_2400,
        seed: int = 0xB10C,
    ) -> None:
        self.timing = timing
        self.interval_ns = timing.trefw_ns / 2.0
        self._filters = [
            CountingBloomFilter(counters, hashes, seed),
            CountingBloomFilter(counters, hashes, _mix(seed, 1)),
        ]
        self._active = 0
        self._epoch_half = 0
        self.rotations = 0

    def _sync(self, now_ns: float) -> None:
        half = int(now_ns // self.interval_ns)
        while self._epoch_half < half:
            self._epoch_half += 1
            # The shadow filter (which has been counting through the
            # ending half-window) becomes active; the old active filter
            # clears and starts shadow duty.
            self._filters[self._active].clear()
            self._active ^= 1
            self.rotations += 1

    def observe(self, row_id: int, now_ns: float, amount: int = 1) -> int:
        """Count an activation; return the active-filter estimate."""
        self._sync(now_ns)
        self._filters[self._active ^ 1].increment(row_id, amount)
        return self._filters[self._active].increment(row_id, amount)

    def estimate(self, row_id: int, now_ns: float) -> int:
        self._sync(now_ns)
        return self._filters[self._active].estimate(row_id)

    @property
    def sram_bytes(self) -> int:
        return sum(f.sram_bytes for f in self._filters)
