"""Tracker interface shared by every ART implementation.

The tracker contract, from the paper's security argument (Sec. VI-A,
property P1): the tracker must flag a row every time it crosses a
multiple of the *effective threshold* ``T = T_RH / 2`` within one epoch,
so that across the at-most-two tracking epochs that span any refresh
window, a row never reaches ``T_RH`` activations without a mitigation.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict

from repro.telemetry import NULL_TELEMETRY


def _zero_clock() -> float:
    """Default simulated-time source before telemetry is attached."""
    return 0.0


class AggressorTracker(abc.ABC):
    """Abstract aggressor-row tracker (the ART)."""

    def __init__(self, threshold: int) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = threshold
        self.observations = 0
        self.triggers = 0
        self._telemetry = NULL_TELEMETRY
        self._clock: Callable[[], float] = _zero_clock

    def attach_telemetry(
        self, telemetry, clock: Callable[[], float]
    ) -> None:
        """Wire the owning scheme's telemetry and simulated-time clock.

        Trackers have no notion of time; ``clock`` returns the scheme's
        last-seen access timestamp so install/evict events line up with
        the rest of the trace.
        """
        self._telemetry = telemetry
        self._clock = clock

    def collect_metrics(self, telemetry, **labels) -> None:
        """Snapshot-time export of the tracker's running statistics."""
        registry = telemetry.registry
        registry.counter("tracker_observations_total").set_total(
            self.observations, **labels
        )
        registry.counter("tracker_triggers_total").set_total(
            self.triggers, **labels
        )

    @abc.abstractmethod
    def observe(self, row_id: int) -> bool:
        """Record one activation of *physical* row ``row_id``.

        Returns ``True`` if this activation makes the row's (estimated)
        count reach a multiple of the effective threshold, i.e. the
        mitigation must quarantine/swap the row now.
        """

    def observe_batch(self, row_id: int, count: int) -> int:
        """Record ``count`` back-to-back activations of ``row_id``.

        Returns the number of threshold crossings.  The default loops
        over :meth:`observe`; subclasses override with O(1) batch math
        for the performance sweeps.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        return sum(1 for _ in range(count) if self.observe(row_id))

    @abc.abstractmethod
    def estimate(self, row_id: int) -> int:
        """Current estimated activation count for ``row_id`` (0 if untracked)."""

    def drop(self, row_id: int) -> bool:
        """Discard the tracker's state for ``row_id`` (fault injection).

        Models a lost/corrupted ART entry: the row's activation history
        vanishes and counting restarts from zero, the tracker-side fault
        the chaos harness injects via the ``tracker_drop`` site.  Returns
        whether an entry existed.  The default (for trackers without
        per-row state to drop) is a no-op.
        """
        return False

    @abc.abstractmethod
    def reset(self) -> None:
        """Clear all counts at an epoch boundary."""

    def note_trigger(self) -> None:
        """Bump the trigger statistic (called by subclasses)."""
        self.triggers += 1


class PerBankTracker(AggressorTracker):
    """Compose one tracker instance per bank into a rank-level ART.

    Graphene (and hence RRS and AQUA) provision the Misra-Gries summary
    per bank, because the activation budget ``ACTmax`` is a per-bank
    bound.  ``bank_of`` maps a physical row id to its bank.
    """

    def __init__(
        self,
        threshold: int,
        num_banks: int,
        bank_of: Callable[[int], int],
        factory: Callable[[int], AggressorTracker],
    ) -> None:
        super().__init__(threshold)
        if num_banks < 1:
            raise ValueError("num_banks must be >= 1")
        self._bank_of = bank_of
        self._banks: Dict[int, AggressorTracker] = {
            bank: factory(threshold) for bank in range(num_banks)
        }

    def attach_telemetry(
        self, telemetry, clock: Callable[[], float]
    ) -> None:
        super().attach_telemetry(telemetry, clock)
        for tracker in self._banks.values():
            tracker.attach_telemetry(telemetry, clock)

    def observe(self, row_id: int) -> bool:
        self.observations += 1
        triggered = self._banks[self._bank_of(row_id)].observe(row_id)
        if triggered:
            self.note_trigger()
        return triggered

    def observe_batch(self, row_id: int, count: int) -> int:
        self.observations += count
        crossings = self._banks[self._bank_of(row_id)].observe_batch(
            row_id, count
        )
        self.triggers += crossings
        return crossings

    def estimate(self, row_id: int) -> int:
        return self._banks[self._bank_of(row_id)].estimate(row_id)

    def drop(self, row_id: int) -> bool:
        return self._banks[self._bank_of(row_id)].drop(row_id)

    def reset(self) -> None:
        for tracker in self._banks.values():
            tracker.reset()

    def bank_tracker(self, bank: int) -> AggressorTracker:
        """The underlying tracker for ``bank`` (for tests/inspection)."""
        return self._banks[bank]
