"""Tracker interface shared by every ART implementation.

The tracker contract, from the paper's security argument (Sec. VI-A,
property P1): the tracker must flag a row every time it crosses a
multiple of the *effective threshold* ``T = T_RH / 2`` within one epoch,
so that across the at-most-two tracking epochs that span any refresh
window, a row never reaches ``T_RH`` activations without a mitigation.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict

import numpy as np

from repro.telemetry import NULL_TELEMETRY


def _zero_clock() -> float:
    """Default simulated-time source before telemetry is attached."""
    return 0.0


def segmented_stream_crossings(
    rows: np.ndarray,
    counts: np.ndarray,
    base: Dict[int, int],
    threshold: int,
) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """Per-chunk threshold crossings of an exact-counting stream.

    For exact per-row counters the crossings of chunk ``i`` depend only
    on the running total of ``rows[i]`` up to that chunk (cross-row
    order is irrelevant), so the whole stream reduces to a segmented
    cumulative sum: group chunks by row (stable argsort), accumulate
    within each group on top of ``base[row]``, and count the threshold
    multiples stepped over per chunk.

    Returns ``(crossings, unique_rows, unique_totals)`` where
    ``crossings[i]`` equals what ``observe_batch(rows[i], counts[i])``
    would have returned in stream order.
    """
    n = len(rows)
    uniq, inverse = np.unique(rows, return_inverse=True)
    starts = np.fromiter(
        (base[row] for row in uniq.tolist()), dtype=np.int64, count=len(uniq)
    )
    order = np.argsort(inverse, kind="stable")
    sorted_counts = counts[order].astype(np.int64)
    sorted_inverse = inverse[order]
    cum = np.cumsum(sorted_counts)
    seg_first = np.searchsorted(sorted_inverse, np.arange(len(uniq)))
    seg_offset = np.zeros(len(uniq), dtype=np.int64)
    seg_offset[1:] = cum[seg_first[1:] - 1]
    after = cum - seg_offset[sorted_inverse] + starts[sorted_inverse]
    before = after - sorted_counts
    crossings_sorted = after // threshold - before // threshold
    crossings = np.zeros(n, dtype=np.int64)
    crossings[order] = crossings_sorted
    totals = np.bincount(
        inverse, weights=counts, minlength=len(uniq)
    ).astype(np.int64)
    return crossings, uniq, totals


class AggressorTracker(abc.ABC):
    """Abstract aggressor-row tracker (the ART)."""

    def __init__(self, threshold: int) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = threshold
        self.observations = 0
        self.triggers = 0
        self._telemetry = NULL_TELEMETRY
        self._clock: Callable[[], float] = _zero_clock

    def attach_telemetry(
        self, telemetry, clock: Callable[[], float]
    ) -> None:
        """Wire the owning scheme's telemetry and simulated-time clock.

        Trackers have no notion of time; ``clock`` returns the scheme's
        last-seen access timestamp so install/evict events line up with
        the rest of the trace.
        """
        self._telemetry = telemetry
        self._clock = clock

    def collect_metrics(self, telemetry, **labels) -> None:
        """Snapshot-time export of the tracker's running statistics."""
        registry = telemetry.registry
        registry.counter("tracker_observations_total").set_total(
            self.observations, **labels
        )
        registry.counter("tracker_triggers_total").set_total(
            self.triggers, **labels
        )

    @abc.abstractmethod
    def observe(self, row_id: int) -> bool:
        """Record one activation of *physical* row ``row_id``.

        Returns ``True`` if this activation makes the row's (estimated)
        count reach a multiple of the effective threshold, i.e. the
        mitigation must quarantine/swap the row now.
        """

    def observe_batch(self, row_id: int, count: int) -> int:
        """Record ``count`` back-to-back activations of ``row_id``.

        Returns the number of threshold crossings.  The default loops
        over :meth:`observe`; subclasses override with O(1) batch math
        for the performance sweeps.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        return sum(1 for _ in range(count) if self.observe(row_id))

    def observe_epoch(
        self, rows: np.ndarray, counts: np.ndarray
    ) -> np.ndarray:
        """Record a whole epoch's (row, count) chunk stream at once.

        Returns the per-chunk crossings mask (int64, one entry per
        chunk): element ``i`` is the number of threshold crossings chunk
        ``i`` caused, exactly as ``observe_batch(rows[i], counts[i])``
        would have returned when called in stream order.  The default
        loops over :meth:`observe_batch`; subclasses override with
        array kernels where order permits.
        """
        if len(rows) != len(counts):
            raise ValueError("rows and counts must align")
        out = np.zeros(len(rows), dtype=np.int64)
        observe_batch = self.observe_batch
        for i, (row, count) in enumerate(
            zip(rows.tolist(), counts.tolist())
        ):
            crossings = observe_batch(row, count)
            if crossings:
                out[i] = crossings
        return out

    def chunk_kernel(self) -> Callable[[int, int], int]:
        """A per-chunk feed callable for fused scheme loops.

        Returns a ``kernel(row, count) -> crossings`` with exactly
        :meth:`observe_batch`'s semantics (counters included), possibly
        specialised for the telemetry-free case.  Schemes' vectorized
        epoch paths call this once per epoch and then invoke the kernel
        per chunk, skipping the dispatch layers of the scalar path.
        """
        return self.observe_batch

    def epoch_cannot_cross(
        self, unique_rows: np.ndarray, unique_totals: np.ndarray
    ) -> bool:
        """Whether an epoch with these per-row totals provably yields
        zero threshold crossings against the tracker's *current* state.

        Used by vectorized scheme paths to settle entire eventless
        epochs in bulk accounting.  Must err on the side of ``False``:
        a ``True`` here licenses skipping per-chunk tracker simulation
        for the epoch (internal estimator state may then diverge until
        the next epoch reset, but observable behaviour may not).
        The conservative default refuses.
        """
        return False

    def sparse_feed_mask(
        self,
        unique_rows: np.ndarray,
        unique_totals: np.ndarray,
        reserve: int = 0,
    ) -> np.ndarray:
        """Which distinct rows must stream through the per-chunk kernel.

        Returns a bool mask over ``unique_rows``: ``True`` rows must be
        fed chunk-by-chunk (they may cross, or their presence affects
        other rows' estimates); ``False`` rows provably produce zero
        crossings all epoch even if *omitted* from the stream, so a
        scheme may skip their kernel calls and bulk-settle them via
        :meth:`settle_epoch_counters`.  ``reserve`` is the caller's
        upper bound on extra distinct rows (quarantine destinations,
        table rows) that may be observed this epoch beyond
        ``unique_rows`` -- capacity-sensitive trackers must stay safe
        under that many additional installs.  The conservative default
        feeds everything.
        """
        return np.ones(len(unique_rows), dtype=bool)

    def settle_epoch_counters(
        self, rows: np.ndarray, counts: np.ndarray
    ) -> None:
        """Advance observation statistics for a bulk-settled epoch.

        Only valid for streams :meth:`epoch_cannot_cross` or
        :meth:`sparse_feed_mask` cleared for settling (zero crossings,
        so ``triggers`` is untouched).
        """
        self.observations += int(counts.sum())

    @abc.abstractmethod
    def estimate(self, row_id: int) -> int:
        """Current estimated activation count for ``row_id`` (0 if untracked)."""

    def drop(self, row_id: int) -> bool:
        """Discard the tracker's state for ``row_id`` (fault injection).

        Models a lost/corrupted ART entry: the row's activation history
        vanishes and counting restarts from zero, the tracker-side fault
        the chaos harness injects via the ``tracker_drop`` site.  Returns
        whether an entry existed.  The default (for trackers without
        per-row state to drop) is a no-op.
        """
        return False

    @abc.abstractmethod
    def reset(self) -> None:
        """Clear all counts at an epoch boundary."""

    def note_trigger(self) -> None:
        """Bump the trigger statistic (called by subclasses)."""
        self.triggers += 1


class PerBankTracker(AggressorTracker):
    """Compose one tracker instance per bank into a rank-level ART.

    Graphene (and hence RRS and AQUA) provision the Misra-Gries summary
    per bank, because the activation budget ``ACTmax`` is a per-bank
    bound.  ``bank_of`` maps a physical row id to its bank.
    """

    def __init__(
        self,
        threshold: int,
        num_banks: int,
        bank_of: Callable[[int], int],
        factory: Callable[[int], AggressorTracker],
    ) -> None:
        super().__init__(threshold)
        if num_banks < 1:
            raise ValueError("num_banks must be >= 1")
        self._bank_of = bank_of
        self._banks: Dict[int, AggressorTracker] = {
            bank: factory(threshold) for bank in range(num_banks)
        }

    def attach_telemetry(
        self, telemetry, clock: Callable[[], float]
    ) -> None:
        super().attach_telemetry(telemetry, clock)
        for tracker in self._banks.values():
            tracker.attach_telemetry(telemetry, clock)

    def observe(self, row_id: int) -> bool:
        self.observations += 1
        triggered = self._banks[self._bank_of(row_id)].observe(row_id)
        if triggered:
            self.note_trigger()
        return triggered

    def observe_batch(self, row_id: int, count: int) -> int:
        self.observations += count
        crossings = self._banks[self._bank_of(row_id)].observe_batch(
            row_id, count
        )
        self.triggers += crossings
        return crossings

    def observe_epoch(
        self, rows: np.ndarray, counts: np.ndarray
    ) -> np.ndarray:
        """Epoch feed through the per-bank kernels.

        Per-bank stream order equals global stream order restricted to
        the bank, so dispatching chunk-by-chunk through the fast bank
        kernels is exact; the rank-level counters are settled in bulk.
        """
        if len(rows) != len(counts):
            raise ValueError("rows and counts must align")
        out = np.zeros(len(rows), dtype=np.int64)
        kernel = self.chunk_kernel()
        if kernel is self.observe_batch:
            return super().observe_epoch(rows, counts)
        for i, (row, count) in enumerate(
            zip(rows.tolist(), counts.tolist())
        ):
            if count == 0:
                # observe_batch is a stateless no-op for empty chunks;
                # the fast kernels assume count >= 1.
                continue
            crossings = kernel(row, count)
            if crossings:
                out[i] = crossings
        return out

    def chunk_kernel(self) -> Callable[[int, int], int]:
        if self._telemetry.enabled:
            return self.observe_batch
        bank_of = self._bank_of
        banks = self._banks
        fast = {
            bank: getattr(tracker, "observe_fast", None)
            for bank, tracker in banks.items()
        }
        if any(fn is None for fn in fast.values()):
            return self.observe_batch

        def kernel(row_id: int, count: int) -> int:
            self.observations += count
            crossings = fast[bank_of(row_id)](row_id, count)
            if crossings:
                self.triggers += crossings
            return crossings

        return kernel

    def epoch_cannot_cross(
        self, unique_rows: np.ndarray, unique_totals: np.ndarray
    ) -> bool:
        """Partition the rows by bank and ask each bank tracker."""
        if len(unique_rows) == 0:
            return True
        bank_ids = np.fromiter(
            (self._bank_of(row) for row in unique_rows.tolist()),
            dtype=np.int64,
            count=len(unique_rows),
        )
        for bank, tracker in self._banks.items():
            mask = bank_ids == bank
            if not mask.any():
                continue
            if not tracker.epoch_cannot_cross(
                unique_rows[mask], unique_totals[mask]
            ):
                return False
        return True

    def sparse_feed_mask(
        self,
        unique_rows: np.ndarray,
        unique_totals: np.ndarray,
        reserve: int = 0,
    ) -> np.ndarray:
        """Partition by bank and delegate; ``reserve`` applies per bank."""
        if len(unique_rows) == 0:
            return np.ones(0, dtype=bool)
        out = np.ones(len(unique_rows), dtype=bool)
        bank_ids = np.fromiter(
            (self._bank_of(row) for row in unique_rows.tolist()),
            dtype=np.int64,
            count=len(unique_rows),
        )
        for bank, tracker in self._banks.items():
            mask = bank_ids == bank
            if not mask.any():
                continue
            out[mask] = tracker.sparse_feed_mask(
                unique_rows[mask], unique_totals[mask], reserve
            )
        return out

    def settle_epoch_counters(
        self, rows: np.ndarray, counts: np.ndarray
    ) -> None:
        """Bulk-add the observation counters for a skipped epoch.

        Pairs with a ``True`` :meth:`epoch_cannot_cross` verdict: when a
        scheme settles an entire eventless epoch without feeding the
        estimators, the observation statistics (rank- and bank-level)
        must still advance exactly as the scalar path's would have.
        """
        total = int(counts.sum())
        self.observations += total
        bank_ids = np.fromiter(
            (self._bank_of(row) for row in rows.tolist()),
            dtype=np.int64,
            count=len(rows),
        )
        per_bank = np.bincount(
            bank_ids, weights=counts, minlength=len(self._banks)
        ).astype(np.int64)
        for bank, tracker in self._banks.items():
            tracker.observations += int(per_bank[bank])

    def estimate(self, row_id: int) -> int:
        return self._banks[self._bank_of(row_id)].estimate(row_id)

    def drop(self, row_id: int) -> bool:
        return self._banks[self._bank_of(row_id)].drop(row_id)

    def reset(self) -> None:
        for tracker in self._banks.values():
            tracker.reset()

    def bank_tracker(self, bank: int) -> AggressorTracker:
        """The underlying tracker for ``bank`` (for tests/inspection)."""
        return self._banks[bank]
