"""Hydra: hybrid SRAM/DRAM aggressor tracker (Qureshi et al., ISCA 2022).

Appendix B of the AQUA paper pairs AQUA with Hydra to cut tracker SRAM
from 396 KB (Misra-Gries) to about 30 KB.  Hydra's structure:

* **Group Count Table (GCT)** -- SRAM counters shared by groups of rows.
  All activations in a group bump the shared counter until it reaches
  ``group_threshold``.
* **Row Count Table (RCT)** -- per-row counters *in DRAM*, initialised
  (to the group threshold) only when a group's shared counter saturates.
* **Row Count Cache (RCC)** -- a small SRAM cache of hot RCT entries so
  that most per-row counter updates avoid DRAM traffic.

The tracker is exact-from-above: the per-row estimate never undercounts,
so it satisfies the same detection guarantee (property P1) as
Misra-Gries.  The simulator charges a DRAM access penalty for RCC
misses; the count is exposed via ``rct_dram_accesses``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict

from repro.trackers.base import AggressorTracker


class HydraTracker(AggressorTracker):
    """Hybrid group/row counter tracker.

    Parameters
    ----------
    threshold:
        Effective mitigation threshold (counts trigger at multiples).
    rows_per_group:
        Rows sharing one GCT counter (Hydra uses 128 in its default).
    group_threshold:
        GCT count at which per-row tracking engages.  Hydra sets this
        to ``threshold / 2`` so no row can reach the threshold while
        hidden inside an untracked group.
    rcc_entries:
        Capacity of the row-count cache (LRU).
    """

    def __init__(
        self,
        threshold: int,
        rows_per_group: int = 128,
        group_threshold: int = None,
        rcc_entries: int = 4096,
    ) -> None:
        super().__init__(threshold)
        if rows_per_group < 1:
            raise ValueError("rows_per_group must be >= 1")
        if group_threshold is None:
            group_threshold = max(1, threshold // 2)
        if not 1 <= group_threshold <= threshold:
            raise ValueError("group_threshold must be in [1, threshold]")
        self.rows_per_group = rows_per_group
        self.group_threshold = group_threshold
        self.rcc_entries = rcc_entries
        self._gct: Dict[int, int] = {}
        self._rct: Dict[int, int] = {}
        self._rcc: OrderedDict = OrderedDict()
        self.rct_dram_accesses = 0
        self.rcc_hits = 0

    def _group_of(self, row_id: int) -> int:
        return row_id // self.rows_per_group

    def _rcc_touch(self, row_id: int) -> None:
        """Access ``row_id`` through the RCC, charging DRAM on a miss."""
        if row_id in self._rcc:
            self._rcc.move_to_end(row_id)
            self.rcc_hits += 1
            return
        self.rct_dram_accesses += 1
        self._rcc[row_id] = True
        if len(self._rcc) > self.rcc_entries:
            self._rcc.popitem(last=False)

    def observe(self, row_id: int) -> bool:
        self.observations += 1
        group = self._group_of(row_id)
        triggered = False
        if row_id in self._rct:
            self._rcc_touch(row_id)
            count = self._rct[row_id] + 1
            self._rct[row_id] = count
            triggered = count % self.threshold == 0
        else:
            count = self._gct.get(group, 0) + 1
            self._gct[group] = count
            if count >= self.group_threshold:
                # Engage per-row tracking: every row in the group starts
                # from the group count (a conservative over-estimate, so
                # detection is never missed).
                self._rct[row_id] = count
                self._rcc_touch(row_id)
                triggered = count % self.threshold == 0
        if triggered:
            self.note_trigger()
        return triggered

    def estimate(self, row_id: int) -> int:
        if row_id in self._rct:
            return self._rct[row_id]
        return self._gct.get(self._group_of(row_id), 0)

    def drop(self, row_id: int) -> bool:
        if row_id not in self._rct:
            return False
        del self._rct[row_id]
        self._rcc.pop(row_id, None)
        return True

    def reset(self) -> None:
        self._gct.clear()
        self._rct.clear()
        self._rcc.clear()

    @property
    def tracked_rows(self) -> int:
        """Number of rows with engaged per-row counters."""
        return len(self._rct)
