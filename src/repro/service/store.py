"""Persistent job store: an append-only, fsynced JSONL journal.

The store reuses the :mod:`repro.sim.checkpoint` durability discipline
-- one canonical JSON record per line, flushed *and* fsynced before the
caller proceeds -- applied to job lifecycles instead of run results:

::

    {"record":"header","version":1}
    {"record":"job","seq":1,"id":"j1-ab12...","digest":"...","spec":{...}}
    {"record":"state","id":"j1-ab12...","state":"running","attempts":1}
    {"record":"state","id":"j1-ab12...","state":"done",...}

Replay folds the records forward: a job's effective state is its last
``state`` record (or ``queued`` if none survived).  The server's crash
recovery re-enqueues every job whose effective state is ``queued`` or
``running`` -- *exactly once per job*, because jobs are keyed by ID and
duplicate ``job`` records (impossible in normal operation, possible
from a torn copy) collapse onto one entry.  A truncated trailing line,
the signature of a crash mid-write, is truncated away and counted,
exactly as :meth:`repro.sim.checkpoint.SweepCheckpoint.resume` does --
removed rather than merely skipped, so the first record appended after
restart can never glue onto the torn fragment and corrupt itself.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional

from repro.core.canon import canonical_dumps
from repro.errors import ConfigError, SimulationError
from repro.service.jobs import JOB_STATES, Job, JobSpec
from repro.sim.checkpoint import repair_torn_tail

STORE_VERSION = 1


class JobStore:
    """Durable journal of every submission and state transition."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.jobs: Dict[str, Job] = {}
        """Jobs by ID, in submission order (dict preserves insertion)."""
        self.next_seq = 1
        self.skipped_lines = 0
        self._fh = None

    # ------------------------------------------------------------ lifecycle

    @classmethod
    def open(cls, path: str) -> "JobStore":
        """Open ``path``, replaying it if it exists, creating it if not."""
        store = cls(path)
        if os.path.exists(path):
            # Remove (and count) a torn trailing line *before* reopening
            # in append mode, or the first post-restart record would be
            # glued onto the fragment and lost on the next replay.
            if repair_torn_tail(path):
                store.skipped_lines += 1
            store._replay()
            store._fh = open(path, "a", encoding="utf-8")
        else:
            store._fh = open(path, "w", encoding="utf-8")
            store._append({"record": "header", "version": STORE_VERSION})
        return store

    def _replay(self) -> None:
        header = None
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    self.skipped_lines += 1
                    continue
                if not isinstance(record, dict):
                    self.skipped_lines += 1
                    continue
                kind = record.get("record")
                if kind == "header":
                    header = record
                elif kind == "job":
                    self._replay_job(record)
                elif kind == "state":
                    self._replay_state(record)
                else:
                    self.skipped_lines += 1
        if header is None:
            raise ConfigError(
                f"job store {self.path!r} has no header record; not a "
                f"service store (or corrupted beyond recovery)"
            )
        if header.get("version") != STORE_VERSION:
            raise ConfigError(
                f"job store {self.path!r} is version "
                f"{header.get('version')}, this build reads version "
                f"{STORE_VERSION}"
            )

    def _replay_job(self, record: dict) -> None:
        try:
            spec = JobSpec.from_dict(record["spec"])
            job = Job(
                id=str(record["id"]),
                seq=int(record["seq"]),
                spec=spec,
                digest=str(record["digest"]),
            )
        except (KeyError, TypeError, ValueError):
            self.skipped_lines += 1
            return
        # Keyed by ID: a duplicated record collapses, keeping replay
        # exactly-once no matter how the file was produced.
        self.jobs[job.id] = job
        self.next_seq = max(self.next_seq, job.seq + 1)

    def _replay_state(self, record: dict) -> None:
        job = self.jobs.get(record.get("id"))
        state = record.get("state")
        if job is None or state not in JOB_STATES:
            self.skipped_lines += 1
            return
        job.state = state
        job.attempts = int(record.get("attempts", job.attempts))
        job.from_cache = bool(record.get("from_cache", job.from_cache))
        job.run_failures = int(
            record.get("run_failures", job.run_failures)
        )
        error = record.get("error")
        job.error = str(error) if error is not None else None

    # -------------------------------------------------------------- writing

    def _append(self, record: dict) -> None:
        fh = self._fh
        if fh is None:
            raise SimulationError(f"job store {self.path!r} is closed")
        fh.write(canonical_dumps(record))
        fh.write("\n")
        # Same contract as the sweep checkpoint: the record must be
        # durable before the server acts on it, or a crash could lose
        # an accepted job.
        fh.flush()
        os.fsync(fh.fileno())

    def append_job(self, job: Job) -> None:
        """Durably record one accepted submission."""
        self._append(
            {
                "record": "job",
                "seq": job.seq,
                "id": job.id,
                "digest": job.digest,
                "spec": job.spec.to_dict(),
            }
        )
        self.jobs[job.id] = job
        self.next_seq = max(self.next_seq, job.seq + 1)

    def append_state(self, job: Job) -> None:
        """Durably record ``job``'s current state fields."""
        self._append(
            {
                "record": "state",
                "id": job.id,
                "state": job.state,
                "attempts": job.attempts,
                "from_cache": job.from_cache,
                "run_failures": job.run_failures,
                "error": job.error,
            }
        )

    def get(self, job_id: str) -> Optional[Job]:
        return self.jobs.get(job_id)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JobStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = ["STORE_VERSION", "JobStore"]
