"""repro.service: the async simulation job server.

The first subsystem on the roadmap's serving pillar: instead of a
one-shot CLI process per experiment, a long-running server accepts
(scheme x workload) sweep submissions over HTTP, dedupes identical
work through a content-addressed result cache, journals every job to a
crash-safe store, and dispatches execution through the existing
:mod:`repro.parallel` process pool.

* :class:`~repro.service.jobs.JobSpec` / ``Job`` -- work identity and
  lifecycle; the spec's canonical digest is the cache key.
* :class:`~repro.service.queue.JobQueue` -- bounded priority queue
  with backpressure (HTTP 429 past ``max_depth``).
* :class:`~repro.service.cache.ResultCache` -- one canonical result
  document per digest; hits are byte-identical to cold runs.
* :class:`~repro.service.store.JobStore` -- fsynced JSONL journal;
  restart re-enqueues unfinished jobs exactly once.
* :class:`~repro.service.api.SimulationService` + ``ServiceServer`` --
  the orchestrator and its stdlib-only HTTP JSON API.
* :class:`~repro.service.client.ServiceClient` -- the blocking client
  behind ``repro submit``/``status``/``fetch``.

See DESIGN.md §10 for the architecture and durability guarantees.
"""

from repro.service.api import (
    BackgroundServer,
    ServiceServer,
    SimulationService,
    serve_async,
    wait_for_port,
)
from repro.service.cache import ResultCache
from repro.service.client import DEFAULT_PORT, ServiceClient
from repro.service.jobs import DEFAULT_PRIORITY, Job, JobSpec
from repro.service.queue import JobQueue
from repro.service.store import JobStore

__all__ = [
    "BackgroundServer",
    "DEFAULT_PORT",
    "DEFAULT_PRIORITY",
    "Job",
    "JobQueue",
    "JobSpec",
    "JobStore",
    "ResultCache",
    "ServiceClient",
    "ServiceServer",
    "SimulationService",
    "serve_async",
    "wait_for_port",
]
