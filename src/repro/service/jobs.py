"""Job specifications and job records for the simulation service.

A :class:`JobSpec` is the *identity* of a piece of simulation work: it
expands to the same (scheme x workload) :class:`~repro.parallel.RunPoint`
grid the CLI's ``sweep`` builds, and hashes -- via the canonical
serialization in :mod:`repro.core.canon` -- to the content-addressed
cache key.  Two submissions with equal specs are, by construction, the
same work, and the second is served from cache.

The cache key covers exactly the fields that determine the result
document: the run points (scheme, workloads, threshold, epochs, seed,
scheme kwargs) and the execution semantics that can change outcomes
(per-run timeout, retry budget, fault spec).  Scheduling knobs --
``priority``, ``max_attempts`` -- are deliberately excluded: they say
*when and how stubbornly* to run, not *what* to run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.canon import content_digest, short_digest
from repro.errors import ConfigError
from repro.faults import FaultSpec
from repro.parallel.executor import RunPoint, expand_grid
from repro.sim.runner import SCHEME_BUILDERS
from repro.workloads.mixes import all_mixes
from repro.workloads.table2 import SPEC_NAMES

CACHE_KEY_VERSION = 1
"""Bumped whenever result-document semantics change incompatibly, so a
stale cache can never serve bytes a newer simulator would not produce."""

DEFAULT_PRIORITY = 10
"""Lower numbers run first; the default sits mid-scale so urgent (0)
and bulk (>=20) submissions have room on both sides."""

JOB_STATES = ("queued", "running", "done", "failed")

_KNOWN_WORKLOADS: Optional[frozenset] = None


def known_workload_names() -> frozenset:
    """Every submittable workload name (SPEC + mixes), cached."""
    global _KNOWN_WORKLOADS
    if _KNOWN_WORKLOADS is None:
        _KNOWN_WORKLOADS = frozenset(SPEC_NAMES) | {
            mix.name for mix in all_mixes()
        }
    return _KNOWN_WORKLOADS


@dataclass(frozen=True)
class JobSpec:
    """One submittable unit of sweep work (a scheme over workloads)."""

    scheme: str
    workloads: Tuple[str, ...]
    trh: int = 1000
    epochs: int = 2
    seed: int = 0
    timeout_s: float = 0.0
    retries: int = 0
    priority: int = DEFAULT_PRIORITY
    max_attempts: int = 1
    fault_spec: Optional[FaultSpec] = None

    # ------------------------------------------------------------ validation

    def validate(self) -> None:
        """Reject malformed specs with field-and-range messages."""
        if self.scheme not in SCHEME_BUILDERS:
            raise ConfigError(
                f"unknown scheme {self.scheme!r}; choose from "
                f"{sorted(SCHEME_BUILDERS)}"
            )
        if not self.workloads:
            raise ConfigError("a job needs at least one workload")
        unknown = [
            name for name in self.workloads
            if name not in known_workload_names()
        ]
        if unknown:
            raise ConfigError(
                f"unknown workloads {unknown}; choose from {SPEC_NAMES} "
                f"or a mix name"
            )
        if len(set(self.workloads)) != len(self.workloads):
            raise ConfigError(
                f"duplicate workloads in {list(self.workloads)}; each "
                f"(scheme, workload) pair may appear once per job"
            )
        if self.trh < 2:
            raise ConfigError(f"trh must be >= 2 (got {self.trh})")
        if self.epochs < 1:
            raise ConfigError(f"epochs must be >= 1 (got {self.epochs})")
        if self.timeout_s < 0:
            raise ConfigError(
                f"timeout_s must be >= 0 (got {self.timeout_s})"
            )
        if self.retries < 0:
            raise ConfigError(f"retries must be >= 0 (got {self.retries})")
        if self.max_attempts < 1:
            raise ConfigError(
                f"max_attempts must be >= 1 (got {self.max_attempts})"
            )

    # ------------------------------------------------------------- expansion

    def points(self) -> List[RunPoint]:
        """The run-point grid, in the deterministic merge order."""
        return expand_grid(
            [self.scheme],
            list(self.workloads),
            thresholds=(self.trh,),
            epochs=self.epochs,
            seed=self.seed,
        )

    def meta(self) -> Dict[str, object]:
        """The results-document ``meta`` -- byte-compatible with the
        dict ``repro sweep`` embeds, which is what makes a fetched
        service result diff-clean against a direct CLI run."""
        return {
            "scheme": self.scheme,
            "trh": self.trh,
            "epochs": self.epochs,
            "seed": self.seed,
        }

    # ------------------------------------------------------------ cache key

    def cache_dict(self) -> dict:
        """The hashed identity (see the module docstring for scope)."""
        return {
            "version": CACHE_KEY_VERSION,
            "points": [point.to_dict() for point in self.points()],
            "exec": {
                "timeout_s": self.timeout_s,
                "retries": self.retries,
                "fault_spec": (
                    self.fault_spec.to_dict()
                    if self.fault_spec is not None
                    else None
                ),
            },
        }

    def cache_key(self) -> str:
        """Content digest keying this spec's result in the cache."""
        return content_digest(self.cache_dict())

    # --------------------------------------------------------- serialization

    def to_dict(self) -> dict:
        """JSON-ready dict (inverse of :meth:`from_dict`)."""
        return {
            "scheme": self.scheme,
            "workloads": list(self.workloads),
            "trh": self.trh,
            "epochs": self.epochs,
            "seed": self.seed,
            "timeout_s": self.timeout_s,
            "retries": self.retries,
            "priority": self.priority,
            "max_attempts": self.max_attempts,
            "fault_spec": (
                self.fault_spec.to_dict()
                if self.fault_spec is not None
                else None
            ),
        }

    @staticmethod
    def from_dict(data: dict) -> "JobSpec":
        """Rebuild a spec from :meth:`to_dict` output (or an API body)."""
        if not isinstance(data, dict):
            raise ConfigError(
                f"job spec must be an object (got {type(data).__name__})"
            )
        unknown = set(data) - {
            "scheme", "workloads", "trh", "epochs", "seed", "timeout_s",
            "retries", "priority", "max_attempts", "fault_spec",
        }
        if unknown:
            raise ConfigError(f"unknown job spec fields {sorted(unknown)}")
        if "scheme" not in data:
            raise ConfigError("job spec needs a 'scheme'")
        workloads = data.get("workloads")
        if not isinstance(workloads, (list, tuple)) or not workloads:
            raise ConfigError(
                "job spec needs a non-empty 'workloads' list"
            )
        fault = data.get("fault_spec")
        try:
            return JobSpec(
                scheme=str(data["scheme"]),
                workloads=tuple(str(name) for name in workloads),
                trh=int(data.get("trh", 1000)),
                epochs=int(data.get("epochs", 2)),
                seed=int(data.get("seed", 0)),
                timeout_s=float(data.get("timeout_s", 0.0)),
                retries=int(data.get("retries", 0)),
                priority=int(data.get("priority", DEFAULT_PRIORITY)),
                max_attempts=int(data.get("max_attempts", 1)),
                fault_spec=(
                    FaultSpec.from_dict(fault) if fault is not None else None
                ),
            )
        except (TypeError, ValueError) as exc:
            if isinstance(exc, ConfigError):
                raise
            raise ConfigError(f"malformed job spec: {exc}") from exc


@dataclass
class Job:
    """One submission's lifecycle record.

    The ID embeds the submission sequence number (unique per store) and
    the spec's short digest, so an operator reading logs can tell at a
    glance which jobs are the same work resubmitted.
    """

    id: str
    seq: int
    spec: JobSpec
    digest: str
    state: str = "queued"
    attempts: int = 0
    from_cache: bool = False
    error: Optional[str] = None
    run_failures: int = 0
    """Per-run failures recorded in the result document (a job can
    complete with a partial ledger, mirroring ``repro sweep``)."""
    extras: Dict[str, float] = field(default_factory=dict)
    """Operational timings (latency seconds); never part of results."""

    @staticmethod
    def create(seq: int, spec: JobSpec, digest: Optional[str] = None) -> "Job":
        digest = digest if digest is not None else spec.cache_key()
        return Job(
            id=f"j{seq}-{digest[:12]}",
            seq=seq,
            spec=spec,
            digest=digest,
        )

    def to_dict(self, include_spec: bool = True) -> dict:
        """JSON-ready dict for the store and the API."""
        data = {
            "id": self.id,
            "seq": self.seq,
            "digest": self.digest,
            "state": self.state,
            "attempts": self.attempts,
            "from_cache": self.from_cache,
            "error": self.error,
            "run_failures": self.run_failures,
        }
        if include_spec:
            data["spec"] = self.spec.to_dict()
        return data


__all__ = [
    "CACHE_KEY_VERSION",
    "DEFAULT_PRIORITY",
    "JOB_STATES",
    "Job",
    "JobSpec",
    "known_workload_names",
    "short_digest",
]
