"""The simulation job service: orchestrator + HTTP JSON API.

Architecture (DESIGN.md §10)::

    repro submit ──HTTP──▶ ServiceServer ──▶ SimulationService
                                               │  submit(): digest spec,
                                               │  consult ResultCache,
                                               │  journal to JobStore,
                                               │  enqueue in JobQueue
                                               ▼
                                          dispatcher task(s)
                                               │  await queue.get()
                                               ▼
                                    loop.run_in_executor (thread)
                                               │  run_sweep_parallel
                                               │  (ProcessPoolExecutor
                                               │   when jobs > 1)
                                               ▼
                                 canonical results document ──▶ cache

Three properties the tests and the ``service-smoke`` CI job pin down:

* **Cache correctness** -- a hit returns the byte-identical document a
  cold run would produce, because both sides are the same
  :func:`repro.parallel.results.render_results_document` bytes.
* **Exactly-once recovery** -- every accepted job is journaled before
  it is queued; restart re-enqueues ``queued``/``running`` jobs from
  the store (once per job ID) and completed work is never re-run.
* **Graceful drain** -- SIGTERM stops accepting, lets the in-flight
  job finish and persist, and leaves the backlog journaled for the
  next start.

The HTTP layer is a deliberately small HTTP/1.1 implementation over
``asyncio`` streams (stdlib only -- no new dependencies): one request
per connection, JSON in, JSON out, ``Connection: close``.
"""

from __future__ import annotations

import asyncio
import json
import signal
import socket
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple
from urllib.parse import urlsplit

from repro.errors import (
    ConfigError,
    JobNotFoundError,
    QueueFullError,
    ServiceError,
)
from repro.parallel.executor import run_sweep_parallel
from repro.parallel.results import (
    build_results_document,
    render_results_document,
)
from repro.service.cache import ResultCache
from repro.service.jobs import Job, JobSpec
from repro.service.queue import JobQueue
from repro.service.store import JobStore
from repro.telemetry import Telemetry

LATENCY_BUCKETS_S = (0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0)
"""Wall-clock job latency buckets (seconds) -- service scale, not the
nanosecond scale the simulation histograms use."""


def _now_ns() -> float:
    return float(time.time_ns())


class SimulationService:
    """Owns the queue, cache, store, and dispatch of simulation jobs."""

    def __init__(
        self,
        store: JobStore,
        cache: ResultCache,
        queue: JobQueue,
        jobs: int = 1,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.store = store
        self.cache = cache
        self.queue = queue
        self.jobs = jobs
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        # Pre-register the latency histogram with service-scale buckets
        # (telemetry.observe would otherwise create nanosecond ones).
        self.telemetry.registry.histogram(
            "service_job_latency_s",
            help="wall-clock seconds from dequeue to completion",
            buckets=LATENCY_BUCKETS_S,
        )
        self.draining = False

    # ----------------------------------------------------------- construction

    @classmethod
    def open(
        cls,
        store_path: str,
        cache_dir: str,
        max_depth: int = 64,
        jobs: int = 1,
        telemetry: Optional[Telemetry] = None,
    ) -> "SimulationService":
        """Open (or create) a service over durable state, recovering
        any jobs a previous process left unfinished."""
        telemetry = telemetry if telemetry is not None else Telemetry()
        service = cls(
            store=JobStore.open(store_path),
            cache=ResultCache(cache_dir, telemetry=telemetry),
            queue=JobQueue(max_depth=max_depth, telemetry=telemetry),
            jobs=jobs,
            telemetry=telemetry,
        )
        service.recover()
        return service

    def recover(self) -> int:
        """Re-enqueue journaled jobs that never finished (exactly once
        per job: the store collapses records by job ID)."""
        recovered = 0
        for job in self.store.jobs.values():
            if job.state in ("queued", "running"):
                job.state = "queued"
                self.queue.restore(job)
                recovered += 1
        if recovered:
            self.telemetry.inc(
                "service_jobs_recovered_total", float(recovered)
            )
            self.telemetry.event(
                "service_recovered", _now_ns(), jobs=recovered
            )
        return recovered

    # ------------------------------------------------------------ submission

    def submit(self, spec: JobSpec) -> Job:
        """Accept one submission: cache-hit instantly or enqueue.

        Raises :class:`~repro.errors.ConfigError` for malformed specs
        and :class:`~repro.errors.QueueFullError` when the queue is at
        ``max_depth`` (nothing is journaled in either case -- a refused
        submission leaves no trace to recover).
        """
        spec.validate()
        digest = spec.cache_key()
        cached = self.cache.get(digest)
        if cached is None and self.queue.full:
            raise QueueFullError(
                f"job queue is full ({self.queue.depth}/"
                f"{self.queue.max_depth} deep); retry after the backlog "
                f"drains"
            )
        job = Job.create(self.store.next_seq, spec, digest=digest)
        self.store.append_job(job)
        self.telemetry.inc("service_jobs_submitted_total")
        self.telemetry.event(
            "job_submitted", _now_ns(), job=job.id, digest=digest[:16],
            priority=spec.priority,
        )
        if cached is not None:
            job.state = "done"
            job.from_cache = True
            self.store.append_state(job)
            self.telemetry.inc("service_jobs_completed_total", state="done")
            self.telemetry.event(
                "job_cached", _now_ns(), job=job.id, digest=digest[:16]
            )
            return job
        self.queue.put_nowait(job)
        return job

    # -------------------------------------------------------------- dispatch

    def _run_blocking(self, spec: JobSpec) -> Tuple[str, int]:
        """Execute one job's sweep (worker-thread side).

        Returns ``(document_text, failure_count)``.  Runs through the
        existing :func:`~repro.parallel.run_sweep_parallel` bridge:
        ``jobs > 1`` fans out to its ProcessPoolExecutor, and the
        deterministic merge means the rendered document is identical
        to the direct CLI run's.
        """
        points = spec.points()
        report = run_sweep_parallel(
            points,
            jobs=self.jobs,
            fault_spec=spec.fault_spec,
            timeout_s=spec.timeout_s,
            retries=spec.retries,
        )
        document = build_results_document(spec.meta(), points, report)
        return render_results_document(document), len(report.failures)

    async def _execute(self, job: Job) -> None:
        """Run one dequeued job to a terminal (or requeued) state."""
        job.state = "running"
        job.attempts += 1
        self.store.append_state(job)
        self.telemetry.event(
            "job_started", _now_ns(), job=job.id, attempt=job.attempts
        )
        started = time.monotonic()
        loop = asyncio.get_running_loop()
        try:
            text, failures = await loop.run_in_executor(
                None, self._run_blocking, job.spec
            )
        except Exception as exc:  # noqa: BLE001 -- ledgered, not fatal
            self._conclude(job, error=f"{type(exc).__name__}: {exc}")
            return
        finally:
            latency = time.monotonic() - started
            self.telemetry.observe("service_job_latency_s", latency)
            job.extras["latency_s"] = latency
        if failures:
            self._conclude(
                job,
                error=f"{failures} of {len(job.spec.points())} run(s) "
                      f"failed (see the failure ledger)",
                run_failures=failures,
                text=text,
            )
            return
        # Success: the document becomes the content-addressed truth for
        # this spec.  put() is atomic, so concurrent dispatchers racing
        # on the same digest simply overwrite with identical bytes.
        self.cache.put(job.digest, text)
        job.state = "done"
        job.error = None
        self.store.append_state(job)
        self.telemetry.inc("service_jobs_completed_total", state="done")
        self.telemetry.event(
            "job_completed", _now_ns(), job=job.id,
            latency_s=round(job.extras.get("latency_s", 0.0), 6),
        )

    def _conclude(
        self,
        job: Job,
        error: str,
        run_failures: int = 0,
        text: Optional[str] = None,
    ) -> None:
        """Map a failed attempt to retry-or-fail (the job-level mirror
        of the runner's worker-level fault tolerance)."""
        job.run_failures = run_failures
        if job.attempts < job.spec.max_attempts:
            job.state = "queued"
            job.error = error
            self.store.append_state(job)
            self.telemetry.inc("service_jobs_retried_total")
            self.telemetry.event(
                "job_retried", _now_ns(), job=job.id, attempt=job.attempts
            )
            try:
                self.queue.put_nowait(job)
            except QueueFullError:
                job.state = "failed"
                job.error = f"{error} (retry refused: queue full)"
                self.store.append_state(job)
                self.telemetry.inc(
                    "service_jobs_completed_total", state="failed"
                )
            return
        job.state = "failed"
        job.error = error
        if text is not None and run_failures:
            # A partial document (some runs failed) is still useful for
            # debugging, but it must never enter the dedup namespace:
            # a resubmission of this spec has to re-run the work, not
            # be served a document that records failures.
            self.cache.put_partial(job.digest, text)
        self.store.append_state(job)
        self.telemetry.inc("service_jobs_completed_total", state="failed")
        self.telemetry.event(
            "job_failed", _now_ns(), job=job.id, error=error[:120]
        )

    async def dispatcher(self, stop: asyncio.Event) -> None:
        """Pull jobs until ``stop`` is set; never abandons a running job."""
        while not stop.is_set():
            get_task = asyncio.ensure_future(self.queue.get())
            stop_task = asyncio.ensure_future(stop.wait())
            try:
                await asyncio.wait(
                    {get_task, stop_task},
                    return_when=asyncio.FIRST_COMPLETED,
                )
            except asyncio.CancelledError:
                get_task.cancel()
                stop_task.cancel()
                raise
            if get_task.done() and not get_task.cancelled():
                stop_task.cancel()
                await self._execute(get_task.result())
            else:
                get_task.cancel()

    # --------------------------------------------------------------- queries

    def job(self, job_id: str) -> Job:
        job = self.store.get(job_id)
        if job is None:
            raise JobNotFoundError(f"no job {job_id!r}")
        return job

    def list_jobs(self) -> List[Job]:
        return list(self.store.jobs.values())

    def result_text(self, job_id: str) -> str:
        """The result document for a finished job (verbatim bytes)."""
        job = self.job(job_id)
        if job.state in ("queued", "running"):
            raise ServiceError(
                f"job {job_id} is {job.state}; result not available yet"
            )
        text = self.cache.peek(job.digest)
        if text is None:
            # Failed jobs may have left a partial ledger for debugging.
            text = self.cache.peek_partial(job.digest)
        if text is None:
            raise JobNotFoundError(
                f"job {job_id} has no stored result"
                + (f" (state {job.state}: {job.error})" if job.error else "")
            )
        return text

    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for job in self.store.jobs.values():
            counts[job.state] = counts.get(job.state, 0) + 1
        return counts

    def metrics_snapshot(self) -> Dict[str, float]:
        return self.telemetry.registry.snapshot()

    def close(self) -> None:
        self.store.close()


# ---------------------------------------------------------------- HTTP layer


_STATUS_TEXT = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    429: "Too Many Requests",
    500: "Internal Server Error",
}

MAX_BODY_BYTES = 1 << 20  # a spec is tiny; anything bigger is abuse

REQUEST_DEADLINE_S = 10.0
"""Wall-clock budget to read one full request (line + headers + body)."""


def _response(
    status: int, body: bytes, content_type: str = "application/json"
) -> bytes:
    head = (
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    return head.encode("ascii") + body


def _json_response(status: int, payload: dict) -> bytes:
    return _response(
        status, (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    )


class ServiceServer:
    """Minimal asyncio HTTP server exposing a :class:`SimulationService`."""

    def __init__(
        self,
        service: SimulationService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------- plumbing

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            payload = await self._respond(reader)
        except Exception as exc:  # noqa: BLE001 -- never kill the server
            payload = _json_response(
                500, {"error": f"{type(exc).__name__}: {exc}"}
            )
        try:
            writer.write(payload)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            writer.close()

    async def _respond(self, reader: asyncio.StreamReader) -> bytes:
        # One deadline covers the whole read (request line, headers,
        # body): a client that stalls at any point -- slow-loris style
        # -- cannot pin a handler coroutine forever.
        try:
            return await asyncio.wait_for(
                self._read_and_route(reader), timeout=REQUEST_DEADLINE_S
            )
        except asyncio.TimeoutError:
            return _json_response(400, {"error": "request timed out"})

    async def _read_and_route(self, reader: asyncio.StreamReader) -> bytes:
        request_line = await reader.readline()
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            return _json_response(400, {"error": "malformed request line"})
        method, target, _version = parts
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return _json_response(
                        400, {"error": "bad Content-Length"}
                    )
        if content_length < 0:
            return _json_response(400, {"error": "bad Content-Length"})
        if content_length > MAX_BODY_BYTES:
            return _json_response(400, {"error": "request body too large"})
        body = (
            await reader.readexactly(content_length)
            if content_length
            else b""
        )
        path = urlsplit(target).path
        return self._route(method.upper(), path, body)

    # -------------------------------------------------------------- routing

    def _route(self, method: str, path: str, body: bytes) -> bytes:
        service = self.service
        if path == "/v1/healthz" and method == "GET":
            return _json_response(
                200,
                {
                    "status": "draining" if service.draining else "ok",
                    "queue_depth": service.queue.depth,
                    "jobs": service.counts(),
                },
            )
        if path == "/v1/metrics" and method == "GET":
            return _json_response(
                200, {"metrics": service.metrics_snapshot()}
            )
        if path == "/v1/jobs":
            if method == "POST":
                return self._submit(body)
            if method == "GET":
                return _json_response(
                    200,
                    {
                        "jobs": [
                            job.to_dict(include_spec=False)
                            for job in service.list_jobs()
                        ]
                    },
                )
            return _json_response(405, {"error": f"{method} not allowed"})
        if path.startswith("/v1/jobs/"):
            rest = path[len("/v1/jobs/"):]
            if method != "GET":
                return _json_response(405, {"error": f"{method} not allowed"})
            if rest.endswith("/result"):
                return self._result(rest[: -len("/result")].rstrip("/"))
            return self._job(rest)
        return _json_response(404, {"error": f"no route {method} {path}"})

    def _submit(self, body: bytes) -> bytes:
        if self.service.draining:
            return _json_response(
                429, {"error": "server is draining; resubmit after restart"}
            )
        try:
            data = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, ValueError):
            return _json_response(400, {"error": "body is not valid JSON"})
        try:
            spec = JobSpec.from_dict(
                data.get("spec", data) if isinstance(data, dict) else data
            )
            job = self.service.submit(spec)
        except ConfigError as exc:
            return _json_response(400, {"error": str(exc)})
        except QueueFullError as exc:
            return _json_response(429, {"error": str(exc)})
        status = 200 if job.from_cache else 201
        return _json_response(
            status, {"job": job.to_dict(), "cached": job.from_cache}
        )

    def _job(self, job_id: str) -> bytes:
        try:
            job = self.service.job(job_id)
        except JobNotFoundError as exc:
            return _json_response(404, {"error": str(exc)})
        return _json_response(200, {"job": job.to_dict()})

    def _result(self, job_id: str) -> bytes:
        try:
            text = self.service.result_text(job_id)
        except JobNotFoundError as exc:
            return _json_response(404, {"error": str(exc)})
        except ServiceError as exc:
            return _json_response(409, {"error": str(exc)})
        return _response(200, text.encode("utf-8"))


# ------------------------------------------------------------------ serving


async def serve_async(
    service: SimulationService,
    host: str = "127.0.0.1",
    port: int = 0,
    dispatchers: int = 1,
    stop: Optional[asyncio.Event] = None,
    install_signal_handlers: bool = True,
    on_ready: Optional[Callable[[ServiceServer], None]] = None,
) -> None:
    """Serve until ``stop`` (or SIGTERM/SIGINT), then drain gracefully.

    Drain order matters: close the listener first (no new work), then
    let dispatchers finish their in-flight job, then close the store.
    Queued-but-unstarted jobs stay journaled and are re-enqueued by the
    next ``recover()``.
    """
    server = ServiceServer(service, host, port)
    await server.start()
    stop = stop if stop is not None else asyncio.Event()
    loop = asyncio.get_running_loop()
    installed: List[signal.Signals] = []
    if install_signal_handlers:
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
                installed.append(signum)
            except (NotImplementedError, RuntimeError):
                pass
    tasks = [
        asyncio.ensure_future(service.dispatcher(stop))
        for _ in range(max(1, dispatchers))
    ]
    if on_ready is not None:
        on_ready(server)
    try:
        await stop.wait()
        service.draining = True
        await server.close()
        await asyncio.gather(*tasks, return_exceptions=True)
    finally:
        for signum in installed:
            loop.remove_signal_handler(signum)
        service.close()


class BackgroundServer:
    """A server on its own thread + event loop (tests, CLI smoke).

    ``start()`` blocks until the port is bound; ``stop()`` performs the
    same graceful drain as SIGTERM and joins the thread.
    """

    def __init__(
        self,
        service: SimulationService,
        host: str = "127.0.0.1",
        port: int = 0,
        dispatchers: int = 1,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.dispatchers = dispatchers
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._error: Optional[BaseException] = None

    def _main(self) -> None:
        async def body() -> None:
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()

            def ready(server: ServiceServer) -> None:
                self.port = server.port
                self._ready.set()

            await serve_async(
                self.service,
                host=self.host,
                port=self.port,
                dispatchers=self.dispatchers,
                stop=self._stop,
                install_signal_handlers=False,
                on_ready=ready,
            )

        try:
            asyncio.run(body())
        except BaseException as exc:  # noqa: BLE001 -- surfaced by start()
            self._error = exc
            self._ready.set()

    def start(self) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._main, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise ServiceError("service did not come up within 30s")
        if self._error is not None:
            raise ServiceError(f"service failed to start: {self._error}")
        return self

    def stop(self, timeout: float = 60.0) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            if self._thread.is_alive():
                raise ServiceError("service did not drain within timeout")

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def wait_for_port(
    host: str, port: int, timeout_s: float = 10.0
) -> bool:
    """Poll until a TCP connect succeeds (CI smoke helper)."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            with socket.create_connection((host, port), timeout=1.0):
                return True
        except OSError:
            time.sleep(0.05)
    return False


__all__ = [
    "BackgroundServer",
    "ServiceServer",
    "SimulationService",
    "serve_async",
    "wait_for_port",
]
