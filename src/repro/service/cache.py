"""Content-addressed result cache.

One file per result document, named by the job spec's canonical digest
(``<sha256>.json``).  The stored bytes are exactly the canonical
rendering of :mod:`repro.parallel.results` -- what ``repro sweep --out``
writes -- so a cache hit is byte-identical to a cold run by storage
format, not by re-serialization luck.

Writes are atomic (temp file + ``os.replace``) and fsynced, matching
the checkpoint journal's durability discipline: a crash mid-``put``
leaves either the complete previous entry or none, never a torn file
that a later ``get`` would serve.

Hit/miss accounting is deliberately split between two read paths:
:meth:`get` counts (it is the *submission dedup* path whose hit ratio
the ``service-smoke`` CI job asserts), :meth:`peek` does not (it backs
result fetches for already-completed jobs, which would otherwise
inflate the hit rate with every poll).

Partial documents -- a failed job's ledger where some runs succeeded --
live in a *separate namespace* (``<sha256>.partial.json``, written by
:meth:`put_partial`, read by :meth:`peek_partial`).  They are useful
for debugging a failed job but are never pristine results, so they are
invisible to :meth:`get`/:meth:`__contains__`/:meth:`keys`: a later
submission of the same spec must re-run the work, not be served a
document recording failures.
"""

from __future__ import annotations

import os
import re
import tempfile
from typing import List, Optional

from repro.errors import ConfigError
from repro.telemetry import NULL_TELEMETRY

_KEY_RE = re.compile(r"^[0-9a-f]{16,64}$")


class ResultCache:
    """Directory of canonical result documents keyed by content digest."""

    def __init__(self, root: str, telemetry=None) -> None:
        self.root = root
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        os.makedirs(root, exist_ok=True)

    def path(self, key: str) -> str:
        """Filesystem path of one entry (validating the key shape so a
        malicious or mangled key can never traverse out of the root)."""
        if not _KEY_RE.match(key):
            raise ConfigError(f"malformed cache key {key!r}")
        return os.path.join(self.root, f"{key}.json")

    def partial_path(self, key: str) -> str:
        """Filesystem path of one *partial* (failed-job) entry."""
        if not _KEY_RE.match(key):
            raise ConfigError(f"malformed cache key {key!r}")
        return os.path.join(self.root, f"{key}.partial.json")

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self.path(key))

    def get(self, key: str) -> Optional[str]:
        """The cached document text, counting a hit or a miss."""
        try:
            with open(self.path(key), "r", encoding="utf-8") as fh:
                text = fh.read()
        except FileNotFoundError:
            self.telemetry.inc("service_cache_misses_total")
            return None
        self.telemetry.inc("service_cache_hits_total")
        return text

    def peek(self, key: str) -> Optional[str]:
        """The cached document text, without touching the counters."""
        try:
            with open(self.path(key), "r", encoding="utf-8") as fh:
                return fh.read()
        except FileNotFoundError:
            return None

    def peek_partial(self, key: str) -> Optional[str]:
        """A failed job's partial document, if one was kept."""
        try:
            with open(self.partial_path(key), "r", encoding="utf-8") as fh:
                return fh.read()
        except FileNotFoundError:
            return None

    def _write_atomic(self, target: str, key: str, text: str) -> None:
        fd, tmp = tempfile.mkstemp(
            prefix=f".{key[:16]}.", suffix=".tmp", dir=self.root
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(text)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, target)
        except BaseException:
            try:
                os.unlink(tmp)
            except FileNotFoundError:
                pass
            raise

    def put(self, key: str, text: str) -> None:
        """Atomically, durably store one pristine document."""
        self._write_atomic(self.path(key), key, text)
        self.telemetry.inc("service_cache_writes_total")

    def put_partial(self, key: str, text: str) -> None:
        """Store a failed job's partial document, outside the dedup
        namespace -- :meth:`get` will never return it."""
        self._write_atomic(self.partial_path(key), key, text)
        self.telemetry.inc("service_cache_partial_writes_total")

    def keys(self) -> List[str]:
        """Digests of every stored entry, sorted."""
        return sorted(
            name[: -len(".json")]
            for name in os.listdir(self.root)
            if name.endswith(".json") and _KEY_RE.match(name[: -len(".json")])
        )


__all__ = ["ResultCache"]
