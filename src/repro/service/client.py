"""Blocking HTTP client for the simulation service.

Stdlib-only (``http.client``), one connection per request to match the
server's ``Connection: close`` contract.  Errors map back onto the
repo's exception hierarchy: 400 -> :class:`~repro.errors.ConfigError`,
404 -> :class:`~repro.errors.JobNotFoundError`, 429 ->
:class:`~repro.errors.QueueFullError`, everything else ->
:class:`~repro.errors.ServiceError` -- so CLI verbs and tests handle
service failures exactly like local ones.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import (
    ConfigError,
    JobNotFoundError,
    QueueFullError,
    ServiceError,
)
from repro.service.jobs import JobSpec

DEFAULT_PORT = 8343

TERMINAL_STATES = ("done", "failed")


class ServiceClient:
    """Talk to one ``repro serve`` instance."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout_s: float = 30.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s

    # ------------------------------------------------------------- plumbing

    def _request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> Tuple[int, bytes]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            payload = (
                json.dumps(body).encode("utf-8") if body is not None else None
            )
            headers = {"Content-Type": "application/json"} if payload else {}
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            return response.status, response.read()
        except (ConnectionError, OSError) as exc:
            raise ServiceError(
                f"cannot reach service at {self.host}:{self.port}: {exc}"
            ) from exc
        finally:
            connection.close()

    @staticmethod
    def _json(status: int, raw: bytes) -> dict:
        try:
            data = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ServiceError(
                f"service returned unparseable body (HTTP {status})"
            ) from exc
        if not isinstance(data, dict):
            raise ServiceError(f"unexpected service payload (HTTP {status})")
        return data

    @classmethod
    def _raise_for(cls, status: int, raw: bytes) -> None:
        message = cls._json(status, raw).get("error", f"HTTP {status}")
        if status == 400:
            raise ConfigError(message)
        if status == 404:
            raise JobNotFoundError(message)
        if status == 429:
            raise QueueFullError(message)
        raise ServiceError(f"HTTP {status}: {message}")

    # --------------------------------------------------------------- verbs

    def health(self) -> dict:
        status, raw = self._request("GET", "/v1/healthz")
        if status != 200:
            self._raise_for(status, raw)
        return self._json(status, raw)

    def metrics(self) -> Dict[str, float]:
        status, raw = self._request("GET", "/v1/metrics")
        if status != 200:
            self._raise_for(status, raw)
        return self._json(status, raw).get("metrics", {})

    def submit(self, spec: Union[JobSpec, dict]) -> dict:
        """Submit one job; returns ``{"job": {...}, "cached": bool}``."""
        body = spec.to_dict() if isinstance(spec, JobSpec) else dict(spec)
        status, raw = self._request("POST", "/v1/jobs", {"spec": body})
        if status not in (200, 201):
            self._raise_for(status, raw)
        return self._json(status, raw)

    def jobs(self) -> List[dict]:
        status, raw = self._request("GET", "/v1/jobs")
        if status != 200:
            self._raise_for(status, raw)
        return self._json(status, raw).get("jobs", [])

    def job(self, job_id: str) -> dict:
        status, raw = self._request("GET", f"/v1/jobs/{job_id}")
        if status != 200:
            self._raise_for(status, raw)
        return self._json(status, raw)["job"]

    def result_text(self, job_id: str) -> str:
        """The job's result document, byte-for-byte as the server
        stores it (callers write it out verbatim)."""
        status, raw = self._request("GET", f"/v1/jobs/{job_id}/result")
        if status != 200:
            self._raise_for(status, raw)
        return raw.decode("utf-8")

    def wait(
        self,
        job_id: str,
        timeout_s: float = 300.0,
        poll_s: float = 0.2,
    ) -> dict:
        """Poll until the job reaches a terminal state."""
        deadline = time.monotonic() + timeout_s
        while True:
            job = self.job(job_id)
            if job.get("state") in TERMINAL_STATES:
                return job
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {job.get('state')!r} after "
                    f"{timeout_s:g}s"
                )
            time.sleep(poll_s)


__all__ = ["DEFAULT_PORT", "ServiceClient", "TERMINAL_STATES"]
