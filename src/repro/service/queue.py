"""Bounded priority job queue with backpressure.

A thin asyncio-native queue tailored to the service's needs:

* **priorities** -- lower ``spec.priority`` dequeues first; FIFO within
  a priority level (ties broken by submission sequence, never by heap
  internals, so scheduling is deterministic);
* **bounded depth** -- :meth:`put_nowait` refuses past ``max_depth``
  with :class:`~repro.errors.QueueFullError`, which the API layer maps
  to HTTP 429.  Rejecting at submit time (backpressure) beats buffering
  unboundedly and dying of memory on traffic spikes;
* **telemetry** -- the ``service_queue_depth`` gauge tracks every
  put/get, and rejections count in ``service_queue_rejections_total``.

All mutation happens on the event-loop thread (HTTP handlers and
dispatchers both live there), so no locking beyond asyncio's own
cooperative scheduling is needed.
"""

from __future__ import annotations

import asyncio
import heapq
from typing import List, Optional, Tuple

from repro.errors import QueueFullError
from repro.service.jobs import Job
from repro.telemetry import NULL_TELEMETRY


class JobQueue:
    """Priority queue of :class:`~repro.service.jobs.Job` s."""

    def __init__(self, max_depth: int = 64, telemetry=None) -> None:
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1 (got {max_depth})")
        self.max_depth = max_depth
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._heap: List[Tuple[int, int, Job]] = []
        self._event: Optional[asyncio.Event] = None

    # The Event is created lazily so a queue can be built outside any
    # event loop (server construction, tests) and bound to whichever
    # loop first awaits it.
    def _signal(self) -> asyncio.Event:
        if self._event is None:
            self._event = asyncio.Event()
        return self._event

    @property
    def depth(self) -> int:
        return len(self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def full(self) -> bool:
        return len(self._heap) >= self.max_depth

    def _gauge(self) -> None:
        self.telemetry.set_gauge("service_queue_depth", float(self.depth))

    def put_nowait(self, job: Job) -> None:
        """Enqueue ``job`` or refuse with :class:`QueueFullError`."""
        if self.full:
            self.telemetry.inc("service_queue_rejections_total")
            raise QueueFullError(
                f"job queue is full ({self.depth}/{self.max_depth} deep); "
                f"retry after the backlog drains"
            )
        self.restore(job)

    def restore(self, job: Job) -> None:
        """Enqueue bypassing the depth bound.

        Crash recovery only: a job journaled by a previous process was
        already accepted once, and must never be dropped just because
        the configured depth shrank between runs.
        """
        heapq.heappush(self._heap, (job.spec.priority, job.seq, job))
        self._gauge()
        if self._event is not None:
            self._event.set()

    async def get(self) -> Job:
        """Dequeue the highest-priority job, waiting if empty."""
        while not self._heap:
            signal = self._signal()
            signal.clear()
            await signal.wait()
        _, _, job = heapq.heappop(self._heap)
        self._gauge()
        return job

    def snapshot(self) -> List[Job]:
        """Queued jobs in dequeue order (for status endpoints)."""
        return [job for _, _, job in sorted(self._heap)]


__all__ = ["JobQueue"]
