"""Mixed workloads: 16 four-way random SPEC2017 combinations.

The paper evaluates 16 "mix" workloads, each four random SPEC2017 rate
workloads sharing the memory system.  A mix's activation stream is the
interleaved union of its members' streams, with each member's rows
offset into a distinct region (separate processes do not share physical
pages), and its memory-boundness reflects the combined MPKI.
"""

from __future__ import annotations

import random
from typing import List

import numpy as np

from repro.dram.geometry import DramGeometry, DEFAULT_GEOMETRY
from repro.workloads.spec import SyntheticWorkload
from repro.workloads.table2 import SPEC_NAMES, TABLE_II, WorkloadSpec
from repro.workloads.trace import DEFAULT_CHUNK, EpochTrace, memory_boundness


NUM_MIXES = 16
"""Number of mixed workloads in the paper's evaluation."""

MIX_SEED = 0xA0_0A
"""Seed for the deterministic mix composition draw."""



def mix_compositions(
    count: int = NUM_MIXES, seed: int = MIX_SEED
) -> List[List[str]]:
    """The deterministic composition of each mix (4 names, no repeats)."""
    rng = random.Random(seed)
    return [rng.sample(SPEC_NAMES, 4) for _ in range(count)]


def single_copy(spec: WorkloadSpec) -> WorkloadSpec:
    """Scale a 4-copy *rate* characterisation down to one copy.

    Table II characterises 4-copy rate runs; a mix member is a single
    copy of the program, contributing roughly a quarter of the rate
    run's MPKI and hot-row population.
    """
    return WorkloadSpec(
        name=spec.name,
        mpki=spec.mpki / 4.0,
        act_166_plus=spec.act_166_plus // 4,
        act_500_plus=spec.act_500_plus // 4,
        act_1k_plus=spec.act_1k_plus // 4,
    )


class MixWorkload:
    """Four SPEC workloads sharing the memory system."""

    def __init__(
        self,
        index: int,
        names: List[str],
        geometry: DramGeometry = DEFAULT_GEOMETRY,
        chunk: int = DEFAULT_CHUNK,
    ) -> None:
        if len(names) != 4:
            raise ValueError("a mix is exactly four workloads")
        self.index = index
        self.names = list(names)
        self.geometry = geometry
        # Partition the addressable space: each member owns a quarter
        # (separate processes share no physical pages).
        probe = SyntheticWorkload(single_copy(TABLE_II[names[0]]), geometry)
        quarter = probe.addressable_rows // 4
        self.members: List[SyntheticWorkload] = [
            SyntheticWorkload(
                single_copy(TABLE_II[name]),
                geometry=geometry,
                seed=index + 1,
                chunk=chunk,
                region_base=core * quarter,
                region_rows=quarter,
            )
            for core, name in enumerate(names)
        ]

    @property
    def name(self) -> str:
        return f"mix{self.index:02d}"

    @property
    def mpki(self) -> float:
        """Aggregate MPKI of the four cores."""
        return sum(member.mpki for member in self.members)

    @property
    def memory_boundness(self) -> float:
        """Combined memory-boundness (shared channel, summed demand)."""
        return memory_boundness(self.mpki)

    def epoch_trace(self, epoch: int = 0) -> EpochTrace:
        """Interleaved union of the members' epoch streams."""
        traces = [member.epoch_trace(epoch) for member in self.members]
        rows = np.concatenate([trace.rows for trace in traces])
        counts = np.concatenate([trace.counts for trace in traces])
        rng = np.random.default_rng((self.index << 16) ^ epoch ^ 0xC0FE)
        order = rng.permutation(len(rows))
        return EpochTrace(rows=rows[order], counts=counts[order])


def all_mixes(
    geometry: DramGeometry = DEFAULT_GEOMETRY,
    chunk: int = DEFAULT_CHUNK,
    count: int = NUM_MIXES,
) -> List[MixWorkload]:
    """The paper's 16 mixed workloads, deterministically composed."""
    return [
        MixWorkload(index, names, geometry=geometry, chunk=chunk)
        for index, names in enumerate(mix_compositions(count))
    ]
