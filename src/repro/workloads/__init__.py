"""Workload substrate: Table II specs and synthetic trace generators.

SPEC CPU2017 is unavailable (licensed); the generators here reproduce
the paper's own per-workload characterisation (Table II) -- see the
substitution table in DESIGN.md.
"""

from repro.workloads.table2 import (
    SPEC_NAMES,
    TABLE_II,
    WorkloadSpec,
    average_mpki,
)
from repro.workloads.trace import (
    DEFAULT_CHUNK,
    EpochTrace,
    acts_per_epoch,
    chunk_counts,
    memory_boundness,
)
from repro.workloads.spec import (
    MAX_BACKGROUND_ACTS,
    RESERVED_TOP_ROWS,
    TRACE_CACHE_ENTRIES,
    SyntheticWorkload,
    clear_trace_cache,
    trace_cache_stats,
    workload,
)
from repro.workloads.mixes import (
    MIX_SEED,
    NUM_MIXES,
    MixWorkload,
    all_mixes,
    mix_compositions,
)

__all__ = [
    "SPEC_NAMES",
    "TABLE_II",
    "WorkloadSpec",
    "average_mpki",
    "DEFAULT_CHUNK",
    "EpochTrace",
    "acts_per_epoch",
    "chunk_counts",
    "memory_boundness",
    "MAX_BACKGROUND_ACTS",
    "RESERVED_TOP_ROWS",
    "TRACE_CACHE_ENTRIES",
    "SyntheticWorkload",
    "clear_trace_cache",
    "trace_cache_stats",
    "workload",
    "MIX_SEED",
    "NUM_MIXES",
    "MixWorkload",
    "all_mixes",
    "mix_compositions",
]
