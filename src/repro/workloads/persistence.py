"""Trace persistence: save/load activation traces as ``.npz`` archives.

The synthetic generators are deterministic, but archived traces let a
reproduction run be shipped and replayed bit-for-bit (the role the
original artifact's gem5 checkpoints play), and let externally captured
activation traces drive the same pipeline.

Format: one ``.npz`` with ``rows_<i>`` / ``counts_<i>`` arrays per
epoch plus a ``meta`` record (name, mpki, memory-boundness).
"""

from __future__ import annotations

import json
from typing import List

import numpy as np

from repro.workloads.trace import EpochTrace, memory_boundness


FORMAT_VERSION = 1


class TraceArchive:
    """A named, replayable sequence of epoch traces.

    Implements the workload protocol (``name``, ``memory_boundness``,
    ``epoch_trace``), so an archive plugs directly into
    :class:`~repro.sim.system.SystemSimulator`.
    """

    def __init__(
        self, name: str, mpki: float, traces: List[EpochTrace]
    ) -> None:
        if not traces:
            raise ValueError("archive needs at least one epoch")
        self.name = name
        self.mpki = mpki
        self._traces = traces

    @property
    def memory_boundness(self) -> float:
        return memory_boundness(self.mpki)

    @property
    def epochs(self) -> int:
        return len(self._traces)

    def epoch_trace(self, epoch: int) -> EpochTrace:
        """Epoch ``epoch``'s trace (cycling past the recorded length)."""
        return self._traces[epoch % len(self._traces)]

    @staticmethod
    def record(workload, epochs: int) -> "TraceArchive":
        """Capture ``epochs`` windows of any workload object."""
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        return TraceArchive(
            name=workload.name,
            mpki=getattr(workload, "mpki", 0.0),
            traces=[workload.epoch_trace(e) for e in range(epochs)],
        )

    def save(self, path: str) -> None:
        """Write the archive to ``path`` (.npz)."""
        payload = {
            "meta": np.frombuffer(
                json.dumps(
                    {
                        "version": FORMAT_VERSION,
                        "name": self.name,
                        "mpki": self.mpki,
                        "epochs": len(self._traces),
                    }
                ).encode(),
                dtype=np.uint8,
            )
        }
        for index, trace in enumerate(self._traces):
            payload[f"rows_{index}"] = trace.rows
            payload[f"counts_{index}"] = trace.counts
        np.savez_compressed(path, **payload)

    @staticmethod
    def load(path: str) -> "TraceArchive":
        """Read an archive written by :meth:`save`."""
        with np.load(path) as data:
            meta = json.loads(bytes(data["meta"].tobytes()).decode())
            if meta.get("version") != FORMAT_VERSION:
                raise ValueError(
                    f"unsupported trace format {meta.get('version')}"
                )
            traces = [
                EpochTrace(
                    rows=data[f"rows_{index}"].astype(np.int64),
                    counts=data[f"counts_{index}"].astype(np.int64),
                )
                for index in range(meta["epochs"])
            ]
        return TraceArchive(meta["name"], meta["mpki"], traces)
