"""Trace representation and the workload protocol.

A workload yields, per epoch, an :class:`EpochTrace`: a sequence of
(row, burst-length) chunks in activation order.  Chunking lets the
simulator batch tracker/table updates (a chunk is far smaller than any
mitigation threshold, so behaviour matches per-ACT simulation), while
the chunk *order* is shuffled so rows interleave the way concurrent
hammering streams do.

``memory_boundness`` maps a workload's MPKI to the fraction of its
execution time that is memory-bound -- the coupling constant of the
slowdown model in :mod:`repro.sim.cpu`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np


#: MPKI at which a workload is 50% memory-bound.  Calibrated so the
#: model reproduces the paper's per-workload slowdown ordering
#: (lbm/blender worst, xz and below negligible).
MPKI_HALF = 3.0

#: LLC misses per kilo-instruction map to row activations per epoch via
#: instruction throughput (4 cores x 3 GHz x 64 ms at IPC ~1) and the
#: fraction of misses that open a new row (~0.35 row-buffer miss rate).
INSTRUCTIONS_PER_EPOCH = 4 * 3.0e9 * 0.064
ACT_PER_MISS = 0.6

#: Default burst length for chunked traces.  Must stay well below the
#: smallest mitigation threshold in use (166 for RRS at T_RH = 1K).
DEFAULT_CHUNK = 64


def iter_chunks(
    rows: np.ndarray, counts: np.ndarray
) -> Iterator[Tuple[int, int]]:
    """Iterate parallel (row, count) arrays as Python-int pairs.

    The single conversion point from numpy storage to scalar chunks:
    one bulk ``tolist`` per array instead of a per-element unboxing in
    the hot loop.  Shared by :meth:`EpochTrace.chunks` and the scalar
    reference path of ``MitigationScheme.access_epoch``.
    """
    return zip(rows.tolist(), counts.tolist())


def memory_boundness(mpki: float) -> float:
    """Fraction of execution time that dilates with memory time."""
    if mpki < 0:
        raise ValueError("mpki must be non-negative")
    return mpki / (mpki + MPKI_HALF)


def acts_per_epoch(mpki: float) -> int:
    """Estimated row activations per epoch for a given MPKI."""
    return int(mpki * 1e-3 * INSTRUCTIONS_PER_EPOCH * ACT_PER_MISS)


@dataclass
class EpochTrace:
    """One epoch's activation stream, as (row, count) chunks."""

    rows: np.ndarray
    """Row id per chunk (int64)."""
    counts: np.ndarray
    """Activations per chunk (int64), each <= the chunk size used."""

    def __post_init__(self) -> None:
        if len(self.rows) != len(self.counts):
            raise ValueError("rows and counts must align")

    @property
    def total_activations(self) -> int:
        return int(self.counts.sum()) if len(self.counts) else 0

    @property
    def num_chunks(self) -> int:
        return len(self.rows)

    def chunks(self) -> Iterator[Tuple[int, int]]:
        """Iterate (row, count) pairs in stream order."""
        return iter_chunks(self.rows, self.counts)

    def unique_totals(self) -> Tuple[np.ndarray, np.ndarray]:
        """Distinct rows (sorted) and their epoch activation totals."""
        if len(self.rows) == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy()
        uniq, inverse = np.unique(self.rows, return_inverse=True)
        totals = np.bincount(
            inverse, weights=self.counts, minlength=len(uniq)
        ).astype(np.int64)
        return uniq, totals

    def row_totals(self) -> dict:
        """Aggregate activations per row (for Table II verification)."""
        uniq, totals = self.unique_totals()
        return dict(zip(uniq.tolist(), totals.tolist()))

    def rows_at_or_above(self, threshold: int) -> int:
        """Rows whose epoch total reaches ``threshold`` activations."""
        _, totals = self.unique_totals()
        return int((totals >= threshold).sum())


def chunk_counts(
    row_ids: np.ndarray, totals: np.ndarray, chunk: int = DEFAULT_CHUNK
) -> Tuple[np.ndarray, np.ndarray]:
    """Split per-row totals into chunk-sized bursts.

    Returns parallel arrays (rows, counts) ready to shuffle: a row with
    total 700 and chunk 64 becomes ten 64-bursts and one 60-burst.
    """
    if chunk < 1:
        raise ValueError("chunk must be >= 1")
    full = totals // chunk
    remainder = totals % chunk
    rows_out = []
    counts_out = []
    if full.sum() > 0:
        rows_out.append(np.repeat(row_ids, full))
        counts_out.append(np.full(int(full.sum()), chunk, dtype=np.int64))
    has_rem = remainder > 0
    if has_rem.any():
        rows_out.append(row_ids[has_rem])
        counts_out.append(remainder[has_rem])
    if not rows_out:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    return (
        np.concatenate(rows_out).astype(np.int64),
        np.concatenate(counts_out).astype(np.int64),
    )
