"""Table II: SPEC CPU2017 workload characteristics.

The paper characterises each workload by its LLC misses-per-kilo-
instruction (MPKI) and, per 64 ms epoch, the average number of rows
receiving 166+, 500+ and 1000+ activations.  These statistics are the
complete interface between a workload and every Rowhammer mitigation
(they determine mitigation counts at each trigger threshold), so the
synthetic generators are calibrated to reproduce them exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class WorkloadSpec:
    """One row of Table II."""

    name: str
    mpki: float
    act_166_plus: int
    """Rows with at least 166 activations per epoch."""
    act_500_plus: int
    """Rows with at least 500 activations per epoch."""
    act_1k_plus: int
    """Rows with at least 1000 activations per epoch."""

    def __post_init__(self) -> None:
        if not (
            self.act_166_plus >= self.act_500_plus >= self.act_1k_plus >= 0
        ):
            raise ValueError(
                f"{self.name}: activation bands must be non-increasing"
            )

    @property
    def band_166(self) -> int:
        """Rows with activations in [166, 500)."""
        return self.act_166_plus - self.act_500_plus

    @property
    def band_500(self) -> int:
        """Rows with activations in [500, 1000)."""
        return self.act_500_plus - self.act_1k_plus

    @property
    def band_1k(self) -> int:
        """Rows with activations in [1000, inf)."""
        return self.act_1k_plus


TABLE_II: Dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in [
        WorkloadSpec("lbm", 20.9, 6794, 5437, 0),
        WorkloadSpec("blender", 14.8, 6085, 3021, 572),
        WorkloadSpec("gcc", 6.32, 4850, 1836, 111),
        WorkloadSpec("mcf", 7.02, 4819, 835, 393),
        WorkloadSpec("cactuBSSN", 2.57, 2515, 0, 0),
        WorkloadSpec("roms", 4.37, 1150, 191, 11),
        WorkloadSpec("xz", 0.41, 655, 0, 0),
        WorkloadSpec("perlbench", 0.74, 0, 0, 0),
        WorkloadSpec("bwaves", 0.21, 0, 0, 0),
        WorkloadSpec("namd", 0.38, 0, 0, 0),
        WorkloadSpec("povray", 0.01, 0, 0, 0),
        WorkloadSpec("wrf", 0.02, 0, 0, 0),
        WorkloadSpec("deepsjeng", 0.25, 0, 0, 0),
        WorkloadSpec("imagick", 0.27, 0, 0, 0),
        WorkloadSpec("leela", 0.03, 0, 0, 0),
        WorkloadSpec("nab", 0.54, 0, 0, 0),
        WorkloadSpec("exchange2", 0.01, 0, 0, 0),
        WorkloadSpec("parest", 0.1, 0, 0, 0),
    ]
}
"""The 18 SPEC2017 rate workloads of Table II, keyed by name."""

SPEC_NAMES: List[str] = list(TABLE_II)
"""Workload names in the paper's order."""


def average_mpki() -> float:
    """Average MPKI across the 18 workloads (paper: 3.5)."""
    return sum(spec.mpki for spec in TABLE_II.values()) / len(TABLE_II)
