"""Synthetic SPEC2017 workload generators, calibrated to Table II.

SPEC CPU2017 binaries and reference inputs are licensed and unavailable
here, so each workload is replaced by a deterministic synthetic
generator that reproduces the paper's own characterisation of it
(Table II): the number of rows crossing 166/500/1000 activations per
epoch and the MPKI-derived total activation volume.  Those statistics
are precisely what drives every mitigation scheme's behaviour, so the
substitution preserves the quantities the evaluation measures
(DESIGN.md, substitution table).

Per-band activation totals are drawn deterministically (seeded per
workload and epoch) from within the band:

* 1K+ band: counts in [1000, 1600)
* 500 band: counts in [500, 1000)
* 166 band: counts in [166, 500)
* background: many distinct rows with counts in [1, 8] filling the
  remaining MPKI-implied volume (capped), which exercises the
  Misra-Gries spill counter and its spurious mitigations.
"""

from __future__ import annotations

import zlib
from collections import OrderedDict
from typing import Optional, Tuple

import numpy as np

from repro.dram.geometry import DramGeometry, DEFAULT_GEOMETRY
from repro.workloads.table2 import TABLE_II, WorkloadSpec
from repro.workloads.trace import (
    DEFAULT_CHUNK,
    EpochTrace,
    acts_per_epoch,
    chunk_counts,
    memory_boundness,
)


#: Rows at the top of memory reserved by schemes (RQA + tables, at most
#: ~47K for the lowest thresholds); generators never touch them so the
#: same trace is valid for every scheme under study.
RESERVED_TOP_ROWS = 64 * 1024

#: Cap on simulated background activations per epoch.  The background
#: volume beyond the cap affects neither mitigation counts nor the
#: slowdown model (which charges busy time against wall-clock), only
#: Misra-Gries spill dynamics, which saturate well below the cap.
MAX_BACKGROUND_ACTS = 80_000

#: Per-band activation-count bounds.  The inner margins (e.g. 490
#: rather than 500) keep a hot row inside its Table II band even if a
#: few background activations land on the same row.
_BAND_BOUNDS = {
    "1k": (1010, 1600),
    "500": (505, 990),
    "166": (170, 490),
}

#: Upper bound on memoized epoch traces (LRU).  A quick bench sweep
#: touches ~10 distinct (workload, seed, epoch) traces; a full-grid
#: sweep a few dozen.  Traces are a few hundred KB each, so 64 entries
#: cap the cache well under 100 MB while covering realistic sweeps.
TRACE_CACHE_ENTRIES = 64

_trace_cache: "OrderedDict[tuple, EpochTrace]" = OrderedDict()
_trace_cache_hits = 0
_trace_cache_misses = 0


def trace_cache_stats() -> Tuple[int, int, int]:
    """(hits, misses, live entries) of the epoch-trace memo cache."""
    return _trace_cache_hits, _trace_cache_misses, len(_trace_cache)


def clear_trace_cache() -> None:
    """Drop all memoized traces (tests; long-lived servers)."""
    global _trace_cache_hits, _trace_cache_misses
    _trace_cache.clear()
    _trace_cache_hits = 0
    _trace_cache_misses = 0


class SyntheticWorkload:
    """Deterministic activation-stream generator for one Table II row."""

    def __init__(
        self,
        spec: WorkloadSpec,
        geometry: DramGeometry = DEFAULT_GEOMETRY,
        seed: int = 0,
        chunk: int = DEFAULT_CHUNK,
        region_base: int = 0,
        region_rows: Optional[int] = None,
        max_background_acts: int = MAX_BACKGROUND_ACTS,
    ) -> None:
        self.spec = spec
        self.geometry = geometry
        self.seed = seed
        self.chunk = chunk
        self.max_background_acts = max_background_acts
        # Scale the reserved region down for small test geometries
        # (it must still cover any scheme's RQA + table carve-out).
        reserved = min(
            RESERVED_TOP_ROWS, max(512, geometry.rows_per_rank // 8)
        )
        self.addressable_rows = geometry.rows_per_rank - reserved
        if self.addressable_rows < 1:
            raise ValueError("geometry too small for reserved region")
        # The workload's address region: mixes partition memory among
        # their members (separate processes share no physical pages).
        self.region_base = region_base
        self.region_rows = (
            region_rows
            if region_rows is not None
            else self.addressable_rows - region_base
        )
        if self.region_rows < 1 or (
            region_base + self.region_rows > self.addressable_rows
        ):
            raise ValueError("region outside addressable space")

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def mpki(self) -> float:
        return self.spec.mpki

    @property
    def memory_boundness(self) -> float:
        """Fraction of execution time coupled to memory time."""
        return memory_boundness(self.spec.mpki)

    def _rng(self, epoch: int) -> np.random.Generator:
        # crc32, not hash(): str hashing is salted per process, which
        # would make "same seed, same trace" fail across runs.
        name_hash = zlib.crc32(self.spec.name.encode("utf-8"))
        return np.random.default_rng(
            name_hash ^ (self.seed << 8) ^ epoch
        )

    def _band_counts(
        self, rng: np.random.Generator
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Pick hot rows and their epoch activation totals."""
        spec = self.spec
        sizes = (spec.band_1k, spec.band_500, spec.band_166)
        bounds = (_BAND_BOUNDS["1k"], _BAND_BOUNDS["500"], _BAND_BOUNDS["166"])
        totals = [
            rng.integers(low, high, size=size)
            for size, (low, high) in zip(sizes, bounds)
            if size > 0
        ]
        n_hot = sum(sizes)
        if n_hot == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy()
        rows = self._sample_rows(rng, n_hot)
        return rows, np.concatenate(totals).astype(np.int64)

    def _sample_rows(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Distinct row ids within this workload's region."""
        rows = rng.choice(self.region_rows, size=n, replace=False)
        return (rows + self.region_base).astype(np.int64)

    def _background(
        self, rng: np.random.Generator, hot_volume: int
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Cold rows filling the MPKI-implied volume (capped)."""
        target = acts_per_epoch(self.spec.mpki)
        budget = min(max(0, target - hot_volume), self.max_background_acts)
        if budget <= 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy()
        # Workloads with hot rows have row-buffer-friendly cold traffic
        # (revisited rows); hot-row-free streaming workloads (imagick,
        # nab, ...) touch many distinct rows once per epoch, which
        # exercises the Misra-Gries spill counter and reproduces the
        # spurious-mitigation artefact of Sec. IV-F.
        if self.spec.act_166_plus > 0:
            totals = rng.integers(1, 4, size=max(1, int(budget / 2.0)))
        else:
            totals = np.ones(max(1, budget), dtype=np.int64)
        totals = totals.astype(np.int64)
        overshoot = totals.cumsum().searchsorted(budget)
        totals = totals[: max(1, overshoot)]
        # Background rows may repeat (sampled with replacement): real
        # streaming traffic revisits rows across the epoch.
        rows = rng.integers(0, self.region_rows, size=len(totals))
        return (rows + self.region_base).astype(np.int64), totals

    #: Temporal-locality spread: a hot row's activation bursts cluster
    #: within this fraction of the epoch (real hammering/streaming
    #: access patterns are bursty, which is what lets a 4K-entry
    #: FPT-Cache serve a much larger quarantined population, Sec. V-C).
    PHASE_SPREAD = 0.15

    def _trace_key(self, epoch: int) -> tuple:
        """Content key covering every input that shapes the trace.

        ``WorkloadSpec`` and ``DramGeometry`` are frozen dataclasses,
        so the key hashes their *values* -- two generators configured
        identically share a cache entry regardless of object identity.
        """
        return (
            self.spec,
            self.geometry,
            self.seed,
            epoch,
            self.chunk,
            self.region_base,
            self.region_rows,
            self.max_background_acts,
        )

    def epoch_trace(self, epoch: int = 0) -> EpochTrace:
        """Generate this workload's activation stream for ``epoch``.

        Traces are pure functions of :meth:`_trace_key`, so results are
        memoized in a process-wide LRU cache; a fork-based worker pool
        inherits warm entries from the parent for free.  Cached arrays
        are frozen (``writeable=False``) so a consumer mutating a
        shared trace fails loudly instead of corrupting later runs.
        """
        global _trace_cache_hits, _trace_cache_misses
        key = self._trace_key(epoch)
        cached = _trace_cache.get(key)
        if cached is not None:
            _trace_cache.move_to_end(key)
            _trace_cache_hits += 1
            return cached
        _trace_cache_misses += 1
        trace = self._generate_trace(epoch)
        trace.rows.setflags(write=False)
        trace.counts.setflags(write=False)
        _trace_cache[key] = trace
        while len(_trace_cache) > TRACE_CACHE_ENTRIES:
            _trace_cache.popitem(last=False)
        return trace

    def _generate_trace(self, epoch: int) -> EpochTrace:
        """Uncached trace construction (see :meth:`epoch_trace`)."""
        rng = self._rng(epoch)
        hot_rows, hot_totals = self._band_counts(rng)
        bg_rows, bg_totals = self._background(rng, int(hot_totals.sum()))
        rows = np.concatenate([hot_rows, bg_rows])
        totals = np.concatenate([hot_totals, bg_totals])
        indices = np.arange(len(rows), dtype=np.int64)
        chunk_idx, chunk_cnts = chunk_counts(indices, totals, self.chunk)
        # Phase-clustered ordering: each row gets a random phase in the
        # epoch and its chunks land within PHASE_SPREAD of it, so
        # different rows interleave while one row's bursts stay close.
        row_phase = rng.random(len(rows))
        chunk_phase = row_phase[chunk_idx] + rng.random(len(chunk_idx)) * (
            self.PHASE_SPREAD
        )
        order = np.argsort(chunk_phase, kind="stable")
        return EpochTrace(
            rows=rows[chunk_idx][order], counts=chunk_cnts[order]
        )


def workload(
    name: str,
    geometry: DramGeometry = DEFAULT_GEOMETRY,
    seed: int = 0,
    chunk: int = DEFAULT_CHUNK,
    region_base: int = 0,
    region_rows: Optional[int] = None,
    max_background_acts: Optional[int] = None,
) -> SyntheticWorkload:
    """Construct the synthetic generator for a Table II workload name."""
    if name not in TABLE_II:
        raise KeyError(f"unknown workload {name!r}; see TABLE_II")
    kwargs = {}
    if max_background_acts is not None:
        kwargs["max_background_acts"] = max_background_acts
    return SyntheticWorkload(
        TABLE_II[name],
        geometry=geometry,
        seed=seed,
        chunk=chunk,
        region_base=region_base,
        region_rows=region_rows,
        **kwargs,
    )
