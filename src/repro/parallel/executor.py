"""Process-parallel sweep execution with a deterministic merge.

The sweep is this repo's core workload -- every figure reproduction is
a (scheme x workload x threshold) grid -- and the grid is
embarrassingly parallel: run points share no state, so they fan out to
a :class:`~concurrent.futures.ProcessPoolExecutor` and scale with
cores.  Three invariants keep parallelism invisible to everything
downstream:

**Determinism.**  Results are merged in *run-key order* (the grid
expansion order), never completion order, and every run point is
self-contained: the workload trace is derived from ``(name, seed)``,
the fault schedule from a :class:`~repro.faults.FaultSpec` scoped by
``label/workload``, and telemetry is per-run.  ``--jobs 4`` output is
therefore byte-identical to ``--jobs 1`` for the same seeds (CI diffs
the two on every PR).

**Crash-safe checkpointing.**  Workers journal completed runs to
sidecar files (``<ckpt>.w<pid>.jsonl``) that merge back into the main
:class:`~repro.sim.checkpoint.SweepCheckpoint` -- on clean completion
and on ``--resume`` -- so a killed parallel sweep loses nothing that
any worker finished.

**Fault tolerance.**  A Python exception inside a run lands in the
report's failure ledger (as in the serial runner).  A *worker process
death* (segfault, OOM-kill, ``os._exit``) breaks the shared pool and
cannot be attributed to a single future, so the executor falls back to
crash isolation: every implicated point re-runs alone in a fresh
single-worker pool, which completes the innocent bystanders and blames
the true crasher definitively -- the sweep still does not abort.

Because factories are closures (unpicklable), the process boundary
speaks :class:`RunPoint`: the scheme *builder name* plus kwargs, looked
up in :data:`~repro.sim.runner.SCHEME_BUILDERS` inside the worker.
"""

from __future__ import annotations

import os
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.faults import FaultSpec
from repro.sim import checkpoint as ckpt
from repro.sim.checkpoint import SweepCheckpoint
from repro.sim import runner
from repro.sim.runner import SCHEME_BUILDERS, RunFailure, SweepReport
from repro.sim.stats import WorkloadResult
from repro.telemetry import Telemetry, TraceEvent
from repro.workloads.mixes import all_mixes
from repro.workloads.spec import workload
from repro.workloads.table2 import SPEC_NAMES


RunKey = Tuple[str, str]
"""(scheme label, workload name) -- matches the checkpoint key."""


@dataclass(frozen=True)
class RunPoint:
    """One self-contained, picklable unit of sweep work.

    ``label`` is the report/checkpoint key (distinct labels let one
    scheme appear at several thresholds in one sweep); ``scheme`` is
    the :data:`~repro.sim.runner.SCHEME_BUILDERS` name the worker
    rebuilds the factory from.
    """

    label: str
    scheme: str
    workload: str
    threshold: int = 1000
    epochs: int = 2
    seed: int = 0
    scheme_kwargs: Tuple[Tuple[str, object], ...] = ()

    @property
    def key(self) -> RunKey:
        return (self.label, self.workload)

    @property
    def scope(self) -> str:
        """Fault-seed scope: per run point, never per process."""
        return f"{self.label}/{self.workload}"

    def to_dict(self) -> dict:
        """Canonical JSON-ready dict (inverse of :meth:`from_dict`).

        This is the unit the service hashes into cache keys, so the
        field set must stay in lockstep with what actually determines a
        run's output -- adding a behavior-changing field here without
        including it in the dict would make distinct runs collide.
        """
        return {
            "label": self.label,
            "scheme": self.scheme,
            "workload": self.workload,
            "threshold": self.threshold,
            "epochs": self.epochs,
            "seed": self.seed,
            "scheme_kwargs": [
                [key, value] for key, value in self.scheme_kwargs
            ],
        }

    @staticmethod
    def from_dict(data: dict) -> "RunPoint":
        """Rebuild a run point from :meth:`to_dict` output."""
        try:
            return RunPoint(
                label=str(data["label"]),
                scheme=str(data["scheme"]),
                workload=str(data["workload"]),
                threshold=int(data["threshold"]),
                epochs=int(data["epochs"]),
                seed=int(data["seed"]),
                scheme_kwargs=tuple(
                    (str(key), value)
                    for key, value in data.get("scheme_kwargs", [])
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigError(f"malformed RunPoint dict: {exc}") from exc


def expand_grid(
    schemes: Sequence[str],
    workloads: Sequence[str],
    thresholds: Sequence[int] = (1000,),
    epochs: int = 2,
    seed: int = 0,
    scheme_kwargs: Optional[Dict[str, object]] = None,
) -> List[RunPoint]:
    """Expand a (scheme x threshold x workload) grid into run points.

    The returned order *is* the deterministic merge order.  With a
    single threshold, labels are the bare scheme names (matching the
    serial runner's checkpoints); with several, ``<scheme>@<trh>``.
    """
    kwargs = tuple(sorted((scheme_kwargs or {}).items()))
    thresholds = tuple(thresholds)
    if not thresholds:
        raise ConfigError("expand_grid needs at least one threshold")
    points: List[RunPoint] = []
    for scheme in schemes:
        if scheme not in SCHEME_BUILDERS:
            raise ConfigError(
                f"unknown scheme {scheme!r}; choose from "
                f"{sorted(SCHEME_BUILDERS)}"
            )
        for trh in thresholds:
            label = scheme if len(thresholds) == 1 else f"{scheme}@{trh}"
            for name in workloads:
                points.append(
                    RunPoint(
                        label=label,
                        scheme=scheme,
                        workload=name,
                        threshold=trh,
                        epochs=epochs,
                        seed=seed,
                        scheme_kwargs=kwargs,
                    )
                )
    return points


def resolve_workload(name: str, seed: int = 0):
    """Rebuild a workload by name inside a worker (SPEC or mix)."""
    if name in SPEC_NAMES:
        return workload(name, seed=seed)
    for mix in all_mixes():
        if mix.name == name:
            return mix
    raise ConfigError(
        f"unknown workload {name!r}; choose a SPEC name from {SPEC_NAMES} "
        f"or a mix name"
    )


@dataclass(frozen=True)
class ExecOptions:
    """Picklable per-run execution knobs shared by every point."""

    timeout_s: float = 0.0
    retries: int = 0
    backoff_s: float = 0.5
    instrument: bool = False
    trace: bool = False
    trace_sample: float = 1.0
    fault_spec: Optional[FaultSpec] = None


@dataclass
class ParallelSweepReport(SweepReport):
    """A :class:`SweepReport` plus the per-run worker payloads."""

    metrics: Dict[RunKey, Dict[str, float]] = field(default_factory=dict)
    """Per-run flat metric snapshots (instrumented runs only)."""
    events: Dict[RunKey, List[TraceEvent]] = field(default_factory=dict)
    """Per-run trace events (``trace=True`` runs only)."""
    trace_dropped: Dict[RunKey, int] = field(default_factory=dict)
    faults: Dict[RunKey, dict] = field(default_factory=dict)
    """Per-run ``{counts, digest, summary}`` fault reports."""


# ------------------------------------------------------------ worker side

_WORKER_JOURNAL: Optional[str] = None
"""Sidecar journal path of *this* worker process (None in the parent)."""


def _init_worker(journal_base: Optional[str]) -> None:
    global _WORKER_JOURNAL
    _WORKER_JOURNAL = (
        ckpt.worker_journal_path(journal_base, os.getpid())
        if journal_base is not None
        else None
    )


def _execute_point(point: RunPoint, options: ExecOptions) -> dict:
    """Run one point; always returns a payload dict (never raises).

    Runs in a worker's main thread, so the SIGALRM timeout guard in
    :func:`~repro.sim.runner.run_hardened` still works.  Ordinary
    exceptions become ``status: "error"`` payloads for the parent's
    failure ledger; only a process death escapes (and the parent's
    crash isolation handles that).
    """
    telemetry = (
        Telemetry(sample_rate=options.trace_sample)
        if options.instrument
        else None
    )
    injector = (
        options.fault_spec.build(scope=point.scope, telemetry=telemetry)
        if options.fault_spec is not None
        else None
    )
    try:
        factory = SCHEME_BUILDERS[point.scheme](
            point.threshold, **dict(point.scheme_kwargs)
        )
        target = resolve_workload(point.workload, seed=point.seed)
        # Looked up through the module so test seams (monkeypatching
        # runner.run_hardened) keep working under the executor.
        result = runner.run_hardened(
            factory,
            target,
            epochs=point.epochs,
            telemetry=telemetry,
            fault_injector=injector,
            timeout_s=options.timeout_s,
            retries=options.retries,
            backoff_s=options.backoff_s,
        )
    except KeyboardInterrupt:
        raise
    except Exception as exc:
        return {
            "status": "error",
            "error": f"{type(exc).__name__}: {exc}",
            "attempts": options.retries + 1,
        }
    payload: dict = {"status": "ok", "result": result.to_dict()}
    if telemetry is not None:
        telemetry.collect()
        payload["metrics"] = telemetry.registry.snapshot()
        if options.trace:
            payload["events"] = telemetry.tracer.events()
            payload["trace_dropped"] = telemetry.tracer.dropped
    if injector is not None:
        payload["faults"] = {
            "counts": injector.counts(),
            "digest": injector.schedule_digest(),
            "summary": injector.summary(),
        }
    if _WORKER_JOURNAL is not None:
        ckpt.append_result_record(
            _WORKER_JOURNAL, point.label, point.workload, payload["result"]
        )
    return payload


def _execute_chunk(
    chunk: List[RunPoint], options: ExecOptions
) -> List[dict]:
    """Run a batch of points in one worker task (same order, same
    payloads as point-at-a-time submission -- only the dispatch
    overhead is amortized)."""
    return [_execute_point(point, options) for point in chunk]


# ------------------------------------------------------------ parent side

#: Pool tasks submitted per worker.  One task per point maximises
#: balance but pays per-task pickle/dispatch overhead on every point;
#: one task per worker amortises best but lets a slow chunk idle the
#: other workers.  Four chunks per worker keeps dispatch cost ~O(jobs)
#: while bounding tail imbalance to ~1/4 of a worker's share.
_CHUNKS_PER_WORKER = 4


def _chunk_points(
    pending: List[RunPoint], jobs: int
) -> List[List[RunPoint]]:
    """Split points into at most ``jobs * _CHUNKS_PER_WORKER``
    contiguous batches, preserving grid order within each batch."""
    if not pending:
        return []
    size = max(1, -(-len(pending) // (jobs * _CHUNKS_PER_WORKER)))
    return [
        pending[i:i + size] for i in range(0, len(pending), size)
    ]


def _prewarm_trace_cache(points: List[RunPoint]) -> None:
    """Generate each distinct epoch trace once, in the parent.

    Fork-started worker processes (the default on Linux) inherit the
    warm memo cache, so a grid sweeping many schemes over few
    workloads generates each trace once instead of once per worker.
    Spawn-started platforms simply regenerate in the workers --
    traces are pure functions of their key, so correctness never
    depends on the cache.  Failures (unknown workload names) are left
    for the worker, where they produce a proper failure payload.
    """
    seen = set()
    for point in points:
        key = (point.workload, point.seed, point.epochs)
        if key in seen:
            continue
        seen.add(key)
        try:
            target = resolve_workload(point.workload, seed=point.seed)
            for epoch in range(point.epochs):
                target.epoch_trace(epoch)
        except Exception:
            continue


def _run_pool(
    pending: List[RunPoint],
    jobs: int,
    options: ExecOptions,
    journal_base: Optional[str],
) -> Dict[RunKey, dict]:
    """Fan points out to a worker pool; isolate crashers on pool break."""
    payloads: Dict[RunKey, dict] = {}
    implicated: List[RunPoint] = []
    with ProcessPoolExecutor(
        max_workers=jobs,
        initializer=_init_worker,
        initargs=(journal_base,),
    ) as pool:
        futures = {}
        for chunk in _chunk_points(pending, jobs):
            try:
                futures[pool.submit(_execute_chunk, chunk, options)] = chunk
            except BrokenExecutor:
                implicated.extend(chunk)
        for future in as_completed(futures):
            chunk = futures[future]
            try:
                chunk_payloads = future.result()
            except BrokenExecutor:
                # A worker died somewhere in this chunk; every point in
                # it is implicated until the journal or a solo re-run
                # clears it.
                implicated.extend(chunk)
                continue
            for point, payload in zip(chunk, chunk_payloads):
                payloads[point.key] = payload
    if not implicated:
        return payloads
    # Crash isolation: a dead worker broke the shared pool, poisoning
    # every in-flight future.  Before re-running anything, salvage runs
    # that finished and were durably journaled to a sidecar but whose
    # futures were poisoned before reporting -- re-executing those
    # would both waste work and double-count against the checkpoint.
    # (Salvaged payloads carry the result only; per-run metrics/trace
    # payloads died with the worker, exactly as for resumed runs.)
    journaled: Dict[RunKey, dict] = {}
    if journal_base is not None:
        for path in ckpt.worker_journal_paths(journal_base):
            records, _ = ckpt.load_result_records(path)
            for scheme, workload, result in records:
                journaled[(scheme, workload)] = result.to_dict()
    # Then re-run each remaining implicated point alone in a
    # single-worker pool (original order): bystanders complete, and the
    # point whose run genuinely kills its process is blamed for certain.
    blamed = {point.key for point in implicated}
    for point in pending:
        if point.key not in blamed or point.key in payloads:
            continue
        if point.key in journaled:
            payloads[point.key] = {
                "status": "ok",
                "result": journaled[point.key],
            }
            continue
        try:
            with ProcessPoolExecutor(
                max_workers=1,
                initializer=_init_worker,
                initargs=(journal_base,),
            ) as solo:
                payloads[point.key] = solo.submit(
                    _execute_point, point, options
                ).result()
        except BrokenExecutor:
            payloads[point.key] = {
                "status": "error",
                "error": "WorkerCrash: worker process died executing "
                         "this run",
                "attempts": 1,
            }
    return payloads


def run_sweep_parallel(
    points: Iterable[RunPoint],
    jobs: int = 1,
    *,
    checkpoint: Optional[SweepCheckpoint] = None,
    telemetry: Optional[Telemetry] = None,
    instrument: bool = False,
    trace: bool = False,
    trace_sample: float = 1.0,
    fault_spec: Optional[FaultSpec] = None,
    injector_factory: Optional[Callable] = None,
    timeout_s: float = 0.0,
    retries: int = 0,
    backoff_s: float = 0.5,
    progress: Optional[Callable[[str, str, str], None]] = None,
) -> ParallelSweepReport:
    """Run a sweep grid across ``jobs`` worker processes.

    ``jobs=1`` executes the identical per-point code inline (no pool),
    which is both the fast path for small grids and the reference
    output the determinism CI check diffs ``--jobs 4`` against.

    ``telemetry``, when given, receives every worker's metric snapshot
    via :meth:`~repro.telemetry.metrics.MetricsRegistry.merge_flat`
    (merged in run-key order; counters sum exactly, merged gauges
    become sums).  ``fault_spec`` -- never a live injector -- derives a
    per-run-point injector inside each worker, so chaos schedules are
    a pure function of (seed, label/workload) regardless of worker
    assignment.  Passing ``injector_factory`` is a :class:`ConfigError`:
    live ``FaultInjector`` streams are not process-safe.
    """
    if injector_factory is not None:
        raise ConfigError(
            "run_sweep_parallel cannot use a live injector_factory: "
            "FaultInjector PRNG streams are not process-safe (forked "
            "streams would desynchronise the schedule). Pass "
            "fault_spec=FaultSpec(...) so each worker derives its own "
            "per-run-point injector."
        )
    if jobs < 1:
        raise ConfigError(f"jobs must be >= 1 (got {jobs})")
    points = list(points)
    keys = [point.key for point in points]
    if len(set(keys)) != len(keys):
        raise ConfigError(
            "duplicate (label, workload) run points would collide in "
            "the checkpoint; give repeated schemes distinct labels"
        )
    options = ExecOptions(
        timeout_s=timeout_s,
        retries=retries,
        backoff_s=backoff_s,
        instrument=instrument or trace or telemetry is not None,
        trace=trace,
        trace_sample=trace_sample,
        fault_spec=fault_spec,
    )
    report = ParallelSweepReport()
    if checkpoint is not None:
        # Leftover sidecars from a killed parallel run hold finished
        # work; fold them in before deciding what still needs running.
        ckpt.absorb_worker_journals(checkpoint)
    pending: List[RunPoint] = []
    for point in points:
        if checkpoint is not None and checkpoint.has(*point.key):
            report.results[point.key] = checkpoint.completed[point.key]
            report.resumed += 1
            if progress is not None:
                progress(point.label, point.workload, "resumed")
        else:
            pending.append(point)
    if jobs == 1:
        payloads: Dict[RunKey, dict] = {}
        for point in pending:
            payload = _execute_point(point, options)
            payloads[point.key] = payload
            if payload["status"] == "ok" and checkpoint is not None:
                checkpoint.record(
                    point.label,
                    point.workload,
                    WorkloadResult.from_dict(payload["result"]),
                )
    else:
        if pending:
            _prewarm_trace_cache(pending)
        payloads = _run_pool(
            pending,
            jobs,
            options,
            checkpoint.path if checkpoint is not None else None,
        )
    # Deterministic merge: walk the grid order, not completion order.
    for point in points:
        payload = payloads.get(point.key)
        if payload is None:
            continue
        if payload["status"] != "ok":
            report.failures.append(
                RunFailure(
                    scheme=point.label,
                    workload=point.workload,
                    error=payload.get("error", "unknown worker error"),
                    attempts=int(payload.get("attempts", 1)),
                )
            )
            if progress is not None:
                progress(point.label, point.workload, "failed")
            continue
        result = WorkloadResult.from_dict(payload["result"])
        report.results[point.key] = result
        if checkpoint is not None and not checkpoint.has(*point.key):
            checkpoint.record(point.label, point.workload, result)
        if "metrics" in payload:
            report.metrics[point.key] = payload["metrics"]
            if telemetry is not None:
                telemetry.registry.merge_flat(payload["metrics"])
        if "events" in payload:
            report.events[point.key] = payload["events"]
            report.trace_dropped[point.key] = payload.get(
                "trace_dropped", 0
            )
        if "faults" in payload:
            report.faults[point.key] = payload["faults"]
        if progress is not None:
            progress(point.label, point.workload, "ok")
    if checkpoint is not None:
        # Consolidation is complete; the sidecars are now redundant.
        for path in ckpt.worker_journal_paths(checkpoint.path):
            os.remove(path)
    return report
