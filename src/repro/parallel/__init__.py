"""Process-parallel sweep execution.

:func:`run_sweep_parallel` fans a (scheme x workload x threshold) grid
of :class:`RunPoint` s out to worker processes and merges the results
deterministically -- parallel output is byte-identical to serial
output for the same seeds.  See :mod:`repro.parallel.executor` for the
invariants (deterministic merge, sidecar checkpoint journals, crash
isolation) and DESIGN.md §9 for the architecture.
"""

from repro.parallel.executor import (
    ExecOptions,
    ParallelSweepReport,
    RunPoint,
    expand_grid,
    resolve_workload,
    run_sweep_parallel,
)

__all__ = [
    "ExecOptions",
    "ParallelSweepReport",
    "RunPoint",
    "expand_grid",
    "resolve_workload",
    "run_sweep_parallel",
]
