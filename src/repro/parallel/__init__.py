"""Process-parallel sweep execution.

:func:`run_sweep_parallel` fans a (scheme x workload x threshold) grid
of :class:`RunPoint` s out to worker processes and merges the results
deterministically -- parallel output is byte-identical to serial
output for the same seeds.  See :mod:`repro.parallel.executor` for the
invariants (deterministic merge, sidecar checkpoint journals, crash
isolation) and DESIGN.md §9 for the architecture.

:mod:`repro.parallel.results` renders the canonical results document
shared by ``repro sweep --out``, the service result cache, and the CI
determinism diffs.
"""

from repro.parallel.executor import (
    ExecOptions,
    ParallelSweepReport,
    RunPoint,
    expand_grid,
    resolve_workload,
    run_sweep_parallel,
)
from repro.parallel.results import (
    build_results_document,
    render_results_document,
    write_results_document,
)

__all__ = [
    "ExecOptions",
    "ParallelSweepReport",
    "RunPoint",
    "build_results_document",
    "expand_grid",
    "render_results_document",
    "resolve_workload",
    "run_sweep_parallel",
    "write_results_document",
]
