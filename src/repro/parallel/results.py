"""The canonical sweep results document.

One document shape is produced by three paths that must agree byte for
byte: ``repro sweep --out``, the service's result cache (what ``repro
fetch`` returns), and the CI determinism diffs.  Centralizing the
builder and the renderer here is what makes "a cached service result
is byte-identical to a direct CLI run" a structural property instead
of a test hope: both sides call the same two functions.

Everything in the document is a pure function of the sweep's inputs --
no timestamps, hostnames, worker counts, or completion-order artifacts.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.sim.runner import SweepReport

RESULTS_DOCUMENT_VERSION = 1


def build_results_document(
    meta: dict, points: Iterable, report: SweepReport
) -> dict:
    """Assemble the results document for one completed sweep.

    ``points`` fixes the result order (the grid expansion order), so
    the document is identical no matter how the sweep was executed
    (serial, ``--jobs N``, or via the service).
    """
    results: List[dict] = []
    for point in points:
        if point.key in report.results:
            results.append(
                {
                    "scheme": point.label,
                    "workload": point.workload,
                    "result": report.results[point.key].to_dict(),
                }
            )
    return {
        "meta": dict(meta),
        "results": results,
        "failures": [
            {
                "scheme": failure.scheme,
                "workload": failure.workload,
                "error": failure.error,
                "attempts": failure.attempts,
            }
            for failure in report.failures
        ],
    }


def render_results_document(document: dict) -> str:
    """The document's one canonical text form (sorted keys, 2-space
    indent, trailing newline) -- the exact bytes ``--out`` writes and
    the cache stores."""
    import json

    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def write_results_document(path: str, document: dict) -> None:
    """Write the canonical rendering of ``document`` to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(render_results_document(document))
