"""Table backends: SRAM tables (Sec. IV) and memory-mapped tables (Sec. V).

Every memory access must resolve "where does this row live?".  The two
backends answer with different storage/latency trade-offs:

* :class:`SramTables` -- FPT (CAT) and RPT in SRAM, 172 KB per rank.
  Constant-latency lookups (3-4 cycles).
* :class:`MemoryMappedTables` -- FPT/RPT in DRAM, fronted by a 16 KB
  resettable bloom filter and a 16 KB FPT-Cache, ~32 KB of SRAM total.
  Lookups resolve through the filter chain of Fig. 8 and are classified
  into the four categories of Fig. 10: bloom-filtered, FPT-Cache hit,
  singleton-filtered, and DRAM access.

Both implement the same ``TableBackend`` interface consumed by the AQUA
orchestrator.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass
from typing import Optional

from repro.core.bloom import ResettableBloomFilter
from repro.core.fpt import (
    DEFAULT_FPT_CAPACITY,
    DramForwardPointerTable,
    ForwardPointerTable,
)
from repro.core.fpt_cache import FptCache
from repro.core.rpt import ReversePointerTable
from repro.dram.timing import DDR4Timing, DDR4_2400
from repro.faults import NULL_INJECTOR


class LookupOutcome(enum.Enum):
    """How an FPT lookup was resolved (the categories of Fig. 10)."""

    SRAM = "sram"
    BLOOM_FILTERED = "bloom_filtered"
    CACHE_HIT = "cache_hit"
    SINGLETON = "singleton"
    DRAM_ACCESS = "dram_access"


@dataclass
class TableLookup:
    """Result of resolving one row through the mapping tables."""

    slot: Optional[int]
    """RQA slot if the row is quarantined, else ``None``."""
    outcome: LookupOutcome
    latency_ns: float
    table_row: Optional[int] = None
    """Physical row of the in-DRAM FPT touched, if a DRAM access occurred."""
    dram_accesses: int = 0
    """In-DRAM FPT reads performed (batch lookups may count several)."""


class TableBackend(abc.ABC):
    """Interface the AQUA orchestrator uses to maintain row locations."""

    @abc.abstractmethod
    def lookup(self, row_id: int) -> TableLookup:
        """Resolve ``row_id`` to its quarantine slot (or none)."""

    @abc.abstractmethod
    def on_quarantine(self, row_id: int, slot: int) -> float:
        """Record ``row_id`` -> ``slot``; return table-update latency (ns)."""

    @abc.abstractmethod
    def on_release(self, row_id: int) -> float:
        """Invalidate ``row_id``'s mapping; return update latency (ns)."""

    @abc.abstractmethod
    def sram_bytes(self) -> int:
        """SRAM footprint of the backend's structures."""


class SramTables(TableBackend):
    """FPT and RPT held entirely in SRAM (Sec. IV-C)."""

    #: 3-4 memory-controller cycles at ~2.5 GHz (Sec. IV-G).
    LOOKUP_NS = 1.5

    def __init__(
        self,
        rqa_slots: int,
        fpt_capacity: int = DEFAULT_FPT_CAPACITY,
    ) -> None:
        self.fpt = ForwardPointerTable(capacity=fpt_capacity)
        self.rqa_slots = rqa_slots

    def lookup(self, row_id: int) -> TableLookup:
        slot = self.fpt.lookup(row_id)
        return TableLookup(
            slot=slot, outcome=LookupOutcome.SRAM, latency_ns=self.LOOKUP_NS
        )

    def lookup_batch(self, row_id: int, n: int) -> TableLookup:
        """Resolve ``n`` back-to-back accesses to ``row_id``."""
        lookup = self.lookup(row_id)
        if n > 1:
            self.fpt.lookups += n - 1
            if lookup.slot is not None:
                self.fpt.hits += n - 1
        return lookup

    def on_quarantine(self, row_id: int, slot: int) -> float:
        self.fpt.insert(row_id, slot)
        return self.LOOKUP_NS

    def on_release(self, row_id: int) -> float:
        self.fpt.remove(row_id)
        return self.LOOKUP_NS

    def sram_bytes(self) -> int:
        return ForwardPointerTable.sram_bytes(
            self.fpt.capacity
        ) + ReversePointerTable.sram_bytes(self.rqa_slots)


class MemoryMappedTables(TableBackend):
    """Bloom filter + FPT-Cache + in-DRAM FPT/RPT (Fig. 8)."""

    BLOOM_NS = 0.5
    CACHE_NS = 1.5

    def __init__(
        self,
        total_rows: int,
        rqa_slots: int,
        bloom_group_size: int = 16,
        fpt_cache_entries: int = 4096,
        table_base_row: Optional[int] = None,
        timing: DDR4Timing = DDR4_2400,
        row_bytes: int = 8 * 1024,
    ) -> None:
        self.total_rows = total_rows
        self.rqa_slots = rqa_slots
        self.bloom = ResettableBloomFilter(total_rows, bloom_group_size)
        self.cache = FptCache(
            num_entries=fpt_cache_entries, group_size=bloom_group_size
        )
        self.dram_fpt = DramForwardPointerTable(total_rows)
        self.table_base_row = table_base_row
        self.row_bytes = row_bytes
        #: One DRAM read: precharge + activate + CAS.
        self.dram_lookup_ns = timing.trp_ns + timing.trcd_ns + timing.tcl_ns
        self.rpt_dram_accesses = 0
        self.false_positive_dram_lookups = 0
        self.outcome_counts = {outcome: 0 for outcome in LookupOutcome}
        #: Fault-injection sink (attached by the owning scheme).  Two
        #: sites bite here: ``fpt_cache_corrupt`` drops a cached entry
        #: (detected corruption) and ``fpt_cache_miss`` forces the
        #: lookup past the cache -- both degrade to the in-DRAM FPT,
        #: never to a wrong mapping.
        self.faults = NULL_INJECTOR
        self.forced_misses = 0
        #: Simulated-time source for fault events (lent by the scheme).
        self.clock = lambda: 0.0

    # ---------------------------------------------------------------- helpers

    def _table_row_of(self, row_id: int) -> Optional[int]:
        """Physical row storing the FPT line for ``row_id``.

        Returns ``None`` when the backend was built without a physical
        placement for the table (pure counting mode).
        """
        if self.table_base_row is None:
            return None
        line = self.dram_fpt.line_of(row_id)
        lines_per_row = self.row_bytes // DramForwardPointerTable.LINE_BYTES
        return self.table_base_row + line // lines_per_row

    def _group_rows(self, row_id: int) -> range:
        group = self.bloom.group_of(row_id)
        start = group * self.bloom.group_size
        return range(start, min(start + self.bloom.group_size, self.total_rows))

    def _refresh_group_singleton(self, row_id: int) -> None:
        """Recompute the singleton bit for ``row_id``'s group.

        If the group now has exactly one valid entry, mark that entry
        singleton (when cached); otherwise clear all its cached bits.
        """
        group = self.bloom.group_of(row_id)
        count = self.bloom.group_valid_count(row_id)
        self.cache.set_group_singleton(group, count == 1)

    # ----------------------------------------------------------------- lookup

    def lookup(self, row_id: int) -> TableLookup:
        if not self.bloom.maybe_quarantined(row_id):
            self.outcome_counts[LookupOutcome.BLOOM_FILTERED] += 1
            return TableLookup(
                slot=None,
                outcome=LookupOutcome.BLOOM_FILTERED,
                latency_ns=self.BLOOM_NS,
            )
        faults = self.faults
        forced_miss = False
        if faults.enabled:
            now = self.clock()
            if faults.inject("fpt_cache_corrupt", ts_ns=now, row=row_id):
                self.cache.corrupt(row_id)
            forced_miss = faults.inject("fpt_cache_miss", ts_ns=now, row=row_id)
            if forced_miss:
                self.forced_misses += 1
                self.cache.misses += 1
        slot = None if forced_miss else self.cache.lookup(row_id)
        if slot is not None:
            self.outcome_counts[LookupOutcome.CACHE_HIT] += 1
            return TableLookup(
                slot=slot,
                outcome=LookupOutcome.CACHE_HIT,
                latency_ns=self.BLOOM_NS + self.CACHE_NS,
            )
        if not forced_miss and self.cache.covered_by_singleton(row_id):
            self.outcome_counts[LookupOutcome.SINGLETON] += 1
            return TableLookup(
                slot=None,
                outcome=LookupOutcome.SINGLETON,
                latency_ns=self.BLOOM_NS + 2 * self.CACHE_NS,
            )
        slot = self.dram_fpt.read(row_id)
        self.outcome_counts[LookupOutcome.DRAM_ACCESS] += 1
        if slot is None:
            self.false_positive_dram_lookups += 1
            # The DRAM read returned the whole 64-byte FPT line, so if
            # the group holds exactly one valid entry we can install it
            # (singleton bit set) at no extra cost: future accesses to
            # any other row of this group will singleton-filter instead
            # of re-reading DRAM (Sec. V-D).
            if self.bloom.group_valid_count(row_id) == 1:
                for other in self._group_rows(row_id):
                    other_slot = self.dram_fpt.peek(other)
                    if other_slot is not None:
                        self.cache.install(other, other_slot, singleton=True)
                        break
        else:
            self.cache.install(
                row_id,
                slot,
                singleton=self.bloom.group_valid_count(row_id) == 1,
            )
        return TableLookup(
            slot=slot,
            outcome=LookupOutcome.DRAM_ACCESS,
            latency_ns=self.BLOOM_NS + 2 * self.CACHE_NS + self.dram_lookup_ns,
            table_row=self._table_row_of(row_id),
            dram_accesses=1,
        )

    def lookup_batch(self, row_id: int, n: int) -> TableLookup:
        """Resolve ``n`` back-to-back accesses to ``row_id``.

        Performs one real lookup; the remaining ``n - 1`` accesses are
        classified by what repeated accesses to the same row would see:
        bloom-filtered rows stay filtered; a quarantined row fetched
        from DRAM is cached, so its repeats hit the FPT-Cache; a
        bloom false positive with *no* valid entry has nothing to cache,
        so every repeat pays the DRAM lookup (the cost the singleton
        optimisation exists to kill).
        """
        first = self.lookup(row_id)
        rest = n - 1
        if rest <= 0:
            return first
        counts = self.outcome_counts
        if first.outcome is LookupOutcome.BLOOM_FILTERED:
            counts[LookupOutcome.BLOOM_FILTERED] += rest
            self.bloom.queries += rest
            self.bloom.filtered += rest
        elif first.outcome is LookupOutcome.SINGLETON:
            counts[LookupOutcome.SINGLETON] += rest
            self.bloom.queries += rest
            self.cache.misses += rest
            self.cache.singleton_filtered += rest
        elif first.slot is not None:
            # Cache hit, or a DRAM fetch that installed the entry:
            # repeats hit the FPT-Cache.
            counts[LookupOutcome.CACHE_HIT] += rest
            self.bloom.queries += rest
            self.cache.hits += rest
        elif self.bloom.group_valid_count(row_id) == 1:
            # False positive in a singleton group: the first DRAM read
            # installed the group's entry, so repeats singleton-filter.
            counts[LookupOutcome.SINGLETON] += rest
            self.bloom.queries += rest
            self.cache.misses += rest
            self.cache.singleton_filtered += rest
        else:
            # False positive in a multi-entry group: nothing cacheable
            # for this row, so every repeat pays the DRAM lookup.
            counts[LookupOutcome.DRAM_ACCESS] += rest
            self.bloom.queries += rest
            self.cache.misses += rest
            self.dram_fpt.dram_reads += rest
            self.false_positive_dram_lookups += rest
            first.dram_accesses += rest
        return first

    # ---------------------------------------------------------------- updates

    def on_quarantine(self, row_id: int, slot: int) -> float:
        already_mapped = self.dram_fpt.peek(row_id) is not None
        self.dram_fpt.write(row_id, slot)
        if not already_mapped:
            self.bloom.on_insert(row_id)
        self.rpt_dram_accesses += 1
        count = self.bloom.group_valid_count(row_id)
        self.cache.install(row_id, slot, singleton=count == 1)
        if count > 1:
            self.cache.set_group_singleton(self.bloom.group_of(row_id), False)
        return 2 * self.dram_lookup_ns  # FPT write + RPT write

    def on_release(self, row_id: int) -> float:
        if self.dram_fpt.peek(row_id) is None:
            return 0.0
        self.dram_fpt.write(row_id, None)
        self.bloom.on_invalidate(row_id)
        self.cache.invalidate(row_id)
        self.rpt_dram_accesses += 1
        self._refresh_group_singleton(row_id)
        return 2 * self.dram_lookup_ns

    # ------------------------------------------------------------------ stats

    def sram_bytes(self) -> int:
        return self.bloom.sram_bytes + self.cache.sram_bytes

    def lookup_breakdown(self) -> dict:
        """Fraction of lookups per outcome (the series of Fig. 10)."""
        total = sum(self.outcome_counts.values())
        if total == 0:
            return {outcome: 0.0 for outcome in LookupOutcome}
        return {
            outcome: count / total
            for outcome, count in self.outcome_counts.items()
        }
