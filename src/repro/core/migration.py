"""Row-migration cost model (Sec. IV-D).

Centralises the latency arithmetic the paper walks through:

* Streaming one 8 KB row between DRAM and the copy-buffer takes one
  activation (45 ns) plus 128 line transfers at 5 ns: **685 ns**.
* A migration is one row-read plus one row-write: **1.37 us**.
* A migration whose destination holds stale valid data first drains the
  old row home: **2.74 us** total.

These helpers simply delegate to :class:`~repro.dram.timing.DDR4Timing`
so alternative geometries/speed grades flow through consistently; they
exist as the single documented place for the Sec. IV-D numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.timing import DDR4Timing, DDR4_2400


@dataclass(frozen=True)
class MigrationCosts:
    """Latency components of quarantine operations for one row size."""

    row_bytes: int
    transfer_ns: float
    migration_ns: float
    migration_with_eviction_ns: float

    @staticmethod
    def for_row(
        row_bytes: int = 8 * 1024, timing: DDR4Timing = DDR4_2400
    ) -> "MigrationCosts":
        """Compute the Sec. IV-D costs for ``row_bytes`` rows."""
        return MigrationCosts(
            row_bytes=row_bytes,
            transfer_ns=timing.row_transfer_ns(row_bytes),
            migration_ns=timing.migration_ns(row_bytes),
            migration_with_eviction_ns=timing.migration_with_eviction_ns(
                row_bytes
            ),
        )

    def interrupted_attempt_ns(self, attempt: int) -> float:
        """Channel time wasted by the ``attempt``-th interrupted transfer.

        An interruption aborts the destination *write*; the copy-buffer
        read had already completed, so one row transfer is lost, plus an
        exponential backoff (in units of the transfer time, capped at
        8x) before the retry is issued.  The source row is untouched and
        the mapping tables were never updated: the operation rolls back
        to "row still home" at this cost (DESIGN.md §8).
        """
        if attempt < 1:
            raise ValueError("attempt must be >= 1")
        backoff_units = min(8, 1 << (attempt - 1))
        return self.transfer_ns * (1 + backoff_units)

    @property
    def swap_ns(self) -> float:
        """Cost of an RRS-style swap: two reads and two writes.

        A swap migrates both rows of the pair, costing twice a one-way
        AQUA migration (Sec. I: "half as much time ... compared to
        swapping two rows").
        """
        return 2.0 * self.migration_ns


DEFAULT_COSTS = MigrationCosts.for_row()
"""Costs for the baseline 8 KB row on DDR4-2400."""


def publish_costs(telemetry, costs: MigrationCosts, scheme: str) -> None:
    """Expose a scheme's configured migration costs as gauges.

    Called once at scheme construction (when telemetry is enabled) so
    traces and metric dumps are self-describing: the per-event
    ``busy_ns`` values can be cross-checked against the Sec. IV-D
    constants that produced them.
    """
    gauge = telemetry.registry.gauge
    gauge("migration_cost_ns").set(costs.migration_ns, scheme=scheme)
    gauge("migration_with_eviction_cost_ns").set(
        costs.migration_with_eviction_ns, scheme=scheme
    )
    gauge("row_transfer_cost_ns").set(costs.transfer_ns, scheme=scheme)
    gauge("row_bytes").set(costs.row_bytes, scheme=scheme)
