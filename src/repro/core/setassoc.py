"""Plain set-associative table: the ablation baseline for the CAT.

Sec. IV-C argues the FPT "must be able to hold such entries without any
set-conflicts", motivating the collision-avoidance table.  This module
provides the design it is compared against: a conventional
set-associative table that *evicts* on set conflict.  For an FPT, an
eviction silently un-maps a quarantined row -- a correctness disaster --
so the ablation measures how many entries a plain table can hold before
its first forced eviction, versus the CAT's near-capacity load.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.cat import _mix


class SetAssociativeTable:
    """Fixed-geometry set-associative map with LRU eviction on conflict."""

    def __init__(self, capacity: int, ways: int = 8, seed: int = 0x5E7A) -> None:
        if capacity < ways or capacity % ways != 0:
            raise ValueError("capacity must be a positive multiple of ways")
        self.capacity = capacity
        self.ways = ways
        self.num_sets = capacity // ways
        self._seed = _mix(seed, 0xF00D)
        # sets[i]: insertion-ordered dict (oldest first = LRU victim).
        self._sets: List[Dict[int, object]] = [
            dict() for _ in range(self.num_sets)
        ]
        self.evictions = 0

    def _set_of(self, key: int) -> Dict[int, object]:
        return self._sets[_mix(key, self._seed) % self.num_sets]

    def lookup(self, key: int) -> Optional[object]:
        """Value for ``key`` or ``None`` (refreshes LRU position)."""
        bucket = self._set_of(key)
        if key not in bucket:
            return None
        value = bucket.pop(key)
        bucket[key] = value
        return value

    def insert(self, key: int, value: object) -> Optional[int]:
        """Insert ``key``; returns the evicted key on set conflict."""
        bucket = self._set_of(key)
        if key in bucket:
            bucket.pop(key)
            bucket[key] = value
            return None
        evicted = None
        if len(bucket) >= self.ways:
            evicted = next(iter(bucket))
            del bucket[evicted]
            self.evictions += 1
        bucket[key] = value
        return evicted

    def remove(self, key: int) -> bool:
        bucket = self._set_of(key)
        if key in bucket:
            del bucket[key]
            return True
        return False

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._sets)

    def load_at_first_eviction(self, keys) -> int:
        """Insert ``keys`` until the first forced eviction; return count.

        The ablation metric: how much of the table's capacity is usable
        before a conflict would silently drop a quarantined row's
        mapping.
        """
        inserted = 0
        for key in keys:
            if self.insert(key, inserted) is not None:
                return inserted
            inserted += 1
        return inserted
