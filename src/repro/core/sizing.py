"""Row Quarantine Area sizing: Equations 1-3 and Table III.

For security, no RQA slot may be reused within one refresh window
(64 ms), so the RQA must hold every row that can possibly be
quarantined in that window.  The bound (Sec. IV-E):

* Triggering one migration needs ``A`` activations taking
  ``t_AGG = A * tRC``                                   (Eq. 1)
* Attacking all ``B`` banks concurrently, ``B`` rows migrate per
  ``t_B = t_AGG + B * t_mov``                            (Eq. 2)
* So at most
  ``R_max = tREFW * B / (t_AGG + B * t_mov)``            (Eq. 3)
  rows can enter the RQA per refresh window.

With ``A = 500`` (half of T_RH = 1K), ``B = 16`` and DDR4-2400 timing,
``R_max = 23,053`` rows = 180 MB = 1.1 % of a 16 GB rank.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.dram.geometry import DramGeometry, DEFAULT_GEOMETRY
from repro.dram.timing import DDR4Timing, DDR4_2400


def aggression_time_ns(effective_threshold: int, timing: DDR4Timing = DDR4_2400) -> float:
    """Equation 1: time to inflict enough ACTs to trigger one migration."""
    if effective_threshold < 1:
        raise ValueError("effective threshold must be >= 1")
    return effective_threshold * timing.trc_ns


def batch_time_ns(
    effective_threshold: int,
    banks: int = 16,
    timing: DDR4Timing = DDR4_2400,
    row_bytes: int = 8 * 1024,
) -> float:
    """Equation 2: time for ``banks`` concurrent rows to trigger and migrate."""
    if banks < 1:
        raise ValueError("banks must be >= 1")
    t_agg = aggression_time_ns(effective_threshold, timing)
    return t_agg + banks * timing.migration_ns(row_bytes)


def rqa_rows(
    effective_threshold: int,
    banks: int = 16,
    timing: DDR4Timing = DDR4_2400,
    row_bytes: int = 8 * 1024,
) -> int:
    """Equation 3: maximum migrations per refresh window = RQA size.

    Rounded up: under-provisioning by even one row would allow intra-
    epoch slot reuse, which is the security failure mode.
    """
    t_b = batch_time_ns(effective_threshold, banks, timing, row_bytes)
    return math.ceil(timing.trefw_ns * banks / t_b)


@dataclass(frozen=True)
class RqaSizing:
    """One row of Table III: RQA size at a given effective threshold."""

    effective_threshold: int
    rows: int
    size_mb: float
    dram_overhead: float

    @staticmethod
    def for_threshold(
        effective_threshold: int,
        geometry: DramGeometry = DEFAULT_GEOMETRY,
        timing: DDR4Timing = DDR4_2400,
    ) -> "RqaSizing":
        """Compute the sizing row for ``effective_threshold``."""
        rows = rqa_rows(
            effective_threshold,
            banks=geometry.banks_per_rank,
            timing=timing,
            row_bytes=geometry.row_bytes,
        )
        size_mb = rows * geometry.row_bytes / (1024 * 1024)
        overhead = rows / geometry.rows_per_rank
        return RqaSizing(effective_threshold, rows, size_mb, overhead)


TABLE_III_THRESHOLDS = (1000, 500, 250, 125, 50, 1)
"""Effective thresholds evaluated in Table III of the paper."""


def table_iii(
    geometry: DramGeometry = DEFAULT_GEOMETRY,
    timing: DDR4Timing = DDR4_2400,
) -> List[RqaSizing]:
    """Regenerate Table III: quarantine size as the threshold varies."""
    return [
        RqaSizing.for_threshold(threshold, geometry, timing)
        for threshold in TABLE_III_THRESHOLDS
    ]


def default_rqa_rows(
    rowhammer_threshold: int = 1000,
    geometry: DramGeometry = DEFAULT_GEOMETRY,
    timing: DDR4Timing = DDR4_2400,
) -> int:
    """RQA rows for a Rowhammer threshold, using ``A = T_RH / 2``."""
    effective = max(1, rowhammer_threshold // 2)
    return rqa_rows(
        effective,
        banks=geometry.banks_per_rank,
        timing=timing,
        row_bytes=geometry.row_bytes,
    )
