"""Canonical serialization: one byte representation per value.

The service's content-addressed result cache, the sweep checkpoint
journal, and the job store all need the same property: serializing the
same logical value twice -- in different processes, on different days --
must produce the *same bytes*, because those bytes are hashed into
cache keys and diffed by CI.  ``json.dumps`` alone does not guarantee
that (key order and separators are caller choices), so every record
that is hashed or diffed goes through :func:`canonical_dumps`.

Rules:

* keys sorted, separators fixed (``","``/``":"``), ASCII-only output;
* only JSON-native types plus tuples (normalized to lists); anything
  else is a :class:`~repro.errors.ConfigError` at serialization time,
  not a silent ``repr`` fallback that would destabilize digests;
* ``NaN``/``Infinity`` rejected (they are not JSON and round-trip
  differently across parsers).

:func:`content_digest` is the SHA-256 of the canonical encoding; the
first 16 hex characters (:func:`short_digest`) are what job IDs and
log lines display.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Any

from repro.errors import ConfigError

DIGEST_ABBREV = 16
"""Hex characters shown by :func:`short_digest` (64-bit prefix)."""


def _normalize(value: Any) -> Any:
    """Reduce ``value`` to JSON-native types, rejecting the rest."""
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        if math.isnan(value) or math.isinf(value):
            raise ConfigError(
                f"canonical serialization rejects non-finite float {value!r}"
            )
        return value
    if isinstance(value, (list, tuple)):
        return [_normalize(item) for item in value]
    if isinstance(value, dict):
        normalized = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise ConfigError(
                    f"canonical serialization requires str keys "
                    f"(got {type(key).__name__} key {key!r})"
                )
            normalized[key] = _normalize(item)
        return normalized
    raise ConfigError(
        f"canonical serialization cannot encode {type(value).__name__} "
        f"value {value!r}; convert it with to_dict() first"
    )


def canonical_dumps(value: Any) -> str:
    """Serialize ``value`` to its one canonical JSON string."""
    return json.dumps(
        _normalize(value),
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
        allow_nan=False,
    )


def content_digest(value: Any) -> str:
    """SHA-256 hex digest of the canonical encoding of ``value``."""
    return hashlib.sha256(canonical_dumps(value).encode("ascii")).hexdigest()


def short_digest(value: Any) -> str:
    """First :data:`DIGEST_ABBREV` hex chars of :func:`content_digest`."""
    return content_digest(value)[:DIGEST_ABBREV]
