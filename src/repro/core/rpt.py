"""Reverse-Pointer Table (RPT): RQA slot -> original row.

The RPT is a direct-mapped structure with one entry per quarantine slot
(Sec. IV-C).  Each entry holds a valid bit and the 21-bit original
address of the row occupying that slot, plus (in this model) the epoch
in which the slot was filled -- the datum behind the security rule that
*an RQA slot is never reused within the epoch it was filled*.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional


@dataclass
class RptEntry:
    """State of one quarantine slot.

    ``epoch`` records when the slot was *last filled* and is retained
    after invalidation: the no-intra-epoch-reuse rule applies to freed
    slots too (a slot vacated by an internal migration must still sit
    out the rest of its epoch).
    """

    valid: bool = False
    row_id: int = -1
    epoch: int = -1


class ReversePointerTable:
    """Direct-mapped slot -> row table with epoch tags."""

    def __init__(self, num_slots: int) -> None:
        if num_slots < 1:
            raise ValueError("num_slots must be >= 1")
        self.num_slots = num_slots
        self._entries: List[RptEntry] = [RptEntry() for _ in range(num_slots)]

    def _validate(self, slot: int) -> None:
        if not 0 <= slot < self.num_slots:
            raise ValueError(f"slot {slot} outside RPT of {self.num_slots}")

    def entry(self, slot: int) -> RptEntry:
        """The entry for ``slot`` (live object; do not mutate directly)."""
        self._validate(slot)
        return self._entries[slot]

    def is_valid(self, slot: int) -> bool:
        """Whether ``slot`` currently holds a quarantined row."""
        self._validate(slot)
        return self._entries[slot].valid

    def install(self, slot: int, row_id: int, epoch: int) -> None:
        """Record that ``row_id`` now occupies ``slot`` (filled in ``epoch``)."""
        self._validate(slot)
        if row_id < 0:
            raise ValueError("row_id must be non-negative")
        entry = self._entries[slot]
        entry.valid = True
        entry.row_id = row_id
        entry.epoch = epoch

    def invalidate(self, slot: int) -> Optional[int]:
        """Clear ``slot``; return the row it held, if any."""
        self._validate(slot)
        entry = self._entries[slot]
        if not entry.valid:
            return None
        row = entry.row_id
        entry.valid = False
        entry.row_id = -1
        # entry.epoch is retained: see RptEntry docstring.
        return row

    def resident_row(self, slot: int) -> Optional[int]:
        """Row occupying ``slot``, or ``None`` if the slot is free."""
        self._validate(slot)
        entry = self._entries[slot]
        return entry.row_id if entry.valid else None

    def valid_count(self) -> int:
        """Number of occupied slots."""
        return sum(1 for entry in self._entries if entry.valid)

    @staticmethod
    def sram_bytes(num_slots: int, row_pointer_bits: int = 21) -> int:
        """SRAM size: one valid bit + reverse pointer per slot.

        23K slots at 22 bits each is ~64 KB, matching Sec. IV-C.
        """
        return math.ceil(num_slots * (1 + row_pointer_bits) / 8)

    @staticmethod
    def dram_bytes(num_slots: int) -> int:
        """DRAM footprint when memory-mapped (~0.1 MB, Sec. V-A).

        Entries round up to 4 bytes for aligned in-DRAM layout.
        """
        return num_slots * 4
