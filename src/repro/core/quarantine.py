"""Row Quarantine Area (RQA): circular allocation with lazy drain.

The RQA is a region of physical rows, invisible to software, managed as
a circular buffer (Sec. IV-D): new quarantines always land at the slot
under the head pointer, which then advances.  Two policies give the
security guarantee:

* **No intra-epoch reuse** -- a slot filled in epoch ``e`` must not be
  reallocated in epoch ``e``.  Equation 3 sizes the RQA so the head
  pointer cannot lap itself within 64 ms; this module *checks* the
  invariant and raises :class:`RqaExhaustedError` if it would be broken.
* **Lazy drain** -- at epoch boundaries the RQA is not flushed (that
  would cost a bulk eviction).  Instead, when the head reaches a slot
  still holding a row quarantined in a *previous* epoch, that stale row
  is first moved back to its original location (a 1.37 us eviction paid
  by the allocation, for 2.74 us total, Sec. IV-D).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.rpt import ReversePointerTable
from repro.errors import SimulationError
from repro.telemetry import NULL_TELEMETRY


class RqaExhaustedError(SimulationError):
    """An RQA slot would be reused within the epoch it was filled.

    Reaching this state means the quarantine area was under-provisioned
    for the observed migration rate -- the exact security failure that
    Equation 3's sizing rules out.  Under the default
    ``rqa_full_policy="fail"`` the simulator treats it as fatal; with
    ``"throttle"`` the orchestrator catches it and degrades to rate
    limiting the triggering row instead (DESIGN.md §8).
    """


@dataclass
class Allocation:
    """Result of allocating one quarantine slot."""

    slot: int
    evicted_row: Optional[int]
    """Row drained from the slot (it was quarantined in a past epoch)."""


class RowQuarantineArea:
    """Circular-buffer allocator over the RQA slots.

    The RQA owns the head pointer and the RPT (slot occupancy); the
    mitigation orchestrator owns the FPT and data movement.
    """

    def __init__(
        self,
        num_slots: int,
        rpt: Optional[ReversePointerTable] = None,
        telemetry=None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if num_slots < 1:
            raise ValueError("num_slots must be >= 1")
        self.num_slots = num_slots
        self.rpt = rpt if rpt is not None else ReversePointerTable(num_slots)
        if self.rpt.num_slots != num_slots:
            raise ValueError("RPT size must match RQA size")
        self.head = 0
        self.allocations = 0
        self.evictions = 0
        self.head_wraps = 0
        #: Observability sink plus a simulated-time clock (the RQA has
        #: no notion of time itself; the owning scheme lends it one).
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._clock = clock if clock is not None else (lambda: 0.0)

    def allocate(self, row_id: int, epoch: int) -> Allocation:
        """Claim the slot at the head for ``row_id`` in ``epoch``.

        Returns the slot index and, if the slot held a row from a past
        epoch, that row (the caller must migrate it home and invalidate
        its FPT entry).  Raises :class:`RqaExhaustedError` on intra-epoch
        reuse.
        """
        slot = self.head
        entry = self.rpt.entry(slot)
        evicted: Optional[int] = None
        if entry.epoch == epoch:
            # Applies to freed slots too: a slot vacated within this
            # epoch (internal migration) must not be refilled in it.
            raise RqaExhaustedError(
                f"slot {slot} filled in epoch {epoch} would be reused "
                f"in the same epoch (RQA of {self.num_slots} slots "
                "under-provisioned)"
            )
        if entry.valid:
            evicted = self.rpt.invalidate(slot)
            self.evictions += 1
        self.rpt.install(slot, row_id, epoch)
        self.head = (self.head + 1) % self.num_slots
        if self.head == 0:
            self.head_wraps += 1
        self.allocations += 1
        if self.telemetry.enabled:
            # One rotation event per row entering the circular buffer:
            # the standing record of which rows rotated through
            # quarantine, and when.
            self.telemetry.event(
                "quarantine_rotation", self._clock(),
                row=row_id, slot=slot, epoch=epoch,
                evicted_row=evicted, head_wrapped=self.head == 0,
            )
            self.telemetry.inc("rqa_rotations_total")
        return Allocation(slot=slot, evicted_row=evicted)

    def head_blocked(self, epoch: int) -> bool:
        """Would allocating in ``epoch`` hit the intra-epoch reuse guard?

        A side-effect-free probe of the condition that makes
        :meth:`allocate` raise, used by the orchestrator's degradation
        path to throttle *before* burning an allocation attempt.
        """
        return self.rpt.entry(self.head).epoch == epoch

    def release(self, slot: int) -> Optional[int]:
        """Free ``slot`` outside the allocation path (internal migration
        source, or background drain).  Returns the row it held."""
        return self.rpt.invalidate(slot)

    def resident_row(self, slot: int) -> Optional[int]:
        """Row currently quarantined in ``slot`` (``None`` if free)."""
        return self.rpt.resident_row(slot)

    def occupancy(self) -> int:
        """Number of occupied slots."""
        return self.rpt.valid_count()

    def stale_slots(self, current_epoch: int) -> list:
        """Slots holding rows quarantined before ``current_epoch``.

        Used by the optional background drain (Sec. IV-D notes that
        moving out old rows can be taken off the critical path by
        periodically draining old entries).
        """
        return [
            slot
            for slot in range(self.num_slots)
            if self.rpt.entry(slot).valid
            and self.rpt.entry(slot).epoch < current_epoch
        ]
