"""Forward-Pointer Table (FPT): logical row -> RQA slot.

The FPT answers, on every memory access, "is this row quarantined, and
if so where?" (Fig. 4).  Entries exist only for quarantined rows.
Because quarantined rows come from arbitrary addresses, the SRAM variant
is an over-provisioned Collision-Avoidance Table: 32K entry slots for at
most 23K valid entries (Sec. IV-C).

Each entry is conceptually ``(valid, tag, 15-bit forward pointer)``; the
functional model stores ``row -> slot``.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, Optional, Tuple

from repro.core.cat import CollisionAvoidanceTable, TableOverflowError


DEFAULT_FPT_CAPACITY = 32 * 1024
"""The paper's CAT provisioning: 32K entries for 23K valid (Sec. IV-C)."""


class ForwardPointerTable:
    """CAT-backed map from quarantined logical row to RQA slot index.

    Raises :class:`~repro.core.cat.TableOverflowError` if the CAT cannot
    place an entry -- a design-invariant violation, since capacity is
    provisioned above the maximum quarantine population.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_FPT_CAPACITY,
        ways: int = 8,
        max_valid: Optional[int] = None,
    ) -> None:
        self._cat = CollisionAvoidanceTable(capacity=capacity, ways=ways)
        self.capacity = capacity
        self.max_valid = max_valid
        self.lookups = 0
        self.hits = 0

    def lookup(self, row_id: int) -> Optional[int]:
        """RQA slot holding ``row_id``, or ``None`` if not quarantined."""
        self.lookups += 1
        slot = self._cat.lookup(row_id)
        if slot is not None:
            self.hits += 1
        return slot

    def insert(self, row_id: int, slot: int) -> None:
        """Map ``row_id`` to RQA ``slot`` (insert or update)."""
        if slot < 0:
            raise ValueError("slot must be non-negative")
        if (
            self.max_valid is not None
            and row_id not in self._cat
            and len(self._cat) >= self.max_valid
        ):
            raise TableOverflowError(
                f"FPT valid entries would exceed provisioned {self.max_valid}"
            )
        self._cat.insert(row_id, slot)

    def remove(self, row_id: int) -> bool:
        """Invalidate the entry for ``row_id``; return whether it existed."""
        return self._cat.remove(row_id)

    def __contains__(self, row_id: int) -> bool:
        return row_id in self._cat

    def __len__(self) -> int:
        return len(self._cat)

    def items(self) -> Iterator[Tuple[int, int]]:
        """All (row, slot) mappings (test/inspection helper)."""
        return iter(self._cat.items())

    @property
    def load_factor(self) -> float:
        return self._cat.load_factor

    @staticmethod
    def sram_bytes(
        num_entries: int = DEFAULT_FPT_CAPACITY,
        row_pointer_bits: int = 21,
        slot_pointer_bits: int = 15,
    ) -> int:
        """SRAM size of the table: per-entry valid + tag + forward pointer.

        The paper reports 108 KB for 32K entries (Sec. IV-C), i.e. 27
        bits per entry: a valid bit, an 11-bit tag (the CAT's skewed
        index covers the remaining row-address bits), and a 15-bit
        forward pointer.
        """
        index_bits = max(0, (num_entries // 2 // 8 - 1).bit_length())
        tag_bits = max(0, row_pointer_bits - index_bits)
        entry_bits = 1 + tag_bits + slot_pointer_bits
        return math.ceil(num_entries * entry_bits / 8)


class DramForwardPointerTable:
    """Memory-mapped FPT: one entry per row in memory (Sec. V-A).

    Provisioning an entry per row (2 bytes each, 4 MB of DRAM for 2M
    rows) makes the in-DRAM lookup a single direct-mapped read: the
    entry's byte address is a linear function of the row id, so exactly
    one DRAM access resolves any row.  A 64-byte line holds entries for
    32 consecutive rows.
    """

    ENTRY_BYTES = 2
    LINE_BYTES = 64

    def __init__(self, total_rows: int) -> None:
        if total_rows < 1:
            raise ValueError("total_rows must be >= 1")
        self.total_rows = total_rows
        self._entries: Dict[int, int] = {}
        self.dram_reads = 0
        self.dram_writes = 0

    @property
    def entries_per_line(self) -> int:
        """FPT entries per 64-byte line (32)."""
        return self.LINE_BYTES // self.ENTRY_BYTES

    @property
    def dram_bytes(self) -> int:
        """DRAM footprint of the table (4 MB for 2M rows)."""
        return self.total_rows * self.ENTRY_BYTES

    def line_of(self, row_id: int) -> int:
        """Index of the 64-byte FPT line holding ``row_id``'s entry."""
        self._validate(row_id)
        return row_id // self.entries_per_line

    def _validate(self, row_id: int) -> None:
        if not 0 <= row_id < self.total_rows:
            raise ValueError(f"row {row_id} outside table of {self.total_rows}")

    def read(self, row_id: int) -> Optional[int]:
        """Read ``row_id``'s entry from DRAM (counted as one line read)."""
        self._validate(row_id)
        self.dram_reads += 1
        return self._entries.get(row_id)

    def write(self, row_id: int, slot: Optional[int]) -> None:
        """Write (or invalidate, with ``None``) ``row_id``'s entry."""
        self._validate(row_id)
        self.dram_writes += 1
        if slot is None:
            self._entries.pop(row_id, None)
        else:
            self._entries[row_id] = slot

    def peek(self, row_id: int) -> Optional[int]:
        """Read without charging a DRAM access (model-internal use)."""
        self._validate(row_id)
        return self._entries.get(row_id)

    def valid_in_line(self, line: int) -> int:
        """Number of valid entries in FPT line ``line``.

        Used by the resettable bloom filter: a group bit clears only when
        every entry in its half-line is invalid (Sec. V-B).
        """
        base = line * self.entries_per_line
        return sum(
            1
            for row in range(base, min(base + self.entries_per_line, self.total_rows))
            if row in self._entries
        )

    def __len__(self) -> int:
        return len(self._entries)
