"""Collision-Avoidance Table (CAT), adopted from MIRAGE / RRS.

The FPT must hold entries for *arbitrary* rows without set conflicts
(Sec. IV-C): any 23K of the 2M rows may be quarantined simultaneously,
so a plain set-associative table could overflow a hot set.  The CAT
solves this with two skewed halves and power-of-two-choices insertion,
plus bounded cuckoo-style relocation, so that an over-provisioned table
(32K entries for 23K valid) holds every entry with overwhelming
probability.  RRS uses the same structure for its Row Indirection Table.

This is a functional model: it reproduces placement behaviour (skewed
indexing, load balancing, relocation, overflow detection) without
bit-level SRAM layout.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple


class TableOverflowError(RuntimeError):
    """Raised when an insert cannot be placed even after relocation.

    With the paper's over-provisioning this is a never-event; surfacing
    it loudly (rather than silently dropping the mapping) is a security
    requirement, since a dropped FPT entry would misroute accesses.
    """


def _mix(value: int, seed: int) -> int:
    """Deterministic 64-bit hash mix (xorshift-multiply)."""
    value = (value ^ seed) & 0xFFFFFFFFFFFFFFFF
    value = (value * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    value ^= value >> 29
    value = (value * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    value ^= value >> 32
    return value


class CollisionAvoidanceTable:
    """Two-skew, power-of-two-choices hash table with relocation.

    Parameters
    ----------
    capacity:
        Total entry slots across both skews (e.g. 32K for AQUA's FPT).
    ways:
        Entries per set (bucket).  MIRAGE-style CATs use wide buckets.
    seed:
        Base seed for the two skew hash functions (deterministic).
    max_relocations:
        Bound on the cuckoo relocation chain before declaring overflow.
    """

    def __init__(
        self,
        capacity: int,
        ways: int = 8,
        seed: int = 0xA9B7_55AA,
        max_relocations: int = 16,
    ) -> None:
        if capacity < 2 * ways:
            raise ValueError("capacity must allow at least one set per skew")
        self.capacity = capacity
        self.ways = ways
        self.max_relocations = max_relocations
        self.sets_per_skew = max(1, capacity // (2 * ways))
        self._seeds = (_mix(seed, 0x1234_5678), _mix(seed, 0x8765_4321))
        # buckets[skew][set] -> {key: value}
        self._buckets: List[List[Dict[int, object]]] = [
            [dict() for _ in range(self.sets_per_skew)] for _ in range(2)
        ]
        self._skew_of_key: Dict[int, int] = {}
        self.relocations = 0

    def _index(self, skew: int, key: int) -> int:
        return _mix(key, self._seeds[skew]) % self.sets_per_skew

    def _bucket(self, skew: int, key: int) -> Dict[int, object]:
        return self._buckets[skew][self._index(skew, key)]

    def __len__(self) -> int:
        return len(self._skew_of_key)

    def __contains__(self, key: int) -> bool:
        return key in self._skew_of_key

    @property
    def load_factor(self) -> float:
        """Fraction of total capacity occupied."""
        return len(self) / self.capacity

    def lookup(self, key: int) -> Optional[object]:
        """Return the value for ``key``, or ``None`` if absent.

        Models probing both skewed buckets in parallel (constant time in
        hardware; the paper charges 3-4 cycles).
        """
        skew = self._skew_of_key.get(key)
        if skew is None:
            return None
        return self._bucket(skew, key)[key]

    def insert(self, key: int, value: object) -> None:
        """Insert or update ``key`` -> ``value``.

        New keys go to the emptier of their two candidate buckets
        (power-of-two-choices); if both are full, residents are relocated
        to their alternate buckets, bounded by ``max_relocations``.
        """
        existing = self._skew_of_key.get(key)
        if existing is not None:
            self._bucket(existing, key)[key] = value
            return
        self._place(key, value, self.max_relocations)

    def _place(self, key: int, value: object, budget: int) -> None:
        candidates = [
            (len(self._bucket(skew, key)), skew) for skew in (0, 1)
        ]
        candidates.sort()
        occupancy, skew = candidates[0]
        if occupancy < self.ways:
            self._bucket(skew, key)[key] = value
            self._skew_of_key[key] = skew
            return
        if budget <= 0:
            raise TableOverflowError(
                f"CAT overflow at {len(self)}/{self.capacity} entries"
            )
        # Relocate a deterministic resident of the fuller-indexed bucket
        # to its alternate bucket, freeing a way for the new key.
        bucket = self._bucket(skew, key)
        victim_key = next(iter(bucket))
        victim_value = bucket.pop(victim_key)
        del self._skew_of_key[victim_key]
        self.relocations += 1
        bucket[key] = value
        self._skew_of_key[key] = skew
        self._place(victim_key, victim_value, budget - 1)

    def remove(self, key: int) -> bool:
        """Remove ``key`` if present; return whether it was present."""
        skew = self._skew_of_key.pop(key, None)
        if skew is None:
            return False
        del self._bucket(skew, key)[key]
        return True

    def items(self) -> Iterator[Tuple[int, object]]:
        """Iterate over all (key, value) pairs (test/inspection helper)."""
        for skew_buckets in self._buckets:
            for bucket in skew_buckets:
                yield from bucket.items()

    def max_bucket_occupancy(self) -> int:
        """Largest bucket fill level (for overprovisioning analysis)."""
        return max(
            (len(bucket) for skew in self._buckets for bucket in skew),
            default=0,
        )
