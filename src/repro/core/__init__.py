"""AQUA core: the paper's primary contribution.

Public surface:

* :class:`~repro.core.aqua.AquaMitigation` -- the scheme itself.
* :class:`~repro.core.config.AquaConfig` -- all tunables.
* :mod:`~repro.core.sizing` -- RQA sizing (Equations 1-3, Table III).
* The individual structures (FPT, RPT, RQA, bloom filter, FPT-Cache,
  CAT) for direct study and unit testing.
"""

from repro.core.aqua import AquaMitigation
from repro.core.bloom import ResettableBloomFilter
from repro.core.canon import (
    canonical_dumps,
    content_digest,
    short_digest,
)
from repro.core.cat import CollisionAvoidanceTable, TableOverflowError
from repro.core.config import AquaConfig
from repro.core.fpt import DramForwardPointerTable, ForwardPointerTable
from repro.core.fpt_cache import FptCache
from repro.core.memtables import (
    LookupOutcome,
    MemoryMappedTables,
    SramTables,
    TableLookup,
)
from repro.core.migration import DEFAULT_COSTS, MigrationCosts
from repro.core.quarantine import (
    Allocation,
    RowQuarantineArea,
    RqaExhaustedError,
)
from repro.core.rpt import ReversePointerTable, RptEntry
from repro.core.setassoc import SetAssociativeTable
from repro.core.sizing import (
    RqaSizing,
    aggression_time_ns,
    batch_time_ns,
    default_rqa_rows,
    rqa_rows,
    table_iii,
)

__all__ = [
    "AquaMitigation",
    "AquaConfig",
    "ResettableBloomFilter",
    "CollisionAvoidanceTable",
    "TableOverflowError",
    "DramForwardPointerTable",
    "ForwardPointerTable",
    "FptCache",
    "LookupOutcome",
    "MemoryMappedTables",
    "SramTables",
    "TableLookup",
    "MigrationCosts",
    "DEFAULT_COSTS",
    "Allocation",
    "RowQuarantineArea",
    "RqaExhaustedError",
    "ReversePointerTable",
    "RptEntry",
    "SetAssociativeTable",
    "RqaSizing",
    "aggression_time_ns",
    "batch_time_ns",
    "default_rqa_rows",
    "rqa_rows",
    "table_iii",
]
