"""Configuration for an AQUA instance.

Collects every tunable the paper discusses, with defaults matching the
evaluated design point: Rowhammer threshold 1K (effective threshold 500),
RQA sized by Equation 3, 32K-entry CAT FPT, 128K-entry (16 KB) bloom
filter, 4K-entry (16 KB) FPT-Cache, Misra-Gries tracker.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field
from typing import Optional

from repro.core.fpt import DEFAULT_FPT_CAPACITY, DramForwardPointerTable
from repro.core.rpt import ReversePointerTable
from repro.core.sizing import rqa_rows
from repro.dram.geometry import DramGeometry, DEFAULT_GEOMETRY
from repro.dram.timing import DDR4Timing, DDR4_2400
from repro.errors import ConfigError


TABLE_MODES = ("sram", "memory-mapped")
TRACKERS = ("misra-gries", "hydra", "exact")
RQA_FULL_POLICIES = ("fail", "throttle")


@dataclass
class AquaConfig:
    """All AQUA parameters; derived sizes computed on demand."""

    rowhammer_threshold: int = 1000
    geometry: DramGeometry = field(default_factory=lambda: DEFAULT_GEOMETRY)
    timing: DDR4Timing = field(default_factory=lambda: DDR4_2400)
    table_mode: str = "sram"
    tracker: str = "misra-gries"
    rqa_slots: Optional[int] = None
    """Override the Equation-3 RQA size (None = derive it)."""
    fpt_capacity: Optional[int] = None
    """CAT entry slots for the SRAM FPT (None = derive from the RQA
    size with the paper's ~1.4x over-provisioning; 32K at the default
    design point, Sec. IV-C)."""
    bloom_group_size: int = 16
    fpt_cache_entries: int = 4096
    tracker_entries_per_bank: Optional[int] = None
    track_data: bool = True
    """Maintain the row-content store to verify migrations move data."""
    rqa_full_policy: str = "fail"
    """What a *genuine* RQA exhaustion does (DESIGN.md §8).

    ``"fail"`` raises :class:`~repro.core.quarantine.RqaExhaustedError`
    (the Equation-3 security alarm, the paper's reading); ``"throttle"``
    degrades to Blockhammer-style rate limiting of the triggering row,
    the documented fallback for chaos/DoS-pressure runs."""
    migration_max_retries: int = 3
    """Interrupted-migration retry budget before the scheme gives up on
    the quarantine and falls back to throttling the row."""

    def __post_init__(self) -> None:
        # Validate every bound here, with the field name and allowed
        # range in the message, so a bad parameter fails at construction
        # instead of deep inside _build_tracker or Equation-3 sizing.
        if self.rowhammer_threshold < 2:
            raise ConfigError(
                "rowhammer_threshold must be >= 2 "
                f"(got {self.rowhammer_threshold})"
            )
        if self.table_mode not in TABLE_MODES:
            raise ConfigError(
                f"table_mode must be one of {TABLE_MODES} "
                f"(got {self.table_mode!r})"
            )
        if self.tracker not in TRACKERS:
            raise ConfigError(
                f"tracker must be one of {TRACKERS} (got {self.tracker!r})"
            )
        if self.rqa_slots is not None and self.rqa_slots < 1:
            raise ConfigError(
                f"rqa_slots must be >= 1 or None (got {self.rqa_slots})"
            )
        if self.fpt_capacity is not None and self.fpt_capacity < 1:
            raise ConfigError(
                f"fpt_capacity must be >= 1 or None (got {self.fpt_capacity})"
            )
        if self.bloom_group_size < 1:
            raise ConfigError(
                f"bloom_group_size must be >= 1 (got {self.bloom_group_size})"
            )
        if self.fpt_cache_entries < 16 or self.fpt_cache_entries % 16 != 0:
            raise ConfigError(
                "fpt_cache_entries must be a positive multiple of 16 "
                f"ways (got {self.fpt_cache_entries})"
            )
        if (
            self.tracker_entries_per_bank is not None
            and self.tracker_entries_per_bank < 1
        ):
            raise ConfigError(
                "tracker_entries_per_bank must be >= 1 or None "
                f"(got {self.tracker_entries_per_bank})"
            )
        if self.rqa_full_policy not in RQA_FULL_POLICIES:
            raise ConfigError(
                f"rqa_full_policy must be one of {RQA_FULL_POLICIES} "
                f"(got {self.rqa_full_policy!r})"
            )
        if self.migration_max_retries < 0:
            raise ConfigError(
                "migration_max_retries must be >= 0 "
                f"(got {self.migration_max_retries})"
            )
        # The layout must partition: catches a geometry too small for
        # the (possibly overridden) RQA before any structure is built.
        reserved = self.derived_rqa_slots + self.table_dram_rows
        if reserved >= self.geometry.rows_per_rank:
            raise ConfigError(
                f"reserved rows ({reserved:,}: RQA {self.derived_rqa_slots:,}"
                f" + tables {self.table_dram_rows:,}) must be smaller than "
                f"the rank of {self.geometry.rows_per_rank:,} rows"
            )

    # --------------------------------------------------------- serialization

    def to_dict(self) -> dict:
        """Canonical JSON-ready dict of every *configured* field.

        Derived quantities (Equation-3 sizing, table rows) are excluded
        on purpose: they are pure functions of these fields, and the
        dict is hashed by :func:`repro.core.canon.content_digest` into
        the service cache key, where redundant entries would only widen
        the surface on which two equal configurations could disagree.
        Geometry and timing are inlined as sorted dicts of their own
        (all-primitive) fields.
        """
        return {
            "rowhammer_threshold": self.rowhammer_threshold,
            "geometry": asdict(self.geometry),
            "timing": asdict(self.timing),
            "table_mode": self.table_mode,
            "tracker": self.tracker,
            "rqa_slots": self.rqa_slots,
            "fpt_capacity": self.fpt_capacity,
            "bloom_group_size": self.bloom_group_size,
            "fpt_cache_entries": self.fpt_cache_entries,
            "tracker_entries_per_bank": self.tracker_entries_per_bank,
            "track_data": self.track_data,
            "rqa_full_policy": self.rqa_full_policy,
            "migration_max_retries": self.migration_max_retries,
        }

    def digest(self) -> str:
        """Stable content digest of this configuration (cache keys)."""
        from repro.core.canon import content_digest

        return content_digest(self.to_dict())

    @property
    def effective_threshold(self) -> int:
        """Migration trigger threshold: T_RH / 2 (Sec. IV-B).

        Halved because the tracker resets each epoch and up to two
        tracking epochs can span one refresh window (property P1).
        """
        return max(1, self.rowhammer_threshold // 2)

    @property
    def derived_rqa_slots(self) -> int:
        """RQA size: the override if given, else Equation 3."""
        if self.rqa_slots is not None:
            if self.rqa_slots < 1:
                raise ConfigError(
                    f"rqa_slots must be >= 1 or None (got {self.rqa_slots})"
                )
            return self.rqa_slots
        return rqa_rows(
            self.effective_threshold,
            banks=self.geometry.banks_per_rank,
            timing=self.timing,
            row_bytes=self.geometry.row_bytes,
        )

    @property
    def derived_fpt_capacity(self) -> int:
        """SRAM FPT capacity: the override, else ~1.4x the RQA size.

        The paper provisions 32K CAT slots for 23K valid entries; the
        same over-provisioning ratio keeps the collision-avoidance
        guarantee at other design points.
        """
        if self.fpt_capacity is not None:
            if self.fpt_capacity < 1:
                raise ConfigError(
                    f"fpt_capacity must be >= 1 or None "
                    f"(got {self.fpt_capacity})"
                )
            return self.fpt_capacity
        derived = math.ceil(self.derived_rqa_slots * 32 / 23)
        # Round up to a multiple of 16 (2 skews x 8 ways).
        derived = ((derived + 15) // 16) * 16
        return max(DEFAULT_FPT_CAPACITY, derived)

    @property
    def table_dram_rows(self) -> int:
        """Physical rows consumed by in-DRAM FPT + RPT (memory-mapped mode).

        512 rows for the 4 MB FPT plus ~13 for the RPT in the baseline.
        """
        if self.table_mode != "memory-mapped":
            return 0
        fpt_bytes = (
            self.geometry.rows_per_rank * DramForwardPointerTable.ENTRY_BYTES
        )
        rpt_bytes = ReversePointerTable.dram_bytes(self.derived_rqa_slots)
        row_bytes = self.geometry.row_bytes
        return math.ceil(fpt_bytes / row_bytes) + math.ceil(rpt_bytes / row_bytes)

    @property
    def visible_rows(self) -> int:
        """Software-visible rows after carving out the RQA and tables."""
        reserved = self.derived_rqa_slots + self.table_dram_rows
        visible = self.geometry.rows_per_rank - reserved
        if visible <= 0:
            raise ConfigError(
                f"reserved rows ({reserved:,}) exceed the rank of "
                f"{self.geometry.rows_per_rank:,} rows"
            )
        return visible

    @property
    def rqa_base_row(self) -> int:
        """First physical row of the quarantine area (top of the rank)."""
        return self.geometry.rows_per_rank - self.derived_rqa_slots

    @property
    def table_base_row(self) -> int:
        """First physical row storing the in-DRAM FPT (then the RPT)."""
        return self.visible_rows

    @property
    def dram_overhead(self) -> float:
        """Fraction of memory reserved (RQA + tables): ~1.13 % default."""
        reserved = self.derived_rqa_slots + self.table_dram_rows
        return reserved / self.geometry.rows_per_rank
