"""Resettable grouped bloom filter for quarantine presence (Sec. V-B).

With memory-mapped tables, every access would need an FPT read unless
filtered.  AQUA's filter exploits the FPT's layout: a 64-byte FPT line
holds entries for 32 consecutive rows, and a *group* is half such a line
(16 consecutive rows).  One bit per group:

* bit = 0  ->  **no** row of the group is quarantined (definitive; the
  access proceeds to the original location with no FPT lookup),
* bit = 1  ->  *some* row of the group may be quarantined (the FPT-Cache
  and possibly DRAM must be consulted).

Because the bit is derived from group membership rather than hashing,
it can be *reset* exactly: when an FPT entry invalidates, the bit clears
iff no other entry in the group remains valid -- a single bit per entry,
with none of the 6x SRAM cost of counting bloom filters.  This model
keeps a per-group valid count internally to implement that rule (the
hardware reads the co-resident FPT line entries instead).
"""

from __future__ import annotations

from typing import Dict, List


class ResettableBloomFilter:
    """One presence bit per group of ``group_size`` consecutive rows."""

    def __init__(self, total_rows: int, group_size: int = 16) -> None:
        if total_rows < 1:
            raise ValueError("total_rows must be >= 1")
        if group_size < 1:
            raise ValueError("group_size must be >= 1")
        self.total_rows = total_rows
        self.group_size = group_size
        self.num_groups = (total_rows + group_size - 1) // group_size
        self._bits: List[bool] = [False] * self.num_groups
        self._valid_in_group: Dict[int, int] = {}
        self.queries = 0
        self.filtered = 0

    @property
    def sram_bytes(self) -> int:
        """SRAM footprint: one bit per group (16 KB for 128K groups)."""
        return (self.num_groups + 7) // 8

    def group_of(self, row_id: int) -> int:
        """Group index of ``row_id``."""
        if not 0 <= row_id < self.total_rows:
            raise ValueError(f"row {row_id} outside {self.total_rows} rows")
        return row_id // self.group_size

    def maybe_quarantined(self, row_id: int) -> bool:
        """Filter query: ``False`` definitively means not quarantined."""
        self.queries += 1
        hit = self._bits[self.group_of(row_id)]
        if not hit:
            self.filtered += 1
        return hit

    def on_insert(self, row_id: int) -> None:
        """An FPT entry for ``row_id`` became valid: set the group bit."""
        group = self.group_of(row_id)
        self._bits[group] = True
        self._valid_in_group[group] = self._valid_in_group.get(group, 0) + 1

    def on_invalidate(self, row_id: int) -> None:
        """An FPT entry for ``row_id`` invalidated.

        Clears the group bit only when the group has no remaining valid
        entries (the resettability rule of Sec. V-B).
        """
        group = self.group_of(row_id)
        remaining = self._valid_in_group.get(group, 0) - 1
        if remaining < 0:
            raise ValueError(
                f"invalidate for row {row_id} without matching insert"
            )
        if remaining == 0:
            del self._valid_in_group[group]
            self._bits[group] = False
        else:
            self._valid_in_group[group] = remaining

    def group_valid_count(self, row_id: int) -> int:
        """Valid FPT entries in ``row_id``'s group (singleton detection)."""
        return self._valid_in_group.get(self.group_of(row_id), 0)

    def set_groups(self) -> int:
        """Number of groups whose bit is currently set."""
        return sum(self._bits)

    @property
    def filter_rate(self) -> float:
        """Fraction of queries answered definitively-not-quarantined."""
        if self.queries == 0:
            return 0.0
        return self.filtered / self.queries
