"""FPT-Cache: on-chip cache of in-DRAM FPT entries (Sec. V-C, V-D).

A 16-way set-associative cache with RRIP replacement holding FPT entries
*only for currently-quarantined rows* (so its working set is at most the
RQA population, ~23K rows, not the 2M rows of memory).

Two deliberate design points from the paper:

* **Group-aligned indexing** -- all rows of a bloom-filter group map to
  the same set, enabling the singleton probe below.
* **Singleton bit** -- set on a cached entry when its group has exactly
  one valid FPT entry.  On a lookup miss, a second probe of the same set
  checks for any co-group entry with the singleton bit: a hit proves no
  *other* row of the group is quarantined, so the DRAM FPT lookup that a
  bloom-filter false positive would otherwise force can be skipped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


RRIP_BITS = 2
RRIP_MAX = (1 << RRIP_BITS) - 1
RRIP_LONG = RRIP_MAX - 1
"""Insertion RRPV: 'long re-reference interval' per the RRIP policy."""


@dataclass
class FptCacheEntry:
    """One cache way: valid + tag + RRPV + FPT entry + singleton bit."""

    valid: bool = False
    tag: int = -1
    rrpv: int = RRIP_MAX
    slot: int = -1
    singleton: bool = False


class FptCache:
    """16-way set-associative, RRIP-replaced cache of FPT entries."""

    def __init__(
        self,
        num_entries: int = 4096,
        ways: int = 16,
        group_size: int = 16,
    ) -> None:
        if num_entries < ways or num_entries % ways != 0:
            raise ValueError("num_entries must be a positive multiple of ways")
        self.ways = ways
        self.group_size = group_size
        self.num_sets = num_entries // ways
        self._sets: List[List[FptCacheEntry]] = [
            [FptCacheEntry() for _ in range(ways)] for _ in range(self.num_sets)
        ]
        self.hits = 0
        self.misses = 0
        self.singleton_filtered = 0
        self.corruptions = 0

    @property
    def num_entries(self) -> int:
        return self.num_sets * self.ways

    @property
    def sram_bytes(self) -> int:
        """SRAM footprint: ~4 bytes/entry (16 KB at 4K entries).

        Valid + ~11-bit tag + 2 RRIP bits + 16-bit FPT entry + singleton.
        """
        return self.num_entries * 4

    def _group_of(self, row_id: int) -> int:
        return row_id // self.group_size

    def _set_of(self, row_id: int) -> List[FptCacheEntry]:
        # Group-aligned indexing: every row of a group lands in one set.
        return self._sets[self._group_of(row_id) % self.num_sets]

    def lookup(self, row_id: int) -> Optional[int]:
        """Return the cached RQA slot for ``row_id``, or ``None`` on miss."""
        for entry in self._set_of(row_id):
            if entry.valid and entry.tag == row_id:
                entry.rrpv = 0
                self.hits += 1
                return entry.slot
        self.misses += 1
        return None

    def covered_by_singleton(self, row_id: int) -> bool:
        """Second probe after a miss: is the group's only entry cached?

        True means ``row_id`` itself cannot have a valid FPT entry (the
        group's single entry belongs to a different row that is present
        in this set), so the DRAM lookup is skipped.
        """
        group = self._group_of(row_id)
        for entry in self._set_of(row_id):
            if (
                entry.valid
                and entry.singleton
                and entry.tag != row_id
                and self._group_of(entry.tag) == group
            ):
                self.singleton_filtered += 1
                return True
        return False

    def install(self, row_id: int, slot: int, singleton: bool) -> None:
        """Insert/refresh the entry for ``row_id`` (RRIP victim selection)."""
        ways = self._set_of(row_id)
        for entry in ways:
            if entry.valid and entry.tag == row_id:
                entry.slot = slot
                entry.singleton = singleton
                entry.rrpv = 0
                return
        victim = self._find_victim(ways)
        victim.valid = True
        victim.tag = row_id
        victim.slot = slot
        victim.singleton = singleton
        victim.rrpv = RRIP_LONG

    @staticmethod
    def _find_victim(ways: List[FptCacheEntry]) -> FptCacheEntry:
        """RRIP victim: first invalid way, else first RRPV==max (aging)."""
        for entry in ways:
            if not entry.valid:
                return entry
        while True:
            for entry in ways:
                if entry.rrpv >= RRIP_MAX:
                    return entry
            for entry in ways:
                entry.rrpv += 1

    def invalidate(self, row_id: int) -> bool:
        """Drop ``row_id``'s entry if cached; return whether it was."""
        for entry in self._set_of(row_id):
            if entry.valid and entry.tag == row_id:
                entry.valid = False
                entry.tag = -1
                entry.singleton = False
                entry.rrpv = RRIP_MAX
                return True
        return False

    def corrupt(self, row_id: int) -> Optional[int]:
        """Fault-injection hook: corrupt one valid way of ``row_id``'s set.

        Models a detected SRAM bit flip: cache entries carry parity, so
        a corrupted entry is *dropped* (never served wrong), forcing the
        next lookup of its row back to the in-DRAM FPT -- the safe
        degradation of Sec. V's filter chain.  Returns the row whose
        entry was discarded, or ``None`` if the set held nothing to
        corrupt.
        """
        for entry in self._set_of(row_id):
            if entry.valid:
                victim = entry.tag
                entry.valid = False
                entry.tag = -1
                entry.singleton = False
                entry.rrpv = RRIP_MAX
                self.corruptions += 1
                return victim
        return None

    def set_group_singleton(self, group: int, singleton: bool) -> None:
        """Update the singleton bit on any cached entries of ``group``."""
        ways = self._sets[group % self.num_sets]
        for entry in ways:
            if entry.valid and entry.tag // self.group_size == group:
                entry.singleton = singleton

    def occupancy(self) -> int:
        """Number of valid entries across all sets."""
        return sum(
            1 for ways in self._sets for entry in ways if entry.valid
        )

    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache so far."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def collect_metrics(self, telemetry, **labels) -> None:
        """Snapshot-time export: hit/miss/singleton counts + occupancy.

        The cache keeps plain integer counters on its hot path; this
        copies them into the registry only when a snapshot is taken, so
        per-epoch timeline entries show the hit-rate evolution for free.
        """
        registry = telemetry.registry
        registry.counter("fpt_cache_hits_total").set_total(
            self.hits, **labels
        )
        registry.counter("fpt_cache_misses_total").set_total(
            self.misses, **labels
        )
        registry.counter("fpt_cache_singleton_filtered_total").set_total(
            self.singleton_filtered, **labels
        )
        registry.counter("fpt_cache_corruptions_total").set_total(
            self.corruptions, **labels
        )
        registry.gauge("fpt_cache_occupancy").set(self.occupancy(), **labels)
        registry.gauge("fpt_cache_hit_rate").set(self.hit_rate(), **labels)
