"""AQUA: the quarantine-based Rowhammer mitigation (Sec. IV-V).

``AquaMitigation`` wires together every AQUA structure:

* an **ART** (aggressor-row tracker, default per-bank Misra-Gries)
  indexed by the *physical* row address after FPT translation
  (security property P3),
* the **RQA** circular buffer with its RPT, sized by Equation 3,
* a **table backend** -- SRAM FPT/RPT (Sec. IV) or memory-mapped tables
  with bloom filter + FPT-Cache (Sec. V),
* a **row-content store** (optional) proving migrations move data,
* DRAM **energy counters** for the power analysis (Sec. V-H).

The flow per activation (Fig. 4): translate through the FPT, route to
the original or quarantined location, feed the tracker, and on a
threshold crossing quarantine the row at the RQA head -- first draining
any stale row occupying that slot back to its home (lazy drain).
Rows storing the in-DRAM tables are themselves protected: their FPT
entries are pinned in SRAM and they are quarantined like any other row
if hammered (the PTHammer defense of Sec. VI-B).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.config import AquaConfig
from repro.core.migration import MigrationCosts, publish_costs
from repro.core.memtables import (
    LookupOutcome,
    MemoryMappedTables,
    SramTables,
    TableBackend,
)
from repro.core.quarantine import RowQuarantineArea, RqaExhaustedError
from repro.dram.data import RowDataStore
from repro.dram.power import DramEnergyCounters
from repro.errors import FaultExhaustedError
from repro.mitigations.base import AccessResult, MitigationScheme
from repro.trackers import (
    AggressorTracker,
    ExactTracker,
    HydraTracker,
    MisraGriesTracker,
)


def _build_tracker(config: AquaConfig) -> AggressorTracker:
    """Instantiate the ART named by the config."""
    threshold = config.effective_threshold
    if config.tracker == "misra-gries":
        banks = config.geometry.banks_per_rank
        return MisraGriesTracker(
            threshold,
            num_banks=banks,
            bank_of=lambda row: row % banks,
            entries_per_bank=config.tracker_entries_per_bank,
        )
    if config.tracker == "hydra":
        return HydraTracker(threshold)
    return ExactTracker(threshold)


class AquaMitigation(MitigationScheme):
    """The AQUA scheme, pluggable into the memory-controller simulator."""

    name = "aqua"

    def __init__(
        self,
        config: Optional[AquaConfig] = None,
        telemetry=None,
        fault_injector=None,
    ) -> None:
        super().__init__(telemetry)
        self.config = config if config is not None else AquaConfig()
        cfg = self.config
        #: ``config.visible_rows`` re-derives the RQA/table reservation
        #: chain on every read; the access path validates every chunk
        #: against it, so cache the (immutable) value once.
        self._visible_rows = cfg.visible_rows
        self.rqa = RowQuarantineArea(
            cfg.derived_rqa_slots,
            telemetry=self.telemetry,
            clock=lambda: self.now_ns,
        )
        self.rqa_base = cfg.rqa_base_row
        self.tracker = _build_tracker(cfg)
        self.tables: TableBackend
        if cfg.table_mode == "memory-mapped":
            self.tables = MemoryMappedTables(
                total_rows=cfg.geometry.rows_per_rank,
                rqa_slots=cfg.derived_rqa_slots,
                bloom_group_size=cfg.bloom_group_size,
                fpt_cache_entries=cfg.fpt_cache_entries,
                table_base_row=cfg.table_base_row,
                timing=cfg.timing,
                row_bytes=cfg.geometry.row_bytes,
            )
        else:
            self.tables = SramTables(
                rqa_slots=cfg.derived_rqa_slots,
                fpt_capacity=cfg.derived_fpt_capacity,
            )
        self.data = RowDataStore() if cfg.track_data else None
        #: Upper bound on distinct *extra* physical rows (per bank) the
        #: tracker may observe in one epoch beyond the trace's own rows:
        #: quarantine destinations land in the RQA range and table-row
        #: observations in the FPT range, so an arithmetic-progression
        #: count over each range bounds them.  Feeds the tracker's
        #: sparse-feed capacity check (DESIGN.md §11).
        banks = cfg.geometry.banks_per_rank
        if isinstance(self.tables, MemoryMappedTables) and (
            self.tables.table_base_row is not None
        ):
            n_table_rows = (
                self.tables._table_row_of(cfg.geometry.rows_per_rank - 1)
                - self.tables.table_base_row
                + 1
            )
        else:
            n_table_rows = 0
        self._tracker_reserve = (
            n_table_rows // banks + 1 + cfg.derived_rqa_slots // banks + 1
        )
        #: Bank count when the tracker is the per-bank Misra-Gries ART
        #: built above with the modulo bank map -- lets the fused epoch
        #: loop dispatch straight to the bank kernels, skipping the
        #: per-chunk rank-counter wrapper (counters settle in bulk).
        self._tracker_mod_banks = (
            banks if cfg.tracker == "misra-gries" else None
        )
        self.energy = DramEnergyCounters()
        #: SRAM-pinned FPT entries for the physical rows holding the
        #: in-DRAM tables (avoids recursive lookups, Sec. VI-B).
        self._pinned_fpt: Dict[int, int] = {}
        self._migration_ns = cfg.timing.migration_ns(cfg.geometry.row_bytes)
        self._costs = MigrationCosts.for_row(cfg.geometry.row_bytes, cfg.timing)
        self.internal_migrations = 0
        self.table_row_quarantines = 0
        #: Degradation bookkeeping (DESIGN.md §8): rows the scheme could
        #: not quarantine and rate-limited instead, interrupted-transfer
        #: retries, and migrations abandoned after the retry budget.
        self.throttle_fallbacks = 0
        self.migration_retries = 0
        self.aborted_migrations = 0
        #: Blockhammer-style spacing for the throttle fallback: a row
        #: limited to one ACT per interval cannot reach the effective
        #: threshold within the refresh window.
        self._throttle_interval_ns = (
            cfg.timing.trefw_ns / cfg.effective_threshold
        )
        self._row_stall_ns: Dict[int, float] = {}
        if fault_injector is not None:
            self.attach_faults(fault_injector)
        if self.telemetry.enabled:
            self.tracker.attach_telemetry(
                self.telemetry, lambda: self.now_ns
            )
            publish_costs(
                self.telemetry,
                MigrationCosts.for_row(cfg.geometry.row_bytes, cfg.timing),
                scheme=self.name,
            )

    def attach_faults(self, injector) -> None:
        """Thread the injector into the structures with their own sites."""
        super().attach_faults(injector)
        if isinstance(self.tables, MemoryMappedTables):
            # SRAM tables have no cache to fault; only the Sec. V
            # filter chain carries the fpt_cache_* sites.
            self.tables.faults = self.faults
            self.tables.clock = lambda: self.now_ns

    # ------------------------------------------------------------ scheme API

    @property
    def visible_rows(self) -> int:
        return self._visible_rows

    def sram_bytes(self) -> int:
        """Mapping-structure SRAM (tables + copy-buffer; Sec. V-G)."""
        copy_buffer = self.config.geometry.row_bytes
        pinned = 512 + 32 if self.config.table_mode == "memory-mapped" else 0
        return self.tables.sram_bytes() + copy_buffer + pinned

    def _validate_row(self, logical_row: int) -> None:
        if not 0 <= logical_row < self.visible_rows:
            raise ValueError(
                f"logical row {logical_row} outside visible space of "
                f"{self.visible_rows} rows"
            )

    def _resolve(self, logical_row, lookup) -> Tuple[int, float, Optional[object]]:
        if lookup.table_row is not None and lookup.dram_accesses > 0:
            # The lookup itself touched an in-DRAM table row: those
            # activations must be visible to the tracker too (PTHammer
            # defense), via the row's SRAM-pinned mapping.
            self._observe_table_row(lookup.table_row, lookup.dram_accesses)
        if lookup.slot is not None:
            return self.rqa_base + lookup.slot, lookup.latency_ns, lookup.outcome
        return logical_row, lookup.latency_ns, lookup.outcome

    def _translate(self, logical_row: int) -> Tuple[int, float, Optional[object]]:
        self._validate_row(logical_row)
        return self._resolve(logical_row, self.tables.lookup(logical_row))

    def _translate_batch(
        self, logical_row: int, n: int
    ) -> Tuple[int, float, Optional[object]]:
        self._validate_row(logical_row)
        return self._resolve(logical_row, self.tables.lookup_batch(logical_row, n))

    def _observe(self, physical_row: int) -> bool:
        return self.tracker.observe(physical_row)

    def _mitigate(
        self, logical_row: int, physical_row: int, now_ns: float
    ) -> AccessResult:
        return self._quarantine(logical_row, physical_row, now_ns)

    def _end_epoch(self, new_epoch: int) -> None:
        super()._end_epoch(new_epoch)
        # The ART resets every epoch; the FPT/RPT drain lazily (Sec. IV-A).
        self.tracker.reset()
        self._row_stall_ns.clear()

    def epoch_peak_row_stall_ns(self) -> float:
        """Largest cumulative throttle stall any row saw this epoch.

        Mirrors Blockhammer's fairness probe so the simulator's
        per-epoch slowdown accounting sees the degraded path too.
        """
        return max(self._row_stall_ns.values(), default=0.0)

    # ------------------------------------------------------------- epoch path

    def access_epoch(
        self,
        rows: np.ndarray,
        counts: np.ndarray,
        start_ns: float,
        dt_ns: float,
    ) -> None:
        """Vectorized epoch feed; exact-equivalent to the scalar loop.

        Two regimes (DESIGN.md §11):

        * **Eventless skip** -- when no row is quarantined, no table row
          is pinned, and the tracker proves the epoch's per-row totals
          cannot cross the threshold, every lookup is bloom-filtered
          identity and every observation is crossing-free, so the whole
          epoch settles as bulk counter arithmetic.
        * **Fused loop** -- otherwise, a single Python loop over the
          chunk arrays feeds the tracker's fast kernel directly.  Rows
          whose bloom group (memory-mapped) or FPT entry (SRAM) cannot
          be mapped skip the translation machinery entirely and settle
          their lookup counters in bulk at epoch end; only chunks that
          may be quarantined -- or that the kernel flags (spurious
          installs) -- take the full translate/quarantine path.
        """
        if not self._epoch_fast_path_ok(rows, counts):
            return self._scalar_epoch(rows, counts, start_ns, dt_ns)
        total = int(counts.sum())
        last_now = start_ns + dt_ns * (total - int(counts[-1]))
        epoch_of = self.refresh.epoch_of
        if epoch_of(start_ns) != epoch_of(last_now):
            # The chunk timestamps straddle a refresh boundary (only
            # possible with mismatched timing configs): the scalar
            # loop's per-chunk epoch sync is then load-bearing.
            return self._scalar_epoch(rows, counts, start_ns, dt_ns)
        self._sync_epoch(start_ns)
        tables = self.tables
        tracker = self.tracker
        stats = self.stats
        mm = isinstance(tables, MemoryMappedTables)
        mapped = len(tables.dram_fpt) if mm else len(tables.fpt)
        uniq, inverse = np.unique(rows, return_inverse=True)
        totals = np.bincount(
            inverse, weights=counts, minlength=len(uniq)
        ).astype(np.int64)
        if mapped == 0 and not self._pinned_fpt:
            if tracker.epoch_cannot_cross(uniq, totals):
                stats.accesses += total
                tracker.settle_epoch_counters(rows, counts)
                if mm:
                    tables.outcome_counts[
                        LookupOutcome.BLOOM_FILTERED
                    ] += total
                    tables.bloom.queries += total
                    tables.bloom.filtered += total
                else:
                    tables.fpt.lookups += total
                self.now_ns = last_now
                return
        # Direct per-bank dispatch: when the ART is the modulo-mapped
        # Misra-Gries tracker with no telemetry, call the bank kernels
        # straight from the loop and settle the rank-level counters in
        # bulk afterwards (they are commutative integer sums; table-row
        # observes go through ``observe_batch``, which maintains its
        # own rank counters, so they are unaffected).
        nb = self._tracker_mod_banks
        direct = None
        if nb is not None and not tracker._telemetry.enabled:
            fast_banks = [
                getattr(tracker._banks[b], "observe_fast", None)
                for b in range(nb)
            ]
            if all(fn is not None for fn in fast_banks):
                direct = fast_banks
        kernel = tracker.chunk_kernel() if direct is None else None
        feed = tracker.sparse_feed_mask(uniq, totals, self._tracker_reserve)
        feed_l = feed[inverse].tolist()
        rows_l = rows.tolist()
        counts_l = counts.tolist()
        if mm:
            group_size = tables.bloom.group_size
            # Bloom-positive groups: a bit is set iff its group is in
            # ``_valid_in_group``, so the keys are exactly the groups a
            # lookup would not filter.  Grow-only within the epoch --
            # releases only ever turn groups negative, which merely
            # sends their rows down the (still exact) full path.
            dirty = set(tables.bloom._valid_in_group)
            keys_l = (rows // group_size).tolist()
        else:
            group_size = 0
            dirty = {row for row, _ in tables.fpt.items()}
            keys_l = rows_l
        translate = self._translate_batch
        quarantine = self._quarantine
        now = start_ns
        cold_acts = 0
        settled_acts = 0
        trig_sum = 0
        settle_rows: list = []
        settle_counts: list = []
        for row, cnt, key, fd in zip(rows_l, counts_l, keys_l, feed_l):
            if key in dirty:
                self.now_ns = now
                stats.accesses += cnt
                physical = translate(row, cnt)[0]
                crossings = (
                    direct[physical % nb](physical, cnt)
                    if direct is not None
                    else kernel(physical, cnt)
                )
            elif fd:
                # Provably unmapped: identity translation whose only
                # effect is commutative lookup counters, settled in
                # bulk below.  The tracker still sees the chunk.
                stats.accesses += cnt
                crossings = (
                    direct[row % nb](row, cnt)
                    if direct is not None
                    else kernel(row, cnt)
                )
                if crossings:
                    # Rare spurious install: pay the (bloom-filtered)
                    # lookup now instead of in the bulk settle, then
                    # mitigate exactly as the scalar path would.
                    self.now_ns = now
                    physical = translate(row, cnt)[0]
                else:
                    cold_acts += cnt
                    now += cnt * dt_ns
                    continue
            else:
                # Unmapped *and* settle-safe: the tracker proved this
                # row cannot cross and that omitting it cannot perturb
                # any other row, so the chunk is pure bulk accounting.
                stats.accesses += cnt
                cold_acts += cnt
                settled_acts += cnt
                settle_rows.append(row)
                settle_counts.append(cnt)
                now += cnt * dt_ns
                continue
            if crossings:
                trig_sum += crossings
                busy = 0.0
                stall = 0.0
                for _ in range(crossings):
                    step = quarantine(row, physical, now)
                    busy += step.busy_ns
                    stall += step.stalled_ns
                    physical = step.physical_row
                stats.busy_ns += busy
                stats.stall_ns += stall
                dirty.add(row // group_size if mm else row)
            now += cnt * dt_ns
        if direct is not None:
            # Rank-level counters for the fed chunks, settled in bulk.
            tracker.observations += total - settled_acts
            tracker.triggers += trig_sum
        if settle_rows:
            tracker.settle_epoch_counters(
                np.asarray(settle_rows, dtype=np.int64),
                np.asarray(settle_counts, dtype=np.int64),
            )
        if cold_acts:
            if mm:
                tables.outcome_counts[
                    LookupOutcome.BLOOM_FILTERED
                ] += cold_acts
                tables.bloom.queries += cold_acts
                tables.bloom.filtered += cold_acts
            else:
                tables.fpt.lookups += cold_acts
        self.now_ns = last_now

    # -------------------------------------------------------------- internals

    def _throttle_fallback(
        self,
        logical_row: int,
        physical_row: int,
        now_ns: float,
        reason: str,
        busy_ns: float = 0.0,
    ) -> AccessResult:
        """Degrade a failed quarantine to Blockhammer-style throttling.

        The row stays where it is (no mapping was touched) and the
        access is stalled by one safe inter-activation interval, so the
        row cannot reach the Rowhammer threshold while the RQA is
        unavailable -- mitigation by rate limiting instead of by
        migration (the canonical fallback; DESIGN.md §8).
        """
        self.throttle_fallbacks += 1
        stall = self._throttle_interval_ns
        self._row_stall_ns[physical_row] = (
            self._row_stall_ns.get(physical_row, 0.0) + stall
        )
        if self.telemetry.enabled:
            self.telemetry.event(
                "throttle", now_ns,
                scheme=self.name, row=physical_row, stall_ns=stall,
                reason=reason,
            )
            self.telemetry.inc(
                "throttles_total", scheme=self.name, reason=reason
            )
        return AccessResult(
            physical_row=physical_row, busy_ns=busy_ns, stalled_ns=stall
        )

    def _interrupted_transfer_ns(
        self, logical_row: int, now_ns: float
    ) -> Optional[float]:
        """Run the ``migration_interrupt`` fault site for one migration.

        Returns the wasted-channel-time penalty of the interrupted
        attempts when a retry eventually succeeds, or ``None`` when the
        retry budget is exhausted and the caller must fall back to
        throttling (or fail, per ``rqa_full_policy``).  Interruptions
        abort the destination write before the mapping tables are
        updated, so every outcome leaves the row fully at its source:
        rollback-or-complete, never a half-migrated mapping.
        """
        faults = self.faults
        budget = self.config.migration_max_retries
        penalty = 0.0
        attempt = 0
        while faults.inject(
            "migration_interrupt", ts_ns=now_ns,
            scheme=self.name, row=logical_row, attempt=attempt,
        ):
            attempt += 1
            self.migration_retries += 1
            penalty += self._costs.interrupted_attempt_ns(attempt)
            if attempt > budget:
                self.aborted_migrations += 1
                if self.telemetry.enabled:
                    self.telemetry.inc(
                        "aborted_migrations_total", scheme=self.name
                    )
                return None
        return penalty

    def _quarantine(
        self, logical_row: int, physical_row: int, now_ns: float
    ) -> AccessResult:
        """Move ``logical_row`` (currently at ``physical_row``) into the RQA."""
        busy = 0.0
        if self.faults.enabled:
            if self.faults.inject(
                "rqa_forced_full", ts_ns=now_ns,
                scheme=self.name, row=logical_row,
            ):
                # Injected slot exhaustion (a DoS-pressure RQA): the
                # quarantine cannot land, so rate-limit the row instead.
                return self._throttle_fallback(
                    logical_row, physical_row, now_ns, reason="rqa-full"
                )
            penalty = self._interrupted_transfer_ns(logical_row, now_ns)
            if penalty is None:
                if self.config.rqa_full_policy == "fail":
                    raise FaultExhaustedError(
                        f"migration of row {logical_row} interrupted more "
                        f"than migration_max_retries="
                        f"{self.config.migration_max_retries} times"
                    )
                return self._throttle_fallback(
                    logical_row, physical_row, now_ns,
                    reason="migration-aborted",
                    busy_ns=self._costs.interrupted_attempt_ns(1),
                )
            busy += penalty
        extra_acts = []
        evicted = False
        telemetry = self.telemetry
        try:
            allocation = self.rqa.allocate(logical_row, self.current_epoch)
        except RqaExhaustedError:
            if self.config.rqa_full_policy == "fail":
                raise
            return self._throttle_fallback(
                logical_row, physical_row, now_ns,
                reason="rqa-exhausted", busy_ns=busy,
            )
        dest_physical = self.rqa_base + allocation.slot
        if (
            allocation.evicted_row is not None
            and allocation.evicted_row != logical_row
        ):
            # Lazy drain: move the stale previous-epoch resident home.
            stale = allocation.evicted_row
            if self.data is not None:
                self.data.move(dest_physical, stale)
            busy += self._migration_ns + self._release_mapping(
                stale, dest_physical
            )
            self.energy.add_migration(self.config.geometry.row_bytes)
            # Only the destination *write* is charged to the ledger:
            # the source read restores the departing row (like a
            # refresh) and is not an attack-usable activation of it.
            extra_acts.append(stale)
            self.stats.row_moves += 1
            self.stats.evictions += 1
            evicted = True
            if telemetry.enabled:
                telemetry.event(
                    "eviction", now_ns,
                    scheme=self.name, row=stale, slot=allocation.slot,
                    reason="lazy-drain",
                )
                telemetry.inc(
                    "evictions_total", scheme=self.name, reason="lazy-drain"
                )
        was_quarantined = physical_row != logical_row
        if was_quarantined and physical_row != dest_physical:
            # Internal migration: free the slot the row came from.
            # (When the head has lapped back to the row's own slot,
            # source and destination coincide and there is nothing to
            # release -- allocate() already refreshed the epoch tag.)
            self.rqa.release(physical_row - self.rqa_base)
            self.internal_migrations += 1
        if self.data is not None and physical_row != dest_physical:
            self.data.move(physical_row, dest_physical)
        busy += self._migration_ns + self.tables.on_quarantine(
            logical_row, allocation.slot
        )
        self.energy.add_migration(self.config.geometry.row_bytes)
        extra_acts.append(dest_physical)
        self.stats.migrations += 1
        self.stats.row_moves += 1
        if telemetry.enabled:
            telemetry.event(
                "migration", now_ns,
                scheme=self.name, row=logical_row, src=physical_row,
                dest=dest_physical, slot=allocation.slot, reason="demand",
                busy_ns=busy,
            )
            telemetry.inc(
                "migrations_total", scheme=self.name, reason="demand"
            )
        return AccessResult(
            physical_row=dest_physical,
            busy_ns=busy,
            migrated=True,
            evicted=evicted,
            extra_activations=tuple(extra_acts),
        )

    def _release_mapping(self, stale_row: int, slot_physical: int) -> float:
        """Drop the mapping of an evicted stale row.

        Table rows are mapped through the SRAM-pinned entries; all other
        rows through the table backend.  Returns the update latency.
        """
        if self._pinned_fpt.get(stale_row) == slot_physical:
            del self._pinned_fpt[stale_row]
            return 0.0
        return self.tables.on_release(stale_row)

    def _observe_table_row(self, table_row: int, count: int = 1) -> None:
        """Track (and if needed quarantine) in-DRAM table row accesses."""
        physical = self._pinned_fpt.get(table_row, table_row)
        crossings = self.tracker.observe_batch(physical, count)
        for _ in range(crossings):
            self._quarantine_table_row(table_row)

    def _quarantine_table_row(self, table_row: int) -> None:
        """Move a hammered table row into the RQA (Sec. VI-B integrity)."""
        telemetry = self.telemetry
        physical = self._pinned_fpt.get(table_row, table_row)
        try:
            allocation = self.rqa.allocate(table_row, self.current_epoch)
        except RqaExhaustedError:
            if self.config.rqa_full_policy == "fail":
                raise
            # Degraded path: the table row stays put and is rate-limited
            # like any other unquarantinable row.
            self._throttle_fallback(
                table_row, physical, self.now_ns, reason="rqa-exhausted"
            )
            return
        dest_physical = self.rqa_base + allocation.slot
        if allocation.evicted_row is not None:
            stale = allocation.evicted_row
            if self.data is not None:
                self.data.move(dest_physical, stale)
            self._release_mapping(stale, dest_physical)
            self.stats.row_moves += 1
            self.stats.evictions += 1
            self.energy.add_migration(self.config.geometry.row_bytes)
            if telemetry.enabled:
                telemetry.event(
                    "eviction", self.now_ns,
                    scheme=self.name, row=stale, slot=allocation.slot,
                    reason="lazy-drain",
                )
                telemetry.inc(
                    "evictions_total", scheme=self.name, reason="lazy-drain"
                )
        if self.data is not None:
            self.data.move(physical, dest_physical)
        if physical != table_row:
            self.rqa.release(physical - self.rqa_base)
            self.internal_migrations += 1
        self._pinned_fpt[table_row] = dest_physical
        self.stats.migrations += 1
        self.stats.row_moves += 1
        self.table_row_quarantines += 1
        self.energy.add_migration(self.config.geometry.row_bytes)
        if telemetry.enabled:
            telemetry.event(
                "migration", self.now_ns,
                scheme=self.name, row=table_row, src=physical,
                dest=dest_physical, slot=allocation.slot, reason="table-row",
            )
            telemetry.inc(
                "migrations_total", scheme=self.name, reason="table-row"
            )

    # --------------------------------------------------------------- services

    def table_dram_busy_ns(self) -> float:
        """Channel time spent on in-DRAM FPT/RPT traffic (Sec. V).

        Zero in SRAM-table mode.  This is the extra cost Fig. 9 measures
        between the SRAM and memory-mapped designs.
        """
        tables = self.tables
        if not isinstance(tables, MemoryMappedTables):
            return 0.0
        accesses = (
            tables.dram_fpt.dram_reads
            + tables.dram_fpt.dram_writes
            + tables.rpt_dram_accesses
        )
        return accesses * tables.dram_lookup_ns

    def locate(self, logical_row: int) -> int:
        """Current physical location of ``logical_row`` (no side effects).

        For tests and tools; does not touch trackers or lookup stats.
        """
        if isinstance(self.tables, SramTables):
            slot = self.tables.fpt._cat.lookup(logical_row)
        else:
            slot = self.tables.dram_fpt.peek(logical_row)
        if slot is None:
            return logical_row
        return self.rqa_base + slot

    def is_quarantined(self, logical_row: int) -> bool:
        """Whether ``logical_row`` currently lives in the RQA."""
        return self.locate(logical_row) != logical_row

    def drain_stale(self, max_rows: int = 64) -> int:
        """Background drain: return up to ``max_rows`` stale rows home.

        Sec. IV-D notes eviction latency can be removed from the critical
        path by periodically draining old entries; this implements that
        optional optimisation.  Returns the number of rows drained.
        """
        drained = 0
        for slot in self.rqa.stale_slots(self.current_epoch):
            if drained >= max_rows:
                break
            row = self.rqa.release(slot)
            if row is None:
                continue
            if self.data is not None:
                self.data.move(self.rqa_base + slot, row)
            self.tables.on_release(row)
            self.stats.row_moves += 1
            self.energy.add_migration(self.config.geometry.row_bytes)
            drained += 1
        return drained

    def collect_metrics(self, telemetry) -> None:
        """Snapshot-time export of AQUA's structure-level statistics."""
        super().collect_metrics(telemetry)
        registry = telemetry.registry
        scheme = self.name
        registry.gauge("rqa_occupancy").set(
            self.rqa.occupancy(), scheme=scheme
        )
        registry.counter("rqa_allocations_total").set_total(
            self.rqa.allocations, scheme=scheme
        )
        registry.counter("rqa_evictions_total").set_total(
            self.rqa.evictions, scheme=scheme
        )
        registry.counter("internal_migrations_total").set_total(
            self.internal_migrations, scheme=scheme
        )
        registry.counter("table_row_quarantines_total").set_total(
            self.table_row_quarantines, scheme=scheme
        )
        if self.faults.enabled or self.config.rqa_full_policy != "fail":
            registry.counter("throttle_fallbacks_total").set_total(
                self.throttle_fallbacks, scheme=scheme
            )
            registry.counter("migration_retries_total").set_total(
                self.migration_retries, scheme=scheme
            )
            registry.counter("aborted_migrations_total").set_total(
                self.aborted_migrations, scheme=scheme
            )
            if isinstance(self.tables, MemoryMappedTables):
                registry.counter("fpt_cache_forced_misses_total").set_total(
                    self.tables.forced_misses, scheme=scheme
                )
        self.tracker.collect_metrics(telemetry, scheme=scheme)
        if isinstance(self.tables, MemoryMappedTables):
            self.tables.cache.collect_metrics(telemetry, scheme=scheme)
            for outcome, count in self.tables.outcome_counts.items():
                registry.counter("fpt_lookup_outcomes_total").set_total(
                    count, scheme=scheme, outcome=outcome.value
                )

    def lookup_breakdown(self) -> Dict[LookupOutcome, float]:
        """Fig. 10 series (memory-mapped mode only)."""
        if isinstance(self.tables, MemoryMappedTables):
            return self.tables.lookup_breakdown()
        total = max(1, self.tables.fpt.lookups)
        return {LookupOutcome.SRAM: self.tables.fpt.lookups / total}
