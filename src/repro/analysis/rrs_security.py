"""RRS's probabilistic security: the birthday-paradox analysis (Sec. II-F).

RRS hides an attacked row at a uniformly random location among ``N``
rows.  Because a row relocates every ``T_RH / 6`` activations, flipping
a bit requires the attacker to get lucky *repeatedly within one refresh
window*: the hammered physical neighbourhood must receive several
consecutive swap placements so that some row still accumulates ``T_RH``
activations.  The defence is therefore probabilistic, and the AQUA
paper notes an attacker succeeds on average within ~4 years -- scaled
down linearly when targeting N machines.

The model here is a deliberately simple geometric abstraction of that
analysis (the full derivation is in the RRS paper): the attacker
monitors ``monitored_rows`` physical locations and wins a window if
``collisions_required`` forced swaps in that window all land inside
the monitored set.  The defaults are calibrated so the baseline
configuration (16 GB, ``T_RH = 1K``) reproduces the paper's
order-of-years figure.

AQUA's point of contrast: its security is *deterministic* (an invariant
over activation counts), so these functions have no AQUA counterpart.
"""

from __future__ import annotations

from repro.dram.geometry import DramGeometry, DEFAULT_GEOMETRY
from repro.dram.timing import DDR4Timing, DDR4_2400


#: Consecutive same-neighbourhood placements needed within one window
#: for a monitored physical row to accumulate T_RH activations.
DEFAULT_COLLISIONS_REQUIRED = 3

#: Physical locations the attacker hammers/monitors concurrently.
DEFAULT_MONITORED_ROWS = 32


def swaps_per_window(
    rowhammer_threshold: int,
    banks: int = 16,
    timing: DDR4Timing = DDR4_2400,
) -> float:
    """Maximum row swaps an attacker can force per refresh window."""
    swap_threshold = max(1, rowhammer_threshold // 6)
    return banks * timing.act_max / swap_threshold


def success_probability_per_window(
    rowhammer_threshold: int,
    geometry: DramGeometry = DEFAULT_GEOMETRY,
    timing: DDR4Timing = DDR4_2400,
    collisions_required: int = DEFAULT_COLLISIONS_REQUIRED,
    monitored_rows: int = DEFAULT_MONITORED_ROWS,
) -> float:
    """Probability the attacker wins within one refresh window.

    ``swaps`` independent attempts, each needing ``collisions_required``
    uniform placements to land in the monitored set.
    """
    if collisions_required < 1 or monitored_rows < 1:
        raise ValueError("model parameters must be >= 1")
    n = geometry.rows_per_rank
    swaps = swaps_per_window(
        rowhammer_threshold, geometry.banks_per_rank, timing
    )
    per_attempt = (monitored_rows / n) ** collisions_required
    return min(1.0, swaps * per_attempt)


def expected_attack_seconds(
    rowhammer_threshold: int,
    machines: int = 1,
    geometry: DramGeometry = DEFAULT_GEOMETRY,
    timing: DDR4Timing = DDR4_2400,
    collisions_required: int = DEFAULT_COLLISIONS_REQUIRED,
    monitored_rows: int = DEFAULT_MONITORED_ROWS,
) -> float:
    """Expected time for a birthday-paradox attack to succeed.

    Geometric waiting time over refresh windows; targeting ``machines``
    systems divides the expectation (the paper's observation that the
    4-year figure shrinks linearly with N machines).
    """
    if machines < 1:
        raise ValueError("machines must be >= 1")
    p = success_probability_per_window(
        rowhammer_threshold,
        geometry,
        timing,
        collisions_required,
        monitored_rows,
    )
    if p <= 0:
        return float("inf")
    windows = 1.0 / p
    seconds = windows * timing.trefw_ns * 1e-9
    return seconds / machines


SECONDS_PER_YEAR = 365.25 * 24 * 3600.0


def expected_attack_years(
    rowhammer_threshold: int,
    machines: int = 1,
    geometry: DramGeometry = DEFAULT_GEOMETRY,
    timing: DDR4Timing = DDR4_2400,
    collisions_required: int = DEFAULT_COLLISIONS_REQUIRED,
    monitored_rows: int = DEFAULT_MONITORED_ROWS,
) -> float:
    """Expected attack time in years (~4 years at the baseline point)."""
    return (
        expected_attack_seconds(
            rowhammer_threshold,
            machines,
            geometry,
            timing,
            collisions_required,
            monitored_rows,
        )
        / SECONDS_PER_YEAR
    )
