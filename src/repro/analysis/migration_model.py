"""Appendix A: analytical model of RRS-vs-AQUA migration overhead.

Setup: consider the set of rows that incur at least ``T_RH/6``
activations in an epoch (so RRS mitigates all of them).  Let ``f`` be
the fraction of those that also reach ``T_RH/2`` (so AQUA mitigates
them too).  For simplicity each row incurs either ``T_RH/6`` or
``T_RH/2`` activations.  Then:

* AQUA performs ``f`` mitigations (one row move each).
* RRS performs ``3f + (1 - f)`` mitigations (a row reaching ``T_RH/2``
  crosses the ``T_RH/6`` swap threshold three times), each a swap of
  **two** row moves.

The relative row-migration overhead is therefore::

    r(f) = 2 * (3f + (1 - f)) / f  =  (2 + 4f) / f

with the guaranteed floor ``r(1) = 6`` -- AQUA incurs at least 6x fewer
row migrations than RRS -- and the measured average across the paper's
34 workloads corresponding to ``r = 9`` (``f ~ 0.4``), matching Fig. 6.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def migration_ratio(f: float) -> float:
    """Relative row migrations of RRS vs AQUA at hot-row fraction ``f``.

    ``f`` is the fraction of RRS-mitigated rows that AQUA also
    mitigates; must lie in (0, 1].
    """
    if not 0.0 < f <= 1.0:
        raise ValueError("f must be in (0, 1]")
    return (2.0 + 4.0 * f) / f


def guaranteed_floor() -> float:
    """The best case for RRS: every hot row is AQUA-hot too (r = 6)."""
    return migration_ratio(1.0)


def f_for_ratio(ratio: float) -> float:
    """Invert the model: the ``f`` that yields a given ratio ``r``.

    From ``r = (2 + 4f)/f``: ``f = 2 / (r - 4)``.  Defined for r > 6.
    """
    if ratio <= guaranteed_floor():
        raise ValueError("ratio must exceed the guaranteed floor of 6")
    return 2.0 / (ratio - 4.0)


def fig12_series(
    fractions: Sequence[float] = None,
) -> List[Tuple[float, float]]:
    """The (f, r) curve plotted in Fig. 12."""
    if fractions is None:
        fractions = [i / 100.0 for i in range(5, 101, 5)]
    return [(f, migration_ratio(f)) for f in fractions]


def empirical_ratio(
    aqua_row_moves: int, rrs_row_moves: int
) -> float:
    """Measured migration ratio from simulation counters (Fig. 6 check)."""
    if aqua_row_moves <= 0:
        raise ValueError("aqua_row_moves must be positive")
    return rrs_row_moves / aqua_row_moves
