"""Security oracles: the ground truth the mitigation schemes are judged by.

Two complementary models:

* :class:`ActivationLedger` -- counts activations per *physical* row in
  a sliding ``tREFW`` window.  AQUA's security invariant (Sec. VI-A) is
  exactly "no physical row receives ``T_RH`` activations in any 64 ms
  window"; the ledger verifies it directly.

* :class:`DisturbanceOracle` -- models the charge-disturbance physics:
  every activation or refresh of a row disturbs its distance-1
  neighbours, and a row's own activation/refresh restores its charge.
  A row accumulating more than ``T_RH`` disturbances flips.  Because
  *refreshes count as activations for the neighbours' purposes*, this
  oracle naturally reproduces the Half-Double attack: victim refreshes
  issued as mitigation hammer the rows one step further out.

The ledger is the paper's stated invariant; the oracle is the physics
that justifies it (a scheme that bounds per-row activations bounds every
row's disturbance to at most two neighbours' worth).
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.dram.timing import DDR4_2400


@dataclass(frozen=True)
class BitFlip:
    """A Rowhammer bit flip predicted by the disturbance oracle."""

    row: int
    time_ns: float
    disturbance: int


class ActivationLedger:
    """Sliding-window activation counts per physical row.

    ``record`` must be called with non-decreasing timestamps.  Intended
    for attack-scale experiments (it keeps a timestamp deque per touched
    row); performance sweeps leave it disabled.
    """

    def __init__(self, window_ns: float = None) -> None:
        self.window_ns = window_ns if window_ns is not None else DDR4_2400.trefw_ns
        self._events: Dict[int, deque] = defaultdict(deque)
        self._peak: Dict[int, int] = defaultdict(int)

    def record(self, row: int, now_ns: float) -> int:
        """Record one activation; return the row's current window count."""
        events = self._events[row]
        events.append(now_ns)
        cutoff = now_ns - self.window_ns
        while events and events[0] <= cutoff:
            events.popleft()
        count = len(events)
        if count > self._peak[row]:
            self._peak[row] = count
        return count

    def window_count(self, row: int, now_ns: float) -> int:
        """Activations of ``row`` within the window ending at ``now_ns``."""
        cutoff = now_ns - self.window_ns
        return sum(1 for t in self._events.get(row, ()) if t > cutoff)

    def peak(self, row: int) -> int:
        """Highest window count ever observed for ``row``."""
        return self._peak.get(row, 0)

    def max_peak(self) -> int:
        """Highest window count across all rows."""
        return max(self._peak.values(), default=0)

    def worst_row(self) -> Optional[int]:
        """Row with the highest peak window count."""
        if not self._peak:
            return None
        return max(self._peak, key=self._peak.get)

    def violations(self, rowhammer_threshold: int) -> List[int]:
        """Rows whose peak window count reached ``rowhammer_threshold``."""
        return [
            row
            for row, peak in self._peak.items()
            if peak >= rowhammer_threshold
        ]


class DisturbanceOracle:
    """Charge-disturbance model over physical rows.

    Parameters
    ----------
    neighbors:
        Function mapping a physical row to its distance-1 neighbours
        (same bank).  Typically ``AddressMapper.neighbors``.
    rowhammer_threshold:
        Disturbance count at which a row flips.
    """

    def __init__(
        self,
        neighbors: Callable[[int], list],
        rowhammer_threshold: int,
    ) -> None:
        if rowhammer_threshold < 1:
            raise ValueError("rowhammer_threshold must be >= 1")
        self.neighbors = neighbors
        self.rowhammer_threshold = rowhammer_threshold
        self._disturbance: Dict[int, int] = defaultdict(int)
        self._flipped: set = set()
        self.flips: List[BitFlip] = []

    def _disturb_neighbors(self, row: int, now_ns: float) -> None:
        for neighbor in self.neighbors(row):
            count = self._disturbance[neighbor] + 1
            self._disturbance[neighbor] = count
            if count > self.rowhammer_threshold and neighbor not in self._flipped:
                self._flipped.add(neighbor)
                self.flips.append(BitFlip(neighbor, now_ns, count))

    def record_activation(self, row: int, now_ns: float) -> None:
        """An activation restores ``row`` and disturbs its neighbours."""
        self._disturbance[row] = 0
        self._disturb_neighbors(row, now_ns)

    def record_refresh(self, row: int, now_ns: float) -> None:
        """A (victim) refresh restores ``row`` -- but, being a row
        activation internally, it disturbs ``row``'s own neighbours.

        This is the coupling the Half-Double attack exploits.
        """
        self._disturbance[row] = 0
        self._disturb_neighbors(row, now_ns)

    def end_epoch(self) -> None:
        """Periodic auto-refresh restores every row (64 ms boundary)."""
        self._disturbance.clear()

    def disturbance(self, row: int) -> int:
        """Current accumulated disturbance of ``row``."""
        return self._disturbance.get(row, 0)

    @property
    def flipped_rows(self) -> set:
        """Rows the oracle has declared flipped."""
        return set(self._flipped)
