"""Power accounting for AQUA's structures (Sec. V-H).

The paper reports, at ``T_RH = 1K`` with memory-mapped tables:

* DRAM power overhead: +0.7 % (8.5 mW), from row migrations and table
  accesses (gem5 DDR4 power model).
* SRAM power: 13.6 mW total via CACTI 7.0 at 22 nm -- 5.4 mW for the
  16 KB bloom filter, 5.4 mW for the 16 KB FPT-Cache, and 2.8 mW for
  the 8 KB copy-buffer.

We reproduce the SRAM numbers with a linear per-KB coefficient
calibrated to those CACTI points (0.34 mW/KB at 22 nm for small
single-ported arrays), and the DRAM overhead with the event-count model
of :mod:`repro.dram.power`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.power import DramEnergyCounters, DramPowerModel


SRAM_MW_PER_KB = 0.34
"""CACTI-calibrated static+dynamic power of small SRAM arrays, 22 nm."""


def sram_static_mw(size_bytes: int) -> float:
    """Power of an SRAM structure of ``size_bytes`` (mW)."""
    if size_bytes < 0:
        raise ValueError("size must be non-negative")
    return SRAM_MW_PER_KB * size_bytes / 1024


@dataclass
class AquaPowerReport:
    """Combined SRAM + DRAM power overhead of an AQUA configuration."""

    bloom_bytes: int = 16 * 1024
    fpt_cache_bytes: int = 16 * 1024
    copy_buffer_bytes: int = 8 * 1024

    @property
    def bloom_mw(self) -> float:
        return sram_static_mw(self.bloom_bytes)

    @property
    def fpt_cache_mw(self) -> float:
        return sram_static_mw(self.fpt_cache_bytes)

    @property
    def copy_buffer_mw(self) -> float:
        return sram_static_mw(self.copy_buffer_bytes)

    @property
    def sram_total_mw(self) -> float:
        """~13.6 mW for the default configuration."""
        return self.bloom_mw + self.fpt_cache_mw + self.copy_buffer_mw

    def dram_overhead_mw(
        self,
        baseline: DramEnergyCounters,
        mitigated: DramEnergyCounters,
        interval_ns: float,
        model: DramPowerModel = None,
    ) -> float:
        """DRAM power added by migrations/table traffic over an interval."""
        if model is None:
            model = DramPowerModel()
        return model.overhead_mw(baseline, mitigated, interval_ns)

    def dram_overhead_fraction(
        self,
        baseline: DramEnergyCounters,
        mitigated: DramEnergyCounters,
        interval_ns: float,
        model: DramPowerModel = None,
    ) -> float:
        """DRAM power overhead as a fraction of baseline DRAM power."""
        if model is None:
            model = DramPowerModel()
        base_mw = model.average_power_mw(baseline, interval_ns)
        extra_mw = model.overhead_mw(baseline, mitigated, interval_ns)
        return extra_mw / base_mw
