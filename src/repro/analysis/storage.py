"""Storage-overhead arithmetic: per-structure SRAM/DRAM sizes (Table VII).

The models here are parametric in the Rowhammer threshold so that the
scaling arguments of the paper (Fig. 1b, Sec. II-F) can be regenerated,
and are calibrated to reproduce the point values the paper quotes at
``T_RH = 1K``:

===========================  ==========  =============================
Structure                    Paper       Model
===========================  ==========  =============================
Misra-Gries tracker           396 KB     per-bank ACTmax/T entries
Hydra tracker                 ~28-30 KB  GCT + RCC
RRS RIT                       2.4 MB     CAT with 2 entries per swap
AQUA FPT+RPT (SRAM mode)      172 KB     CAT FPT 108 KB + RPT 64 KB
AQUA tables (memory-mapped)   32.6 KB    bloom 16 KB + cache 16 KB
===========================  ==========  =============================
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.core.fpt import DEFAULT_FPT_CAPACITY, ForwardPointerTable
from repro.core.rpt import ReversePointerTable
from repro.core.sizing import rqa_rows
from repro.dram.geometry import DramGeometry, DEFAULT_GEOMETRY
from repro.dram.timing import DDR4Timing, DDR4_2400

KB = 1024


def misra_gries_tracker_bytes(
    effective_threshold: int,
    geometry: DramGeometry = DEFAULT_GEOMETRY,
    timing: DDR4Timing = DDR4_2400,
) -> int:
    """SRAM of the per-bank Misra-Gries ART.

    Per bank, ``ACTmax / T`` entries.  Entry size is calibrated to the
    paper's 396 KB per rank at ``T = 500``: each entry holds the row
    address within the bank (17 bits), an activation counter wide enough
    for ACTmax (21 bits), and CAM/valid overhead -- ~74 bits total, the
    fully-associative CAM costing roughly double a plain SRAM entry.
    """
    entries_per_bank = max(1, timing.act_max // effective_threshold)
    entry_bits = 74
    return math.ceil(
        geometry.banks_per_rank * entries_per_bank * entry_bits / 8
    )


def hydra_tracker_bytes(
    gct_entries: int = 8 * 1024, rcc_entries: int = 4 * 1024
) -> int:
    """SRAM of the Hydra tracker: group counters plus row-count cache.

    ~28-30 KB per rank, matching Appendix B.
    """
    gct_bytes = gct_entries * 2  # 16-bit group counters
    rcc_bytes = rcc_entries * 4  # tag + count per cached row counter
    return gct_bytes + rcc_bytes + 1 * KB  # control/overflow metadata


def rrs_rit_bytes(
    rowhammer_threshold: int,
    geometry: DramGeometry = DEFAULT_GEOMETRY,
    timing: DDR4Timing = DDR4_2400,
    overprovision: float = 1.5,
    entry_bytes: int = 6,
) -> int:
    """SRAM of RRS's Row Indirection Table.

    RRS swaps at ``T_RH / 6``; each swap relocates two rows, and both
    need RIT entries for the rest of the window.  The CAT over-provision
    factor and entry size reproduce the paper's 2.4 MB at 1 K and
    0.65 MB at 4 K.
    """
    swap_threshold = max(1, rowhammer_threshold // 6)
    max_swaps = geometry.banks_per_rank * timing.act_max // swap_threshold
    valid_entries = 2 * max_swaps
    return math.ceil(valid_entries * overprovision * entry_bytes)


def aqua_mapping_bytes(
    rowhammer_threshold: int,
    table_mode: str = "memory-mapped",
    geometry: DramGeometry = DEFAULT_GEOMETRY,
    timing: DDR4Timing = DDR4_2400,
    bloom_bytes: int = 16 * KB,
    fpt_cache_bytes: int = 16 * KB,
) -> int:
    """SRAM of AQUA's mapping structures (excluding the copy-buffer).

    SRAM mode: CAT FPT (108 KB) + RPT (~64 KB) = 172 KB at 1 K.
    Memory-mapped mode: bloom filter + FPT-Cache + pinned entries for
    the table rows = ~32.6 KB, independent of the threshold.
    """
    if table_mode == "memory-mapped":
        pinned = 512 + 32  # FPT/RPT-row entries pinned in SRAM (Sec. VI-B)
        return bloom_bytes + fpt_cache_bytes + pinned
    slots = rqa_rows(
        max(1, rowhammer_threshold // 2),
        banks=geometry.banks_per_rank,
        timing=timing,
        row_bytes=geometry.row_bytes,
    )
    fpt = ForwardPointerTable.sram_bytes(DEFAULT_FPT_CAPACITY)
    rpt = ReversePointerTable.sram_bytes(slots, geometry.row_pointer_bits)
    return fpt + rpt


@dataclass(frozen=True)
class StorageReport:
    """One column of Table VII: a scheme+tracker storage breakdown."""

    name: str
    tracker_bytes: int
    mapping_bytes: int
    buffer_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.tracker_bytes + self.mapping_bytes + self.buffer_bytes

    def as_kb(self) -> dict:
        """Human-readable breakdown in KB."""
        return {
            "tracker_kb": self.tracker_bytes / KB,
            "mapping_kb": self.mapping_bytes / KB,
            "buffer_kb": self.buffer_bytes / KB,
            "total_kb": self.total_bytes / KB,
        }


def table_vii(
    rowhammer_threshold: int = 1000,
    geometry: DramGeometry = DEFAULT_GEOMETRY,
    timing: DDR4Timing = DDR4_2400,
) -> List[StorageReport]:
    """Regenerate Table VII: RRS/AQUA with Misra-Gries/Hydra trackers.

    Buffer sizes: RRS needs two row buffers to swap (16 KB); AQUA one
    copy-buffer (8 KB).
    """
    row_kb = geometry.row_bytes
    mg = misra_gries_tracker_bytes(
        max(1, rowhammer_threshold // 2), geometry, timing
    )
    hydra = hydra_tracker_bytes()
    rit = rrs_rit_bytes(rowhammer_threshold, geometry, timing)
    aqua_map = aqua_mapping_bytes(
        rowhammer_threshold, "memory-mapped", geometry, timing
    )
    return [
        StorageReport("RRS-MG", mg, rit, 2 * row_kb),
        StorageReport("AQUA-MG", mg, aqua_map, row_kb),
        StorageReport("RRS-Hydra", hydra, rit, 2 * row_kb),
        StorageReport("AQUA-Hydra", hydra, aqua_map, row_kb),
    ]
