"""Analysis tools: security oracles, storage/power models, paper math.

* :mod:`repro.analysis.security` -- activation ledger and disturbance
  oracle used to check the Rowhammer invariant under attack.
* :mod:`repro.analysis.storage` -- SRAM/DRAM storage arithmetic
  (Table VII and the per-structure sizes quoted through the paper).
* :mod:`repro.analysis.migration_model` -- Appendix A's analytical
  RRS-vs-AQUA migration ratio (Fig. 12).
* :mod:`repro.analysis.thresholds` -- the Rowhammer threshold timeline
  of Fig. 2.
* :mod:`repro.analysis.power` -- SRAM/DRAM power accounting (Sec. V-H).
"""

from repro.analysis.security import (
    ActivationLedger,
    BitFlip,
    DisturbanceOracle,
)
from repro.analysis.storage import (
    StorageReport,
    aqua_mapping_bytes,
    hydra_tracker_bytes,
    misra_gries_tracker_bytes,
    rrs_rit_bytes,
    table_vii,
)
from repro.analysis.migration_model import (
    migration_ratio,
    fig12_series,
)
from repro.analysis.thresholds import THRESHOLD_TIMELINE, threshold_trend
from repro.analysis.power import AquaPowerReport, sram_static_mw
from repro.analysis.rrs_security import (
    expected_attack_years,
    success_probability_per_window,
    swaps_per_window,
)
from repro.analysis.report import build_report, write_report

__all__ = [
    "ActivationLedger",
    "BitFlip",
    "DisturbanceOracle",
    "StorageReport",
    "aqua_mapping_bytes",
    "hydra_tracker_bytes",
    "misra_gries_tracker_bytes",
    "rrs_rit_bytes",
    "table_vii",
    "migration_ratio",
    "fig12_series",
    "THRESHOLD_TIMELINE",
    "threshold_trend",
    "AquaPowerReport",
    "sram_static_mw",
    "expected_attack_years",
    "success_probability_per_window",
    "swaps_per_window",
    "build_report",
    "write_report",
]
