"""Rowhammer threshold timeline (Fig. 2).

Literature data points for the minimum activation count needed to
induce a bit flip, per DRAM generation, as characterised by Kim et al.
(ISCA 2014) and revisited by Kim et al. (ISCA 2020).  The paper's
motivating observation: a ~30x decline from 139K (DDR3, 2014) to 4.8K
(LPDDR4, 2020), with further decline expected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class ThresholdPoint:
    """One characterised DRAM generation."""

    year: int
    technology: str
    rowhammer_threshold: int
    source: str


THRESHOLD_TIMELINE: List[ThresholdPoint] = [
    ThresholdPoint(2014, "DDR3 (old)", 139_000, "Kim et al., ISCA 2014"),
    ThresholdPoint(2018, "DDR3 (new)", 22_400, "Kim et al., ISCA 2020"),
    ThresholdPoint(2019, "DDR4 (old)", 17_500, "Kim et al., ISCA 2020"),
    ThresholdPoint(2020, "DDR4 (new)", 10_000, "Kim et al., ISCA 2020"),
    ThresholdPoint(2020, "LPDDR4 (new)", 4_800, "Kim et al., ISCA 2020"),
]
"""Fig. 2's series: threshold by DRAM generation."""


def threshold_trend() -> dict:
    """Summary statistics of the decline the paper motivates with.

    Returns the first/last points and the overall reduction factor
    (~29x between 2014 and 2020).
    """
    first = THRESHOLD_TIMELINE[0]
    last = THRESHOLD_TIMELINE[-1]
    return {
        "first": first,
        "last": last,
        "reduction_factor": first.rowhammer_threshold / last.rowhammer_threshold,
        "span_years": last.year - first.year,
    }
