"""Consolidated experiment report builder.

Collects the rendered tables the benchmark harness writes under
``benchmarks/results/`` into one markdown document (one section per
experiment, in the paper's order), so a full reproduction run leaves a
single reviewable artifact::

    pytest benchmarks/ --benchmark-only
    python -c "from repro.analysis.report import write_report; write_report()"
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional


#: Experiment id -> (results file stem, section heading), paper order.
SECTIONS = [
    ("fig02", "fig02_threshold_trend", "Figure 2 — Rowhammer threshold trend"),
    ("fig03", "fig03_rrs_scaling", "Figure 3 — RRS slowdown vs threshold"),
    ("table2", "table2_workload_characteristics",
     "Table II — workload characteristics"),
    ("table3", "table3_rqa_sizing", "Table III — RQA sizing"),
    ("fig06", "fig06_migrations", "Figure 6 — row migrations per 64 ms"),
    ("fig07", "fig07_performance", "Figure 7 — performance vs RRS"),
    ("fig09", "fig09_memtable_performance",
     "Figure 9 — SRAM vs memory-mapped tables"),
    ("fig10", "fig10_fpt_breakdown", "Figure 10 — FPT lookup breakdown"),
    ("fig11a", "fig11_threshold_sensitivity",
     "Figure 11 — threshold sensitivity"),
    ("fig11b", "fig11_structure_sensitivity",
     "Sec. V-F — structure-size sensitivity"),
    ("table4", "table4_victim_refresh", "Table IV — vs victim refresh"),
    ("table5", "table5_crow", "Table V — CROW copy-row scaling"),
    ("table6", "table6_comparison", "Table VI — scheme comparison"),
    ("table7", "table7_sram", "Table VII — SRAM including trackers"),
    ("fig12", "fig12_analytical_model", "Figure 12 — analytical model"),
    ("dos", "dos_worst_case", "Sec. VI-C — worst-case slowdown"),
    ("power", "power_analysis", "Sec. V-H — power analysis"),
    ("appb", "appendix_b_hydra", "Appendix B — AQUA with the Hydra tracker"),
    ("eq3", "rqa_sizing_validation", "Equation 3 — empirical validation"),
    ("matrix", "defense_matrix", "Security cross product (extension)"),
    ("abl1", "ablation_cat_vs_setassoc", "Ablation — CAT vs set-assoc FPT"),
    ("abl2", "ablation_drain_policy", "Ablation — drain policy"),
    ("abl3", "ablation_tracker_choice", "Ablation — tracker choice"),
]


def default_results_dir() -> str:
    """`benchmarks/results/` relative to the repository root."""
    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    return os.path.join(root, "benchmarks", "results")


def collect(results_dir: Optional[str] = None) -> Dict[str, str]:
    """Read available result tables; missing experiments are skipped."""
    directory = results_dir or default_results_dir()
    tables: Dict[str, str] = {}
    for experiment_id, stem, _ in SECTIONS:
        path = os.path.join(directory, f"{stem}.txt")
        if os.path.exists(path):
            with open(path) as handle:
                tables[experiment_id] = handle.read()
    return tables


def build_report(results_dir: Optional[str] = None) -> str:
    """Render the consolidated markdown report."""
    tables = collect(results_dir)
    lines: List[str] = [
        "# AQUA reproduction — consolidated results",
        "",
        f"{len(tables)} of {len(SECTIONS)} experiments present "
        "(run `pytest benchmarks/ --benchmark-only` to regenerate).",
        "",
    ]
    for experiment_id, _, heading in SECTIONS:
        if experiment_id not in tables:
            continue
        lines.append(f"## {heading}")
        lines.append("")
        lines.append("```")
        lines.append(tables[experiment_id].rstrip("\n"))
        lines.append("```")
        lines.append("")
    return "\n".join(lines)


def write_report(
    path: Optional[str] = None, results_dir: Optional[str] = None
) -> str:
    """Write the report next to the results; return the path."""
    if path is None:
        path = os.path.join(
            results_dir or default_results_dir(), "REPORT.md"
        )
    content = build_report(results_dir)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as handle:
        handle.write(content)
    return path
