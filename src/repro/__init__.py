"""repro: a full Python reproduction of AQUA (MICRO 2022).

AQUA mitigates Rowhammer by *quarantining* aggressor rows: once a row's
activation count crosses half the Rowhammer threshold, its contents are
migrated into a dedicated Row Quarantine Area, breaking the spatial
correlation between aggressor and victim rows that every refresh-based
defense (and the Half-Double attack) depends on.

Quick start::

    from repro import AquaMitigation, AquaConfig
    from repro.sim import SystemSimulator
    from repro.workloads import workload

    aqua = AquaMitigation(AquaConfig(rowhammer_threshold=1000))
    result = SystemSimulator(aqua).run(workload("lbm"))
    print(result.summary())

Package layout:

* :mod:`repro.core` -- AQUA itself: RQA, FPT/RPT, bloom filter,
  FPT-Cache, sizing analysis.
* :mod:`repro.dram` -- the DDR4 substrate (timing, banks, refresh,
  power).
* :mod:`repro.trackers` -- aggressor-row trackers (Misra-Gries, Hydra,
  exact).
* :mod:`repro.mitigations` -- baselines: RRS, Blockhammer, victim
  refresh, CROW, none.
* :mod:`repro.controller` -- the timed memory-controller request path.
* :mod:`repro.attacks` -- attack patterns and the adversarial harness.
* :mod:`repro.workloads` -- Table II-calibrated synthetic SPEC2017
  workloads and mixes.
* :mod:`repro.sim` -- the system simulator and experiment runner.
* :mod:`repro.analysis` -- security oracles, storage/power models, and
  the paper's analytical models.
"""

from repro.core.aqua import AquaMitigation
from repro.core.config import AquaConfig
from repro.core.quarantine import RqaExhaustedError
from repro.core.sizing import rqa_rows, table_iii
from repro.errors import (
    ConfigError,
    FaultExhaustedError,
    ReproError,
    RunTimeoutError,
    SimulationError,
)
from repro.faults import FaultInjector
from repro.mitigations import (
    Blockhammer,
    CrowModel,
    NoMitigation,
    RandomizedRowSwap,
    VictimRefresh,
)
from repro.sim import SystemSimulator
from repro.workloads import workload, all_mixes

__version__ = "1.0.0"

__all__ = [
    "AquaMitigation",
    "AquaConfig",
    "ConfigError",
    "FaultExhaustedError",
    "FaultInjector",
    "ReproError",
    "RqaExhaustedError",
    "RunTimeoutError",
    "SimulationError",
    "rqa_rows",
    "table_iii",
    "Blockhammer",
    "CrowModel",
    "NoMitigation",
    "RandomizedRowSwap",
    "VictimRefresh",
    "SystemSimulator",
    "workload",
    "all_mixes",
    "__version__",
]
