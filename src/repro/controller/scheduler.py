"""FR-FCFS request scheduler.

The baseline memory controller (Table I's out-of-order system) services
requests with the standard First-Ready, First-Come-First-Served policy:

1. **First-ready**: among queued requests, prefer one that hits an open
   row buffer (it needs no precharge/activate and does not consume the
   bank's ACT-to-ACT window).
2. **FCFS**: among equally-ready requests, oldest first.

The scheduler is substrate, not contribution -- mitigations interpose
on the *activation* stream regardless of arrival order -- but it lets
integration tests exercise realistic interleavings (row-buffer locality
changes which accesses become activations, which is what trackers see).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.controller.request import MemoryRequest
from repro.dram.address import AddressMapper
from repro.dram.channel import Channel


@dataclass
class QueuedRequest:
    """A request with its arrival order stamp."""

    request: MemoryRequest
    order: int


class FrFcfsScheduler:
    """First-Ready FCFS arbitration over a bounded request queue."""

    def __init__(self, capacity: int = 32) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._queue: List[QueuedRequest] = []
        self._arrivals = 0
        self.row_hits_selected = 0

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def full(self) -> bool:
        return len(self._queue) >= self.capacity

    def enqueue(self, request: MemoryRequest) -> None:
        """Admit a request; raises when the queue is full."""
        if self.full:
            raise RuntimeError(f"scheduler queue full ({self.capacity})")
        self._queue.append(QueuedRequest(request, self._arrivals))
        self._arrivals += 1

    def select(
        self, channel: Channel, mapper: AddressMapper
    ) -> Optional[MemoryRequest]:
        """Pick and remove the next request to service.

        Row-buffer hits first (oldest hit), else the oldest request.
        ``physical`` row state is read from the channel's banks; callers
        that remap rows should enqueue post-translation addresses.
        """
        if not self._queue:
            return None
        best_index = None
        best_key = None
        for index, queued in enumerate(self._queue):
            row = queued.request.row
            bank = channel.bank(mapper.bank_of(row))
            hit = bank.is_hit(mapper.bank_row_of(row))
            key = (0 if hit else 1, queued.order)
            if best_key is None or key < best_key:
                best_key = key
                best_index = index
        chosen = self._queue.pop(best_index)
        if best_key[0] == 0:
            self.row_hits_selected += 1
        return chosen.request

    def drain_order(
        self, channel: Channel, mapper: AddressMapper
    ) -> List[MemoryRequest]:
        """Service the whole queue, applying bank state as it evolves.

        Returns the requests in serviced order (test/inspection helper).
        """
        order: List[MemoryRequest] = []
        while self._queue:
            request = self.select(channel, mapper)
            bank = channel.bank(mapper.bank_of(request.row))
            bank.access(mapper.bank_row_of(request.row), request.issue_ns)
            order.append(request)
        return order
