"""Scheduled memory controller: FR-FCFS arbitration over the timed path.

Wraps :class:`~repro.controller.memctrl.MemoryController` with a
request queue and First-Ready/FCFS selection, so integration tests can
drive realistic out-of-order service: row-buffer-friendly reordering
changes which accesses become activations, which is the signal every
tracker consumes.
"""

from __future__ import annotations

from typing import List, Optional

from repro.controller.memctrl import AccessRecord, MemoryController
from repro.controller.request import MemoryRequest
from repro.controller.scheduler import FrFcfsScheduler
from repro.mitigations.base import MitigationScheme
from repro.dram.geometry import DramGeometry, DEFAULT_GEOMETRY
from repro.dram.timing import DDR4Timing, DDR4_2400


class ScheduledMemoryController:
    """Queue + FR-FCFS scheduler in front of the mitigation path."""

    def __init__(
        self,
        scheme: MitigationScheme,
        geometry: DramGeometry = DEFAULT_GEOMETRY,
        timing: DDR4Timing = DDR4_2400,
        queue_capacity: int = 32,
        **controller_kwargs,
    ) -> None:
        self.controller = MemoryController(
            scheme, geometry=geometry, timing=timing, **controller_kwargs
        )
        self.scheduler = FrFcfsScheduler(capacity=queue_capacity)
        self.now_ns = 0.0

    @property
    def scheme(self) -> MitigationScheme:
        return self.controller.scheme

    def enqueue(self, row: int, is_write: bool = False) -> None:
        """Admit a demand request for ``row`` at the current time."""
        self.scheduler.enqueue(
            MemoryRequest(row=row, is_write=is_write, issue_ns=self.now_ns)
        )

    def service_one(self) -> Optional[AccessRecord]:
        """Service the scheduler's next pick; returns its record."""
        request = self.scheduler.select(
            self.controller.channel, self.controller.mapper
        )
        if request is None:
            return None
        record = self.controller.access(request.row, self.now_ns)
        self.now_ns = max(self.now_ns, record.complete_ns)
        return record

    def drain(self) -> List[AccessRecord]:
        """Service everything queued, in scheduled order."""
        records = []
        while len(self.scheduler):
            records.append(self.service_one())
        return records

    def run(self, rows) -> List[AccessRecord]:
        """Convenience: enqueue ``rows`` (filling the queue window) and
        service to completion, returning all records."""
        records: List[AccessRecord] = []
        for row in rows:
            if self.scheduler.full:
                records.append(self.service_one())
            self.enqueue(int(row))
        records.extend(self.drain())
        return records
