"""Memory request representation."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MemoryRequest:
    """One demand request to the memory system.

    ``row`` is the *logical* (software-visible) row; the mitigation
    scheme decides which physical row actually services it.
    """

    row: int
    is_write: bool = False
    issue_ns: float = 0.0

    def __post_init__(self) -> None:
        if self.row < 0:
            raise ValueError("row must be non-negative")
        if self.issue_ns < 0:
            raise ValueError("issue time must be non-negative")
