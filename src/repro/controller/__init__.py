"""Memory-controller layer: the request path of Fig. 4.

The controller owns the DRAM channel/banks and routes every request
through a mitigation scheme: mapping-table lookup, bank timing, tracker
update, and any mitigative action (which blocks the channel).  It is
the integration point used by the attack harness and integration tests;
the performance sweeps use the lighter :mod:`repro.sim` layer on top.
"""

from repro.controller.request import MemoryRequest
from repro.controller.copy_buffer import CopyBuffer
from repro.controller.memctrl import AccessRecord, MemoryController
from repro.controller.scheduler import FrFcfsScheduler, QueuedRequest
from repro.controller.scheduled import ScheduledMemoryController

__all__ = [
    "MemoryRequest",
    "CopyBuffer",
    "AccessRecord",
    "MemoryController",
    "FrFcfsScheduler",
    "QueuedRequest",
    "ScheduledMemoryController",
]
