"""Copy-buffer: the row-sized SRAM staging buffer for migrations.

AQUA provisions the channel with one row-sized buffer (8 KB): a
migration streams the source row into the buffer, then streams it out
to the destination (Sec. IV-D).  The buffer is modelled explicitly so
integration tests can assert the two-phase protocol (a second load
before the store faults, mirroring the single-buffer hardware).
"""

from __future__ import annotations

from typing import Optional


class CopyBuffer:
    """Single row-sized staging buffer."""

    def __init__(self, row_bytes: int = 8 * 1024) -> None:
        if row_bytes < 1:
            raise ValueError("row_bytes must be >= 1")
        self.row_bytes = row_bytes
        self._content: Optional[object] = None
        self._source_row: Optional[int] = None
        self.loads = 0
        self.stores = 0

    @property
    def busy(self) -> bool:
        """True while holding a row awaiting store-out."""
        return self._source_row is not None

    def load(self, source_row: int, content: object = None) -> None:
        """Stream a row in; the buffer must be empty."""
        if self.busy:
            raise RuntimeError(
                f"copy-buffer already holds row {self._source_row}"
            )
        self._source_row = source_row
        self._content = content
        self.loads += 1

    def store(self) -> tuple:
        """Stream the held row out; returns (source_row, content)."""
        if not self.busy:
            raise RuntimeError("copy-buffer is empty")
        row, content = self._source_row, self._content
        self._source_row = None
        self._content = None
        self.stores += 1
        return row, content
