"""Command-line interface: quick experiments without writing code.

Subcommands::

    python -m repro sizing  --trh 1000            # Table III-style sizing
    python -m repro storage --trh 1000            # Table VII-style SRAM
    python -m repro sweep   --scheme aqua-mm --workloads lbm gcc
    python -m repro attack  --scheme aqua --pattern half-double

Each prints a compact report to stdout; exit code 0 on success.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.analysis.storage import table_vii
from repro.attacks import patterns
from repro.attacks.adversary import AttackHarness
from repro.core.aqua import AquaMitigation
from repro.core.config import AquaConfig
from repro.core.sizing import RqaSizing
from repro.dram.geometry import DramGeometry
from repro.mitigations.victim_refresh import VictimRefresh
from repro.sim import runner
from repro.sim.system import SystemSimulator
from repro.workloads.spec import workload
from repro.workloads.table2 import SPEC_NAMES


SCHEME_FACTORIES = {
    "aqua-sram": runner.aqua_sram,
    "aqua-mm": runner.aqua_memory_mapped,
    "rrs": runner.rrs,
    "blockhammer": runner.blockhammer,
    "victim-refresh": runner.victim_refresh,
}

ATTACK_GEOMETRY = DramGeometry(banks_per_rank=4, rows_per_bank=4096)
ATTACK_TRH = 128


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AQUA (MICRO 2022) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sizing = sub.add_parser("sizing", help="RQA sizing per Equation 3")
    sizing.add_argument("--trh", type=int, default=1000,
                        help="Rowhammer threshold (default 1000)")

    storage = sub.add_parser("storage", help="SRAM budget per Table VII")
    storage.add_argument("--trh", type=int, default=1000)

    sweep = sub.add_parser("sweep", help="simulate workloads under a scheme")
    sweep.add_argument("--scheme", choices=sorted(SCHEME_FACTORIES),
                       default="aqua-mm")
    sweep.add_argument("--trh", type=int, default=1000)
    sweep.add_argument("--epochs", type=int, default=2)
    sweep.add_argument("--workloads", nargs="*", default=["lbm", "gcc", "xz"],
                       metavar="NAME", help=f"choose from {SPEC_NAMES}")

    attack = sub.add_parser("attack", help="run an attack experiment")
    attack.add_argument("--scheme", choices=["aqua", "victim-refresh"],
                        default="aqua")
    attack.add_argument(
        "--pattern",
        choices=["single", "double", "many", "half-double"],
        default="half-double",
    )
    return parser


def _cmd_sizing(args) -> int:
    effective = max(1, args.trh // 2)
    sizing = RqaSizing.for_threshold(effective)
    config = AquaConfig(rowhammer_threshold=args.trh,
                        table_mode="memory-mapped")
    print(f"T_RH = {args.trh} (effective migration threshold {effective})")
    print(f"  RQA rows (Eq. 3):    {sizing.rows:,}")
    print(f"  RQA size:            {sizing.size_mb:.0f} MB")
    print(f"  total DRAM overhead: {config.dram_overhead * 100:.2f}% "
          "(RQA + memory-mapped tables)")
    return 0


def _cmd_storage(args) -> int:
    print(f"SRAM per rank at T_RH = {args.trh} (Table VII):")
    for report in table_vii(args.trh):
        kb = report.as_kb()
        print(f"  {report.name:>10}: tracker {kb['tracker_kb']:7.1f} KB, "
              f"mapping {kb['mapping_kb']:7.1f} KB, "
              f"buffers {kb['buffer_kb']:3.0f} KB  "
              f"=> total {kb['total_kb']:7.0f} KB")
    return 0


def _cmd_sweep(args) -> int:
    unknown = [n for n in args.workloads if n not in SPEC_NAMES]
    if unknown:
        print(f"error: unknown workloads {unknown}; choose from {SPEC_NAMES}")
        return 2
    factory = SCHEME_FACTORIES[args.scheme](args.trh)
    print(f"{args.scheme} @ T_RH={args.trh}, {args.epochs} epoch(s):")
    for name in args.workloads:
        result = SystemSimulator(factory()).run(
            workload(name), epochs=args.epochs
        )
        print(f"  {result.summary()}")
    return 0


def _cmd_attack(args) -> int:
    if args.scheme == "aqua":
        scheme = AquaMitigation(
            AquaConfig(
                rowhammer_threshold=ATTACK_TRH,
                geometry=ATTACK_GEOMETRY,
                rqa_slots=512,
                tracker_entries_per_bank=64,
            )
        )
    else:
        scheme = VictimRefresh(
            rowhammer_threshold=ATTACK_TRH,
            geometry=ATTACK_GEOMETRY,
            tracker_entries_per_bank=64,
        )
    harness = AttackHarness(
        scheme, rowhammer_threshold=ATTACK_TRH, geometry=ATTACK_GEOMETRY
    )
    mapper = harness.mapper
    trigger = ATTACK_TRH // 2
    if args.pattern == "single":
        pattern = patterns.single_sided(mapper, 1, 100, 3000)
    elif args.pattern == "double":
        pattern = patterns.double_sided(mapper, 1, 100, pairs=1500)
    elif args.pattern == "many":
        pattern = patterns.many_sided(mapper, 1, 100, aggressors=8,
                                      rounds=400)
    else:
        pattern = patterns.half_double(
            mapper, 1, 100,
            far_hammers=100 * trigger,
            near_hammers_per_epoch=trigger - 1,
        )
    report = harness.run(pattern)
    print(f"{args.pattern} attack vs {args.scheme} "
          f"(scaled geometry, T_RH={ATTACK_TRH}):")
    print(f"  attacker activations: {report.activations:,}")
    print(f"  mitigations:          {report.migrations}")
    print(f"  peak row ACTs/64ms:   {report.peak_row_activations}")
    print(f"  attack slowdown:      {report.slowdown:.2f}x")
    if report.succeeded:
        rows = ", ".join(str(f.row) for f in report.flips)
        print(f"  RESULT: BIT FLIPS at physical rows {rows}")
        return 1
    print(f"  RESULT: mitigated (invariant holds: "
          f"{harness.invariant_holds()})")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "sizing": _cmd_sizing,
        "storage": _cmd_storage,
        "sweep": _cmd_sweep,
        "attack": _cmd_attack,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
