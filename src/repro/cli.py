"""Command-line interface: quick experiments without writing code.

Subcommands::

    python -m repro sizing  --trh 1000            # Table III-style sizing
    python -m repro storage --trh 1000            # Table VII-style SRAM
    python -m repro sweep   --scheme aqua-mm --workloads lbm gcc
    python -m repro sweep   --jobs 4 --out results.json   # parallel sweep
    python -m repro sweep   --trace out.jsonl --metrics --seed 7
    python -m repro sweep   --checkpoint ckpt.jsonl   # crash-safe journal
    python -m repro sweep   --resume ckpt.jsonl       # skip finished runs
    python -m repro chaos   --seed 7 --fault-rate 1e-3
    python -m repro bench   --quick               # perf harness (BENCH json)
    python -m repro attack  --scheme aqua --pattern half-double
    python -m repro inspect out.jsonl             # summarize a trace
    python -m repro serve   --port 8343           # simulation job server
    python -m repro submit  --scheme aqua-mm --workloads gcc --wait
    python -m repro status                        # job table from a server
    python -m repro fetch   j1-ab12cd34ef56 --out results.json

Each prints a compact report to stdout; exit code 0 on success.

``sweep`` always runs through the parallel executor
(:mod:`repro.parallel`); ``--jobs 1`` (the default) executes inline,
and any ``--jobs N`` produces byte-identical ``--out`` files for the
same seeds (CI diffs ``--jobs 1`` against ``--jobs 4`` on every PR).

``serve``/``submit``/``status``/``fetch`` drive :mod:`repro.service`:
a ``submit`` of the same spec twice is served from the server's
content-addressed cache, and a fetched result is byte-identical to
what ``repro sweep --out`` writes for the same parameters.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import List, Optional

from repro.analysis.storage import table_vii
from repro.attacks import patterns
from repro.attacks.adversary import AttackHarness
from repro.core.aqua import AquaMitigation
from repro.core.config import AquaConfig
from repro.core.sizing import RqaSizing
from repro.dram.geometry import DramGeometry
from repro.errors import (
    ConfigError,
    JobNotFoundError,
    QueueFullError,
    ServiceError,
)
from repro.faults import FaultInjector
from repro.mitigations.victim_refresh import VictimRefresh
from repro.parallel import (
    build_results_document,
    expand_grid,
    run_sweep_parallel,
    write_results_document,
)
from repro.service import (
    DEFAULT_PORT,
    JobSpec,
    ServiceClient,
    SimulationService,
    serve_async,
)
from repro.sim import runner
from repro.sim.checkpoint import SweepCheckpoint
from repro.telemetry import (
    Telemetry,
    load_trace_lenient,
    render_series_table,
    render_summary,
    summarize_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.workloads.spec import workload
from repro.workloads.table2 import SPEC_NAMES


SCHEME_FACTORIES = runner.SCHEME_BUILDERS
"""Backwards-compatible alias; the registry lives in the runner so the
parallel executor's workers can rebuild factories by name."""

ATTACK_GEOMETRY = DramGeometry(banks_per_rank=4, rows_per_bank=4096)
ATTACK_TRH = 128


def _positive_int(text: str) -> int:
    """argparse type: an integer >= 1 (clean error, no traceback)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be >= 1 (got {value})"
        )
    return value


def _sample_rate(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number")
    if not 0.0 < value <= 1.0:
        raise argparse.ArgumentTypeError(
            f"must be in (0, 1] (got {value})"
        )
    return value


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AQUA (MICRO 2022) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sizing = sub.add_parser("sizing", help="RQA sizing per Equation 3")
    sizing.add_argument("--trh", type=int, default=1000,
                        help="Rowhammer threshold (default 1000)")

    storage = sub.add_parser("storage", help="SRAM budget per Table VII")
    storage.add_argument("--trh", type=int, default=1000)

    sweep = sub.add_parser("sweep", help="simulate workloads under a scheme")
    sweep.add_argument("--scheme", choices=sorted(SCHEME_FACTORIES),
                       default="aqua-mm")
    sweep.add_argument("--trh", type=int, default=1000)
    sweep.add_argument("--epochs", type=_positive_int, default=2,
                       help="refresh windows to simulate (>= 1)")
    sweep.add_argument("--workloads", nargs="*", default=["lbm", "gcc", "xz"],
                       metavar="NAME", help=f"choose from {SPEC_NAMES}")
    sweep.add_argument("--seed", type=int, default=0,
                       help="workload-generation seed (reproducible traces)")
    sweep.add_argument("--trace", metavar="PATH", default=None,
                       help="write the event trace to PATH")
    sweep.add_argument("--trace-format", choices=["jsonl", "chrome"],
                       default="jsonl",
                       help="trace export format (default jsonl)")
    sweep.add_argument("--trace-sample", type=_sample_rate, default=1.0,
                       metavar="RATE",
                       help="keep this fraction of events (default 1.0)")
    sweep.add_argument("--metrics", action="store_true",
                       help="print the per-workload metrics table")
    sweep.add_argument("--checkpoint", metavar="PATH", default=None,
                       help="journal completed runs to PATH (crash-safe)")
    sweep.add_argument("--resume", metavar="PATH", default=None,
                       help="resume from a checkpoint, skipping "
                            "finished runs (implies --checkpoint PATH)")
    sweep.add_argument("--timeout", type=float, default=0.0, metavar="SEC",
                       help="per-run wall-clock timeout in seconds "
                            "(0 = unbounded)")
    sweep.add_argument("--retries", type=int, default=0, metavar="N",
                       help="retries for transient failures (timeouts)")
    sweep.add_argument("--jobs", type=_positive_int, default=1, metavar="N",
                       help="worker processes; results merge "
                            "deterministically, so any N produces "
                            "byte-identical output (default 1)")
    sweep.add_argument("--out", metavar="PATH", default=None,
                       help="write the results as canonical JSON "
                            "(ordered by run key)")

    chaos = sub.add_parser(
        "chaos",
        help="run the scheme suite under deterministic fault injection",
    )
    chaos.add_argument("--seed", type=int, default=7,
                       help="fault-schedule seed (default 7)")
    chaos.add_argument("--fault-rate", type=float, default=1e-3,
                       metavar="RATE",
                       help="per-check fire probability for every fault "
                            "site (default 1e-3)")
    chaos.add_argument("--trh", type=int, default=1000)
    chaos.add_argument("--epochs", type=_positive_int, default=2)
    chaos.add_argument("--workloads", nargs="*", default=["lbm", "gcc", "xz"],
                       metavar="NAME", help=f"choose from {SPEC_NAMES}")
    chaos.add_argument("--trace", metavar="PATH", default=None,
                       help="write the (fault-event-bearing) trace to PATH")

    sub.add_parser(
        "bench",
        add_help=False,
        help="time representative sweeps; write BENCH_<rev>.json "
             "(see repro bench --help)",
    )

    attack = sub.add_parser("attack", help="run an attack experiment")
    attack.add_argument("--scheme", choices=["aqua", "victim-refresh"],
                        default="aqua")
    attack.add_argument(
        "--pattern",
        choices=["single", "double", "many", "half-double", "blacksmith"],
        default="half-double",
    )
    attack.add_argument("--seed", type=int, default=0xB5,
                        help="pattern-generation seed (blacksmith fuzzing)")
    attack.add_argument("--out", metavar="PATH", default=None,
                        help="also write the report as JSON to PATH")

    inspect = sub.add_parser(
        "inspect", help="summarize an exported event trace"
    )
    inspect.add_argument("trace", metavar="PATH",
                         help="trace file (JSONL or Chrome trace-event)")

    serve = sub.add_parser(
        "serve", help="run the simulation job server (repro.service)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=DEFAULT_PORT,
                       help=f"listen port (default {DEFAULT_PORT}; 0 = "
                            f"ephemeral)")
    serve.add_argument("--store", metavar="PATH",
                       default="service-jobs.jsonl",
                       help="append-only job journal (crash recovery)")
    serve.add_argument("--cache-dir", metavar="DIR", default="service-cache",
                       help="content-addressed result cache directory")
    serve.add_argument("--max-depth", type=_positive_int, default=64,
                       metavar="N",
                       help="queue depth before submissions are refused "
                            "with HTTP 429 (default 64)")
    serve.add_argument("--jobs", type=_positive_int, default=1, metavar="N",
                       help="worker processes per sweep (the repro.parallel "
                            "bridge; default 1)")

    submit = sub.add_parser(
        "submit", help="submit a sweep to a running server"
    )
    submit.add_argument("--scheme", choices=sorted(SCHEME_FACTORIES),
                        default="aqua-mm")
    submit.add_argument("--trh", type=int, default=1000)
    submit.add_argument("--epochs", type=_positive_int, default=2)
    submit.add_argument("--workloads", nargs="*",
                        default=["lbm", "gcc", "xz"], metavar="NAME",
                        help=f"choose from {SPEC_NAMES}")
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument("--timeout", type=float, default=0.0, metavar="SEC",
                        help="per-run wall-clock timeout (0 = unbounded)")
    submit.add_argument("--retries", type=int, default=0, metavar="N",
                        help="per-run transient-failure retries")
    submit.add_argument("--priority", type=int, default=10,
                        help="lower runs first (default 10)")
    submit.add_argument("--max-attempts", type=_positive_int, default=1,
                        metavar="N",
                        help="job-level attempts before it is failed")
    submit.add_argument("--host", default="127.0.0.1")
    submit.add_argument("--port", type=int, default=DEFAULT_PORT)
    submit.add_argument("--wait", action="store_true",
                        help="block until the job finishes")
    submit.add_argument("--wait-timeout", type=float, default=600.0,
                        metavar="SEC")
    submit.add_argument("--out", metavar="PATH", default=None,
                        help="with --wait: write the fetched result "
                             "document to PATH (byte-identical to "
                             "'repro sweep --out')")

    status = sub.add_parser(
        "status", help="show jobs on a running server"
    )
    status.add_argument("job_id", nargs="?", default=None, metavar="JOB",
                        help="one job's detail (default: table of all)")
    status.add_argument("--host", default="127.0.0.1")
    status.add_argument("--port", type=int, default=DEFAULT_PORT)

    fetch = sub.add_parser(
        "fetch", help="download a finished job's result document"
    )
    fetch.add_argument("job_id", metavar="JOB")
    fetch.add_argument("--out", metavar="PATH", default=None,
                       help="write to PATH (default: stdout)")
    fetch.add_argument("--host", default="127.0.0.1")
    fetch.add_argument("--port", type=int, default=DEFAULT_PORT)
    return parser


def _cmd_sizing(args) -> int:
    effective = max(1, args.trh // 2)
    sizing = RqaSizing.for_threshold(effective)
    config = AquaConfig(rowhammer_threshold=args.trh,
                        table_mode="memory-mapped")
    print(f"T_RH = {args.trh} (effective migration threshold {effective})")
    print(f"  RQA rows (Eq. 3):    {sizing.rows:,}")
    print(f"  RQA size:            {sizing.size_mb:.0f} MB")
    print(f"  total DRAM overhead: {config.dram_overhead * 100:.2f}% "
          "(RQA + memory-mapped tables)")
    return 0


def _cmd_storage(args) -> int:
    print(f"SRAM per rank at T_RH = {args.trh} (Table VII):")
    for report in table_vii(args.trh):
        kb = report.as_kb()
        print(f"  {report.name:>10}: tracker {kb['tracker_kb']:7.1f} KB, "
              f"mapping {kb['mapping_kb']:7.1f} KB, "
              f"buffers {kb['buffer_kb']:3.0f} KB  "
              f"=> total {kb['total_kb']:7.0f} KB")
    return 0


def _write_results_json(path, meta, points, report) -> None:
    """Canonical results JSON: run-key order, sorted keys, stable bytes.

    Delegates to :mod:`repro.parallel.results`, the same builder the
    service cache uses -- which is why a fetched service result diffs
    clean against this file, and why the parallel-determinism CI step
    can diff it across ``--jobs`` values.
    """
    write_results_document(path, build_results_document(meta, points, report))


def _cmd_sweep(args) -> int:
    unknown = [n for n in args.workloads if n not in SPEC_NAMES]
    if unknown:
        print(f"error: unknown workloads {unknown}; choose from {SPEC_NAMES}")
        return 2
    instrumented = bool(args.trace or args.metrics)
    checkpoint = None
    meta = {
        "scheme": args.scheme,
        "trh": args.trh,
        "epochs": args.epochs,
        "seed": args.seed,
    }
    if args.resume:
        try:
            checkpoint = SweepCheckpoint.resume(args.resume, meta)
        except ConfigError as exc:
            print(f"error: cannot resume: {exc}")
            return 2
        if checkpoint.skipped_lines:
            print(
                f"warning: checkpoint had {checkpoint.skipped_lines} "
                "unreadable line(s) (crash artifact); re-running those runs"
            )
    elif args.checkpoint:
        checkpoint = SweepCheckpoint.create(args.checkpoint, meta)
    points = expand_grid(
        [args.scheme],
        args.workloads,
        thresholds=(args.trh,),
        epochs=args.epochs,
        seed=args.seed,
    )
    statuses = {}
    print(f"{args.scheme} @ T_RH={args.trh}, {args.epochs} epoch(s)"
          + (f", {args.jobs} jobs" if args.jobs > 1 else "") + ":")
    try:
        report = run_sweep_parallel(
            points,
            jobs=args.jobs,
            checkpoint=checkpoint,
            instrument=instrumented,
            trace=bool(args.trace),
            trace_sample=args.trace_sample,
            timeout_s=args.timeout,
            retries=args.retries,
            progress=lambda label, name, status: statuses.__setitem__(
                (label, name), status
            ),
        )
    finally:
        if checkpoint is not None:
            checkpoint.close()
    errors = {
        (failure.scheme, failure.workload): failure.error
        for failure in report.failures
    }
    tagged_events = []
    for point in points:
        name = point.workload
        if point.key in errors:
            print(f"  {name:>10s} [{point.label}] "
                  f"FAILED: {errors[point.key]}")
            continue
        result = report.results[point.key]
        resumed = statuses.get(point.key) == "resumed"
        print(f"  {result.summary()}{' (resumed)' if resumed else ''}")
        if args.metrics and point.key in report.metrics:
            print(f"  metrics [{name}]:")
            print(render_series_table(report.metrics[point.key]))
        if args.trace and point.key in report.events:
            tag = {"workload": name}
            tagged_events.extend(
                (event, tag) for event in report.events[point.key]
            )
            dropped = report.trace_dropped.get(point.key, 0)
            if dropped:
                print(
                    f"  warning: {name} trace dropped "
                    f"{dropped:,} events (ring buffer wrapped)"
                )
    if args.trace:
        writer = (
            write_chrome_trace
            if args.trace_format == "chrome"
            else write_jsonl
        )
        count = writer(args.trace, tagged_events)
        print(f"wrote {count:,} events to {args.trace}")
    if args.out:
        _write_results_json(args.out, meta, points, report)
        print(f"wrote {len(report.results)} result(s) to {args.out}")
    if report.failures:
        print(f"{len(report.failures)} of {len(points)} run(s) failed:")
        for failure in report.failures:
            print(f"  {failure.workload}: {failure.error}")
        return 1
    return 0




def _cmd_chaos(args) -> int:
    unknown = [n for n in args.workloads if n not in SPEC_NAMES]
    if unknown:
        print(f"error: unknown workloads {unknown}; choose from {SPEC_NAMES}")
        return 2
    # AQUA schemes opt into the throttle degradation so injected RQA
    # exhaustion degrades instead of raising; other schemes have no
    # RQA and need no policy.
    factories = {
        "aqua-sram": runner.aqua_sram(args.trh, rqa_full_policy="throttle"),
        "aqua-mm": runner.aqua_memory_mapped(
            args.trh, rqa_full_policy="throttle"
        ),
        "rrs": runner.rrs(args.trh),
        "blockhammer": runner.blockhammer(args.trh),
        "victim-refresh": runner.victim_refresh(args.trh),
    }
    telemetry = Telemetry() if args.trace else None
    injectors = {}

    def injector_factory(scheme: str, name: str) -> FaultInjector:
        injector = FaultInjector(
            seed=args.seed,
            fault_rate=args.fault_rate,
            scope=f"{scheme}/{name}",
            telemetry=telemetry,
        )
        injectors[(scheme, name)] = injector
        return injector

    targets = [workload(name, seed=args.seed) for name in args.workloads]
    print(
        f"chaos @ seed={args.seed} fault_rate={args.fault_rate:g}, "
        f"T_RH={args.trh}, {args.epochs} epoch(s), "
        f"{len(factories)} scheme(s) x {len(targets)} workload(s):"
    )
    report = runner.run_sweep(
        factories,
        workloads=targets,
        epochs=args.epochs,
        telemetry=telemetry,
        injector_factory=injector_factory,
    )
    degraded = 0
    broke = {failure.scheme + "/" + failure.workload: failure
             for failure in report.failures}
    for scheme in factories:
        for target in targets:
            key = f"{scheme}/{target.name}"
            injector = injectors.get((scheme, target.name))
            summary = injector.summary() if injector is not None else "none"
            digest = (
                injector.schedule_digest() if injector is not None else "-"
            )
            if key in broke:
                print(f"  {key:>24s}: BROKE ({broke[key].error}); "
                      f"faults: {summary}")
                continue
            status = "ok"
            if injector is not None and sum(injector.counts().values()):
                degraded += 1
                status = "degraded"
            print(f"  {key:>24s}: {status}; faults: {summary} "
                  f"[digest {digest}]")
    print(
        f"chaos result: {len(report.results)} completed "
        f"({degraded} degraded gracefully), {len(broke)} broke"
    )
    if args.trace:
        count = write_jsonl(
            args.trace,
            [(event, None) for event in telemetry.tracer.events()],
        )
        print(f"wrote {count:,} events to {args.trace}")
    return 1 if broke else 0


def _cmd_inspect(args) -> int:
    try:
        records, skipped = load_trace_lenient(args.trace)
    except OSError as exc:
        print(f"error: cannot read trace: {exc}")
        return 2
    if skipped:
        print(
            f"warning: skipped {skipped} corrupt line(s) "
            f"({len(records)} valid events parsed)"
        )
    if not records:
        print("error: trace contains no parseable events")
        return 2
    print(render_summary(summarize_trace(records)))
    return 0


def _cmd_attack(args) -> int:
    if args.scheme == "aqua":
        scheme = AquaMitigation(
            AquaConfig(
                rowhammer_threshold=ATTACK_TRH,
                geometry=ATTACK_GEOMETRY,
                rqa_slots=512,
                tracker_entries_per_bank=64,
            )
        )
    else:
        scheme = VictimRefresh(
            rowhammer_threshold=ATTACK_TRH,
            geometry=ATTACK_GEOMETRY,
            tracker_entries_per_bank=64,
        )
    harness = AttackHarness(
        scheme, rowhammer_threshold=ATTACK_TRH, geometry=ATTACK_GEOMETRY
    )
    mapper = harness.mapper
    trigger = ATTACK_TRH // 2
    if args.pattern == "single":
        pattern = patterns.single_sided(mapper, 1, 100, 3000)
    elif args.pattern == "double":
        pattern = patterns.double_sided(mapper, 1, 100, pairs=1500)
    elif args.pattern == "many":
        pattern = patterns.many_sided(mapper, 1, 100, aggressors=8,
                                      rounds=400)
    elif args.pattern == "blacksmith":
        pattern = patterns.blacksmith(
            mapper, 1, 100, aggressors=8,
            total_activations=3200, seed=args.seed,
        )
    else:
        pattern = patterns.half_double(
            mapper, 1, 100,
            far_hammers=100 * trigger,
            near_hammers_per_epoch=trigger - 1,
        )
    report = harness.run(pattern)
    print(f"{args.pattern} attack vs {args.scheme} "
          f"(scaled geometry, T_RH={ATTACK_TRH}):")
    print(f"  attacker activations: {report.activations:,}")
    print(f"  mitigations:          {report.migrations}")
    print(f"  peak row ACTs/64ms:   {report.peak_row_activations}")
    print(f"  attack slowdown:      {report.slowdown:.2f}x")
    if args.out:
        document = {
            "pattern": args.pattern,
            "seed": args.seed,
            "trh": ATTACK_TRH,
            "report": report.to_dict(),
        }
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(document, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote report to {args.out}")
    if report.succeeded:
        rows = ", ".join(str(f.row) for f in report.flips)
        print(f"  RESULT: BIT FLIPS at physical rows {rows}")
        return 1
    print(f"  RESULT: mitigated (invariant holds: "
          f"{harness.invariant_holds()})")
    return 0


def _cmd_serve(args) -> int:
    try:
        service = SimulationService.open(
            args.store,
            args.cache_dir,
            max_depth=args.max_depth,
            jobs=args.jobs,
        )
    except ConfigError as exc:
        print(f"error: cannot open service state: {exc}")
        return 2
    recovered = service.queue.depth
    print(f"repro service: store={args.store} cache={args.cache_dir} "
          f"max-depth={args.max_depth} jobs={args.jobs}"
          + (f" ({recovered} job(s) recovered)" if recovered else ""),
          flush=True)

    def on_ready(server) -> None:
        print(f"serving on http://{server.host}:{server.port} "
              f"(SIGTERM drains gracefully)", flush=True)

    asyncio.run(
        serve_async(
            service, host=args.host, port=args.port, on_ready=on_ready
        )
    )
    print("drained cleanly; queued work (if any) resumes on next start")
    return 0


def _print_job_line(job: dict) -> None:
    cached = " (cached)" if job.get("from_cache") else ""
    error = f"  error: {job['error']}" if job.get("error") else ""
    print(f"  {job['id']:>28s}  {job['state']:>7s}{cached}"
          f"  attempts={job.get('attempts', 0)}{error}")


def _cmd_submit(args) -> int:
    spec = JobSpec(
        scheme=args.scheme,
        workloads=tuple(args.workloads),
        trh=args.trh,
        epochs=args.epochs,
        seed=args.seed,
        timeout_s=args.timeout,
        retries=args.retries,
        priority=args.priority,
        max_attempts=args.max_attempts,
    )
    client = ServiceClient(args.host, args.port)
    try:
        accepted = client.submit(spec)
    except QueueFullError as exc:
        print(f"error: server refused the job (backpressure): {exc}")
        return 1
    except (ConfigError, ServiceError) as exc:
        print(f"error: {exc}")
        return 2
    job = accepted["job"]
    hit = "cache hit" if accepted.get("cached") else "queued"
    print(f"submitted {job['id']} [{hit}] digest={job['digest'][:16]}")
    if not args.wait:
        return 0
    try:
        job = client.wait(job["id"], timeout_s=args.wait_timeout)
    except ServiceError as exc:
        print(f"error: {exc}")
        return 1
    _print_job_line(job)
    if job["state"] != "done":
        return 1
    if args.out:
        try:
            text = client.result_text(job["id"])
        except ServiceError as exc:
            print(f"error: {exc}")
            return 1
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote result document to {args.out}")
    return 0


def _cmd_status(args) -> int:
    client = ServiceClient(args.host, args.port)
    try:
        if args.job_id:
            job = client.job(args.job_id)
            print(json.dumps(job, indent=2, sort_keys=True))
            return 0
        health = client.health()
        jobs = client.jobs()
    except JobNotFoundError as exc:
        print(f"error: {exc}")
        return 2
    except ServiceError as exc:
        print(f"error: {exc}")
        return 2
    counts = ", ".join(
        f"{state}={count}"
        for state, count in sorted(health.get("jobs", {}).items())
    ) or "none"
    print(f"service {health.get('status')}: "
          f"queue depth {health.get('queue_depth')}, jobs: {counts}")
    for job in jobs:
        _print_job_line(job)
    return 0


def _cmd_fetch(args) -> int:
    client = ServiceClient(args.host, args.port)
    try:
        text = client.result_text(args.job_id)
    except JobNotFoundError as exc:
        print(f"error: {exc}")
        return 2
    except ServiceError as exc:
        print(f"error: {exc}")
        return 1
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote result document to {args.out}")
    else:
        sys.stdout.write(text)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "bench":
        # The bench harness owns its option surface (it is also
        # runnable standalone as benchmarks/bench_perf.py); hand the
        # rest of the argv straight through.
        from repro.bench import main as bench_main

        return bench_main(argv[1:])
    args = _build_parser().parse_args(argv)
    handlers = {
        "sizing": _cmd_sizing,
        "storage": _cmd_storage,
        "sweep": _cmd_sweep,
        "chaos": _cmd_chaos,
        "attack": _cmd_attack,
        "inspect": _cmd_inspect,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "status": _cmd_status,
        "fetch": _cmd_fetch,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
