"""DRAM geometry: channels, ranks, banks, rows.

The paper's baseline (Table I) is a 16 GB DDR4 rank with 16 banks of
128K rows, each row 8 KB, for 2 M rows total per rank.  ``DramGeometry``
captures these parameters and exposes the derived sizes used throughout
the reproduction (row-pointer widths, total capacity, and so on).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple


class RowAddress(NamedTuple):
    """Fully decoded location of a DRAM row."""

    channel: int
    rank: int
    bank: int
    row: int


@dataclass(frozen=True)
class DramGeometry:
    """Physical organisation of the memory under study.

    The AQUA structures (FPT, RPT, RQA) are provisioned per rank, so most
    derived quantities are rank-relative.
    """

    channels: int = 1
    ranks_per_channel: int = 1
    banks_per_rank: int = 16
    rows_per_bank: int = 128 * 1024
    row_bytes: int = 8 * 1024

    @property
    def rows_per_rank(self) -> int:
        """Number of rows in one rank (2 M in the baseline)."""
        return self.banks_per_rank * self.rows_per_bank

    @property
    def total_rows(self) -> int:
        """Number of rows across all channels and ranks."""
        return self.channels * self.ranks_per_channel * self.rows_per_rank

    @property
    def rank_bytes(self) -> int:
        """Capacity of one rank in bytes (16 GB in the baseline)."""
        return self.rows_per_rank * self.row_bytes

    @property
    def total_bytes(self) -> int:
        """Total memory capacity in bytes."""
        return self.total_rows * self.row_bytes

    @property
    def row_pointer_bits(self) -> int:
        """Bits needed to name any row in a rank (21 for 2 M rows).

        This is the width of the reverse pointers stored in the RPT
        (Sec. IV-C).
        """
        return (self.rows_per_rank - 1).bit_length()

    def bank_pointer_bits(self) -> int:
        """Bits needed to name a bank within a rank."""
        return (self.banks_per_rank - 1).bit_length()

    def validate_row(self, row_id: int) -> None:
        """Raise ``ValueError`` if ``row_id`` is outside the rank."""
        if not 0 <= row_id < self.rows_per_rank:
            raise ValueError(
                f"row id {row_id} outside rank of {self.rows_per_rank} rows"
            )


DEFAULT_GEOMETRY = DramGeometry()
"""The paper's baseline: 16 GB, 1 channel x 1 rank x 16 banks, 8 KB rows."""
