"""Per-bank state: open row, timing, and activation accounting.

A bank services one row at a time.  Opening a different row requires a
precharge followed by an activation, and the DDR4 standard bounds the
ACT-to-ACT interval within a bank by ``tRC`` (45 ns).  The bank tracks:

* the currently open row (for row-buffer hit/miss classification),
* the earliest time the next activation may issue,
* activation counts for the current epoch (used by power and stats).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.timing import DDR4Timing, DDR4_2400


@dataclass
class BankState:
    """Timing and row-buffer state of a single DRAM bank."""

    timing: DDR4Timing = field(default_factory=lambda: DDR4_2400)
    open_row: int = -1
    next_act_ns: float = 0.0
    acts_this_epoch: int = 0
    row_hits_this_epoch: int = 0

    def is_hit(self, bank_row: int) -> bool:
        """True if ``bank_row`` is already open (row-buffer hit)."""
        return self.open_row == bank_row

    def access(self, bank_row: int, now_ns: float) -> float:
        """Access ``bank_row`` at time ``now_ns``; return completion time.

        A row-buffer hit costs ``tCL``; a miss waits for the bank's
        ACT-to-ACT window, then pays precharge + activate + CAS
        (``tRP + tRCD + tCL``).  The activation counter increments only
        on misses, mirroring how real trackers observe ACT commands.
        """
        if self.is_hit(bank_row):
            self.row_hits_this_epoch += 1
            return now_ns + self.timing.tcl_ns
        start = max(now_ns, self.next_act_ns)
        self.open_row = bank_row
        self.acts_this_epoch += 1
        self.next_act_ns = start + self.timing.trc_ns
        return start + self.timing.trp_ns + self.timing.trcd_ns + self.timing.tcl_ns

    def activate(self, bank_row: int, now_ns: float) -> float:
        """Force an activation of ``bank_row`` (closing any open row).

        Returns the time at which the activation issues.  Used by attack
        models that alternate rows to defeat the row buffer.
        """
        start = max(now_ns, self.next_act_ns)
        self.open_row = bank_row
        self.acts_this_epoch += 1
        self.next_act_ns = start + self.timing.trc_ns
        return start

    def precharge(self) -> None:
        """Close the open row (e.g. at a refresh boundary)."""
        self.open_row = -1

    def reset_epoch(self) -> None:
        """Clear per-epoch counters at a refresh-window boundary."""
        self.acts_this_epoch = 0
        self.row_hits_this_epoch = 0
        self.precharge()
