"""DRAM power accounting for migrations and table traffic.

The paper reports (Sec. V-H) that AQUA increases DRAM power by 0.7 %
(8.5 mW) from row migrations and memory-mapped table accesses.  We
reproduce that accounting with a simple energy-per-operation model: each
activation and each 64-byte line transfer contributes a fixed energy,
and power is energy divided by wall-clock time.  The constants are
calibrated so that the baseline rank draws on the order of 1.2 W, in
line with DDR4-2400 x8 datasheet operating conditions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.timing import DDR4Timing, DDR4_2400


@dataclass
class DramEnergyCounters:
    """Raw event counts that the power model converts to energy."""

    activations: int = 0
    line_reads: int = 0
    line_writes: int = 0
    row_migrations: int = 0
    table_line_accesses: int = 0

    def add_migration(self, row_bytes: int, line_bytes: int = 64) -> None:
        """Account one row migration: a full-row read plus write."""
        lines = row_bytes // line_bytes
        self.activations += 2
        self.line_reads += lines
        self.line_writes += lines
        self.row_migrations += 1

    def merge(self, other: "DramEnergyCounters") -> None:
        """Accumulate ``other``'s counts into this counter set."""
        self.activations += other.activations
        self.line_reads += other.line_reads
        self.line_writes += other.line_writes
        self.row_migrations += other.row_migrations
        self.table_line_accesses += other.table_line_accesses


@dataclass
class DramPowerModel:
    """Convert event counts to energy (nJ) and average power (mW).

    Default per-event energies are representative DDR4 values:
    an 8 KB-row activation/precharge pair costs roughly 15 nJ and a
    64-byte line transfer roughly 3 nJ at 1.2 V.
    """

    timing: DDR4Timing = field(default_factory=lambda: DDR4_2400)
    activate_nj: float = 15.0
    line_transfer_nj: float = 3.0
    background_mw: float = 350.0

    def energy_nj(self, counters: DramEnergyCounters) -> float:
        """Total switching energy for the counted events, in nanojoules."""
        transfers = (
            counters.line_reads
            + counters.line_writes
            + counters.table_line_accesses
        )
        return (
            counters.activations * self.activate_nj
            + transfers * self.line_transfer_nj
        )

    def average_power_mw(
        self, counters: DramEnergyCounters, interval_ns: float
    ) -> float:
        """Average power over ``interval_ns``, including background power.

        Energy in nJ divided by time in ns yields watts; we scale to mW.
        """
        if interval_ns <= 0:
            raise ValueError("interval must be positive")
        switching_mw = self.energy_nj(counters) / interval_ns * 1000.0
        return self.background_mw + switching_mw

    def overhead_mw(
        self,
        baseline: DramEnergyCounters,
        mitigated: DramEnergyCounters,
        interval_ns: float,
    ) -> float:
        """Extra power of the mitigated run over the baseline run."""
        if interval_ns <= 0:
            raise ValueError("interval must be positive")
        extra_nj = self.energy_nj(mitigated) - self.energy_nj(baseline)
        return extra_nj / interval_ns * 1000.0
