"""Row-content store used to verify that migrations preserve data.

The simulator normally tracks only *where* rows live; this optional
store also tracks *what* they hold, as opaque tokens, so integration
tests can assert the end-to-end contract of a row-migration scheme:
a read of logical row X always returns the data last written to X, no
matter how many times AQUA (or RRS) has relocated the physical row.
"""

from __future__ import annotations

from typing import Dict, Optional


class RowDataStore:
    """Map *physical* row id -> opaque content token.

    Mitigation schemes call :meth:`move` / :meth:`swap` when they migrate
    rows; the memory controller calls :meth:`read` / :meth:`write` with
    the physical row id it resolved through the indirection tables.
    Unwritten rows read as ``None`` (cleared DRAM).
    """

    def __init__(self) -> None:
        self._contents: Dict[int, object] = {}

    def write(self, physical_row: int, token: object) -> None:
        """Store ``token`` in ``physical_row``."""
        self._contents[physical_row] = token

    def read(self, physical_row: int) -> Optional[object]:
        """Return the content of ``physical_row`` (``None`` if never set)."""
        return self._contents.get(physical_row)

    def move(self, src_row: int, dst_row: int) -> None:
        """Copy ``src`` to ``dst`` and clear ``src`` (AQUA-style migration).

        Clearing the source models the quarantine-area hygiene property:
        a vacated slot never exposes a stale copy to the original address.
        """
        self._contents[dst_row] = self._contents.get(src_row)
        self._contents.pop(src_row, None)

    def swap(self, row_a: int, row_b: int) -> None:
        """Exchange the contents of two rows (RRS-style swap)."""
        a = self._contents.get(row_a)
        b = self._contents.get(row_b)
        if b is None:
            self._contents.pop(row_a, None)
        else:
            self._contents[row_a] = b
        if a is None:
            self._contents.pop(row_b, None)
        else:
            self._contents[row_b] = a

    def __len__(self) -> int:
        return len(self._contents)
