"""DDR4 timing parameters and derived quantities.

The values follow Table I of the AQUA paper (Micron MT40A2G4, DDR4-2400):

==========================  =====================
tRCD - tCL - tRP - tRC      14.2 - 14.2 - 14.2 - 45 ns
tCCD_S, tCCD_L              3.3 ns, 5 ns
tREFW (refresh window)      64 ms
tREFI (refresh interval)    7.8 us
tRFC (refresh cycle)        350 ns
==========================  =====================

Derived quantities reproduce the arithmetic in the paper:

* ``act_max``  -- the maximum activations to one bank per refresh window,
  ``tREFW * (1 - tRFC/tREFI) / tRC``, approximately 1.36 M (Sec. II-B).
* ``row_transfer_ns`` -- time to stream one row between DRAM and the
  copy-buffer: one activation (ACT-to-ACT delay, tRC) plus one 64-byte
  line every tCCD_L for the whole row, approximately 685 ns for an 8 KB
  row (Sec. IV-D).
* ``migration_ns`` -- one row-read plus one row-write, about 1.37 us.
"""

from __future__ import annotations

from dataclasses import dataclass


MS = 1_000_000.0
"""Nanoseconds per millisecond."""

US = 1_000.0
"""Nanoseconds per microsecond."""


@dataclass(frozen=True)
class DDR4Timing:
    """Immutable set of DDR4 timing constants, in nanoseconds.

    Attributes mirror JEDEC DDR4 parameter names.  All derived properties
    are computed from these constants so that alternative speed grades can
    be modelled by constructing a new instance.
    """

    trcd_ns: float = 14.2
    tcl_ns: float = 14.2
    trp_ns: float = 14.2
    trc_ns: float = 45.0
    tccd_s_ns: float = 3.3
    tccd_l_ns: float = 5.0
    trefw_ns: float = 64 * MS
    trefi_ns: float = 7.8 * US
    trfc_ns: float = 350.0
    line_bytes: int = 64

    @property
    def refresh_availability(self) -> float:
        """Fraction of the refresh window usable for activations.

        The memory controller must issue a refresh every ``tREFI`` and the
        bank is unavailable for ``tRFC`` each time.
        """
        return 1.0 - self.trfc_ns / self.trefi_ns

    @property
    def act_max(self) -> int:
        """Maximum activations to a single bank within one refresh window.

        Equation from Sec. II-B:
        ``ACTmax = tREFW * (1 - tRFC/tREFI) / tRC`` (about 1.36 M).
        """
        return int(self.trefw_ns * self.refresh_availability / self.trc_ns)

    def row_transfer_ns(self, row_bytes: int) -> float:
        """Time to stream one DRAM row to/from the copy-buffer.

        After the initial activation (tRC), one 64-byte line transfers
        every ``tCCD_L``.  For an 8 KB row this is 45 + 128 * 5 = 685 ns
        (Sec. IV-D).
        """
        lines = row_bytes // self.line_bytes
        return self.trc_ns + lines * self.tccd_l_ns

    def migration_ns(self, row_bytes: int) -> float:
        """Latency of migrating one row: one row-read plus one row-write.

        About 1.37 us for an 8 KB row (Sec. IV-D).
        """
        return 2.0 * self.row_transfer_ns(row_bytes)

    def migration_with_eviction_ns(self, row_bytes: int) -> float:
        """Latency when the destination RQA slot holds a stale valid row.

        The old row is first moved back to its original location and the
        new row is then moved in: 2 * 1.37 us = 2.74 us (Sec. IV-D).
        """
        return 2.0 * self.migration_ns(row_bytes)


DDR4_2400 = DDR4Timing()
"""The paper's baseline configuration (DDR4-2400, Micron MT40A2G4)."""
