"""Mapping between flat rank-local row ids and decoded DRAM coordinates.

The simulator names rows with a *rank-local row id* in
``[0, rows_per_rank)``; this module converts between that flat namespace,
full physical byte addresses, and decoded ``RowAddress`` tuples.

Three interleavings are supported:

* ``"interleaved"`` (default) -- consecutive row ids round-robin across
  banks, the common open-page mapping which maximises bank-level
  parallelism for streaming workloads.
* ``"blocked"`` -- a bank holds a contiguous range of row ids.
* ``"scrambled"`` -- like interleaved, but the *physical array order*
  of rows within a bank is a vendor-proprietary permutation of the
  logical row number (real DRAMs remap rows internally for repair and
  layout reasons).  ``bank_row_of`` still returns the logical in-bank
  index the memory controller sees; :meth:`AddressMapper.neighbors`
  returns *true physical* adjacency, which under scrambling differs
  from what a controller assuming linear order would refresh.

The scrambled policy makes Table IV's third row executable: a
victim-refresh defense that guesses adjacency from controller-visible
addresses refreshes the wrong rows, while AQUA never needs adjacency
at all.
"""

from __future__ import annotations

from repro.dram.geometry import DramGeometry, RowAddress


_VALID_POLICIES = ("interleaved", "blocked", "scrambled")

#: Fold width of the vendor scramble: physical array order interleaves
#: even logical rows first, then odd ones (a simple stand-in for real
#: vendors' proprietary remaps -- what matters is that logical
#: neighbours are not physical neighbours).
_SCRAMBLE_STRIDE = 2


class AddressMapper:
    """Translate between row ids, physical addresses and coordinates."""

    def __init__(
        self,
        geometry: DramGeometry,
        policy: str = "interleaved",
    ) -> None:
        if policy not in _VALID_POLICIES:
            raise ValueError(
                f"unknown mapping policy {policy!r}; expected one of "
                f"{_VALID_POLICIES}"
            )
        self.geometry = geometry
        self.policy = policy

    def bank_of(self, row_id: int) -> int:
        """Bank index (within the rank) that holds ``row_id``."""
        self.geometry.validate_row(row_id)
        if self.policy == "interleaved":
            return row_id % self.geometry.banks_per_rank
        return row_id // self.geometry.rows_per_bank

    def bank_row_of(self, row_id: int) -> int:
        """Row index within its bank for ``row_id``."""
        self.geometry.validate_row(row_id)
        if self.policy == "interleaved":
            return row_id // self.geometry.banks_per_rank
        return row_id % self.geometry.rows_per_bank

    def decode(self, row_id: int, channel: int = 0, rank: int = 0) -> RowAddress:
        """Decode a rank-local row id to a full ``RowAddress``."""
        return RowAddress(
            channel=channel,
            rank=rank,
            bank=self.bank_of(row_id),
            row=self.bank_row_of(row_id),
        )

    def encode(self, bank: int, bank_row: int) -> int:
        """Inverse of :meth:`decode` for the rank-local portion."""
        geo = self.geometry
        if not 0 <= bank < geo.banks_per_rank:
            raise ValueError(f"bank {bank} outside rank of {geo.banks_per_rank}")
        if not 0 <= bank_row < geo.rows_per_bank:
            raise ValueError(
                f"bank row {bank_row} outside bank of {geo.rows_per_bank}"
            )
        if self.policy == "interleaved":
            return bank_row * geo.banks_per_rank + bank
        return bank * geo.rows_per_bank + bank_row

    def row_of_byte_address(self, address: int) -> int:
        """Rank-local row id containing physical byte ``address``."""
        row_id = address // self.geometry.row_bytes
        self.geometry.validate_row(row_id)
        return row_id

    def byte_address_of_row(self, row_id: int) -> int:
        """First physical byte address of ``row_id``."""
        self.geometry.validate_row(row_id)
        return row_id * self.geometry.row_bytes

    def physical_order_of(self, bank_row: int) -> int:
        """Position of a logical in-bank row in the physical array.

        Identity for the linear policies; the vendor permutation for
        ``"scrambled"`` (even logical rows occupy the lower half of the
        array, odd rows the upper half).
        """
        rows = self.geometry.rows_per_bank
        if not 0 <= bank_row < rows:
            raise ValueError(f"bank row {bank_row} outside bank of {rows}")
        if self.policy != "scrambled":
            return bank_row
        half = rows // 2
        if bank_row % _SCRAMBLE_STRIDE == 0:
            return bank_row // _SCRAMBLE_STRIDE
        return half + bank_row // _SCRAMBLE_STRIDE

    def bank_row_at_physical(self, position: int) -> int:
        """Inverse of :meth:`physical_order_of`."""
        rows = self.geometry.rows_per_bank
        if not 0 <= position < rows:
            raise ValueError(f"position {position} outside bank of {rows}")
        if self.policy != "scrambled":
            return position
        half = rows // 2
        if position < half:
            return position * _SCRAMBLE_STRIDE
        return (position - half) * _SCRAMBLE_STRIDE + 1

    def neighbors(self, row_id: int, distance: int = 1) -> list:
        """Rows *physically* adjacent to ``row_id`` at the given distance.

        Adjacency is within the same bank, in the bank's physical array
        order (which under the ``"scrambled"`` policy differs from the
        controller-visible row numbering).  Used by the victim-refresh
        baseline and the disturbance oracle.
        """
        if distance < 1:
            raise ValueError("distance must be >= 1")
        bank = self.bank_of(row_id)
        position = self.physical_order_of(self.bank_row_of(row_id))
        result = []
        for offset in (-distance, distance):
            candidate = position + offset
            if 0 <= candidate < self.geometry.rows_per_bank:
                result.append(
                    self.encode(bank, self.bank_row_at_physical(candidate))
                )
        return result

    def assumed_neighbors(self, row_id: int, distance: int = 1) -> list:
        """Adjacency a controller would *guess* from visible addresses.

        A victim-refresh implementation without the vendor's mapping
        refreshes these rows; under ``"scrambled"`` they are not the
        true physical neighbours (Table IV's pitfall).
        """
        if distance < 1:
            raise ValueError("distance must be >= 1")
        bank = self.bank_of(row_id)
        bank_row = self.bank_row_of(row_id)
        result = []
        for offset in (-distance, distance):
            candidate = bank_row + offset
            if 0 <= candidate < self.geometry.rows_per_bank:
                result.append(self.encode(bank, candidate))
        return result
