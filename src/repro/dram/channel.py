"""Channel model: shared bus occupancy and migration busy time.

Row migrations stream entire rows through the memory controller's
copy-buffer, keeping the channel busy and unavailable to demand requests
(Sec. IV-G: "row migration makes the channel unavailable for servicing
any memory request until the migration is complete").  The channel
accumulates this busy time so the simulator can compute the memory-time
dilation that dominates the slowdown of row-migration schemes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.dram.bank import BankState
from repro.dram.geometry import DramGeometry, DEFAULT_GEOMETRY
from repro.dram.timing import DDR4Timing, DDR4_2400


@dataclass
class Channel:
    """One memory channel with its banks and a busy-time ledger."""

    geometry: DramGeometry = field(default_factory=lambda: DEFAULT_GEOMETRY)
    timing: DDR4Timing = field(default_factory=lambda: DDR4_2400)
    banks: List[BankState] = field(init=False)
    busy_until_ns: float = field(default=0.0)
    migration_busy_ns: float = field(default=0.0)
    migrations: int = field(default=0)

    def __post_init__(self) -> None:
        self.banks = [
            BankState(timing=self.timing)
            for _ in range(self.geometry.banks_per_rank)
        ]

    def bank(self, index: int) -> BankState:
        """The bank at ``index`` within this channel's rank."""
        return self.banks[index]

    def reserve_for_migration(self, now_ns: float, duration_ns: float) -> float:
        """Block the channel for a migration; return its completion time.

        Migrations serialise behind any in-flight channel activity, so
        the start time is ``max(now, busy_until)``.
        """
        start = max(now_ns, self.busy_until_ns)
        self.busy_until_ns = start + duration_ns
        self.migration_busy_ns += duration_ns
        self.migrations += 1
        return self.busy_until_ns

    def earliest_issue(self, now_ns: float) -> float:
        """Earliest time a demand request can use the channel."""
        return max(now_ns, self.busy_until_ns)

    def reset_epoch(self) -> None:
        """Clear per-epoch bank counters (migration totals persist)."""
        for bank in self.banks:
            bank.reset_epoch()
