"""DRAM substrate: timing, geometry, banks, channels, refresh, and power.

This package models a DDR4 memory system at *activation granularity*: the
fundamental simulated event is a row activation (ACT), timed with the DDR4
constants from Table I of the AQUA paper (MICRO 2022).  All Rowhammer
mechanisms in the paper (trackers, migrations, indirection tables) operate
per-ACT, so this level of detail is sufficient to reproduce the evaluation.
"""

from repro.dram.timing import DDR4Timing, DDR4_2400
from repro.dram.geometry import DramGeometry, RowAddress, DEFAULT_GEOMETRY
from repro.dram.address import AddressMapper
from repro.dram.bank import BankState
from repro.dram.channel import Channel
from repro.dram.refresh import RefreshScheduler, EPOCH_NS
from repro.dram.power import DramPowerModel, DramEnergyCounters
from repro.dram.data import RowDataStore

__all__ = [
    "DDR4Timing",
    "DDR4_2400",
    "DramGeometry",
    "RowAddress",
    "DEFAULT_GEOMETRY",
    "AddressMapper",
    "BankState",
    "Channel",
    "RefreshScheduler",
    "EPOCH_NS",
    "DramPowerModel",
    "DramEnergyCounters",
    "RowDataStore",
]
