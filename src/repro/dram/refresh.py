"""Refresh scheduling and the 64 ms epoch abstraction.

The AQUA paper defines an *epoch* as one refresh window (``tREFW``,
64 ms).  Rowhammer safety is stated over this window: a row's charge is
restored every 64 ms, so only activations inside one window can
accumulate toward the Rowhammer threshold.  The tracker (ART) is reset
at epoch boundaries, while the FPT/RPT drain lazily (Sec. IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.timing import DDR4Timing, DDR4_2400


EPOCH_NS = DDR4_2400.trefw_ns
"""Length of one epoch (refresh window) in nanoseconds: 64 ms."""


@dataclass
class RefreshScheduler:
    """Track epoch boundaries and refresh overhead.

    The memory controller must issue a refresh command every ``tREFI``
    (7.8 us) and the rank is unavailable for ``tRFC`` (350 ns) each time.
    The scheduler exposes both the epoch index for a given time and the
    cumulative refresh-busy time, which the simulator folds into the
    baseline memory time.
    """

    timing: DDR4Timing = field(default_factory=lambda: DDR4_2400)

    def epoch_of(self, now_ns: float) -> int:
        """Epoch index containing time ``now_ns``."""
        if now_ns < 0:
            raise ValueError("time must be non-negative")
        return int(now_ns // self.timing.trefw_ns)

    def epoch_start(self, epoch: int) -> float:
        """Start time of ``epoch`` in nanoseconds."""
        return epoch * self.timing.trefw_ns

    def epoch_end(self, epoch: int) -> float:
        """End time (exclusive) of ``epoch`` in nanoseconds."""
        return (epoch + 1) * self.timing.trefw_ns

    def time_into_epoch(self, now_ns: float) -> float:
        """Nanoseconds elapsed since the current epoch began."""
        return now_ns - self.epoch_start(self.epoch_of(now_ns))

    def refresh_busy_ns(self, interval_ns: float) -> float:
        """Refresh-induced busy time accumulated over ``interval_ns``."""
        if interval_ns < 0:
            raise ValueError("interval must be non-negative")
        refreshes = interval_ns / self.timing.trefi_ns
        return refreshes * self.timing.trfc_ns

    def crossed_epoch(self, previous_ns: float, now_ns: float) -> bool:
        """True if an epoch boundary lies in ``(previous, now]``."""
        return self.epoch_of(previous_ns) != self.epoch_of(now_ns)
