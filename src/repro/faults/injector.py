"""Seed-deterministic fault injector.

Each fault *site* is a named hook point in the simulation; components
ask ``injector.inject(site, ...)`` at the moment the fault would bite
and take their degradation path when it returns ``True``.  Sites draw
from independent PRNG streams seeded by ``(seed, scope, site)``, so

* the same seed always yields the same schedule (bit-for-bit),
* adding a new site (or a scheme that never consults one site) does not
  perturb the draws of any other site, and
* per-run ``scope`` strings (e.g. ``"aqua-mm/gcc"``) decorrelate the
  schedules of different runs sharing one seed.

Every injected fault is emitted as a ``fault`` event through the
attached :class:`~repro.telemetry.core.Telemetry` tracer and counted in
the ``faults_injected_total`` metric, so ``repro inspect`` sees the
fault record next to the migrations and throttles it caused.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import ConfigError
from repro.telemetry import NULL_TELEMETRY


FAULT_SITES = (
    "rqa_forced_full",
    "migration_interrupt",
    "fpt_cache_miss",
    "fpt_cache_corrupt",
    "tracker_drop",
    "refresh_postpone",
)
"""The hook points wired through the simulator (DESIGN.md §8)."""


@dataclass
class _SiteState:
    """Per-site PRNG stream and counters."""

    rng: random.Random
    rate: float
    offered: int = 0
    injected: int = 0


class NullFaultInjector:
    """Shared do-nothing injector: the allocation-free disabled path."""

    __slots__ = ()

    enabled = False

    def inject(self, site: str, ts_ns: float = 0.0, **attrs) -> bool:
        return False

    def counts(self) -> Dict[str, int]:
        return {}

    @property
    def total_injected(self) -> int:
        return 0


NULL_INJECTOR = NullFaultInjector()
"""The singleton every un-faulted component shares."""


@dataclass(frozen=True)
class FaultSpec:
    """Picklable recipe for building a :class:`FaultInjector` per run.

    Live injectors hold per-site PRNG streams mid-draw plus a telemetry
    reference -- state that is not process-safe to share: shipping one
    injector to N workers would fork its streams and destroy schedule
    determinism.  A spec instead crosses the process boundary and each
    worker derives its own injector with ``scope="<label>/<workload>"``,
    so the fault schedule of a run point depends only on (seed, scope,
    rates) -- never on which worker ran it or in what order.

    ``rates`` is a tuple of ``(site, rate)`` pairs (a dict is not
    hashable or deterministic to pickle); :meth:`build` validates the
    sites and ranges via the :class:`FaultInjector` constructor.
    """

    seed: int = 0
    fault_rate: float = 0.0
    rates: Tuple[Tuple[str, float], ...] = ()

    def build(self, scope: str, telemetry=None) -> "FaultInjector":
        """Derive the deterministic injector for one run point."""
        return FaultInjector(
            seed=self.seed,
            fault_rate=self.fault_rate,
            rates=dict(self.rates),
            scope=scope,
            telemetry=telemetry,
        )

    # --------------------------------------------------------- serialization
    #
    # A spec is part of a service job's identity: two submissions with
    # different fault schedules must hash to different cache keys, so
    # the dict form is canonical (sorted rate pairs) and round-trips
    # exactly.

    def to_dict(self) -> dict:
        """Canonical JSON-ready dict (inverse of :meth:`from_dict`)."""
        return {
            "seed": self.seed,
            "fault_rate": self.fault_rate,
            "rates": [
                [site, rate] for site, rate in sorted(self.rates)
            ],
        }

    @staticmethod
    def from_dict(data: dict) -> "FaultSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        try:
            rates = tuple(
                (str(site), float(rate)) for site, rate in data.get("rates", [])
            )
            return FaultSpec(
                seed=int(data.get("seed", 0)),
                fault_rate=float(data.get("fault_rate", 0.0)),
                rates=rates,
            )
        except (TypeError, ValueError) as exc:
            raise ConfigError(f"malformed FaultSpec dict: {exc}") from exc


class FaultInjector:
    """Deterministic per-site fault scheduler.

    Parameters
    ----------
    seed:
        Schedule seed.  Same seed (and scope/rates) -> same schedule.
    fault_rate:
        Default probability that any one hook-point check fires.
    rates:
        Per-site overrides of ``fault_rate`` (``{"tracker_drop": 0.0}``
        disables one site).  Unknown site names are rejected.
    scope:
        Free-form string mixed into every site's stream seed, used by
        the chaos runner to give each (scheme, workload) pair its own
        schedule under one user-facing seed.
    telemetry:
        Sink for ``fault`` events and the ``faults_injected_total``
        counter; defaults to the null telemetry.
    """

    enabled = True

    def __init__(
        self,
        seed: int = 0,
        fault_rate: float = 0.0,
        rates: Optional[Dict[str, float]] = None,
        scope: str = "",
        telemetry=None,
    ) -> None:
        if not 0.0 <= fault_rate <= 1.0:
            raise ConfigError(
                f"fault_rate must be in [0, 1] (got {fault_rate})"
            )
        rates = dict(rates) if rates else {}
        for site, rate in rates.items():
            if site not in FAULT_SITES:
                raise ConfigError(
                    f"unknown fault site {site!r}; choose from {FAULT_SITES}"
                )
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(
                    f"rate for site {site!r} must be in [0, 1] (got {rate})"
                )
        self.seed = seed
        self.scope = scope
        self.fault_rate = fault_rate
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._sites: Dict[str, _SiteState] = {}
        for site in FAULT_SITES:
            # str seeds hash through SHA-512: stable across runs and
            # platforms (unlike hash(), which is salted per process).
            stream = random.Random(f"{seed}:{scope}:{site}")
            self._sites[site] = _SiteState(
                rng=stream, rate=rates.get(site, fault_rate)
            )
        self.total_injected = 0
        self._digest = 0

    def inject(self, site: str, ts_ns: float = 0.0, **attrs) -> bool:
        """One hook-point check: should the fault fire here?

        Consumes one draw from the site's private stream per check
        (rate-zero sites short-circuit without drawing).  Because each
        site draws from its own stream, the schedule of one site is
        independent of how often any other site is consulted.
        """
        state = self._sites[site]
        state.offered += 1
        if state.rate <= 0.0:
            return False
        if state.rng.random() >= state.rate:
            return False
        state.injected += 1
        self.total_injected += 1
        self._digest = zlib.crc32(
            f"{site}@{state.offered}".encode("ascii"), self._digest
        )
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.event(
                "fault", ts_ns, site=site, seq=state.injected, **attrs
            )
            telemetry.inc("faults_injected_total", site=site)
        return True

    # ------------------------------------------------------------- reporting

    def counts(self) -> Dict[str, int]:
        """Injected-fault count per site (only sites that fired)."""
        return {
            site: state.injected
            for site, state in self._sites.items()
            if state.injected
        }

    def offered(self, site: str) -> int:
        """Number of hook-point checks made against ``site``."""
        return self._sites[site].offered

    def schedule_digest(self) -> str:
        """CRC of every fired (site, check-index) pair so far.

        Two runs with equal digests observed identical fault schedules;
        the reproducibility tests and the chaos summary both use this.
        """
        return f"{self._digest:08x}"

    def summary(self) -> str:
        """Compact deterministic one-liner for chaos reports."""
        fired = self.counts()
        if not fired:
            return "none"
        parts = ", ".join(f"{site}={n}" for site, n in sorted(fired.items()))
        return f"{self.total_injected} ({parts})"
