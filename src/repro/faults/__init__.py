"""Deterministic fault injection for chaos testing the simulator.

A :class:`FaultInjector` perturbs the simulation at well-defined hook
points (DESIGN.md §8 lists the sites and the degradation policy each
one exercises).  The schedule is a pure function of the seed: two runs
with the same seed, rates, and workload observe byte-identical fault
schedules, so chaos results are reproducible and diffable.

:data:`NULL_INJECTOR` is the shared no-op default threaded through
:class:`~repro.mitigations.base.MitigationScheme`, mirroring the
telemetry null object: un-faulted runs pay one attribute load and a
``False`` branch per hook.
"""

from repro.faults.injector import (
    FAULT_SITES,
    FaultInjector,
    FaultSpec,
    NULL_INJECTOR,
    NullFaultInjector,
)

__all__ = [
    "FAULT_SITES",
    "FaultInjector",
    "FaultSpec",
    "NULL_INJECTOR",
    "NullFaultInjector",
]
