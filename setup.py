"""Setuptools shim.

The pyproject.toml carries all metadata; this file exists so that
``python setup.py develop`` works on environments whose setuptools
lacks PEP 660 editable-wheel support (no ``wheel`` package installed).
"""

from setuptools import setup

setup()
