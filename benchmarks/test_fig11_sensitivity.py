"""Fig. 11 + Sec. V-F: sensitivity to threshold and structure sizes.

Paper: loss grows 0.2% -> 2.1% -> 6.8% as T_RH drops 2K -> 1K -> 500;
bloom-filter size 8/16/32 KB gives 2.3/2.1/2.0%; FPT-Cache size barely
matters.
"""

from bench_common import emit, gmean_loss_percent, render_rows, sweep


def test_fig11_threshold_sensitivity(benchmark):
    def run():
        return {
            trh: gmean_loss_percent(sweep("aqua-mm", trh))
            for trh in (2000, 1000, 500)
        }

    losses = benchmark.pedantic(run, rounds=1, iterations=1)
    paper = {2000: 0.2, 1000: 2.1, 500: 6.8}
    rows = [
        (trh, f"{losses[trh]:5.2f}%", f"{paper[trh]}%")
        for trh in (2000, 1000, 500)
    ]
    text = render_rows(("T_RH", "Gmean loss", "Paper"), rows)
    emit("fig11_threshold_sensitivity", text)

    assert losses[2000] < losses[1000] < losses[500]
    assert losses[2000] < 1.5
    assert losses[500] > 2.0


def test_fig11_structure_sensitivity(benchmark):
    def run():
        bloom = {
            kb: gmean_loss_percent(
                sweep(
                    "aqua-mm",
                    1000,
                    extra=(("bloom_group_size", 256 // kb),),
                )
            )
            for kb in (8, 16, 32)
        }
        cache = {
            kb: gmean_loss_percent(
                sweep(
                    "aqua-mm",
                    1000,
                    extra=(("fpt_cache_entries", kb * 256),),
                )
            )
            for kb in (8, 16, 32)
        }
        return bloom, cache

    bloom, cache = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (f"{kb} KB", f"{bloom[kb]:5.2f}%", f"{cache[kb]:5.2f}%")
        for kb in (8, 16, 32)
    ]
    text = render_rows(
        ("Structure size", "Bloom-filter sweep", "FPT-Cache sweep"), rows
    )
    text += (
        "\nPaper: bloom 2.3/2.1/2.0%; FPT-Cache flat at 2.1% "
        "(8 to 32 KB)\n"
    )
    emit("fig11_structure_sensitivity", text)

    # Shape: a bigger bloom filter (finer groups) never hurts; the
    # differences are fractions of a percent.
    assert bloom[32] <= bloom[8] + 0.05
    assert max(cache.values()) - min(cache.values()) < 1.0
