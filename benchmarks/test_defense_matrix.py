"""Security cross product: every mitigation vs every attack pattern.

The qualitative landscape behind Table IV and Sec. VII: refresh-based
defenses (TRR, PARA, victim refresh) fall to patterns that exploit
their own mitigative refreshes; AQUA's quarantine bounds per-location
activations under all of them.
"""

from repro.attacks import patterns
from repro.attacks.adversary import AttackHarness
from repro.core.aqua import AquaMitigation
from repro.core.config import AquaConfig
from repro.dram.address import AddressMapper
from repro.dram.geometry import DramGeometry
from repro.mitigations.none import NoMitigation
from repro.mitigations.para import Para
from repro.mitigations.trr import TargetRowRefresh
from repro.mitigations.victim_refresh import VictimRefresh

from bench_common import emit, render_rows


GEOMETRY = DramGeometry(banks_per_rank=4, rows_per_bank=4096)
TRH = 128
TRIGGER = TRH // 2

SCHEMES = ("none", "trr", "para", "victim-refresh", "aqua")
ATTACKS = ("single", "double", "many", "half-double")


def build_scheme(name):
    if name == "none":
        return NoMitigation(total_rows=GEOMETRY.rows_per_rank)
    if name == "trr":
        return TargetRowRefresh(
            geometry=GEOMETRY, sampler_entries=4, refresh_burst=16
        )
    if name == "para":
        return Para(
            rowhammer_threshold=TRH, geometry=GEOMETRY,
            probability=0.2, seed=9,
        )
    if name == "victim-refresh":
        return VictimRefresh(
            rowhammer_threshold=TRH, geometry=GEOMETRY,
            tracker_entries_per_bank=64,
        )
    return AquaMitigation(
        AquaConfig(
            rowhammer_threshold=TRH,
            geometry=GEOMETRY,
            rqa_slots=2048,
            tracker_entries_per_bank=64,
        )
    )


def build_pattern(name, mapper):
    if name == "single":
        return patterns.single_sided(mapper, 1, 100, 3000)
    if name == "double":
        return patterns.double_sided(mapper, 1, 100, pairs=1500)
    if name == "many":
        return patterns.many_sided(mapper, 1, 100, aggressors=12, rounds=300)
    return patterns.half_double(
        mapper, 1, 100,
        far_hammers=100 * TRIGGER,
        near_hammers_per_epoch=TRIGGER - 1,
    )


def test_defense_matrix(benchmark):
    def run():
        mapper = AddressMapper(GEOMETRY)
        outcome = {}
        for scheme_name in SCHEMES:
            for attack_name in ATTACKS:
                harness = AttackHarness(
                    build_scheme(scheme_name),
                    rowhammer_threshold=TRH,
                    geometry=GEOMETRY,
                )
                report = harness.run(build_pattern(attack_name, mapper))
                outcome[(scheme_name, attack_name)] = report.succeeded
        return outcome

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (
            scheme,
            *(
                "FLIPS" if outcome[(scheme, attack)] else "ok"
                for attack in ATTACKS
            ),
        )
        for scheme in SCHEMES
    ]
    text = render_rows(("Scheme", *ATTACKS), rows)
    emit("defense_matrix", text)

    # The unprotected system falls to every pattern.
    assert all(outcome[("none", attack)] for attack in ATTACKS)
    # TRRespass: the 4-entry sampler loses to 12 concurrent aggressors.
    assert outcome[("trr", "many")]
    # Victim refresh stops classic patterns but not Half-Double.
    assert not outcome[("victim-refresh", "single")]
    assert not outcome[("victim-refresh", "double")]
    assert outcome[("victim-refresh", "half-double")]
    # AQUA survives everything.
    assert not any(outcome[("aqua", attack)] for attack in ATTACKS)
