"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  Heavy
34-workload sweeps are computed once per configuration and memoised at
module scope, so benchmarks that share a sweep (Figs. 6, 7, 9, 10) pay
for it once.  Each benchmark also writes its rendered table to
``benchmarks/results/<name>.txt`` so the artifacts survive pytest's
output capture.
"""

from __future__ import annotations

import functools
import os
from typing import Dict

from repro.sim import runner
from repro.sim.runner import run_suite
from repro.sim.stats import WorkloadResult


EPOCHS = 2
"""Refresh windows simulated per workload (epoch 2 exercises the
steady-state lazy drain)."""

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def _factory(config: str, trh: int, **kwargs):
    builders = {
        "aqua-sram": runner.aqua_sram,
        "aqua-mm": runner.aqua_memory_mapped,
        "rrs": runner.rrs,
        "blockhammer": runner.blockhammer,
        "victim-refresh": runner.victim_refresh,
    }
    return builders[config](trh, **kwargs)


@functools.lru_cache(maxsize=None)
def sweep(
    config: str, trh: int = 1000, extra: tuple = ()
) -> Dict[str, WorkloadResult]:
    """Run (or fetch) the 34-workload sweep for one configuration.

    ``extra`` is a tuple of (key, value) pairs forwarded to the scheme
    factory (e.g. bloom/FPT-cache sizes for the Fig. 11 sensitivity).
    """
    factory = _factory(config, trh, **dict(extra))
    return run_suite(factory, epochs=EPOCHS)


def gmean_loss_percent(results: Dict[str, WorkloadResult]) -> float:
    """Geometric-mean slowdown as percent loss."""
    return (runner.gmean_slowdown(results) - 1.0) * 100.0


def write_table(name: str, text: str) -> None:
    """Persist a rendered table under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text)


def render_rows(headers, rows) -> str:
    """Simple fixed-width table renderer."""
    widths = [
        max(len(str(header)), *(len(str(row[i])) for row in rows))
        if rows
        else len(str(header))
        for i, header in enumerate(headers)
    ]
    def fmt(values):
        return "  ".join(
            str(value).rjust(width) for value, width in zip(values, widths)
        )

    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines) + "\n"


def emit(name: str, text: str) -> None:
    """Print a table and persist it."""
    banner = f"\n===== {name} =====\n"
    print(banner + text)
    write_table(name, text)
