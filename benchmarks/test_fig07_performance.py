"""Fig. 7: performance of AQUA vs RRS normalised to baseline (T_RH=1K).

Paper: AQUA loses 1.8% gmean, RRS 19.8% -- an order of magnitude apart.
"""

from bench_common import emit, gmean_loss_percent, render_rows, sweep


def test_fig07_performance(benchmark):
    def run():
        return sweep("aqua-sram", 1000), sweep("rrs", 1000)

    aqua, rrs = benchmark.pedantic(run, rounds=1, iterations=1)
    names = sorted(aqua)
    rows = [
        (
            name,
            f"{aqua[name].normalized_performance:6.3f}",
            f"{rrs[name].normalized_performance:6.3f}",
        )
        for name in names
    ]
    aqua_loss = gmean_loss_percent(aqua)
    rrs_loss = gmean_loss_percent(rrs)
    rows.append(
        (
            "GMEAN-34",
            f"{1 / (1 + aqua_loss / 100):6.3f}",
            f"{1 / (1 + rrs_loss / 100):6.3f}",
        )
    )
    text = render_rows(("Workload", "AQUA norm.perf", "RRS norm.perf"), rows)
    text += (
        f"\nAQUA gmean loss {aqua_loss:.2f}% (paper 1.8%); "
        f"RRS {rrs_loss:.2f}% (paper 19.8%)\n"
    )
    emit("fig07_performance", text)

    # Shape: AQUA loses only a few percent; RRS is ~an order of
    # magnitude worse; per-workload ordering holds.
    assert aqua_loss < 5.0
    assert rrs_loss > 10.0
    assert rrs_loss / aqua_loss > 5.0
    # Workloads without aggressor rows are unaffected by AQUA.
    for cold in ("wrf", "parest"):
        assert aqua[cold].percent_slowdown < 0.1
    # cactuBSSN: many 166+ rows (RRS suffers) but none above 500
    # (AQUA does not) -- the paper's Sec. IV-G example.
    assert rrs["cactuBSSN"].percent_slowdown > 2.0
    assert aqua["cactuBSSN"].percent_slowdown < 0.5
    # lbm is the worst case: ~3x for RRS, under 20% for AQUA.
    assert rrs["lbm"].slowdown > 2.0
    assert aqua["lbm"].slowdown < 1.2
