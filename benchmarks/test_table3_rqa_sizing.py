"""Table III: quarantine-area size as the effective threshold varies."""

from repro.core.sizing import table_iii

from bench_common import emit, render_rows


PAPER_ROWS = {1000: 15_302, 500: 23_053, 250: 30_872, 125: 37_176,
              50: 42_367, 1: 46_620}


def test_table3_rqa_sizing(benchmark):
    table = benchmark.pedantic(table_iii, rounds=1, iterations=1)
    rows = [
        (
            sizing.effective_threshold,
            f"{sizing.rows:,} ({PAPER_ROWS[sizing.effective_threshold]:,})",
            f"{sizing.size_mb:.0f} MB",
            f"{sizing.dram_overhead * 100:.1f}%",
        )
        for sizing in table
    ]
    text = render_rows(
        ("Threshold (A)", "R_max rows (paper)", "Size", "DRAM overhead"),
        rows,
    )
    emit("table3_rqa_sizing", text)
    for sizing in table:
        assert sizing.rows == PAPER_ROWS[sizing.effective_threshold]
