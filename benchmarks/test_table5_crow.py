"""Table V: Rowhammer threshold tolerated by CROW vs copy-row count."""

import pytest

from repro.mitigations.crow import CrowModel, crow_table_v

from bench_common import emit, render_rows


PAPER = {8: 340_000, 32: 85_000, 128: 21_300, 512: 5_300}


def test_table5_crow(benchmark):
    table = benchmark.pedantic(crow_table_v, rounds=1, iterations=1)
    rows = [
        (
            sizing.copy_rows,
            f"{sizing.dram_overhead * 100:.1f}%",
            sizing.aggressors_tolerated,
            f"{sizing.trh_tolerated:,.0f} (paper {PAPER[sizing.copy_rows]:,})",
        )
        for sizing in table
    ]
    text = render_rows(
        ("Copy-Rows", "DRAM overhead", "Aggressors", "T_RH tolerated"),
        rows,
    )
    model = CrowModel()
    agg = CrowModel(aggressor_only=True)
    text += (
        f"\nSecurity at T_RH=1K requires {model.dram_overhead_at(1000)*100:.0f}% "
        f"(CROW, paper 1060%) / {agg.dram_overhead_at(1000)*100:.0f}% "
        "(CROW-Agg, paper 530%) extra DRAM\n"
    )
    emit("table5_crow", text)

    for sizing in table:
        assert sizing.trh_tolerated == pytest.approx(
            PAPER[sizing.copy_rows], rel=0.05
        )
