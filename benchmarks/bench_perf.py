#!/usr/bin/env python
"""Standalone perf harness: ``python benchmarks/bench_perf.py --quick``.

Thin wrapper over :mod:`repro.bench` (also reachable as ``repro
bench``) so the perf trajectory can be measured from a bare checkout
without installing the package.  Times representative sweeps (serial
vs parallel, traced, faulted), prints the stage-time metrics table,
and writes machine-readable ``BENCH_<rev>.json``; see
``benchmarks/baseline/BENCH_baseline.json`` for the committed baseline
the CI bench job gates against.
"""

import os
import sys

if __name__ == "__main__":
    try:
        import repro  # noqa: F401  -- installed? use that
    except ImportError:
        sys.path.insert(
            0,
            os.path.join(os.path.dirname(os.path.abspath(__file__)),
                         os.pardir, "src"),
        )
    from repro.bench import main

    raise SystemExit(main(sys.argv[1:]))
