"""Fig. 6: row migrations per 64 ms, AQUA vs RRS at T_RH = 1K.

Paper: AQUA averages ~1099 row migrations per epoch, RRS ~9935 -- 9x
more, with a guaranteed analytical floor of 6x (Appendix A).
"""

from repro.analysis.migration_model import empirical_ratio

from bench_common import emit, render_rows, sweep


def test_fig06_migrations(benchmark):
    def run():
        return sweep("aqua-sram", 1000), sweep("rrs", 1000)

    aqua, rrs = benchmark.pedantic(run, rounds=1, iterations=1)
    names = sorted(aqua)
    rows = []
    for name in names:
        rows.append(
            (
                name,
                f"{aqua[name].row_moves / aqua[name].epochs:9.0f}",
                f"{rrs[name].row_moves / rrs[name].epochs:9.0f}",
            )
        )
    aqua_avg = sum(r.row_moves / r.epochs for r in aqua.values()) / len(aqua)
    rrs_avg = sum(r.row_moves / r.epochs for r in rrs.values()) / len(rrs)
    rows.append(("AVERAGE", f"{aqua_avg:9.0f}", f"{rrs_avg:9.0f}"))
    text = render_rows(("Workload", "AQUA moves/64ms", "RRS moves/64ms"), rows)
    text += (
        f"\nAQUA avg {aqua_avg:.0f} (paper 1099); RRS avg {rrs_avg:.0f} "
        f"(paper 9935); ratio {empirical_ratio(int(aqua_avg) or 1, int(rrs_avg)):.1f}x "
        "(paper 9x, floor 6x)\n"
    )
    emit("fig06_migrations", text)

    # Shape: RRS performs several times more row migrations, above the
    # Appendix A floor of 6x on average.
    assert rrs_avg / aqua_avg > 6.0
    # lbm and blender dominate, as in the paper.
    heavy = {"lbm", "blender"}
    top = sorted(
        names, key=lambda n: aqua[n].row_moves, reverse=True
    )[:3]
    assert heavy & set(top)
