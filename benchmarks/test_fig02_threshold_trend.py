"""Fig. 2: Rowhammer threshold decline across DRAM generations."""

from repro.analysis.thresholds import THRESHOLD_TIMELINE, threshold_trend

from bench_common import emit, render_rows


def test_fig02_threshold_trend(benchmark):
    def run():
        return threshold_trend()

    trend = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (p.year, p.technology, f"{p.rowhammer_threshold:,}", p.source)
        for p in THRESHOLD_TIMELINE
    ]
    text = render_rows(("Year", "Technology", "T_RH", "Source"), rows)
    text += (
        f"\nReduction 2014->2020: {trend['reduction_factor']:.1f}x "
        "(paper: ~30x, 139K -> 4.8K)\n"
    )
    emit("fig02_threshold_trend", text)
    assert trend["reduction_factor"] > 25
