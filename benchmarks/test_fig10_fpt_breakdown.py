"""Fig. 10: classification of FPT lookups with memory-mapped tables.

Paper averages: 92.2% filtered by the bloom filter, 7.3% FPT-Cache
hits, 0.4% singleton-filtered, <0.1% reach DRAM.
"""

from bench_common import emit, render_rows, sweep


def test_fig10_fpt_breakdown(benchmark):
    def run():
        return sweep("aqua-mm", 1000)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    names = sorted(results)
    rows = []
    keys = ("bloom_filtered", "cache_hit", "singleton", "dram_access")
    totals = {key: 0.0 for key in keys}
    counted = 0
    for name in names:
        breakdown = results[name].lookup_breakdown or {}
        if not breakdown:
            continue
        counted += 1
        for key in keys:
            totals[key] += breakdown.get(key, 0.0)
        rows.append(
            (name, *(f"{100 * breakdown.get(k, 0.0):7.3f}%" for k in keys))
        )
    averages = {key: totals[key] / counted for key in keys}
    rows.append(
        ("AVERAGE", *(f"{100 * averages[k]:7.3f}%" for k in keys))
    )
    text = render_rows(
        ("Workload", "Bloom-reset", "FPT-Cache hit", "Singleton", "DRAM"),
        rows,
    )
    text += (
        "\nPaper averages: bloom 92.2%, cache-hit 7.3%, singleton 0.4%, "
        "DRAM 0.02%\n"
    )
    emit("fig10_fpt_breakdown", text)

    # Shape: the bloom filter dominates; DRAM accesses are rare.
    assert averages["bloom_filtered"] > 0.60
    assert averages["dram_access"] < 0.01
    assert (
        averages["bloom_filtered"]
        > averages["cache_hit"]
        > averages["dram_access"]
    )
