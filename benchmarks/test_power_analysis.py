"""Sec. V-H: power analysis of AQUA's structures and migrations.

Paper: SRAM structures draw 13.6 mW (5.4 bloom + 5.4 FPT-Cache + 2.8
copy-buffer, CACTI 7.0 @22 nm); DRAM power rises 0.7% (8.5 mW) from
migrations and table traffic.
"""

import pytest

from repro.analysis.power import AquaPowerReport
from repro.core.aqua import AquaMitigation
from repro.core.config import AquaConfig
from repro.dram.power import DramEnergyCounters, DramPowerModel
from repro.sim import SystemSimulator
from repro.workloads import workload

from bench_common import EPOCHS, emit, render_rows


def test_power_analysis(benchmark):
    def run():
        aqua = AquaMitigation(
            AquaConfig(rowhammer_threshold=1000, table_mode="memory-mapped")
        )
        result = SystemSimulator(aqua).run(workload("lbm"), epochs=EPOCHS)
        return aqua, result

    aqua, result = benchmark.pedantic(run, rounds=1, iterations=1)
    report = AquaPowerReport()
    model = DramPowerModel()
    interval_ns = EPOCHS * 64e6

    # Demand-side energy is common mode; the overhead is AQUA's
    # migration + table traffic (the scheme's own counters).
    baseline = DramEnergyCounters()
    mitigated = aqua.energy
    tables = aqua.tables
    mitigated.table_line_accesses += (
        tables.dram_fpt.dram_reads
        + tables.dram_fpt.dram_writes
        + tables.rpt_dram_accesses
    )
    dram_overhead_mw = report.dram_overhead_mw(
        baseline, mitigated, interval_ns, model
    )
    # Baseline DRAM power for the fraction: demand traffic of the run.
    demand = DramEnergyCounters(
        activations=result.activations,
        line_reads=result.activations * 4,
    )
    base_mw = model.average_power_mw(demand, interval_ns)

    rows = [
        ("Bloom filter (16 KB)", f"{report.bloom_mw:.1f} mW", "5.4 mW"),
        ("FPT-Cache (16 KB)", f"{report.fpt_cache_mw:.1f} mW", "5.4 mW"),
        ("Copy-buffer (8 KB)", f"{report.copy_buffer_mw:.1f} mW", "2.8 mW"),
        ("SRAM total", f"{report.sram_total_mw:.1f} mW", "13.6 mW"),
        (
            "DRAM overhead (lbm, worst case)",
            f"{dram_overhead_mw:.1f} mW "
            f"({100 * dram_overhead_mw / base_mw:.2f}%)",
            "8.5 mW (0.7% suite avg)",
        ),
    ]
    text = render_rows(("Component", "Measured", "Paper"), rows)
    emit("power_analysis", text)

    assert report.sram_total_mw == pytest.approx(13.6, rel=0.05)
    # lbm migrates ~6x the suite average, so its DRAM overhead sits
    # above the paper's 8.5 mW average but in the same regime.
    assert 1.0 < dram_overhead_mw < 100.0
    assert dram_overhead_mw / base_mw < 0.05
