"""Fig. 9: AQUA with SRAM tables vs memory-mapped tables.

Paper: 1.8% vs 2.1% gmean loss -- the 4x SRAM saving of the
memory-mapped design costs almost nothing.
"""

from bench_common import emit, gmean_loss_percent, render_rows, sweep


def test_fig09_memtable_performance(benchmark):
    def run():
        return sweep("aqua-sram", 1000), sweep("aqua-mm", 1000)

    sram, mm = benchmark.pedantic(run, rounds=1, iterations=1)
    names = sorted(sram)
    rows = [
        (
            name,
            f"{sram[name].normalized_performance:6.3f}",
            f"{mm[name].normalized_performance:6.3f}",
        )
        for name in names
    ]
    sram_loss = gmean_loss_percent(sram)
    mm_loss = gmean_loss_percent(mm)
    text = render_rows(
        ("Workload", "AQUA-SRAM norm.perf", "AQUA-MM norm.perf"), rows
    )
    text += (
        f"\nSRAM tables gmean loss {sram_loss:.2f}% (paper 1.8%); "
        f"memory-mapped {mm_loss:.2f}% (paper 2.1%)\n"
    )
    emit("fig09_memtable_performance", text)

    # Shape: the two designs are within a fraction of a percent.
    assert mm_loss >= sram_loss
    assert mm_loss - sram_loss < 1.5
    assert mm_loss < 6.0
