"""Fig. 3: RRS slowdown as T_RH drops from 4K to 2K to 1K.

Paper gmeans: 2.7% at 4K, 8.2% at 2K, 19.8% at 1K -- negligible at high
thresholds, unacceptable at low ones.
"""

from bench_common import emit, gmean_loss_percent, render_rows, sweep


PAPER_GMEAN = {4000: 2.7, 2000: 8.2, 1000: 19.8}


def test_fig03_rrs_scaling(benchmark):
    def run():
        return {trh: sweep("rrs", trh) for trh in (4000, 2000, 1000)}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    gmeans = {trh: gmean_loss_percent(res) for trh, res in results.items()}

    names = sorted(results[1000])
    rows = [
        (
            name,
            *(
                f"{results[trh][name].percent_slowdown:6.2f}%"
                for trh in (4000, 2000, 1000)
            ),
        )
        for name in names
    ]
    rows.append(
        (
            "GMEAN-34",
            *(
                f"{gmeans[trh]:6.2f}% (paper {PAPER_GMEAN[trh]}%)"
                for trh in (4000, 2000, 1000)
            ),
        )
    )
    text = render_rows(
        ("Workload", "RRS @4K", "RRS @2K", "RRS @1K"), rows
    )
    emit("fig03_rrs_scaling", text)

    # Shape assertions: slowdown grows sharply as the threshold drops,
    # from negligible at 4K to heavy at 1K.
    assert gmeans[4000] < gmeans[2000] < gmeans[1000]
    assert gmeans[4000] < 6.0
    assert gmeans[1000] > 10.0
    assert gmeans[1000] / gmeans[4000] > 3.0
