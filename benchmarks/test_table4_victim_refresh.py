"""Table IV: AQUA vs victim-refresh, run as attack experiments.

* Classic Rowhammer (single/double-sided): both schemes mitigate.
* Complex patterns (Half-Double): victim refresh FAILS, AQUA holds.
* Victim refresh needs the DRAM-internal mapping; AQUA does not.
"""

from repro.attacks import patterns
from repro.attacks.adversary import AttackHarness
from repro.core.aqua import AquaMitigation
from repro.core.config import AquaConfig
from repro.dram.geometry import DramGeometry
from repro.mitigations.victim_refresh import VictimRefresh

from bench_common import emit, render_rows


GEOMETRY = DramGeometry(banks_per_rank=4, rows_per_bank=4096)
TRH = 128


def _aqua():
    return AquaMitigation(
        AquaConfig(
            rowhammer_threshold=TRH,
            geometry=GEOMETRY,
            rqa_slots=512,
            tracker_entries_per_bank=64,
        )
    )


def _victim_refresh():
    return VictimRefresh(
        rowhammer_threshold=TRH,
        geometry=GEOMETRY,
        tracker_entries_per_bank=64,
    )


def _attack(scheme, kind):
    harness = AttackHarness(scheme, rowhammer_threshold=TRH, geometry=GEOMETRY)
    mapper = harness.mapper
    if kind == "classic":
        pattern = patterns.double_sided(mapper, 1, 100, pairs=1500)
    else:
        pattern = patterns.half_double(
            mapper,
            1,
            100,
            far_hammers=100 * (TRH // 2),
            near_hammers_per_epoch=TRH // 2 - 1,
        )
    report = harness.run(pattern)
    return not report.succeeded  # True = mitigated


def test_table4_victim_refresh_comparison(benchmark):
    def run():
        return {
            ("victim-refresh", "classic"): _attack(_victim_refresh(), "classic"),
            ("victim-refresh", "half-double"): _attack(
                _victim_refresh(), "half-double"
            ),
            ("aqua", "classic"): _attack(_aqua(), "classic"),
            ("aqua", "half-double"): _attack(_aqua(), "half-double"),
        }

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)

    def mark(value):
        return "mitigated" if value else "BIT FLIPS"

    rows = [
        (
            "Mitigates classic Rowhammer",
            mark(outcomes[("victim-refresh", "classic")]),
            mark(outcomes[("aqua", "classic")]),
        ),
        (
            "Mitigates Half-Double",
            mark(outcomes[("victim-refresh", "half-double")]),
            mark(outcomes[("aqua", "half-double")]),
        ),
        ("Needs DRAM-internal mapping", "yes", "no"),
    ]
    text = render_rows(("Attribute", "Victim-Refresh", "AQUA"), rows)
    emit("table4_victim_refresh", text)

    assert outcomes[("victim-refresh", "classic")]
    assert not outcomes[("victim-refresh", "half-double")]  # the pitfall
    assert outcomes[("aqua", "classic")]
    assert outcomes[("aqua", "half-double")]
