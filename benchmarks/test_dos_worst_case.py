"""Sec. VI-C: worst-case (denial-of-service) slowdown experiments.

AQUA: forcing a quarantine (with eviction) in all banks as fast as
possible bounds the slowdown near 2.95x.  Blockhammer: a benign
two-row conflict pattern is throttled ~1280x.
"""

import pytest

from repro.attacks import patterns
from repro.attacks.adversary import AttackHarness
from repro.core.aqua import AquaMitigation
from repro.core.config import AquaConfig
from repro.dram.geometry import DramGeometry
from repro.mitigations.blockhammer import Blockhammer

from bench_common import emit, render_rows


GEOMETRY = DramGeometry(banks_per_rank=4, rows_per_bank=4096)
TRH = 128


def run_aqua_dos():
    harness = AttackHarness(
        AquaMitigation(
            AquaConfig(
                rowhammer_threshold=TRH,
                geometry=GEOMETRY,
                rqa_slots=4096,
                tracker_entries_per_bank=128,
            )
        ),
        rowhammer_threshold=TRH,
        geometry=GEOMETRY,
    )
    pattern = patterns.dos_pattern(
        harness.mapper, threshold=TRH // 2, rows_per_bank_used=16
    )
    return harness.run(pattern), harness


def analytical_aqua_worst_case(threshold=500, banks=16):
    # Sec. VI-C arithmetic: 16 concurrent triggers every A*tRC, each
    # costing a migration-with-eviction.
    t_trigger = threshold * 45.0
    busy = banks * 2740.0
    return (t_trigger + busy) / t_trigger


def test_dos_worst_case(benchmark):
    report, harness = benchmark.pedantic(run_aqua_dos, rounds=1, iterations=1)
    bh = Blockhammer(rowhammer_threshold=1000)
    rows = [
        (
            "AQUA (measured, adversarial rotation)",
            f"{report.slowdown:.2f}x",
        ),
        (
            "AQUA (analytical, Sec. VI-C)",
            f"{analytical_aqua_worst_case():.2f}x (paper 2.95x)",
        ),
        (
            "Blockhammer (analytical)",
            f"{bh.worst_case_slowdown():.0f}x (paper 1280x)",
        ),
    ]
    text = render_rows(("Scheme / method", "Worst-case slowdown"), rows)
    text += (
        f"\nAQUA migrations under attack: {report.migrations}; "
        f"bit flips: {len(report.flips)}; invariant holds: "
        f"{harness.invariant_holds()}\n"
    )
    emit("dos_worst_case", text)

    assert analytical_aqua_worst_case() == pytest.approx(2.95, abs=0.05)
    assert report.slowdown < 4.0
    assert not report.succeeded
    assert harness.invariant_holds()
    assert bh.worst_case_slowdown() > 400 * report.slowdown
