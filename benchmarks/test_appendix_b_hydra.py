"""Appendix B: AQUA with the Hydra tracker, end to end.

The paper's Table VII shows AQUA-Hydra cutting total SRAM to 71 KB; the
tracker swap must not change the mitigation behaviour in kind.  This
sweep runs the full 34-workload suite under both trackers and compares
slowdown, migration counts, and the SRAM bill.
"""

import pytest

from repro.analysis.storage import hydra_tracker_bytes, misra_gries_tracker_bytes

from bench_common import emit, gmean_loss_percent, render_rows, sweep


def test_appendix_b_hydra(benchmark):
    def run():
        mg = sweep("aqua-mm", 1000)
        hydra = sweep("aqua-mm", 1000, extra=(("tracker", "hydra"),))
        return mg, hydra

    mg, hydra = benchmark.pedantic(run, rounds=1, iterations=1)
    mg_loss = gmean_loss_percent(mg)
    hydra_loss = gmean_loss_percent(hydra)
    mg_migrations = sum(r.migrations_per_epoch for r in mg.values()) / len(mg)
    hydra_migrations = sum(
        r.migrations_per_epoch for r in hydra.values()
    ) / len(hydra)
    mg_sram = misra_gries_tracker_bytes(500) / 1024
    hydra_sram = hydra_tracker_bytes() / 1024

    rows = [
        (
            "AQUA-MG",
            f"{mg_loss:.2f}%",
            f"{mg_migrations:,.0f}",
            f"{mg_sram:.0f} KB",
        ),
        (
            "AQUA-Hydra",
            f"{hydra_loss:.2f}%",
            f"{hydra_migrations:,.0f}",
            f"{hydra_sram:.0f} KB",
        ),
    ]
    text = render_rows(
        ("Config", "Gmean-34 loss", "Migrations/64ms (avg)", "Tracker SRAM"),
        rows,
    )
    text += (
        "\nPaper (Table VII): tracker SRAM 396 KB (MG) vs ~30 KB (Hydra); "
        "the paper does not report an AQUA-Hydra slowdown, only that the "
        "tracker choice is orthogonal.\n"
    )
    emit("appendix_b_hydra", text)

    # Hydra's conservative group inheritance over-mitigates somewhat but
    # stays in the same regime: a few percent gmean loss, not RRS-like.
    assert hydra_loss < 3 * max(mg_loss, 1.0)
    assert hydra_migrations >= mg_migrations
    assert mg_sram / hydra_sram > 8
