"""Table II: MPKI and hot-row counts of the synthetic SPEC workloads.

Verifies that the generators reproduce the paper's characterisation:
per workload, the number of rows with 166+/500+/1000+ activations per
64 ms epoch.
"""

from repro.workloads.spec import workload
from repro.workloads.table2 import SPEC_NAMES, TABLE_II

from bench_common import emit, render_rows


def test_table2_workload_characteristics(benchmark):
    def run():
        measured = {}
        for name in SPEC_NAMES:
            trace = workload(name).epoch_trace(0)
            measured[name] = (
                trace.rows_at_or_above(166),
                trace.rows_at_or_above(500),
                trace.rows_at_or_above(1000),
                trace.total_activations,
            )
        return measured

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for name in SPEC_NAMES:
        spec = TABLE_II[name]
        m166, m500, m1k, acts = measured[name]
        rows.append(
            (
                name,
                f"{spec.mpki:.2f}",
                f"{m166} ({spec.act_166_plus})",
                f"{m500} ({spec.act_500_plus})",
                f"{m1k} ({spec.act_1k_plus})",
                f"{acts:,}",
            )
        )
    text = render_rows(
        (
            "Workload",
            "MPKI",
            "ACT-166+ (paper)",
            "ACT-500+ (paper)",
            "ACT-1K+ (paper)",
            "ACTs/epoch",
        ),
        rows,
    )
    emit("table2_workload_characteristics", text)
    for name in SPEC_NAMES:
        spec = TABLE_II[name]
        m166, m500, m1k, _ = measured[name]
        assert (m166, m500, m1k) == (
            spec.act_166_plus,
            spec.act_500_plus,
            spec.act_1k_plus,
        ), f"{name} hot-row bands diverge from Table II"
