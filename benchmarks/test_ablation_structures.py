"""Ablations for DESIGN.md's called-out design choices.

1. **CAT vs plain set-associative FPT** (Sec. IV-C): how many entries
   each holds before a conflict would drop a quarantined row's mapping.
2. **Lazy vs eager drain** (Sec. IV-D): eviction latency on the
   allocation critical path with and without background draining.
3. **Tracker choice** (Appendix B): AQUA-MG vs AQUA-Hydra on a heavy
   workload -- migrations must match in kind; SRAM differs 10x.
"""

import pytest

from repro.analysis.storage import hydra_tracker_bytes, misra_gries_tracker_bytes
from repro.core.aqua import AquaMitigation
from repro.core.cat import CollisionAvoidanceTable
from repro.core.config import AquaConfig
from repro.core.setassoc import SetAssociativeTable
from repro.dram.geometry import DramGeometry
from repro.dram.refresh import EPOCH_NS
from repro.sim import SystemSimulator
from repro.workloads import workload

from bench_common import emit, render_rows


GEOMETRY = DramGeometry(banks_per_rank=4, rows_per_bank=4096)


def test_ablation_cat_vs_setassoc(benchmark):
    def run():
        capacity = 32 * 1024
        target = 23 * 1024  # the paper's valid-entry population
        keys = [key * 2_654_435_761 % (2**31) for key in range(capacity)]
        plain = SetAssociativeTable(capacity=capacity, ways=8)
        plain_held = plain.load_at_first_eviction(keys)
        cat = CollisionAvoidanceTable(capacity=capacity, ways=8)
        for key in keys[:target]:
            cat.insert(key, key)
        return plain_held, len(cat), target

    plain_held, cat_held, target = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    rows = [
        ("plain 8-way set-assoc (32K)", f"{plain_held:,}",
         "first conflict eviction"),
        ("CAT, 2 skews + relocation (32K)", f"{cat_held:,}",
         "all 23K entries placed"),
    ]
    text = render_rows(("FPT organisation", "Entries held", "Outcome"), rows)
    emit("ablation_cat_vs_setassoc", text)
    assert cat_held == target
    assert plain_held < target


def _run_epochs(aqua, target, epochs=3):
    return SystemSimulator(aqua).run(target, epochs=epochs)


def test_ablation_lazy_vs_eager_drain(benchmark):
    def run():
        # Small RQA so the head wraps within a few epochs.
        lazy = AquaMitigation(
            AquaConfig(
                rowhammer_threshold=64,
                geometry=GEOMETRY,
                rqa_slots=96,
                tracker_entries_per_bank=64,
            )
        )
        eager = AquaMitigation(
            AquaConfig(
                rowhammer_threshold=64,
                geometry=GEOMETRY,
                rqa_slots=96,
                tracker_entries_per_bank=64,
            )
        )
        for epoch in range(3):
            now = epoch * EPOCH_NS
            for row in range(64):
                for _ in range(32):
                    lazy.access(1000 + epoch * 64 + row, now)
                    eager.access(1000 + epoch * 64 + row, now)
                if eager.current_epoch == epoch:
                    eager.drain_stale(max_rows=8)
        return lazy, eager

    lazy, eager = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ("lazy (paper default)", lazy.stats.evictions,
         f"{lazy.stats.busy_ns / 1e3:.1f} us"),
        ("eager background drain", eager.stats.evictions,
         f"{eager.stats.busy_ns / 1e3:.1f} us"),
    ]
    text = render_rows(
        ("Drain policy", "Critical-path evictions", "Channel busy"), rows
    )
    text += (
        "\nEager draining moves stale-row evictions off the allocation "
        "critical path (Sec. IV-D's optional optimisation).\n"
    )
    emit("ablation_drain_policy", text)
    assert eager.stats.evictions < lazy.stats.evictions


def test_ablation_tracker_choice(benchmark):
    def run():
        mg = AquaMitigation(AquaConfig(rowhammer_threshold=1000))
        hydra = AquaMitigation(
            AquaConfig(rowhammer_threshold=1000, tracker="hydra")
        )
        target = workload("mcf")
        return (
            _run_epochs(mg, target, epochs=1),
            _run_epochs(hydra, target, epochs=1),
        )

    mg_result, hydra_result = benchmark.pedantic(run, rounds=1, iterations=1)
    mg_kb = misra_gries_tracker_bytes(500) / 1024
    hydra_kb = hydra_tracker_bytes() / 1024
    rows = [
        ("AQUA-MG", f"{mg_result.migrations}", f"{mg_kb:.0f} KB"),
        ("AQUA-Hydra", f"{hydra_result.migrations}", f"{hydra_kb:.0f} KB"),
    ]
    text = render_rows(
        ("Configuration", "Migrations (mcf, 1 epoch)", "Tracker SRAM"), rows
    )
    emit("ablation_tracker_choice", text)
    # Hydra never under-detects (its per-row counters inherit the group
    # count, a conservative over-estimate), so it mitigates at least as
    # often as Misra-Gries -- at a bounded over-mitigation cost -- while
    # using ~12x less tracker SRAM.
    assert hydra_result.migrations >= mg_result.migrations
    assert hydra_result.migrations < 4 * mg_result.migrations
    assert mg_kb / hydra_kb > 8
