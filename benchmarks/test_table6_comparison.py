"""Table VI: cross-scheme comparison at T_RH = 1K.

Columns: mapping-table SRAM, DRAM overhead, average performance loss,
worst-case slowdown, commodity-DRAM compatibility.
"""

from repro.analysis.storage import aqua_mapping_bytes, rrs_rit_bytes
from repro.core.config import AquaConfig
from repro.mitigations.blockhammer import Blockhammer
from repro.mitigations.crow import CrowModel

from bench_common import emit, gmean_loss_percent, render_rows, sweep


def test_table6_comparison(benchmark):
    def run():
        return {
            "blockhammer": gmean_loss_percent(sweep("blockhammer", 1000)),
            "rrs": gmean_loss_percent(sweep("rrs", 1000)),
            "aqua": gmean_loss_percent(sweep("aqua-mm", 1000)),
        }

    losses = benchmark.pedantic(run, rounds=1, iterations=1)

    config = AquaConfig(rowhammer_threshold=1000, table_mode="memory-mapped")
    aqua_sram_kb = (aqua_mapping_bytes(1000, "memory-mapped") + 8 * 1024) / 1024
    rrs_sram_mb = rrs_rit_bytes(1000) / 1e6
    crow = CrowModel()
    crow_agg = CrowModel(aggressor_only=True)
    bh_worst = Blockhammer(rowhammer_threshold=1000).worst_case_slowdown()

    rows = [
        (
            "Blockhammer",
            "n/a",
            "0%",
            f"{losses['blockhammer']:.1f}% (paper 36%)",
            f"{bh_worst:.0f}x (paper 1280x)",
            "yes",
        ),
        (
            "CROW",
            "26 MB",
            f"{crow.dram_overhead_at(1000) * 100:.0f}% (paper 1060%)",
            "<0.1%",
            "<1%",
            "NO",
        ),
        (
            "CROW-Agg",
            "32 KB",
            f"{crow_agg.dram_overhead_at(1000) * 100:.0f}% (paper 530%)",
            "<0.1%",
            "<1%",
            "NO",
        ),
        (
            "RRS",
            f"{rrs_sram_mb:.1f} MB (paper 2.4 MB)",
            "0%",
            f"{losses['rrs']:.1f}% (paper 19.8%)",
            "11x",
            "yes",
        ),
        (
            "AQUA",
            f"{aqua_sram_kb:.0f} KB (paper 41 KB)",
            f"{config.dram_overhead * 100:.1f}% (paper 1.1%)",
            f"{losses['aqua']:.1f}% (paper 2.1%)",
            "~3x (Sec. VI-C)",
            "yes",
        ),
    ]
    text = render_rows(
        (
            "Scheme",
            "Mapping SRAM",
            "DRAM overhead",
            "Avg perf loss",
            "Worst-case slowdown",
            "Commodity DRAM",
        ),
        rows,
    )
    emit("table6_comparison", text)

    # Shape: AQUA beats RRS and Blockhammer on average loss; its SRAM
    # is ~KBs vs RRS's MBs; DRAM overhead stays ~1%.
    assert losses["aqua"] < losses["rrs"]
    assert losses["aqua"] < losses["blockhammer"]
    assert aqua_sram_kb < 64
    assert rrs_sram_mb > 2.0
    assert 0.005 < config.dram_overhead < 0.02
    assert bh_worst > 1000
