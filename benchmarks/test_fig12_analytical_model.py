"""Fig. 12 / Appendix A: analytical RRS-vs-AQUA migration ratio.

Also cross-checks the analytical model against the measured Fig. 6
sweep, as the paper does ("the estimated row migration overhead ...
matches well with the row migration overhead obtained experimentally").
"""

import pytest

from repro.analysis.migration_model import (
    empirical_ratio,
    fig12_series,
    guaranteed_floor,
    migration_ratio,
)

from bench_common import emit, render_rows, sweep


def test_fig12_analytical_model(benchmark):
    series = benchmark.pedantic(fig12_series, rounds=1, iterations=1)
    rows = [(f"{f:.2f}", f"{r:.1f}x") for f, r in series]
    text = render_rows(("f (hot fraction)", "r = RRS/AQUA migrations"), rows)

    aqua = sweep("aqua-sram", 1000)
    rrs = sweep("rrs", 1000)
    aqua_moves = sum(r.row_moves for r in aqua.values())
    rrs_moves = sum(r.row_moves for r in rrs.values())
    measured = empirical_ratio(aqua_moves, rrs_moves)
    text += (
        f"\nGuaranteed floor r(1) = {guaranteed_floor():.0f}x; "
        f"paper measured average 9x (f ~ 0.4, r(0.4) = "
        f"{migration_ratio(0.4):.0f}x); this reproduction measures "
        f"{measured:.1f}x\n"
    )
    emit("fig12_analytical_model", text)

    assert guaranteed_floor() == pytest.approx(6.0)
    # The measured ratio sits above the analytical floor, in the same
    # regime as the paper's 9x.
    assert measured > 6.0
    assert measured < 20.0
