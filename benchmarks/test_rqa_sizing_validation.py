"""Empirical validation of Equation 3 (Sec. IV-E).

The sizing theorem: an attacker forcing migrations at the maximum rate
(every bank, a fresh row every ``A`` activations) cannot fill an
Equation-3-sized RQA within one refresh window -- triggering takes
``A * tRC`` and each migration blocks the channel for ``t_mov``.

The experiment drives that exact worst-case pattern through the timed
controller:

* with the RQA sized by Equation 3, the window ends before the head
  can lap itself: no slot is reused, no alarm;
* with an under-provisioned RQA (half of Equation 3), the head laps
  mid-window and the :class:`RqaExhaustedError` security alarm fires.
"""

import pytest

from repro.attacks import patterns
from repro.attacks.adversary import AttackHarness
from repro.core.aqua import AquaMitigation
from repro.core.config import AquaConfig
from repro.core.quarantine import RqaExhaustedError
from repro.core.sizing import rqa_rows
from repro.dram.geometry import DramGeometry
from repro.dram.timing import DDR4_2400

from bench_common import emit, render_rows


# Large enough that the Equation-3 RQA (~41K rows at this design
# point) plus the attacker's row set both fit in the visible space.
GEOMETRY = DramGeometry(banks_per_rank=4, rows_per_bank=32 * 1024)
TRH = 32  # effective threshold 16: fast worst-case migration rate
TRIGGER = TRH // 2


def eq3_slots() -> int:
    return rqa_rows(
        TRIGGER,
        banks=GEOMETRY.banks_per_rank,
        timing=DDR4_2400,
        row_bytes=GEOMETRY.row_bytes,
    )


def run_dos(rqa_slots: int):
    harness = AttackHarness(
        AquaMitigation(
            AquaConfig(
                rowhammer_threshold=TRH,
                geometry=GEOMETRY,
                rqa_slots=rqa_slots,
                # Full Graphene provisioning: the attacker uses more
                # distinct rows than a truncated tracker could hold,
                # and spill-induced spurious migrations would distort
                # the migration count being validated.
                tracker_entries_per_bank=None,
            )
        ),
        rowhammer_threshold=TRH,
        geometry=GEOMETRY,
    )
    rows_per_bank = eq3_slots() // GEOMETRY.banks_per_rank + 8
    pattern = patterns.dos_pattern(
        harness.mapper,
        threshold=TRIGGER,
        rows_per_bank_used=min(rows_per_bank, GEOMETRY.rows_per_bank - 8),
    )
    spacing = DDR4_2400.trc_ns / GEOMETRY.banks_per_rank
    report = harness.run(pattern, spacing_ns=spacing)
    return harness, report


def test_rqa_sizing_validation(benchmark):
    slots = eq3_slots()

    def run():
        harness, report = run_dos(rqa_slots=slots)
        exhausted = False
        try:
            run_dos(rqa_slots=slots // 2)
        except RqaExhaustedError:
            exhausted = True
        return harness, report, exhausted

    harness, report, exhausted = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    migrations_first_window = harness.scheme.stats.migrations
    rows = [
        ("Equation 3 size", f"{slots:,} slots",
         f"{migrations_first_window:,} migrations, no reuse alarm"),
        ("Half of Equation 3", f"{slots // 2:,} slots",
         "RqaExhaustedError (intra-window slot reuse)"),
    ]
    text = render_rows(("Provisioning", "RQA", "Outcome"), rows)
    text += (
        "\nThe worst-case pattern cannot out-run the Equation 3 bound: "
        "triggering costs A*tRC per\nmigration and each migration blocks "
        "the channel, so the head never laps within 64 ms.\n"
    )
    emit("rqa_sizing_validation", text)

    assert exhausted, "under-provisioned RQA must raise the alarm"
    assert not report.flips
    assert harness.invariant_holds()
    # Equation 3's time argument, observed: forcing RQA-many migrations
    # necessarily takes (at least) a full refresh window, so the head
    # cannot lap within one.
    assert migrations_first_window >= slots
    assert report.elapsed_ns > 0.95 * DDR4_2400.trefw_ns
