"""Table VII: total SRAM per rank including trackers."""

import pytest

from repro.analysis.storage import table_vii

from bench_common import emit, render_rows


PAPER_TOTALS_KB = {
    "RRS-MG": 2870,
    "AQUA-MG": 437,
    "RRS-Hydra": 2502,
    "AQUA-Hydra": 71,
}


def test_table7_sram(benchmark):
    reports = benchmark.pedantic(
        lambda: table_vii(1000), rounds=1, iterations=1
    )
    rows = []
    for report in reports:
        kb = report.as_kb()
        rows.append(
            (
                report.name,
                f"{kb['tracker_kb']:.1f} KB",
                f"{kb['mapping_kb']:.1f} KB",
                f"{kb['buffer_kb']:.0f} KB",
                f"{kb['total_kb']:.0f} KB (paper {PAPER_TOTALS_KB[report.name]})",
            )
        )
    text = render_rows(
        ("Config", "Tracker", "Mapping", "Buffers", "Total"), rows
    )
    emit("table7_sram", text)

    by_name = {r.name: r for r in reports}
    for name, paper_kb in PAPER_TOTALS_KB.items():
        assert by_name[name].total_bytes / 1024 == pytest.approx(
            paper_kb, rel=0.1
        )
    # The headline: AQUA-Hydra needs ~35x less SRAM than RRS-Hydra.
    assert (
        by_name["RRS-Hydra"].total_bytes
        / by_name["AQUA-Hydra"].total_bytes
        > 20
    )
