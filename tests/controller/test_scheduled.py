"""Scheduled controller: FR-FCFS over the full mitigation path."""


from repro.controller.scheduled import ScheduledMemoryController
from repro.core.aqua import AquaMitigation
from repro.mitigations.none import NoMitigation

from tests.conftest import SMALL_GEOMETRY, make_aqua_config


def baseline_controller(queue_capacity=32):
    return ScheduledMemoryController(
        NoMitigation(total_rows=SMALL_GEOMETRY.rows_per_rank),
        geometry=SMALL_GEOMETRY,
        queue_capacity=queue_capacity,
    )


def interleaved_rows(repeats=8):
    """Two same-bank rows alternating: pathological without reordering."""
    mapper_stride = SMALL_GEOMETRY.banks_per_rank
    row_a = 100 * mapper_stride  # bank 0
    row_b = 200 * mapper_stride  # bank 0
    rows = []
    for _ in range(repeats):
        rows.extend((row_a, row_b))
    return rows, row_a, row_b


class TestServiceOrder:
    def test_reordering_clusters_row_hits(self):
        ctrl = baseline_controller()
        rows, row_a, row_b = interleaved_rows()
        records = ctrl.run(rows)
        serviced = [record.physical_row for record in records]
        switches = sum(1 for a, b in zip(serviced, serviced[1:]) if a != b)
        # FR-FCFS batches each row's requests: one switch instead of 15.
        assert switches == 1
        assert ctrl.scheduler.row_hits_selected > 0

    def test_reordering_reduces_activations(self):
        scheduled = baseline_controller()
        rows, _, _ = interleaved_rows()
        scheduled.run(rows)
        scheduled_acts = sum(
            bank.acts_this_epoch for bank in scheduled.controller.channel.banks
        )
        fifo = baseline_controller(queue_capacity=1)
        fifo.run(rows)
        fifo_acts = sum(
            bank.acts_this_epoch for bank in fifo.controller.channel.banks
        )
        assert scheduled_acts < fifo_acts

    def test_empty_drain(self):
        ctrl = baseline_controller()
        assert ctrl.drain() == []
        assert ctrl.service_one() is None


class TestWithMitigation:
    def test_tracker_sees_fewer_activations_after_reordering(self):
        # Reordering is security-relevant: clustered service turns
        # re-references into row hits, which never reach the tracker.
        aqua = AquaMitigation(make_aqua_config())
        ctrl = ScheduledMemoryController(aqua, geometry=SMALL_GEOMETRY)
        rows, row_a, _ = interleaved_rows(repeats=20)
        ctrl.run(rows)
        # All 40 requests were serviced, and the mitigation path saw
        # every one of them (activations are counted at the bank).
        assert ctrl.controller.accesses == 40
        assert aqua.stats.accesses == 40
