"""FR-FCFS scheduler: hit-first, then oldest."""

import pytest

from repro.controller.request import MemoryRequest
from repro.controller.scheduler import FrFcfsScheduler
from repro.dram.address import AddressMapper
from repro.dram.channel import Channel
from repro.dram.geometry import DramGeometry


GEO = DramGeometry(banks_per_rank=4, rows_per_bank=1024)


@pytest.fixture
def env():
    return Channel(geometry=GEO), AddressMapper(GEO), FrFcfsScheduler()


def row(mapper, bank, bank_row):
    return mapper.encode(bank, bank_row)


class TestArbitration:
    def test_fcfs_when_no_hits(self, env):
        channel, mapper, sched = env
        a = MemoryRequest(row=row(mapper, 0, 10))
        b = MemoryRequest(row=row(mapper, 0, 20))
        sched.enqueue(a)
        sched.enqueue(b)
        assert sched.select(channel, mapper) is a

    def test_row_hit_jumps_the_queue(self, env):
        channel, mapper, sched = env
        channel.bank(0).access(20, 0.0)  # open row 20 in bank 0
        miss = MemoryRequest(row=row(mapper, 0, 10))
        hit = MemoryRequest(row=row(mapper, 0, 20))
        sched.enqueue(miss)
        sched.enqueue(hit)
        assert sched.select(channel, mapper) is hit
        assert sched.row_hits_selected == 1
        assert sched.select(channel, mapper) is miss

    def test_oldest_hit_wins_among_hits(self, env):
        channel, mapper, sched = env
        channel.bank(0).access(20, 0.0)
        first_hit = MemoryRequest(row=row(mapper, 0, 20))
        second_hit = MemoryRequest(row=row(mapper, 0, 20), is_write=True)
        sched.enqueue(second_hit)  # arrives first
        sched.enqueue(first_hit)
        assert sched.select(channel, mapper) is second_hit

    def test_empty_queue_returns_none(self, env):
        channel, mapper, sched = env
        assert sched.select(channel, mapper) is None


class TestDrain:
    def test_drain_clusters_same_row_requests(self, env):
        channel, mapper, sched = env
        # Interleaved arrivals to two rows of one bank: FR-FCFS
        # services them as two clustered bursts (one row switch), not
        # four alternations.
        r1, r2 = row(mapper, 0, 10), row(mapper, 0, 30)
        for target in (r1, r2, r1, r2):
            sched.enqueue(MemoryRequest(row=target))
        order = [req.row for req in sched.drain_order(channel, mapper)]
        assert order == [r1, r1, r2, r2]
        switches = sum(
            1 for a, b in zip(order, order[1:]) if a != b
        )
        assert switches == 1


class TestCapacity:
    def test_full_queue_rejects(self):
        sched = FrFcfsScheduler(capacity=1)
        sched.enqueue(MemoryRequest(row=0))
        assert sched.full
        with pytest.raises(RuntimeError):
            sched.enqueue(MemoryRequest(row=1))

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            FrFcfsScheduler(capacity=0)
