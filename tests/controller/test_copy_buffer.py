"""Copy-buffer: single-buffer two-phase migration protocol."""

import pytest

from repro.controller.copy_buffer import CopyBuffer


class TestProtocol:
    def test_load_store_round_trip(self):
        buffer = CopyBuffer()
        buffer.load(42, "content")
        row, content = buffer.store()
        assert (row, content) == (42, "content")
        assert not buffer.busy

    def test_double_load_faults(self):
        buffer = CopyBuffer()
        buffer.load(1)
        with pytest.raises(RuntimeError):
            buffer.load(2)

    def test_store_empty_faults(self):
        with pytest.raises(RuntimeError):
            CopyBuffer().store()

    def test_counters(self):
        buffer = CopyBuffer()
        for row in range(3):
            buffer.load(row)
            buffer.store()
        assert buffer.loads == 3
        assert buffer.stores == 3

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            CopyBuffer(row_bytes=0)
