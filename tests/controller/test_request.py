"""Memory request validation."""

import pytest

from repro.controller.request import MemoryRequest


class TestValidation:
    def test_fields(self):
        req = MemoryRequest(row=5, is_write=True, issue_ns=10.0)
        assert req.row == 5
        assert req.is_write

    def test_negative_row_rejected(self):
        with pytest.raises(ValueError):
            MemoryRequest(row=-1)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            MemoryRequest(row=0, issue_ns=-1.0)

    def test_frozen(self):
        req = MemoryRequest(row=5)
        with pytest.raises(Exception):
            req.row = 6
