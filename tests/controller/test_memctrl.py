"""Timed memory controller: end-to-end request path of Fig. 4."""

import pytest

from repro.analysis.security import ActivationLedger, DisturbanceOracle
from repro.controller.memctrl import MemoryController
from repro.core.aqua import AquaMitigation
from repro.dram.address import AddressMapper
from repro.mitigations.none import NoMitigation
from repro.mitigations.victim_refresh import VictimRefresh

from tests.conftest import SMALL_GEOMETRY, make_aqua_config


def make_controller(scheme=None, **kwargs):
    if scheme is None:
        scheme = NoMitigation(total_rows=SMALL_GEOMETRY.rows_per_rank)
    return MemoryController(scheme, geometry=SMALL_GEOMETRY, **kwargs)


class TestDemandPath:
    def test_access_completes_with_latency(self):
        ctrl = make_controller()
        record = ctrl.access(100, 0.0)
        assert record.physical_row == 100
        assert record.latency_ns > 0

    def test_row_buffer_hit_is_faster(self):
        ctrl = make_controller()
        miss = ctrl.access(100, 0.0)
        hit = ctrl.access(100, 1000.0)
        assert hit.latency_ns < miss.latency_ns

    def test_accesses_counted(self):
        ctrl = make_controller()
        ctrl.access(1, 0.0)
        ctrl.access(2, 0.0)
        assert ctrl.accesses == 2


class TestMigrationBlocksChannel:
    def test_migration_delays_completion(self):
        aqua = AquaMitigation(make_aqua_config())
        ctrl = make_controller(aqua)
        # Trigger a quarantine: its 1.37us occupies the channel before
        # the demand access proceeds.
        record = None
        for i in range(32):
            record = ctrl.access(100, i * 50.0)
        assert record.result.migrated
        # 1.37 us migration plus the small table-update latency.
        assert ctrl.channel.migration_busy_ns == pytest.approx(1370.0, abs=5)
        # The triggering access issues at t=31*50 and completes only
        # after the migration's channel time.
        assert record.complete_ns > 31 * 50.0 + 1370.0 - 1e-6


class TestSecurityInstrumentation:
    def test_ledger_sees_demand_and_migration_rows(self):
        ledger = ActivationLedger()
        aqua = AquaMitigation(make_aqua_config())
        ctrl = make_controller(aqua, ledger=ledger)
        for i in range(32):
            ctrl.access(100, i * 50.0)
        assert ledger.peak(100) > 0
        assert ledger.peak(aqua.rqa_base) > 0  # migration write observed

    def test_oracle_sees_refreshes(self):
        mapper = AddressMapper(SMALL_GEOMETRY)
        oracle = DisturbanceOracle(mapper.neighbors, rowhammer_threshold=1000)
        vr = VictimRefresh(
            rowhammer_threshold=64,
            geometry=SMALL_GEOMETRY,
            tracker_entries_per_bank=64,
        )
        ctrl = make_controller(vr, oracle=oracle)
        aggressor = mapper.encode(1, 100)
        victim = mapper.encode(1, 101)
        far = mapper.encode(1, 102)
        for i in range(32):
            ctrl.access(aggressor, i * 50.0)
        # The victim was refreshed (disturbance reset), but that refresh
        # disturbed the row at distance 2.
        assert oracle.disturbance(victim) == 0
        assert oracle.disturbance(far) >= 1


class TestHammerHelper:
    def test_hammer_advances_time(self):
        ctrl = make_controller()
        finish = ctrl.hammer([1, 2, 3, 4], start_ns=0.0)
        assert finish >= 4 * 45.0
