"""The paper's security results, as executable experiments.

* An unprotected system flips bits under classic Rowhammer.
* Victim refresh stops classic patterns but **fails under Half-Double**
  (Sec. I, Table IV) -- the mitigation's own refreshes hammer rows at
  distance 2.
* AQUA upholds its invariant -- *no physical row receives T_RH
  activations in any 64 ms window* (Sec. VI-A) -- under every pattern,
  and the disturbance oracle predicts no flips.
"""

import pytest

from repro.attacks import patterns
from repro.attacks.adversary import AttackHarness
from repro.core.aqua import AquaMitigation
from repro.dram.refresh import EPOCH_NS
from repro.mitigations.none import NoMitigation
from repro.mitigations.victim_refresh import VictimRefresh

from tests.conftest import SMALL_GEOMETRY, make_aqua_config


TRH = 128
TRIGGER = TRH // 2  # 64


def make_harness(scheme):
    return AttackHarness(scheme, rowhammer_threshold=TRH, geometry=SMALL_GEOMETRY)


def baseline_harness():
    return make_harness(NoMitigation(total_rows=SMALL_GEOMETRY.rows_per_rank))


def victim_refresh_harness():
    return make_harness(
        VictimRefresh(
            rowhammer_threshold=TRH,
            geometry=SMALL_GEOMETRY,
            tracker_entries_per_bank=64,
        )
    )


def aqua_harness():
    return make_harness(
        AquaMitigation(
            make_aqua_config(rowhammer_threshold=TRH, rqa_slots=512)
        )
    )


class TestUnprotectedBaseline:
    def test_single_sided_flips(self):
        harness = baseline_harness()
        pattern = patterns.single_sided(
            harness.mapper, bank=1, bank_row=100, count=TRH + 10
        )
        report = harness.run(pattern)
        assert report.succeeded
        flipped = {flip.row for flip in report.flips}
        assert harness.mapper.encode(1, 99) in flipped
        assert harness.mapper.encode(1, 101) in flipped

    def test_double_sided_flips_victim(self):
        harness = baseline_harness()
        pattern = patterns.double_sided(
            harness.mapper, bank=1, victim_bank_row=100, pairs=TRH
        )
        report = harness.run(pattern)
        victim = harness.mapper.encode(1, 100)
        assert victim in {flip.row for flip in report.flips}

    def test_invariant_violated(self):
        harness = baseline_harness()
        pattern = patterns.single_sided(harness.mapper, 1, 100, TRH + 10)
        harness.run(pattern)
        assert not harness.invariant_holds()


class TestVictimRefresh:
    def test_stops_classic_single_sided(self):
        harness = victim_refresh_harness()
        pattern = patterns.single_sided(harness.mapper, 1, 100, 3000)
        report = harness.run(pattern)
        assert not report.succeeded

    def test_stops_classic_double_sided(self):
        harness = victim_refresh_harness()
        pattern = patterns.double_sided(harness.mapper, 1, 100, pairs=1500)
        report = harness.run(pattern)
        assert not report.succeeded

    def test_fails_under_half_double(self):
        # The headline motivation (Fig. 1a): hammering A provokes
        # refreshes of A+1, which -- combined with sub-threshold direct
        # hammering of A+1 -- flip A+2.
        harness = victim_refresh_harness()
        pattern = patterns.half_double(
            harness.mapper,
            bank=1,
            far_aggressor_bank_row=100,
            far_hammers=100 * TRIGGER,  # 100 victim refreshes of A+1
            near_hammers_per_epoch=TRIGGER - 1,
        )
        report = harness.run(pattern)
        assert report.succeeded
        distance_two = harness.mapper.encode(1, 102)
        assert distance_two in {flip.row for flip in report.flips}


class TestAquaInvariant:
    @pytest.mark.parametrize(
        "pattern_name",
        ["single", "double", "many", "half_double"],
    )
    def test_no_flips_and_invariant_holds(self, pattern_name):
        harness = aqua_harness()
        mapper = harness.mapper
        if pattern_name == "single":
            pattern = patterns.single_sided(mapper, 1, 100, 3000)
        elif pattern_name == "double":
            pattern = patterns.double_sided(mapper, 1, 100, pairs=1500)
        elif pattern_name == "many":
            pattern = patterns.many_sided(
                mapper, 1, 100, aggressors=8, rounds=400
            )
        else:
            pattern = patterns.half_double(
                mapper,
                1,
                100,
                far_hammers=100 * TRIGGER,
                near_hammers_per_epoch=TRIGGER - 1,
            )
        report = harness.run(pattern)
        assert not report.succeeded
        assert harness.invariant_holds()
        assert report.migrations > 0

    def test_reset_straddling_stays_below_trh(self):
        # Bursts just before and after the ART reset: each side stays
        # under the trigger, and the halved effective threshold keeps
        # the 64 ms total below T_RH (Sec. IV-B).
        harness = aqua_harness()
        pattern = patterns.reset_straddling(
            harness.mapper, 1, 100, per_side=TRIGGER - 1
        )
        start = EPOCH_NS - (TRIGGER - 1) * 45.0 - 10.0
        report = harness.run(pattern, start_ns=start)
        assert not report.succeeded
        assert report.peak_row_activations < TRH

    def test_quarantined_row_keeps_migrating(self):
        # Property P3: the quarantine location itself is tracked, so
        # sustained hammering forces intra-RQA migrations, and no RQA
        # row accumulates T_RH activations.
        harness = aqua_harness()
        pattern = patterns.single_sided(harness.mapper, 1, 100, 3000)
        report = harness.run(pattern)
        scheme = harness.scheme
        assert scheme.internal_migrations >= 1
        assert harness.invariant_holds()
