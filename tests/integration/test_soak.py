"""Long-run soak: steady-state behaviour over many refresh windows.

The performance sweeps simulate 2 epochs; these tests run a hot
workload for 8 and check the properties that only emerge at steady
state: RQA occupancy stabilises (lazy drain keeps up), no exhaustion
alarm, migrations per epoch stay flat, and the mapping stays
consistent throughout.
"""


from repro.core.aqua import AquaMitigation
from repro.dram.refresh import EPOCH_NS
from repro.sim.system import SystemSimulator
from repro.workloads.spec import SyntheticWorkload
from repro.workloads.table2 import WorkloadSpec

from tests.conftest import SMALL_GEOMETRY, make_aqua_config


def hot_workload():
    """A compact lbm-like workload fitted to the small test geometry."""
    spec = WorkloadSpec("soak", 8.0, 48, 24, 8)
    return SyntheticWorkload(
        spec,
        geometry=SMALL_GEOMETRY,
        max_background_acts=2000,
    )


class TestSteadyState:
    def test_eight_epochs_without_alarm(self):
        aqua = AquaMitigation(
            make_aqua_config(rowhammer_threshold=1000, rqa_slots=96)
        )
        result = SystemSimulator(aqua).run(hot_workload(), epochs=8)
        assert result.epochs == 8
        # ~24+ migrations per epoch into a 96-slot RQA: the head wraps
        # roughly every 3-4 epochs and lazy drain must keep up.
        assert result.evictions > 0
        assert aqua.rqa.occupancy() <= 96

    def test_migration_rate_is_flat_across_epochs(self):
        aqua = AquaMitigation(
            make_aqua_config(rowhammer_threshold=1000, rqa_slots=96)
        )
        target = hot_workload()
        per_epoch = []
        previous = 0
        simulator = SystemSimulator(aqua)
        for epoch in range(6):
            trace = target.epoch_trace(epoch)
            now = epoch * EPOCH_NS
            dt = EPOCH_NS / (trace.total_activations + 1)
            for row, count in trace.chunks():
                aqua.access_batch(row, count, now)
                now += count * dt
            per_epoch.append(aqua.stats.migrations - previous)
            previous = aqua.stats.migrations
        # Every epoch quarantines the workload's hot rows afresh.
        assert min(per_epoch) > 0
        assert max(per_epoch) <= 3 * min(per_epoch)

    def test_mapping_consistent_after_soak(self):
        aqua = AquaMitigation(
            make_aqua_config(rowhammer_threshold=1000, rqa_slots=96)
        )
        SystemSimulator(aqua).run(hot_workload(), epochs=8)
        seen = set()
        for slot in range(aqua.rqa.num_slots):
            row = aqua.rqa.resident_row(slot)
            if row is None:
                continue
            assert row not in seen
            seen.add(row)
            assert aqua.locate(row) == aqua.rqa_base + slot
