"""Security property P2 (Sec. VI-A), exercised end-to-end.

A quarantined row returns to its original location only in a later
epoch, and each tracking epoch allows at most ``T_RH/2 - 1`` activations
at the original location before a mitigation -- so the original
physical row never accumulates ``T_RH`` activations in any refresh
window, even across the return.
"""

from repro.attacks.adversary import AttackHarness
from repro.core.aqua import AquaMitigation
from repro.dram.refresh import EPOCH_NS

from tests.conftest import SMALL_GEOMETRY, make_aqua_config


TRH = 128
TRIGGER = TRH // 2


class TestReturnPath:
    def test_row_returns_home_only_next_epoch(self):
        # RQA of 1 slot: the row must be drained home by the next
        # epoch's first quarantine.
        aqua = AquaMitigation(
            make_aqua_config(rowhammer_threshold=TRH, rqa_slots=1)
        )
        for _ in range(TRIGGER):
            aqua.access(100, 0.0)
        assert aqua.is_quarantined(100)
        # Still quarantined for the rest of epoch 0 (slot not reusable).
        aqua.access(100, EPOCH_NS - 1)
        assert aqua.is_quarantined(100)
        # Epoch 1: another row's quarantine evicts row 100 home.
        for _ in range(TRIGGER):
            aqua.access(200, EPOCH_NS + 1)
        assert not aqua.is_quarantined(100)

    def test_original_location_never_reaches_trh(self):
        # Worst case for the original location (the P2 argument):
        # TRIGGER activations at the end of epoch 0 (the quarantine
        # fires on the last one), the row drains home early in epoch 1,
        # and the attacker hammers it again up to TRIGGER-1 times (one
        # more would re-quarantine it).  The original physical row sees
        # at most 2*TRIGGER - 1 = T_RH - 1 activations in the window.
        harness = AttackHarness(
            AquaMitigation(
                make_aqua_config(rowhammer_threshold=TRH, rqa_slots=2)
            ),
            rowhammer_threshold=TRH,
            geometry=SMALL_GEOMETRY,
        )
        aqua = harness.scheme
        controller = harness.controller
        # End of epoch 0: trigger a quarantine of row 100 (slot 0).
        now = EPOCH_NS - TRIGGER * 50.0 - 1000.0
        for _ in range(TRIGGER):
            controller.access(100, now)
            now = max(now + 45.0, controller.channel.busy_until_ns)
        assert aqua.is_quarantined(100)
        # Early epoch 1: two quarantines wrap the 2-slot RQA; the
        # second drains row 100 home.
        now = EPOCH_NS + 10.0
        for row in (200, 300):
            for _ in range(TRIGGER):
                controller.access(row, now)
                now += 50.0
        assert not aqua.is_quarantined(100)
        # Hammer the returned row just below the trigger.
        for _ in range(TRIGGER - 1):
            controller.access(100, now)
            now += 50.0
        assert not aqua.is_quarantined(100)
        assert harness.ledger.peak(100) < TRH
        assert harness.invariant_holds()

    def test_self_slot_requarantine_is_safe(self):
        # Corner: the RQA head laps back to the very slot a hammered
        # row occupies; its re-quarantine must neither lose data nor
        # corrupt the mapping.
        aqua = AquaMitigation(
            make_aqua_config(rowhammer_threshold=TRH, rqa_slots=1)
        )
        aqua.data.write(100, "sticky")
        for _ in range(TRIGGER):
            aqua.access(100, 0.0)
        location = aqua.locate(100)
        assert location == aqua.rqa_base
        # Next epoch: keep hammering; the only slot is its own.
        for _ in range(TRIGGER):
            aqua.access(100, EPOCH_NS + 1)
        assert aqua.locate(100) == aqua.rqa_base
        assert aqua.data.read(aqua.rqa_base) == "sticky"
        assert aqua.rqa.resident_row(0) == 100
