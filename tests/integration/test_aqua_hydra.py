"""AQUA with the Hydra tracker (Appendix B): end-to-end behaviour.

AQUA is tracker-agnostic; pairing it with Hydra trades the Misra-Gries
SRAM for hybrid SRAM/DRAM counters.  The quarantine behaviour must be
identical in kind: hammered rows still migrate before T_RH.
"""


from repro.attacks import patterns
from repro.attacks.adversary import AttackHarness
from repro.core.aqua import AquaMitigation

from tests.conftest import SMALL_GEOMETRY, at_epoch, make_aqua_config


def make_hydra_aqua(trh=64, **kwargs):
    return AquaMitigation(
        make_aqua_config(rowhammer_threshold=trh, tracker="hydra", **kwargs)
    )


class TestQuarantineWithHydra:
    def test_hammered_row_quarantined(self):
        aqua = make_hydra_aqua()
        for _ in range(64):  # Hydra engages per-row counters mid-way
            aqua.access(100, 0.0)
        assert aqua.is_quarantined(100)
        assert aqua.stats.migrations >= 1

    def test_cold_rows_untouched(self):
        aqua = make_hydra_aqua()
        # One access each, spread across distinct Hydra groups (128
        # rows per group) so group counters do not alias.
        for i in range(60):
            aqua.access(200 + i * 128, 0.0)
        assert aqua.stats.migrations == 0

    def test_epoch_reset(self):
        aqua = make_hydra_aqua()
        for _ in range(20):
            aqua.access(100, at_epoch(0))
        aqua.access(100, at_epoch(1))
        assert aqua.tracker.estimate(100) <= 21


class TestSecurityWithHydra:
    def test_invariant_under_single_sided(self):
        trh = 128
        harness = AttackHarness(
            make_hydra_aqua(trh=trh, rqa_slots=512),
            rowhammer_threshold=trh,
            geometry=SMALL_GEOMETRY,
        )
        pattern = patterns.single_sided(harness.mapper, 1, 100, 3000)
        report = harness.run(pattern)
        assert not report.succeeded
        assert harness.invariant_holds()

    def test_dram_counter_traffic_is_counted(self):
        aqua = make_hydra_aqua()
        for _ in range(64):
            aqua.access(100, 0.0)
        assert aqua.tracker.rct_dram_accesses >= 1
