"""Half-Double escalation: wider refresh radii only move the problem.

Sec. I: "If rows that are a distance-of-1 and a distance-of-2 are
issued mitigating refreshes, then the Half-Double attack might even be
extended to influence rows that are a distance-of-3 away and so on."

The disturbance oracle makes this conjecture executable: with blast
radius 2, the defender's refreshes of the distance-2 row hammer the
distance-3 row, and the attacker's sub-threshold direct hammering of
the inner rows finishes the job.  Migration (AQUA) is immune because
it removes the aggressor from the neighbourhood entirely.
"""


from repro.attacks import patterns
from repro.attacks.adversary import AttackHarness
from repro.core.aqua import AquaMitigation
from repro.mitigations.victim_refresh import VictimRefresh

from tests.conftest import SMALL_GEOMETRY, make_aqua_config


TRH = 128
TRIGGER = TRH // 2


def escalated_pattern(mapper, bank=1, base=100):
    """Heavy hammering of A, sub-trigger hammering of A+1 and A+2.

    Against a radius-2 defender, refreshes of A+1 and A+2 both act as
    activations; combined with the direct sub-trigger hammering, the
    distance-3 row (A+3) accumulates disturbance past T_RH.
    """
    far = patterns.single_sided(mapper, bank, base, 100 * TRIGGER)
    near1 = patterns.single_sided(mapper, bank, base + 1, TRIGGER - 1)
    near2 = patterns.single_sided(mapper, bank, base + 2, TRIGGER - 1)
    # Interleave: far hammers with periodic near hammers.
    pattern = []
    near = [*near1, *near2]
    interval = max(1, len(far) // max(1, len(near)))
    near_iter = iter(near)
    for i, row in enumerate(far):
        pattern.append(row)
        if i % interval == interval - 1:
            try:
                pattern.append(next(near_iter))
            except StopIteration:
                pass
    return pattern


class TestRadiusTwoVictimRefresh:
    def test_distance_three_flips(self):
        scheme = VictimRefresh(
            rowhammer_threshold=TRH,
            geometry=SMALL_GEOMETRY,
            blast_radius=2,
            tracker_entries_per_bank=64,
        )
        harness = AttackHarness(
            scheme, rowhammer_threshold=TRH, geometry=SMALL_GEOMETRY
        )
        report = harness.run(escalated_pattern(harness.mapper))
        assert report.succeeded
        flipped = {flip.row for flip in report.flips}
        distance_three = harness.mapper.encode(1, 103)
        assert distance_three in flipped

    def test_radius_two_does_stop_plain_half_double(self):
        # The wider radius is not useless: the *original* distance-2
        # Half-Double is covered...
        scheme = VictimRefresh(
            rowhammer_threshold=TRH,
            geometry=SMALL_GEOMETRY,
            blast_radius=2,
            tracker_entries_per_bank=64,
        )
        harness = AttackHarness(
            scheme, rowhammer_threshold=TRH, geometry=SMALL_GEOMETRY
        )
        pattern = patterns.half_double(
            harness.mapper,
            1,
            100,
            far_hammers=100 * TRIGGER,
            near_hammers_per_epoch=TRIGGER - 1,
        )
        report = harness.run(pattern)
        distance_two = harness.mapper.encode(1, 102)
        assert distance_two not in {flip.row for flip in report.flips}


class TestAquaAgainstEscalation:
    def test_aqua_immune_to_the_escalated_pattern(self):
        scheme = AquaMitigation(
            make_aqua_config(rowhammer_threshold=TRH, rqa_slots=512)
        )
        harness = AttackHarness(
            scheme, rowhammer_threshold=TRH, geometry=SMALL_GEOMETRY
        )
        report = harness.run(escalated_pattern(harness.mapper))
        assert not report.succeeded
        assert harness.invariant_holds()
