"""Denial-of-service headroom: Sec. VI-C and the Blockhammer pathology.

AQUA's worst case: an attacker forcing a quarantine (with eviction)
every ``A`` activations in every bank keeps the channel busy, but the
slowdown is bounded at ~2.95x.  Blockhammer's worst case on a benign
conflict pattern is ~1280x at T_RH = 1K.
"""

import pytest

from repro.attacks import patterns
from repro.attacks.adversary import AttackHarness
from repro.core.aqua import AquaMitigation
from repro.mitigations.blockhammer import Blockhammer

from tests.conftest import SMALL_GEOMETRY, make_aqua_config


class TestAquaDos:
    def test_dos_slowdown_bounded_near_three_x(self):
        trh = 128
        harness = AttackHarness(
            AquaMitigation(
                make_aqua_config(rowhammer_threshold=trh, rqa_slots=2048)
            ),
            rowhammer_threshold=trh,
            geometry=SMALL_GEOMETRY,
        )
        pattern = patterns.dos_pattern(
            harness.mapper,
            threshold=trh // 2,
            rows_per_bank_used=8,
        )
        report = harness.run(pattern)
        assert report.migrations >= 8 * SMALL_GEOMETRY.banks_per_rank
        # Bounded DoS: the analytical worst case is ~2.95x; allow head
        # room for the discrete simulation.
        assert report.slowdown < 4.0
        assert not report.succeeded
        assert harness.invariant_holds()

    def test_analytical_worst_case(self):
        # Sec. VI-C arithmetic at the paper's design point: 16 banks
        # trigger every 22.5 us, each mitigation moving two rows.
        t_trigger = 500 * 45.0
        busy = 16 * 2 * 1370.0
        slowdown = (t_trigger + busy) / t_trigger
        assert slowdown == pytest.approx(2.95, abs=0.05)


class TestBlockhammerDos:
    def test_benign_conflict_pattern_heavily_throttled(self):
        bh = Blockhammer(
            rowhammer_threshold=1000,
            geometry=SMALL_GEOMETRY,
            blacklist_threshold=64,
        )
        harness = AttackHarness(
            bh, rowhammer_threshold=1000, geometry=SMALL_GEOMETRY
        )
        pattern = patterns.bank_conflict_pattern(
            harness.mapper, bank=0, bank_row=10, rounds=600
        )
        report = harness.run(pattern, spacing_ns=50.0)
        # Two orders of magnitude worse than AQUA's worst case.
        assert report.slowdown > 100.0

    def test_worst_case_factor_is_1280(self):
        assert Blockhammer(
            rowhammer_threshold=1000
        ).worst_case_slowdown() == pytest.approx(1280.0, rel=0.01)
