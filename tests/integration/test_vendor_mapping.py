"""Table IV, third row, made executable: mapping-independence.

DRAM vendors do not disclose their internal row order.  Under a
scrambled mapping, a victim-refresh defense that guesses adjacency
from controller-visible addresses refreshes the wrong rows and the
attack succeeds; AQUA never consults adjacency and is unaffected.
"""

from repro.attacks.adversary import AttackHarness
from repro.core.aqua import AquaMitigation
from repro.dram.address import AddressMapper
from repro.mitigations.victim_refresh import VictimRefresh

from tests.conftest import SMALL_GEOMETRY, make_aqua_config


TRH = 128


class TestScrambledMapping:
    def test_scramble_separates_logical_neighbors(self):
        mapper = AddressMapper(SMALL_GEOMETRY, policy="scrambled")
        row = mapper.encode(1, 100)
        assert set(mapper.neighbors(row)) != set(mapper.assumed_neighbors(row))

    def test_physical_order_round_trip(self):
        mapper = AddressMapper(SMALL_GEOMETRY, policy="scrambled")
        for bank_row in (0, 1, 2, 99, 4095):
            position = mapper.physical_order_of(bank_row)
            assert mapper.bank_row_at_physical(position) == bank_row

    def test_linear_policies_are_identity(self):
        mapper = AddressMapper(SMALL_GEOMETRY)
        assert mapper.physical_order_of(17) == 17
        assert mapper.neighbors(68) == mapper.assumed_neighbors(68)


def _attack(mapper, bank=1, base=100):
    """Double-sided hammering of a victim's *physical* neighbours.

    An attacker who has reverse-engineered the mapping (the threat
    model assumes this capability) hammers the true physical
    sandwich rows of the victim.
    """
    victim = mapper.encode(bank, base)
    above, below = mapper.neighbors(victim)
    pattern = []
    for _ in range(TRH):
        pattern.append(above)
        pattern.append(below)
    return pattern, victim


class TestVictimRefreshNeedsTheMapping:
    def _harness(self, knows_mapping):
        mapper = AddressMapper(SMALL_GEOMETRY, policy="scrambled")
        scheme = VictimRefresh(
            rowhammer_threshold=TRH,
            geometry=SMALL_GEOMETRY,
            tracker_entries_per_bank=64,
            mapper=mapper,
            knows_mapping=knows_mapping,
        )
        return AttackHarness(
            scheme,
            rowhammer_threshold=TRH,
            geometry=SMALL_GEOMETRY,
            mapping_policy="scrambled",
        )

    def test_with_vendor_mapping_classic_attack_blocked(self):
        harness = self._harness(knows_mapping=True)
        pattern, victim = _attack(harness.mapper)
        report = harness.run(pattern)
        assert victim not in {flip.row for flip in report.flips}

    def test_without_mapping_the_wrong_rows_get_refreshed(self):
        harness = self._harness(knows_mapping=False)
        pattern, victim = _attack(harness.mapper)
        report = harness.run(pattern)
        assert report.succeeded
        assert victim in {flip.row for flip in report.flips}
        # The defense did act -- it just refreshed the wrong rows.
        assert harness.scheme.stats.victim_refreshes > 0


class TestAquaIsMappingAgnostic:
    def test_aqua_unaffected_by_scrambling(self):
        harness = AttackHarness(
            AquaMitigation(
                make_aqua_config(rowhammer_threshold=TRH, rqa_slots=512)
            ),
            rowhammer_threshold=TRH,
            geometry=SMALL_GEOMETRY,
            mapping_policy="scrambled",
        )
        pattern, victim = _attack(harness.mapper)
        report = harness.run(pattern)
        assert not report.succeeded
        assert harness.invariant_holds()
