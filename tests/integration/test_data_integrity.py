"""End-to-end data integrity: reads always return the row's latest data.

The contract every row-migration scheme must uphold: no matter how many
quarantines, internal migrations, evictions, or swaps occur, an access
to logical row X reaches the physical row holding X's data.
"""

import pytest

from repro.core.aqua import AquaMitigation
from repro.mitigations.rrs import RandomizedRowSwap

from tests.conftest import SMALL_GEOMETRY, at_epoch, make_aqua_config


class TestAquaIntegrity:
    @pytest.mark.parametrize("table_mode", ["sram", "memory-mapped"])
    def test_heavy_churn_preserves_all_contents(self, table_mode):
        # Memory-mapped mode also quarantines the hammered FPT table
        # rows themselves (PTHammer defense), so it needs RQA headroom
        # beyond the 48 demand-row quarantines.
        aqua = AquaMitigation(
            make_aqua_config(table_mode=table_mode, rqa_slots=256)
        )
        rows = list(range(200, 248))
        for row in rows:
            aqua.data.write(row, f"content-{row}")
        # Quarantine 24 rows in epoch 0 and 24 more in epoch 1.
        for row in rows[:24]:
            for _ in range(32):
                aqua.access(row, at_epoch(0))
        for row in rows[24:]:
            for _ in range(32):
                aqua.access(row, at_epoch(1))
        for row in rows:
            location = aqua.locate(row)
            assert aqua.data.read(location) == f"content-{row}"

    def test_routed_access_targets_the_data(self):
        aqua = AquaMitigation(make_aqua_config())
        aqua.data.write(100, "x")
        for _ in range(32):
            result = aqua.access(100, 0.0)
        assert aqua.data.read(result.physical_row) == "x"


class TestRrsIntegrity:
    def test_swap_churn_preserves_contents(self):
        rrs = RandomizedRowSwap(
            rowhammer_threshold=60,
            geometry=SMALL_GEOMETRY,
            tracker_entries_per_bank=64,
        )
        rows = [100, 200, 300, 400]
        for row in rows:
            rrs.data.write(row, f"content-{row}")
        for _ in range(3):  # repeated re-swaps
            for row in rows:
                for _ in range(10):
                    rrs.access(row, 0.0)
        for row in rows:
            assert rrs.data.read(rrs._physical_of(row)) == f"content-{row}"
