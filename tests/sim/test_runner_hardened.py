"""Hardened sweep: timeouts, retries, failure ledger, resume equality."""

import time

import pytest

from repro.errors import RunTimeoutError
from repro.faults import FaultInjector
from repro.sim import runner
from repro.sim.checkpoint import SweepCheckpoint
from repro.workloads.spec import workload


WORKLOADS = [workload("xz"), workload("wrf")]
META = {"purpose": "test"}


def flaky_factory(failures_left):
    """A factory whose scheme run raises ``failures_left`` times."""
    state = {"left": failures_left}
    real = runner.aqua_sram(1000)

    def build(telemetry=None):
        if state["left"] > 0:
            state["left"] -= 1
            raise RuntimeError("synthetic crash")
        return real(telemetry=telemetry) if telemetry else real()

    return build


class TestRunHardened:
    def test_plain_run_matches_run_workload(self):
        target = workload("xz")
        direct = runner.run_workload(runner.aqua_sram(1000), target)
        hardened = runner.run_hardened(runner.aqua_sram(1000), target)
        assert hardened.to_dict() == direct.to_dict()

    def test_timeout_raises_run_timeout_error(self):
        def hang(telemetry=None):
            time.sleep(5.0)

        with pytest.raises(RunTimeoutError):
            runner.run_hardened(
                hang, workload("xz"), timeout_s=0.1, retries=0
            )

    def test_timeout_is_retried_as_transient(self):
        calls = {"n": 0}
        real = runner.aqua_sram(1000)

        def slow_once(telemetry=None):
            calls["n"] += 1
            if calls["n"] == 1:
                time.sleep(5.0)
            return real()

        result = runner.run_hardened(
            slow_once, workload("xz"),
            timeout_s=0.2, retries=1, backoff_s=0.01,
        )
        assert calls["n"] == 2
        assert result.workload == "xz"

    def test_non_transient_errors_propagate_immediately(self):
        factory = flaky_factory(failures_left=99)
        with pytest.raises(RuntimeError, match="synthetic crash"):
            runner.run_hardened(
                factory, workload("xz"), retries=3, backoff_s=0.01
            )


class TestRunSweep:
    def test_failures_are_ledgered_not_fatal(self):
        factories = {
            "good": runner.aqua_sram(1000),
            "bad": flaky_factory(failures_left=99),
        }
        report = runner.run_sweep(factories, workloads=WORKLOADS)
        assert not report.ok
        assert len(report.results) == 2  # both 'good' runs landed
        assert len(report.failures) == 2
        assert {f.scheme for f in report.failures} == {"bad"}
        assert all(
            "synthetic crash" in f.error for f in report.failures
        )

    def test_checkpointed_sweep_resumes_without_rerunning(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        factories = {"aqua-sram": runner.aqua_sram(1000)}
        with SweepCheckpoint.create(path, META) as checkpoint:
            runner.run_sweep(
                factories, workloads=WORKLOADS[:1], checkpoint=checkpoint
            )
        with SweepCheckpoint.resume(path, META) as checkpoint:
            statuses = []
            report = runner.run_sweep(
                factories,
                workloads=WORKLOADS,
                checkpoint=checkpoint,
                progress=lambda s, w, st: statuses.append((w, st)),
            )
        assert report.resumed == 1
        assert statuses == [("xz", "resumed"), ("wrf", "ok")]

    def test_killed_and_resumed_equals_uninterrupted(self, tmp_path):
        """The acceptance property behind ``sweep --resume``."""
        factories = {"aqua-sram": runner.aqua_sram(1000)}
        straight = str(tmp_path / "straight.jsonl")
        with SweepCheckpoint.create(straight, META) as checkpoint:
            runner.run_sweep(
                factories, workloads=WORKLOADS, checkpoint=checkpoint
            )
        interrupted = str(tmp_path / "interrupted.jsonl")
        with SweepCheckpoint.create(interrupted, META) as checkpoint:
            # "Crash" after the first workload...
            runner.run_sweep(
                factories, workloads=WORKLOADS[:1], checkpoint=checkpoint
            )
        # ...then resume with the full list.
        with SweepCheckpoint.resume(interrupted, META) as checkpoint:
            runner.run_sweep(
                factories, workloads=WORKLOADS, checkpoint=checkpoint
            )
        assert open(interrupted).read() == open(straight).read()


class TestFaultScheduleReproducibility:
    def test_same_seed_byte_identical_checkpoint(self, tmp_path):
        """Same seed -> same fault schedule -> byte-identical results."""
        paths = []
        for name in ("a.jsonl", "b.jsonl"):
            path = str(tmp_path / name)
            paths.append(path)
            factories = {
                "aqua-sram": runner.aqua_sram(
                    64, rqa_full_policy="throttle", rqa_slots=64,
                    tracker_entries_per_bank=64,
                )
            }
            with SweepCheckpoint.create(path, META) as checkpoint:
                runner.run_sweep(
                    factories,
                    workloads=WORKLOADS,
                    checkpoint=checkpoint,
                    injector_factory=lambda s, w: FaultInjector(
                        seed=7, fault_rate=1e-3, scope=f"{s}/{w}"
                    ),
                )
        assert open(paths[0]).read() == open(paths[1]).read()

    def test_different_seed_changes_the_schedule(self):
        def run(seed):
            injectors = {}

            def factory(s, w):
                injector = FaultInjector(
                    seed=seed, fault_rate=5e-3, scope=f"{s}/{w}"
                )
                injectors[(s, w)] = injector
                return injector

            runner.run_sweep(
                {"aqua-sram": runner.aqua_sram(
                    64, rqa_full_policy="throttle", rqa_slots=64,
                    tracker_entries_per_bank=64,
                )},
                workloads=WORKLOADS[:1],
                injector_factory=factory,
            )
            return {
                key: injector.schedule_digest()
                for key, injector in injectors.items()
            }

        first, second = run(7), run(8)
        assert set(first) == set(second)
        assert first != second
