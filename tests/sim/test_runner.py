"""Experiment runner: factories, suites, aggregates."""

import pytest

from repro.sim import runner
from repro.sim.runner import (
    all_workloads,
    gmean_slowdown,
    average_migrations_per_epoch,
    run_suite,
    run_workload,
)
from repro.workloads.spec import workload


class TestFactories:
    def test_aqua_factories_build_fresh_instances(self):
        factory = runner.aqua_sram(1000)
        a, b = factory(), factory()
        assert a is not b
        assert a.config.table_mode == "sram"
        assert runner.aqua_memory_mapped(1000)().config.table_mode == (
            "memory-mapped"
        )

    def test_threshold_plumbs_through(self):
        assert runner.rrs(2000)().swap_threshold == 333
        assert runner.blockhammer(2000)().quota == 1000
        assert runner.victim_refresh(2000)().threshold == 1000

    def test_baseline_factory(self):
        assert runner.baseline()().name == "baseline"


class TestSuite:
    def test_all_workloads_is_34(self):
        assert len(all_workloads()) == 34
        assert len(all_workloads(spec_only=True)) == 18

    def test_run_workload_cold_spec(self):
        result = run_workload(runner.aqua_sram(1000), workload("wrf"), epochs=1)
        assert result.workload == "wrf"
        assert result.migrations == 0
        assert result.slowdown == pytest.approx(1.0, abs=1e-6)

    def test_run_suite_and_aggregates(self):
        targets = [workload("wrf"), workload("xz")]
        results = run_suite(runner.aqua_sram(1000), targets, epochs=1)
        assert set(results) == {"wrf", "xz"}
        assert gmean_slowdown(results) >= 1.0
        assert average_migrations_per_epoch(results) >= 0.0

    def test_empty_results_rejected(self):
        with pytest.raises(ValueError):
            average_migrations_per_epoch({})
