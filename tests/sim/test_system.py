"""System simulator: epoch loop and result assembly."""

import numpy as np
import pytest

from repro.core.aqua import AquaMitigation
from repro.mitigations.none import NoMitigation
from repro.sim.system import SystemSimulator
from repro.workloads.trace import EpochTrace

from tests.conftest import SMALL_GEOMETRY, make_aqua_config


class ToyWorkload:
    """Two hot rows crossing the trigger plus some cold traffic."""

    name = "toy"
    memory_boundness = 0.5

    def epoch_trace(self, epoch: int) -> EpochTrace:
        rows = np.array([10, 11, 10, 11, 50, 51], dtype=np.int64)
        counts = np.array([20, 20, 20, 20, 2, 2], dtype=np.int64)
        return EpochTrace(rows=rows, counts=counts)


class TestRun:
    def test_baseline_has_no_slowdown(self):
        scheme = NoMitigation(total_rows=SMALL_GEOMETRY.rows_per_rank)
        result = SystemSimulator(scheme).run(ToyWorkload(), epochs=1)
        assert result.slowdown == 1.0
        assert result.activations == 84
        assert result.migrations == 0

    def test_aqua_quarantines_hot_rows(self):
        aqua = AquaMitigation(make_aqua_config())  # trigger at 32
        result = SystemSimulator(aqua).run(ToyWorkload(), epochs=1)
        assert result.migrations == 2  # rows 10 and 11 reach 40 > 32
        assert result.slowdown > 1.0
        assert result.busy_ns == pytest.approx(2 * 1370.0, rel=0.05)

    def test_migrations_per_epoch_normalised(self):
        aqua = AquaMitigation(make_aqua_config())
        result = SystemSimulator(aqua).run(ToyWorkload(), epochs=2)
        assert result.epochs == 2
        assert result.migrations_per_epoch == result.migrations / 2

    def test_epochs_reset_tracker_between_windows(self):
        aqua = AquaMitigation(make_aqua_config())
        result = SystemSimulator(aqua).run(ToyWorkload(), epochs=2)
        # Each epoch re-triggers both hot rows independently.
        assert result.migrations == 4

    def test_lookup_breakdown_only_for_aqua(self):
        aqua = AquaMitigation(make_aqua_config(table_mode="memory-mapped"))
        result = SystemSimulator(aqua).run(ToyWorkload(), epochs=1)
        assert result.lookup_breakdown is not None
        baseline = NoMitigation(total_rows=SMALL_GEOMETRY.rows_per_rank)
        result = SystemSimulator(baseline).run(ToyWorkload(), epochs=1)
        assert result.lookup_breakdown is None

    def test_invalid_epochs(self):
        scheme = NoMitigation(total_rows=SMALL_GEOMETRY.rows_per_rank)
        with pytest.raises(ValueError):
            SystemSimulator(scheme).run(ToyWorkload(), epochs=0)

    def test_summary_and_properties(self):
        scheme = NoMitigation(total_rows=SMALL_GEOMETRY.rows_per_rank)
        result = SystemSimulator(scheme).run(ToyWorkload(), epochs=1)
        assert "toy" in result.summary()
        assert result.normalized_performance == pytest.approx(1.0)
        assert result.percent_slowdown == pytest.approx(0.0)
