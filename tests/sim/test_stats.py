"""WorkloadResult arithmetic."""

import pytest

from repro.sim.stats import WorkloadResult


def make_result(**overrides):
    fields = dict(
        workload="toy",
        scheme="aqua",
        epochs=2,
        activations=1000,
        migrations=10,
        row_moves=12,
        evictions=2,
        busy_ns=1e6,
        table_dram_ns=0.0,
        peak_stall_ns=0.0,
        slowdown=1.25,
        mem_fraction=0.5,
    )
    fields.update(overrides)
    return WorkloadResult(**fields)


class TestDerived:
    def test_migrations_per_epoch(self):
        assert make_result().migrations_per_epoch == 5.0
        assert make_result(epochs=0).migrations_per_epoch == 0.0

    def test_normalized_performance(self):
        assert make_result().normalized_performance == pytest.approx(0.8)

    def test_percent_slowdown(self):
        assert make_result().percent_slowdown == pytest.approx(25.0)

    def test_summary_contains_key_facts(self):
        text = make_result().summary()
        assert "toy" in text
        assert "aqua" in text
        assert "25.00%" in text
