"""SweepCheckpoint: crash-safe journaling and resume semantics."""

import json

import pytest

from repro.errors import ConfigError
from repro.sim.checkpoint import SweepCheckpoint
from repro.sim.stats import WorkloadResult


META = {"scheme": "aqua-sram", "trh": 1000, "epochs": 2, "seed": 0}


def result_for(workload: str, slowdown: float = 1.01) -> WorkloadResult:
    return WorkloadResult(
        workload=workload,
        scheme="aqua",
        epochs=2,
        activations=1000,
        migrations=3,
        row_moves=3,
        evictions=0,
        busy_ns=10.0,
        table_dram_ns=0.0,
        peak_stall_ns=0.0,
        slowdown=slowdown,
        mem_fraction=0.25,
    )


class TestCreateAndRecord:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        with SweepCheckpoint.create(path, META) as checkpoint:
            checkpoint.record("aqua-sram", "xz", result_for("xz"))
            checkpoint.record("aqua-sram", "gcc", result_for("gcc", 1.05))
        resumed = SweepCheckpoint.resume(path, META)
        assert resumed.has("aqua-sram", "xz")
        assert resumed.has("aqua-sram", "gcc")
        assert not resumed.has("aqua-sram", "lbm")
        assert resumed.completed[("aqua-sram", "gcc")].slowdown == 1.05
        assert resumed.skipped_lines == 0
        resumed.close()

    def test_records_are_durable_line_by_line(self, tmp_path):
        """Every record is readable the moment record() returns."""
        path = str(tmp_path / "ck.jsonl")
        checkpoint = SweepCheckpoint.create(path, META)
        checkpoint.record("aqua-sram", "xz", result_for("xz"))
        # Deliberately NOT closed: simulates a kill right after a run.
        lines = open(path).read().splitlines()
        assert len(lines) == 2  # header + one result
        assert json.loads(lines[1])["workload"] == "xz"
        checkpoint.close()

    def test_resume_then_append(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        with SweepCheckpoint.create(path, META) as checkpoint:
            checkpoint.record("aqua-sram", "xz", result_for("xz"))
        with SweepCheckpoint.resume(path, META) as checkpoint:
            checkpoint.record("aqua-sram", "gcc", result_for("gcc"))
        final = SweepCheckpoint.resume(path)
        assert set(final.completed) == {
            ("aqua-sram", "xz"), ("aqua-sram", "gcc")
        }
        final.close()


class TestCrashTolerance:
    def test_truncated_trailing_line_is_skipped(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        with SweepCheckpoint.create(path, META) as checkpoint:
            checkpoint.record("aqua-sram", "xz", result_for("xz"))
        with open(path, "a") as fh:
            fh.write('{"record": "result", "scheme": "aqua-sr')  # killed
        resumed = SweepCheckpoint.resume(path, META)
        assert resumed.has("aqua-sram", "xz")
        assert resumed.skipped_lines == 1
        resumed.close()

    def test_append_after_torn_tail_does_not_corrupt(self, tmp_path):
        # Resume must truncate the torn fragment, not just skip it:
        # otherwise the first record appended after restart glues onto
        # the fragment and both are lost on the following resume.
        path = str(tmp_path / "ck.jsonl")
        with SweepCheckpoint.create(path, META) as checkpoint:
            checkpoint.record("aqua-sram", "xz", result_for("xz"))
        with open(path, "a") as fh:
            fh.write('{"record": "result", "scheme": "aqua-sr')  # killed
        with SweepCheckpoint.resume(path, META) as checkpoint:
            assert checkpoint.skipped_lines == 1
            checkpoint.record("aqua-sram", "gcc", result_for("gcc"))
        final = SweepCheckpoint.resume(path, META)
        assert final.skipped_lines == 0  # file is whole again
        assert set(final.completed) == {
            ("aqua-sram", "xz"), ("aqua-sram", "gcc")
        }
        final.close()

    def test_non_finite_result_degrades_to_unjournaled(self, tmp_path):
        # canonical_dumps rejects NaN/Infinity; a result carrying one
        # must not abort the sweep mid-run -- it stays in memory (the
        # current process completes) and simply re-runs on resume.
        path = str(tmp_path / "ck.jsonl")
        with SweepCheckpoint.create(path, META) as checkpoint:
            checkpoint.record(
                "aqua-sram", "xz", result_for("xz", slowdown=float("nan"))
            )
            assert checkpoint.has("aqua-sram", "xz")
            assert checkpoint.skipped_writes == 1
            checkpoint.record("aqua-sram", "gcc", result_for("gcc"))
        resumed = SweepCheckpoint.resume(path, META)
        assert not resumed.has("aqua-sram", "xz")  # degraded, re-runs
        assert resumed.has("aqua-sram", "gcc")
        assert resumed.skipped_lines == 0  # journal itself stayed clean
        resumed.close()

    def test_missing_file_raises_config_error(self, tmp_path):
        with pytest.raises(ConfigError, match="does not exist"):
            SweepCheckpoint.resume(str(tmp_path / "absent.jsonl"))

    def test_file_without_header_rejected(self, tmp_path):
        path = tmp_path / "junk.jsonl"
        path.write_text('{"record": "result"}\n')
        with pytest.raises(ConfigError, match="no header"):
            SweepCheckpoint.resume(str(path))


class TestHeaderValidation:
    def test_mismatched_meta_rejected_with_detail(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        SweepCheckpoint.create(path, META).close()
        other = dict(META, trh=2000)
        with pytest.raises(ConfigError, match="trh"):
            SweepCheckpoint.resume(path, other)

    def test_matching_meta_accepted(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        SweepCheckpoint.create(path, META).close()
        SweepCheckpoint.resume(path, dict(META)).close()

    def test_unknown_version_rejected(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        path.write_text(
            '{"record": "header", "version": 99, "meta": {}}\n'
        )
        with pytest.raises(ConfigError, match="version"):
            SweepCheckpoint.resume(str(path))
