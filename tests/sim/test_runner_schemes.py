"""Suite-path coverage for the remaining scheme factories.

The heavy sweeps exercise AQUA and RRS; these tests run the victim
refresh and Blockhammer factories through the same simulator path on
single workloads, so every Table VI column has an end-to-end test.
"""

import pytest

from repro.sim import runner
from repro.sim.runner import run_workload
from repro.workloads.spec import workload


class TestVictimRefreshSuitePath:
    def test_hot_workload_incurs_refresh_busy_time(self):
        result = run_workload(
            runner.victim_refresh(1000), workload("roms"), epochs=1
        )
        assert result.migrations > 0
        assert result.busy_ns > 0
        assert result.slowdown > 1.0

    def test_cold_workload_unaffected(self):
        result = run_workload(
            runner.victim_refresh(1000), workload("povray"), epochs=1
        )
        assert result.migrations == 0
        assert result.slowdown == pytest.approx(1.0)


class TestBlockhammerSuitePath:
    def test_hot_workload_pays_throttling(self):
        result = run_workload(
            runner.blockhammer(1000), workload("lbm"), epochs=1
        )
        # lbm's 500+ rows exceed the blacklist threshold and then the
        # per-row quota spacing stretches their streams.
        assert result.peak_stall_ns > 0
        assert result.slowdown > 1.0

    def test_no_migrations_ever(self):
        result = run_workload(
            runner.blockhammer(1000), workload("lbm"), epochs=1
        )
        assert result.migrations == 0
        assert result.busy_ns == 0.0

    def test_cold_workload_unaffected(self):
        result = run_workload(
            runner.blockhammer(1000), workload("wrf"), epochs=1
        )
        assert result.peak_stall_ns == 0.0
        assert result.slowdown == pytest.approx(1.0)
