"""CPU slowdown model."""

import pytest

from repro.sim.cpu import gmean, normalized_performance, slowdown_from_busy


class TestSlowdown:
    def test_no_busy_means_no_slowdown(self):
        assert slowdown_from_busy(0.8, 0.0, 64e6) == 1.0

    def test_scales_with_memory_boundness(self):
        heavy = slowdown_from_busy(0.9, 6.4e6, 64e6)
        light = slowdown_from_busy(0.1, 6.4e6, 64e6)
        assert heavy > light > 1.0

    def test_ten_percent_busy_fully_bound(self):
        assert slowdown_from_busy(1.0, 6.4e6, 64e6) == pytest.approx(1.1)

    def test_stall_adds_directly(self):
        base = slowdown_from_busy(0.5, 1e6, 64e6)
        stalled = slowdown_from_busy(0.5, 1e6, 64e6, peak_stall_ns=1e6)
        assert stalled > base

    def test_validation(self):
        with pytest.raises(ValueError):
            slowdown_from_busy(1.5, 0.0, 64e6)
        with pytest.raises(ValueError):
            slowdown_from_busy(0.5, 0.0, 0.0)


class TestAggregates:
    def test_normalized_performance(self):
        assert normalized_performance(1.25) == pytest.approx(0.8)
        with pytest.raises(ValueError):
            normalized_performance(0.0)

    def test_gmean(self):
        assert gmean([1.0, 4.0]) == pytest.approx(2.0)
        assert gmean([2.0]) == pytest.approx(2.0)

    def test_gmean_validation(self):
        with pytest.raises(ValueError):
            gmean([])
        with pytest.raises(ValueError):
            gmean([1.0, 0.0])
