"""JobQueue: priority order, backpressure, recovery bypass."""

import asyncio

import pytest

from repro.errors import QueueFullError
from repro.service.jobs import Job, JobSpec
from repro.service.queue import JobQueue
from repro.telemetry import Telemetry


def job(seq: int, priority: int = 10) -> Job:
    return Job.create(
        seq,
        JobSpec(
            scheme="aqua-sram", workloads=("xz",), epochs=1, seed=seq,
            priority=priority,
        ),
    )


def drain(queue: JobQueue) -> list:
    async def body():
        out = []
        while len(queue):
            out.append(await queue.get())
        return out

    return asyncio.run(body())


class TestOrdering:
    def test_lower_priority_number_dequeues_first(self):
        queue = JobQueue()
        bulk = job(1, priority=20)
        urgent = job(2, priority=0)
        default = job(3, priority=10)
        for item in (bulk, urgent, default):
            queue.put_nowait(item)
        assert drain(queue) == [urgent, default, bulk]

    def test_fifo_within_a_priority_level(self):
        queue = JobQueue()
        first, second, third = job(1), job(2), job(3)
        for item in (first, second, third):
            queue.put_nowait(item)
        assert drain(queue) == [first, second, third]

    def test_snapshot_lists_dequeue_order_without_draining(self):
        queue = JobQueue()
        late = job(5, priority=10)
        soon = job(6, priority=1)
        queue.put_nowait(late)
        queue.put_nowait(soon)
        assert queue.snapshot() == [soon, late]
        assert queue.depth == 2


class TestBackpressure:
    def test_put_past_max_depth_raises_clean_error(self):
        telemetry = Telemetry()
        queue = JobQueue(max_depth=2, telemetry=telemetry)
        queue.put_nowait(job(1))
        queue.put_nowait(job(2))
        with pytest.raises(QueueFullError, match="full"):
            queue.put_nowait(job(3))
        snapshot = telemetry.registry.snapshot()
        assert snapshot["service_queue_rejections_total"] == 1.0
        assert queue.depth == 2  # the rejected job never entered

    def test_restore_bypasses_the_depth_bound(self):
        # Crash recovery must never drop a previously accepted job,
        # even if max_depth shrank between runs.
        queue = JobQueue(max_depth=1)
        queue.put_nowait(job(1))
        queue.restore(job(2))
        assert queue.depth == 2

    def test_depth_gauge_tracks_put_and_get(self):
        telemetry = Telemetry()
        queue = JobQueue(telemetry=telemetry)
        queue.put_nowait(job(1))
        assert telemetry.registry.snapshot()["service_queue_depth"] == 1.0
        drain(queue)
        assert telemetry.registry.snapshot()["service_queue_depth"] == 0.0

    def test_zero_max_depth_rejected(self):
        with pytest.raises(ValueError, match="max_depth"):
            JobQueue(max_depth=0)


class TestAsyncWakeup:
    def test_get_blocks_until_a_job_arrives(self):
        queue = JobQueue()
        arrived = job(9)

        async def body():
            getter = asyncio.ensure_future(queue.get())
            await asyncio.sleep(0)  # let the getter start waiting
            assert not getter.done()
            queue.put_nowait(arrived)
            return await asyncio.wait_for(getter, timeout=5.0)

        assert asyncio.run(body()) is arrived
