"""ResultCache: content addressing, atomicity, hit/miss accounting."""

import os

import pytest

from repro.errors import ConfigError
from repro.service.cache import ResultCache
from repro.telemetry import Telemetry

KEY = "a" * 64
OTHER = "b" * 64


class TestRoundtrip:
    def test_put_then_get_returns_identical_text(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        text = '{"results": {}}\n'
        cache.put(KEY, text)
        assert cache.get(KEY) == text
        assert KEY in cache
        assert OTHER not in cache

    def test_get_on_missing_key_is_none(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        assert cache.get(KEY) is None

    def test_keys_lists_stored_digests(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        cache.put(OTHER, "x")
        cache.put(KEY, "y")
        assert cache.keys() == [KEY, OTHER]

    def test_put_leaves_no_temp_files(self, tmp_path):
        root = tmp_path / "cache"
        cache = ResultCache(str(root))
        cache.put(KEY, "doc")
        assert sorted(os.listdir(root)) == [f"{KEY}.json"]


class TestAccounting:
    def test_get_counts_hits_and_misses(self, tmp_path):
        telemetry = Telemetry()
        cache = ResultCache(str(tmp_path / "cache"), telemetry=telemetry)
        cache.get(KEY)  # miss
        cache.put(KEY, "doc")
        cache.get(KEY)  # hit
        cache.get(KEY)  # hit
        snapshot = telemetry.registry.snapshot()
        assert snapshot["service_cache_misses_total"] == 1.0
        assert snapshot["service_cache_hits_total"] == 2.0
        assert snapshot["service_cache_writes_total"] == 1.0

    def test_peek_never_touches_the_counters(self, tmp_path):
        # peek() backs result fetches; polling a finished job must not
        # inflate the hit rate the CI smoke asserts on.
        telemetry = Telemetry()
        cache = ResultCache(str(tmp_path / "cache"), telemetry=telemetry)
        cache.put(KEY, "doc")
        assert cache.peek(KEY) == "doc"
        assert cache.peek(OTHER) is None
        snapshot = telemetry.registry.snapshot()
        assert "service_cache_hits_total" not in snapshot
        assert "service_cache_misses_total" not in snapshot


class TestPartialNamespace:
    def test_partials_are_invisible_to_the_dedup_path(self, tmp_path):
        # A failed job's partial ledger must never be served as a
        # pristine cache hit, or a later submission of the same spec
        # would be short-circuited onto a document recording failures.
        cache = ResultCache(str(tmp_path / "cache"))
        cache.put_partial(KEY, "partial-ledger")
        assert cache.get(KEY) is None
        assert KEY not in cache
        assert cache.keys() == []
        assert cache.peek(KEY) is None
        assert cache.peek_partial(KEY) == "partial-ledger"

    def test_pristine_and_partial_coexist(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        cache.put_partial(KEY, "partial")
        cache.put(KEY, "pristine")
        assert cache.get(KEY) == "pristine"
        assert cache.peek_partial(KEY) == "partial"
        assert cache.keys() == [KEY]

    def test_partial_writes_count_separately(self, tmp_path):
        telemetry = Telemetry()
        cache = ResultCache(str(tmp_path / "cache"), telemetry=telemetry)
        cache.put_partial(KEY, "partial")
        snapshot = telemetry.registry.snapshot()
        assert snapshot["service_cache_partial_writes_total"] == 1.0
        assert "service_cache_writes_total" not in snapshot

    def test_partial_path_validates_keys(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        with pytest.raises(ConfigError, match="malformed cache key"):
            cache.partial_path("../../etc/passwd")


class TestKeyValidation:
    @pytest.mark.parametrize(
        "key",
        [
            "../../etc/passwd",
            "ABCDEF0123456789",  # uppercase hex is not canonical
            "short",
            "",
            "a" * 65,
            "zz" * 16,
        ],
    )
    def test_malformed_keys_rejected(self, tmp_path, key):
        cache = ResultCache(str(tmp_path / "cache"))
        with pytest.raises(ConfigError, match="malformed cache key"):
            cache.path(key)

    def test_short_digest_prefix_accepted(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        assert cache.path("0123456789abcdef").endswith(
            "0123456789abcdef.json"
        )
