"""JobSpec identity: validation, cache keys, serialization."""

import pytest

from repro.faults import FaultSpec
from repro.errors import ConfigError
from repro.parallel import expand_grid
from repro.service.jobs import DEFAULT_PRIORITY, Job, JobSpec


def spec(**overrides) -> JobSpec:
    fields = dict(scheme="aqua-sram", workloads=("xz",), epochs=1, seed=7)
    fields.update(overrides)
    return JobSpec(**fields)


class TestValidation:
    def test_valid_spec_passes(self):
        spec().validate()

    @pytest.mark.parametrize(
        "overrides, match",
        [
            ({"scheme": "doom"}, "unknown scheme"),
            ({"workloads": ()}, "at least one workload"),
            ({"workloads": ("doom",)}, "unknown workloads"),
            ({"workloads": ("xz", "xz")}, "duplicate workloads"),
            ({"trh": 1}, "trh must be >= 2"),
            ({"epochs": 0}, "epochs must be >= 1"),
            ({"timeout_s": -1.0}, "timeout_s must be >= 0"),
            ({"retries": -1}, "retries must be >= 0"),
            ({"max_attempts": 0}, "max_attempts must be >= 1"),
        ],
    )
    def test_malformed_specs_rejected_with_field_messages(
        self, overrides, match
    ):
        with pytest.raises(ConfigError, match=match):
            spec(**overrides).validate()


class TestExpansion:
    def test_points_match_the_cli_sweep_grid(self):
        job = spec(workloads=("xz", "wrf"), trh=2000, epochs=3, seed=11)
        assert job.points() == expand_grid(
            ["aqua-sram"], ["xz", "wrf"], thresholds=(2000,), epochs=3,
            seed=11,
        )

    def test_meta_is_byte_compatible_with_sweep_meta(self):
        assert spec(trh=1500, epochs=2, seed=3).meta() == {
            "scheme": "aqua-sram",
            "trh": 1500,
            "epochs": 2,
            "seed": 3,
        }


class TestCacheKey:
    PINNED = "9022e476ddb680ce0fbfc4e4694a277be70b000eaf5954ea32b6fe39feae453b"

    def test_pinned_cache_key(self):
        # The cache key is the on-disk contract: changing it silently
        # invalidates every stored result.  Bump CACHE_KEY_VERSION (and
        # this pin) when result semantics genuinely change.
        assert spec().cache_key() == self.PINNED

    def test_scheduling_knobs_do_not_change_the_key(self):
        base = spec().cache_key()
        assert spec(priority=0).cache_key() == base
        assert spec(max_attempts=5).cache_key() == base

    def test_result_affecting_fields_change_the_key(self):
        base = spec().cache_key()
        assert spec(workloads=("wrf",)).cache_key() != base
        assert spec(trh=2000).cache_key() != base
        assert spec(epochs=2).cache_key() != base
        assert spec(seed=8).cache_key() != base
        assert spec(timeout_s=5.0).cache_key() != base
        assert spec(retries=1).cache_key() != base
        assert spec(
            fault_spec=FaultSpec(seed=1, fault_rate=1e-4)
        ).cache_key() != base

    def test_equal_specs_hash_equal(self):
        assert spec().cache_key() == spec().cache_key()


class TestSerialization:
    def test_roundtrip(self):
        job = spec(
            workloads=("xz", "wrf"),
            timeout_s=2.5,
            retries=1,
            priority=3,
            max_attempts=2,
            fault_spec=FaultSpec(
                seed=9, fault_rate=1e-3, rates=(("tracker_drop", 0.0),)
            ),
        )
        assert JobSpec.from_dict(job.to_dict()) == job

    def test_defaults_fill_in(self):
        job = JobSpec.from_dict({"scheme": "aqua-sram", "workloads": ["xz"]})
        assert job.trh == 1000
        assert job.priority == DEFAULT_PRIORITY
        assert job.fault_spec is None

    def test_unknown_fields_rejected(self):
        with pytest.raises(ConfigError, match="unknown job spec fields"):
            JobSpec.from_dict(
                {"scheme": "aqua-sram", "workloads": ["xz"], "doom": 1}
            )

    def test_missing_scheme_and_workloads_rejected(self):
        with pytest.raises(ConfigError, match="scheme"):
            JobSpec.from_dict({"workloads": ["xz"]})
        with pytest.raises(ConfigError, match="workloads"):
            JobSpec.from_dict({"scheme": "aqua-sram"})
        with pytest.raises(ConfigError, match="must be an object"):
            JobSpec.from_dict(["not", "a", "dict"])


class TestJob:
    def test_id_embeds_sequence_and_short_digest(self):
        job = Job.create(4, spec())
        assert job.id == f"j4-{spec().cache_key()[:12]}"
        assert job.seq == 4
        assert job.state == "queued"
        assert job.digest == spec().cache_key()

    def test_to_dict_can_omit_the_spec(self):
        job = Job.create(1, spec())
        assert "spec" in job.to_dict()
        assert "spec" not in job.to_dict(include_spec=False)
