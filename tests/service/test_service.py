"""SimulationService end-to-end: cache correctness, recovery, HTTP.

The three service guarantees pinned here (and re-proved over real HTTP
by the CI ``service-smoke`` job):

* a cache hit returns the *byte-identical* document a cold run -- or a
  direct ``repro sweep`` -- produces;
* crash-restart resumes journaled jobs exactly once;
* backpressure and error routes map onto clean HTTP statuses.
"""

import asyncio
import json

import pytest

from repro.errors import (
    ConfigError,
    JobNotFoundError,
    QueueFullError,
    ServiceError,
)
from repro.parallel import run_sweep_parallel
from repro.parallel.results import (
    build_results_document,
    render_results_document,
)
from repro.service import (
    BackgroundServer,
    ServiceClient,
    ServiceServer,
    SimulationService,
)
from repro.service.jobs import JobSpec
from repro.service.store import JobStore

SPEC = JobSpec(scheme="aqua-sram", workloads=("xz",), epochs=1, seed=7)
OTHER = JobSpec(scheme="aqua-sram", workloads=("xz",), epochs=1, seed=8)


@pytest.fixture(scope="module")
def direct_document() -> str:
    """What ``repro sweep --out`` writes for SPEC's parameters."""
    points = SPEC.points()
    report = run_sweep_parallel(points, jobs=1)
    return render_results_document(
        build_results_document(SPEC.meta(), points, report)
    )


def open_service(tmp_path, **kwargs) -> SimulationService:
    return SimulationService.open(
        str(tmp_path / "jobs.jsonl"), str(tmp_path / "cache"), **kwargs
    )


def run_next(service: SimulationService):
    """Dequeue and execute one job (a dispatcher's inner loop)."""

    async def body():
        job = await service.queue.get()
        await service._execute(job)
        return job

    return asyncio.run(body())


class TestCacheSemantics:
    def test_cache_hit_is_byte_identical_to_cold_run(
        self, tmp_path, direct_document
    ):
        service = open_service(tmp_path)
        try:
            cold = service.submit(SPEC)
            assert not cold.from_cache
            assert cold.state == "queued"
            assert run_next(service) is cold
            assert cold.state == "done"
            cold_text = service.result_text(cold.id)
            # The service document IS the direct-sweep document.
            assert cold_text == direct_document

            hit = service.submit(SPEC)
            assert hit.from_cache
            assert hit.state == "done"
            assert hit.attempts == 0  # never executed
            assert hit.id != cold.id  # a new submission, same work
            assert service.result_text(hit.id) == cold_text

            snapshot = service.metrics_snapshot()
            assert snapshot["service_cache_misses_total"] == 1.0
            assert snapshot["service_cache_hits_total"] == 1.0
            assert snapshot["service_jobs_submitted_total"] == 2.0
            assert (
                snapshot["service_jobs_completed_total{state=done}"] == 2.0
            )
            assert any(
                name.startswith("service_job_latency_s")
                for name in snapshot
            )
        finally:
            service.close()

    def test_validation_failures_journal_nothing(self, tmp_path):
        service = open_service(tmp_path)
        try:
            with pytest.raises(ConfigError, match="unknown scheme"):
                service.submit(
                    JobSpec(scheme="doom", workloads=("xz",))
                )
            assert service.list_jobs() == []
        finally:
            service.close()


class TestBackpressure:
    def test_queue_full_rejects_and_journals_nothing(self, tmp_path):
        service = open_service(tmp_path, max_depth=1)
        try:
            accepted = service.submit(SPEC)
            with pytest.raises(QueueFullError, match="full"):
                service.submit(OTHER)
            assert [job.id for job in service.list_jobs()] == [accepted.id]
        finally:
            service.close()
        # A refused submission leaves no trace to recover.
        with JobStore.open(str(tmp_path / "jobs.jsonl")) as store:
            assert len(store.jobs) == 1


class TestCrashRecovery:
    def test_restart_resumes_queued_jobs_exactly_once(self, tmp_path):
        service = open_service(tmp_path)
        first = service.submit(SPEC)
        second = service.submit(OTHER)
        # Crash: the process dies with both jobs journaled but unrun.
        service.store.close()

        revived = open_service(tmp_path)
        try:
            assert revived.queue.depth == 2
            snapshot = revived.metrics_snapshot()
            assert snapshot["service_jobs_recovered_total"] == 2.0
            done = [run_next(revived), run_next(revived)]
            assert sorted(job.id for job in done) == sorted(
                [first.id, second.id]
            )
            for job in done:
                assert job.state == "done"
                assert job.attempts == 1  # exactly once, not replayed
            assert len(revived.cache.keys()) == 2
        finally:
            revived.close()

        # A third start finds only terminal states: nothing re-runs.
        third = open_service(tmp_path)
        try:
            assert third.queue.depth == 0
            assert third.counts() == {"done": 2}
        finally:
            third.close()


class TestFailurePaths:
    def test_exception_retries_then_fails(self, tmp_path):
        service = open_service(tmp_path)
        try:
            def boom(spec):
                raise RuntimeError("synthetic sweep failure")

            service._run_blocking = boom
            job = service.submit(
                JobSpec(
                    scheme="aqua-sram", workloads=("xz",), epochs=1,
                    seed=7, max_attempts=2,
                )
            )
            assert run_next(service) is job
            assert job.state == "queued"  # first failure requeues
            assert job.attempts == 1
            assert run_next(service) is job
            assert job.state == "failed"  # attempts exhausted
            assert job.attempts == 2
            assert "RuntimeError: synthetic sweep failure" in job.error
            snapshot = service.metrics_snapshot()
            assert snapshot["service_jobs_retried_total"] == 1.0
            assert (
                snapshot["service_jobs_completed_total{state=failed}"]
                == 1.0
            )
        finally:
            service.close()

    def test_partial_run_failures_keep_the_partial_document(
        self, tmp_path
    ):
        service = open_service(tmp_path)
        try:
            service._run_blocking = lambda spec: ("partial-document", 1)
            job = service.submit(SPEC)
            run_next(service)
            assert job.state == "failed"
            assert job.run_failures == 1
            assert "1 of 1 run(s) failed" in job.error
            # The partial ledger is retrievable for debugging...
            assert service.result_text(job.id) == "partial-document"
            # ...but was never counted as a cache win...
            assert "service_cache_hits_total" not in (
                service.metrics_snapshot()
            )
            # ...and never entered the dedup namespace: resubmitting
            # the same spec re-runs the work instead of being served
            # the failed document as a "cached" success.
            assert service.cache.get(job.digest) is None
            resubmitted = service.submit(SPEC)
            assert not resubmitted.from_cache
            assert resubmitted.state == "queued"
        finally:
            service.close()

    def test_result_for_unfinished_job_is_a_clean_conflict(self, tmp_path):
        service = open_service(tmp_path)
        try:
            job = service.submit(SPEC)
            with pytest.raises(ServiceError, match="queued"):
                service.result_text(job.id)
            with pytest.raises(JobNotFoundError, match="no job"):
                service.job("j9-nope")
        finally:
            service.close()


# --------------------------------------------------------------- HTTP layer


def route(server: ServiceServer, method: str, path: str, body: dict = None):
    """Drive one request through the router, returning (status, payload)."""
    raw = server._route(
        method, path,
        json.dumps(body).encode() if body is not None else b"",
    )
    head, _, payload = raw.partition(b"\r\n\r\n")
    status = int(head.split()[1])
    return status, payload


class TestHttpRoutes:
    """Status-code mapping, exercised synchronously (no sockets)."""

    def test_error_routes(self, tmp_path):
        service = open_service(tmp_path, max_depth=1)
        server = ServiceServer(service)
        try:
            status, _ = route(server, "GET", "/v1/healthz")
            assert status == 200
            status, _ = route(server, "GET", "/v1/doom")
            assert status == 404
            status, _ = route(server, "DELETE", "/v1/jobs")
            assert status == 405
            status, payload = route(server, "POST", "/v1/jobs", None)
            assert status == 400  # empty body
            raw = server._route("POST", "/v1/jobs", b"not json")
            assert b"400" in raw.split(b"\r\n", 1)[0]

            status, _ = route(
                server, "POST", "/v1/jobs", {"spec": SPEC.to_dict()}
            )
            assert status == 201  # accepted, not cached
            status, payload = route(
                server, "POST", "/v1/jobs", {"spec": OTHER.to_dict()}
            )
            assert status == 429  # queue full (depth 1)
            assert b"full" in payload

            job_id = service.list_jobs()[0].id
            status, _ = route(
                server, "GET", f"/v1/jobs/{job_id}/result"
            )
            assert status == 409  # queued, no result yet
            status, _ = route(server, "GET", "/v1/jobs/j9-nope")
            assert status == 404

            service.draining = True
            status, _ = route(
                server, "POST", "/v1/jobs", {"spec": SPEC.to_dict()}
            )
            assert status == 429  # draining refuses new work
        finally:
            service.close()


class TestHttpEndToEnd:
    def test_submit_wait_fetch_and_cached_resubmit(
        self, tmp_path, direct_document
    ):
        service = open_service(tmp_path)
        with BackgroundServer(service) as server:
            client = ServiceClient(port=server.port)
            assert client.health()["status"] == "ok"

            accepted = client.submit(SPEC)
            assert not accepted["cached"]
            job = client.wait(accepted["job"]["id"], timeout_s=120.0)
            assert job["state"] == "done"
            assert job["attempts"] == 1
            text = client.result_text(job["id"])
            assert text == direct_document

            again = client.submit(SPEC)
            assert again["cached"]
            assert again["job"]["state"] == "done"
            assert client.result_text(again["job"]["id"]) == text

            assert len(client.jobs()) == 2
            assert client.metrics()["service_cache_hits_total"] == 1.0
            with pytest.raises(JobNotFoundError):
                client.job("j9-nope")

        # Graceful drain persisted every terminal state: a restart has
        # nothing to recover and the cached result is still served.
        revived = open_service(tmp_path)
        try:
            assert revived.queue.depth == 0
            assert revived.counts() == {"done": 2}
            hit = revived.submit(SPEC)
            assert hit.from_cache
        finally:
            revived.close()
