"""JobStore: durable journal replay, exactly-once job identity."""

import json

import pytest

from repro.core.canon import canonical_dumps
from repro.errors import ConfigError, SimulationError
from repro.service.jobs import Job, JobSpec
from repro.service.store import JobStore


def spec(seed: int = 7) -> JobSpec:
    return JobSpec(scheme="aqua-sram", workloads=("xz",), epochs=1, seed=seed)


class TestLifecycle:
    def test_fresh_store_writes_a_header(self, tmp_path):
        path = str(tmp_path / "jobs.jsonl")
        with JobStore.open(path):
            pass
        with open(path, encoding="utf-8") as fh:
            header = json.loads(fh.readline())
        assert header == {"record": "header", "version": 1}

    def test_jobs_and_states_replay(self, tmp_path):
        path = str(tmp_path / "jobs.jsonl")
        with JobStore.open(path) as store:
            job = Job.create(store.next_seq, spec())
            store.append_job(job)
            job.state = "running"
            job.attempts = 1
            store.append_state(job)
            job.state = "done"
            store.append_state(job)
        with JobStore.open(path) as store:
            assert list(store.jobs) == [job.id]
            replayed = store.get(job.id)
            assert replayed.state == "done"  # last state record wins
            assert replayed.attempts == 1
            assert replayed.spec == spec()
            assert store.next_seq == job.seq + 1

    def test_closed_store_refuses_appends(self, tmp_path):
        store = JobStore.open(str(tmp_path / "jobs.jsonl"))
        store.close()
        with pytest.raises(SimulationError, match="closed"):
            store.append_job(Job.create(1, spec()))


class TestCrashTolerance:
    def test_truncated_trailing_line_is_skipped_not_fatal(self, tmp_path):
        path = str(tmp_path / "jobs.jsonl")
        with JobStore.open(path) as store:
            store.append_job(Job.create(1, spec()))
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"record":"state","id":"j1-')  # killed mid-write
        with JobStore.open(path) as store:
            assert store.skipped_lines == 1
            assert len(store.jobs) == 1

    def test_append_after_torn_tail_does_not_corrupt(self, tmp_path):
        # The torn fragment must be truncated before the store reopens
        # for appending, or the first post-restart record is glued onto
        # it -- one invalid line -- and a durably journaled record
        # silently vanishes from the *next* replay.
        path = str(tmp_path / "jobs.jsonl")
        first = Job.create(1, spec())
        with JobStore.open(path) as store:
            store.append_job(first)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"record":"state","id":"j1-')  # killed mid-write
        second = Job.create(2, spec(seed=8))
        with JobStore.open(path) as store:
            assert store.skipped_lines == 1
            store.append_job(second)
            second.state = "done"
            store.append_state(second)
        with JobStore.open(path) as store:
            assert store.skipped_lines == 0  # file is whole again
            assert sorted(store.jobs) == sorted([first.id, second.id])
            assert store.get(second.id).state == "done"

    def test_duplicate_job_records_collapse_by_id(self, tmp_path):
        # A torn copy can duplicate a job line; replay must stay
        # exactly-once because jobs are keyed by ID.
        path = str(tmp_path / "jobs.jsonl")
        job = Job.create(1, spec())
        with JobStore.open(path) as store:
            store.append_job(job)
        record = {
            "record": "job",
            "seq": job.seq,
            "id": job.id,
            "digest": job.digest,
            "spec": job.spec.to_dict(),
        }
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(canonical_dumps(record) + "\n")
        with JobStore.open(path) as store:
            assert len(store.jobs) == 1
            assert store.next_seq == 2

    def test_unknown_record_kinds_are_counted(self, tmp_path):
        path = str(tmp_path / "jobs.jsonl")
        with JobStore.open(path):
            pass
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"record":"doom"}\n')
        with JobStore.open(path) as store:
            assert store.skipped_lines == 1

    def test_state_for_unknown_job_is_skipped(self, tmp_path):
        path = str(tmp_path / "jobs.jsonl")
        with JobStore.open(path):
            pass
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"record":"state","id":"j9-missing","state":"done"}\n')
        with JobStore.open(path) as store:
            assert store.skipped_lines == 1
            assert store.jobs == {}


class TestHeaderGuards:
    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        path.write_text('{"record":"state","id":"x","state":"done"}\n')
        with pytest.raises(ConfigError, match="no header"):
            JobStore.open(str(path))

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        path.write_text('{"record":"header","version":99}\n')
        with pytest.raises(ConfigError, match="version 99"):
            JobStore.open(str(path))
