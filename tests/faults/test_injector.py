"""FaultInjector: determinism, stream independence, telemetry."""

import pytest

from repro.errors import ConfigError
from repro.faults import FAULT_SITES, FaultInjector, NULL_INJECTOR
from repro.telemetry import Telemetry


def drive(injector, checks=500):
    """Consult every site ``checks`` times; return the fired schedule."""
    schedule = []
    for i in range(checks):
        for site in FAULT_SITES:
            if injector.inject(site, ts_ns=float(i)):
                schedule.append((site, i))
    return schedule


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        first = drive(FaultInjector(seed=7, fault_rate=0.05))
        second = drive(FaultInjector(seed=7, fault_rate=0.05))
        assert first == second
        assert first  # the rate is high enough that something fired

    def test_same_seed_same_digest(self):
        a = FaultInjector(seed=7, fault_rate=0.05)
        b = FaultInjector(seed=7, fault_rate=0.05)
        drive(a)
        drive(b)
        assert a.schedule_digest() == b.schedule_digest()
        assert a.schedule_digest() != "00000000"

    def test_different_seed_different_schedule(self):
        first = drive(FaultInjector(seed=7, fault_rate=0.05))
        second = drive(FaultInjector(seed=8, fault_rate=0.05))
        assert first != second

    def test_scope_decorrelates_schedules(self):
        first = drive(FaultInjector(seed=7, fault_rate=0.05, scope="a/x"))
        second = drive(FaultInjector(seed=7, fault_rate=0.05, scope="a/y"))
        assert first != second

    def test_sites_draw_from_independent_streams(self):
        """Consulting one site more often must not shift another's draws."""
        solo = FaultInjector(seed=3, fault_rate=0.05)
        noisy = FaultInjector(seed=3, fault_rate=0.05)
        solo_fires = [
            i for i in range(400) if solo.inject("tracker_drop")
        ]
        noisy_fires = []
        for i in range(400):
            noisy.inject("fpt_cache_miss")  # extra traffic on another site
            noisy.inject("fpt_cache_miss")
            if noisy.inject("tracker_drop"):
                noisy_fires.append(i)
        assert solo_fires == noisy_fires


class TestRates:
    def test_rate_zero_never_fires(self):
        injector = FaultInjector(seed=1, fault_rate=0.0)
        assert drive(injector, checks=200) == []
        assert injector.total_injected == 0
        assert injector.summary() == "none"

    def test_rate_one_always_fires(self):
        injector = FaultInjector(seed=1, fault_rate=1.0)
        assert all(
            injector.inject(site) for site in FAULT_SITES
        )

    def test_per_site_override_disables_one_site(self):
        injector = FaultInjector(
            seed=1, fault_rate=1.0, rates={"tracker_drop": 0.0}
        )
        assert not injector.inject("tracker_drop")
        assert injector.inject("rqa_forced_full")

    def test_offered_counts_every_check(self):
        injector = FaultInjector(seed=1, fault_rate=0.0)
        for _ in range(5):
            injector.inject("tracker_drop")
        assert injector.offered("tracker_drop") == 5

    def test_invalid_rate_rejected(self):
        with pytest.raises(ConfigError):
            FaultInjector(fault_rate=1.5)
        with pytest.raises(ConfigError):
            FaultInjector(rates={"tracker_drop": -0.1})

    def test_unknown_site_rejected(self):
        with pytest.raises(ConfigError):
            FaultInjector(rates={"cosmic_ray": 0.5})


class TestTelemetry:
    def test_fault_events_and_counter_emitted(self):
        telemetry = Telemetry()
        injector = FaultInjector(
            seed=1, fault_rate=1.0, telemetry=telemetry
        )
        assert injector.inject("tracker_drop", ts_ns=42.0, row=9)
        events = telemetry.tracer.events()
        assert len(events) == 1
        event = events[0]
        assert event.kind == "fault"
        assert event.ts_ns == 42.0
        assert event.attrs["site"] == "tracker_drop"
        assert event.attrs["row"] == 9
        snapshot = telemetry.registry.snapshot()
        assert snapshot["faults_injected_total{site=tracker_drop}"] == 1

    def test_summary_is_deterministic_text(self):
        injector = FaultInjector(seed=1, fault_rate=1.0)
        injector.inject("tracker_drop")
        injector.inject("rqa_forced_full")
        injector.inject("rqa_forced_full")
        assert injector.summary() == (
            "3 (rqa_forced_full=2, tracker_drop=1)"
        )


class TestNullInjector:
    def test_disabled_and_inert(self):
        assert NULL_INJECTOR.enabled is False
        assert NULL_INJECTOR.inject("tracker_drop") is False
        assert NULL_INJECTOR.counts() == {}
        assert NULL_INJECTOR.total_injected == 0
