"""Graceful degradation: AQUA under forced faults never half-fails.

Each test forces one fault site at rate 1.0 (or a deterministic rate)
and asserts the documented degradation: throttle instead of crash,
rollback-or-complete migrations, correct lookups under forced cache
misses, and conservative (never unsafe) tracker behaviour.
"""

import pytest

from repro.core.aqua import AquaMitigation
from repro.errors import FaultExhaustedError
from repro.faults import FaultInjector
from tests.conftest import at_epoch, make_aqua_config


def forced(site, seed=1, **kwargs):
    """Injector firing only ``site``, with probability 1."""
    rates = {name: 0.0 for name in
             ("rqa_forced_full", "migration_interrupt", "fpt_cache_miss",
              "fpt_cache_corrupt", "tracker_drop", "refresh_postpone")}
    rates.update({site: kwargs.pop("rate", 1.0)})
    return FaultInjector(seed=seed, rates=rates, **kwargs)


def hammer(scheme, row, times, start_ns=0.0, step_ns=10.0):
    """Drive ``times`` activations of ``row``; return the results."""
    return [
        scheme.access(row, start_ns + i * step_ns) for i in range(times)
    ]


THRESHOLD = 32  # effective threshold of the small test config (T_RH=64)


class TestRqaForcedFull:
    def test_every_quarantine_degrades_to_throttle(self):
        scheme = AquaMitigation(
            make_aqua_config(rqa_full_policy="throttle"),
            fault_injector=forced("rqa_forced_full"),
        )
        results = hammer(scheme, 5, 4 * THRESHOLD)
        assert scheme.stats.migrations == 0
        assert scheme.throttle_fallbacks == 4
        assert not scheme.is_quarantined(5)
        stalled = [r for r in results if r.stalled_ns > 0]
        assert len(stalled) == 4
        assert all(r.physical_row == 5 for r in results)

    def test_throttle_spacing_blocks_threshold_within_epoch(self):
        scheme = AquaMitigation(
            make_aqua_config(rqa_full_policy="throttle"),
            fault_injector=forced("rqa_forced_full"),
        )
        hammer(scheme, 5, THRESHOLD)
        # One throttle interval rate-limits the row to effective_threshold
        # activations per refresh window.
        cfg = scheme.config
        assert scheme._throttle_interval_ns == pytest.approx(
            cfg.timing.trefw_ns / cfg.effective_threshold
        )
        assert scheme.epoch_peak_row_stall_ns() > 0

    def test_peak_stall_resets_at_epoch_boundary(self):
        scheme = AquaMitigation(
            make_aqua_config(rqa_full_policy="throttle"),
            fault_injector=forced("rqa_forced_full"),
        )
        hammer(scheme, 5, THRESHOLD)
        assert scheme.epoch_peak_row_stall_ns() > 0
        scheme.access(6, at_epoch(1))
        assert scheme.epoch_peak_row_stall_ns() == 0.0


class TestMigrationInterrupt:
    def test_retry_budget_exhaustion_aborts_then_throttles(self):
        scheme = AquaMitigation(
            make_aqua_config(
                rqa_full_policy="throttle", migration_max_retries=2
            ),
            fault_injector=forced("migration_interrupt"),
        )
        hammer(scheme, 5, THRESHOLD)
        assert scheme.aborted_migrations == 1
        assert scheme.migration_retries == 3  # budget 2 + the final attempt
        assert scheme.throttle_fallbacks == 1
        assert scheme.stats.migrations == 0
        assert not scheme.is_quarantined(5)

    def test_fail_policy_raises_on_budget_exhaustion(self):
        scheme = AquaMitigation(
            make_aqua_config(migration_max_retries=1),
            fault_injector=forced("migration_interrupt"),
        )
        with pytest.raises(FaultExhaustedError):
            hammer(scheme, 5, THRESHOLD)

    def test_transient_interruption_retries_then_completes(self):
        scheme = AquaMitigation(
            make_aqua_config(
                rqa_full_policy="throttle", migration_max_retries=8
            ),
            fault_injector=forced("migration_interrupt", rate=0.5, seed=3),
        )
        results = hammer(scheme, 5, 4 * THRESHOLD)
        # Migrations eventually land despite interruptions...
        assert scheme.stats.migrations > 0
        assert scheme.migration_retries > 0
        # ...and interrupted attempts show up as extra channel time.
        migrated = [r for r in results if r.migrated]
        clean = AquaMitigation(make_aqua_config())
        clean_busy = max(
            r.busy_ns for r in hammer(clean, 5, 4 * THRESHOLD)
        )
        assert max(r.busy_ns for r in migrated) > clean_busy

    def test_never_half_migrated(self):
        """Rollback-or-complete: the mapping and data always agree."""
        scheme = AquaMitigation(
            make_aqua_config(
                rqa_full_policy="throttle",
                migration_max_retries=1,
                track_data=True,
            ),
            fault_injector=forced("migration_interrupt", rate=0.5, seed=9),
        )
        for row in (5, 6, 7):
            scheme.data.write(row, f"content-{row}")
        for row in (5, 6, 7):
            hammer(scheme, row, 2 * THRESHOLD,
                   start_ns=row * 10_000.0)
        for row in (5, 6, 7):
            assert scheme.data.read(scheme.locate(row)) == f"content-{row}"


class TestFptCacheFaults:
    def test_forced_misses_keep_lookups_correct(self):
        scheme = AquaMitigation(
            make_aqua_config(table_mode="memory-mapped"),
            fault_injector=forced("fpt_cache_miss"),
        )
        hammer(scheme, 5, 2 * THRESHOLD)
        assert scheme.is_quarantined(5)
        expected = scheme.locate(5)
        result = scheme.access(5, 50_000.0)
        assert result.physical_row == expected
        assert scheme.tables.forced_misses > 0

    def test_corruption_is_detected_and_refetched(self):
        scheme = AquaMitigation(
            make_aqua_config(table_mode="memory-mapped"),
            fault_injector=forced("fpt_cache_corrupt"),
        )
        hammer(scheme, 5, 2 * THRESHOLD)
        assert scheme.is_quarantined(5)
        # Corrupted entries are dropped (modelled parity detection), so
        # the next lookup refetches from DRAM -- never a wrong mapping.
        result = scheme.access(5, 50_000.0)
        assert result.physical_row == scheme.locate(5)


class TestTrackerDrop:
    def test_dropped_entries_slow_detection_but_never_crash(self):
        scheme = AquaMitigation(
            make_aqua_config(), fault_injector=forced("tracker_drop")
        )
        hammer(scheme, 5, 2 * THRESHOLD)
        # Every activation drops the fresh entry, so the count never
        # accumulates: detection is lost, not corrupted.
        assert scheme.stats.migrations == 0
        assert scheme.tracker_drops > 0

    def test_partial_drop_rate_only_delays_migration(self):
        scheme = AquaMitigation(
            make_aqua_config(), fault_injector=forced(
                "tracker_drop", rate=0.02, seed=11
            )
        )
        hammer(scheme, 5, 8 * THRESHOLD)
        assert scheme.stats.migrations > 0
        assert scheme.tracker_drops > 0


class TestRefreshPostpone:
    def test_boundary_slips_by_up_to_eight_trefi(self):
        scheme = AquaMitigation(
            make_aqua_config(), fault_injector=forced("refresh_postpone")
        )
        scheme.access(5, at_epoch(0, 100.0))
        assert scheme.current_epoch == 0
        # Just past the boundary: the injected postponement holds the
        # old epoch open...
        scheme.access(5, at_epoch(1, 100.0))
        assert scheme.current_epoch == 0
        assert scheme.postponed_refreshes == 1
        # ...until 8 tREFI later, when housekeeping must run.
        late = at_epoch(1, 9 * scheme.refresh.timing.trefi_ns)
        scheme.access(5, late)
        assert scheme.current_epoch == 1


class TestCleanRunsUnperturbed:
    def test_null_injector_leaves_results_identical(self):
        """Wiring (without firing) faults must not change behaviour."""
        clean = AquaMitigation(make_aqua_config())
        wired = AquaMitigation(
            make_aqua_config(),
            fault_injector=FaultInjector(seed=1, fault_rate=0.0),
        )
        for row in (5, 6, 7):
            a = hammer(clean, row, 2 * THRESHOLD, start_ns=row * 1e4)
            b = hammer(wired, row, 2 * THRESHOLD, start_ns=row * 1e4)
            assert a == b
        assert clean.stats.migrations == wired.stats.migrations
