"""CLI: every subcommand produces a sane report and exit code."""

import pytest

from repro.cli import main


class TestSizing:
    def test_default_point(self, capsys):
        assert main(["sizing"]) == 0
        out = capsys.readouterr().out
        assert "23,053" in out
        assert "1.1" in out

    def test_other_threshold(self, capsys):
        assert main(["sizing", "--trh", "2000"]) == 0
        assert "15,302" in capsys.readouterr().out


class TestStorage:
    def test_table_vii_columns(self, capsys):
        assert main(["storage"]) == 0
        out = capsys.readouterr().out
        for name in ("RRS-MG", "AQUA-MG", "RRS-Hydra", "AQUA-Hydra"):
            assert name in out


class TestSweep:
    def test_small_sweep(self, capsys):
        code = main(
            ["sweep", "--scheme", "aqua-sram", "--workloads", "xz", "wrf",
             "--epochs", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "xz" in out and "wrf" in out

    def test_unknown_workload_rejected(self, capsys):
        assert main(["sweep", "--workloads", "doom"]) == 2
        assert "unknown" in capsys.readouterr().out

    def test_zero_epochs_is_a_clean_parser_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--epochs", "0"])
        assert excinfo.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_negative_epochs_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--epochs", "-3"])
        assert excinfo.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_non_integer_epochs_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--epochs", "two"])
        assert excinfo.value.code == 2
        assert "not an integer" in capsys.readouterr().err

    def test_seed_changes_the_generated_trace(self, capsys):
        base = ["sweep", "--scheme", "aqua-sram", "--workloads", "gcc",
                "--epochs", "1"]
        assert main(base + ["--seed", "1"]) == 0
        first = capsys.readouterr().out
        assert main(base + ["--seed", "2"]) == 0
        second = capsys.readouterr().out
        assert first != second

    def test_metrics_flag_prints_table(self, capsys):
        code = main(
            ["sweep", "--scheme", "aqua-sram", "--workloads", "xz",
             "--epochs", "1", "--metrics"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "metrics [xz]:" in out
        assert "scheme_accesses_total{scheme=aqua}" in out

    def test_invalid_sample_rate_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--trace", "x.jsonl", "--trace-sample", "0"])
        assert excinfo.value.code == 2


class TestTraceAndInspect:
    def test_jsonl_trace_round_trips_through_inspect(
        self, tmp_path, capsys
    ):
        trace = str(tmp_path / "out.jsonl")
        code = main(
            ["sweep", "--scheme", "aqua-sram", "--workloads", "gcc",
             "--epochs", "1", "--trace", trace]
        )
        assert code == 0
        wrote = capsys.readouterr().out
        assert "wrote" in wrote
        assert main(["inspect", trace]) == 0
        out = capsys.readouterr().out
        assert "migration" in out
        assert "quarantine occupancy" in out
        assert "gcc" in out

    def test_chrome_trace_round_trips_through_inspect(
        self, tmp_path, capsys
    ):
        trace = str(tmp_path / "out.json")
        code = main(
            ["sweep", "--scheme", "aqua-sram", "--workloads", "gcc",
             "--epochs", "1", "--trace", trace,
             "--trace-format", "chrome"]
        )
        assert code == 0
        capsys.readouterr()
        assert main(["inspect", trace]) == 0
        assert "refresh_window" in capsys.readouterr().out

    def test_inspect_missing_file(self, capsys):
        assert main(["inspect", "/nonexistent/trace.jsonl"]) == 2
        assert "cannot read" in capsys.readouterr().out

    def test_inspect_fully_malformed_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n{]\n")
        assert main(["inspect", str(bad)]) == 2
        out = capsys.readouterr().out
        assert "skipped 2 corrupt line(s)" in out
        assert "no parseable events" in out

    def test_inspect_skips_corrupt_lines_but_succeeds(
        self, tmp_path, capsys
    ):
        mixed = tmp_path / "mixed.jsonl"
        mixed.write_text(
            '{"ts_ns": 1.0, "kind": "migration"}\n'
            "garbage line\n"
            '{"ts_ns": 2.0, "kind": "eviction"}\n'
            '{"ts_ns": 3.0, "kind": "migr'  # truncated trailing write
        )
        assert main(["inspect", str(mixed)]) == 0
        out = capsys.readouterr().out
        assert "skipped 2 corrupt line(s)" in out
        assert "2 valid events parsed" in out

    def test_inspect_empty_trace(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["inspect", str(empty)]) == 2
        assert "no parseable events" in capsys.readouterr().out


class TestSweepHardening:
    def test_failed_run_gives_summary_and_nonzero_exit(
        self, capsys, monkeypatch
    ):
        from repro.sim import runner

        real = runner.run_hardened

        def fail_on_wrf(factory, target, **kwargs):
            if target.name == "wrf":
                raise RuntimeError("synthetic crash")
            return real(factory, target, **kwargs)

        monkeypatch.setattr("repro.cli.runner.run_hardened", fail_on_wrf)
        code = main(
            ["sweep", "--scheme", "aqua-sram", "--workloads",
             "xz", "wrf", "gcc", "--epochs", "1"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "FAILED: RuntimeError: synthetic crash" in out
        assert "1 of 3 run(s) failed:" in out
        assert "xz" in out and "gcc" in out  # other runs still completed

    def test_checkpoint_then_resume_skips_finished_runs(
        self, tmp_path, capsys
    ):
        ck = str(tmp_path / "ck.jsonl")
        base = ["sweep", "--scheme", "aqua-sram", "--epochs", "1"]
        assert main(base + ["--workloads", "xz", "--checkpoint", ck]) == 0
        capsys.readouterr()
        assert main(base + ["--workloads", "xz", "wrf", "--resume", ck]) == 0
        out = capsys.readouterr().out
        assert "(resumed)" in out
        assert "wrf" in out

    def test_resumed_checkpoint_equals_uninterrupted(self, tmp_path, capsys):
        straight = str(tmp_path / "straight.jsonl")
        partial = str(tmp_path / "partial.jsonl")
        base = ["sweep", "--scheme", "aqua-sram", "--epochs", "1"]
        assert main(
            base + ["--workloads", "xz", "wrf", "--checkpoint", straight]
        ) == 0
        assert main(
            base + ["--workloads", "xz", "--checkpoint", partial]
        ) == 0
        assert main(
            base + ["--workloads", "xz", "wrf", "--resume", partial]
        ) == 0
        capsys.readouterr()
        assert open(partial).read() == open(straight).read()

    def test_resume_with_mismatched_parameters_rejected(
        self, tmp_path, capsys
    ):
        ck = str(tmp_path / "ck.jsonl")
        assert main(
            ["sweep", "--scheme", "aqua-sram", "--workloads", "xz",
             "--epochs", "1", "--checkpoint", ck]
        ) == 0
        capsys.readouterr()
        code = main(
            ["sweep", "--scheme", "aqua-sram", "--workloads", "xz",
             "--epochs", "1", "--trh", "2000", "--resume", ck]
        )
        assert code == 2
        assert "cannot resume" in capsys.readouterr().out


class TestChaos:
    def test_completes_suite_and_reports_faults(self, capsys):
        code = main(
            ["chaos", "--seed", "7", "--fault-rate", "1e-3",
             "--epochs", "1", "--workloads", "xz"]
        )
        assert code == 0
        out = capsys.readouterr().out
        for scheme in ("aqua-sram", "aqua-mm", "rrs", "blockhammer",
                       "victim-refresh"):
            assert f"{scheme}/xz" in out
        assert "0 broke" in out

    def test_two_invocations_identical_output(self, capsys):
        argv = ["chaos", "--seed", "7", "--fault-rate", "1e-3",
                "--epochs", "1", "--workloads", "xz"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second

    def test_different_seed_changes_the_schedule(self, capsys):
        argv = ["chaos", "--fault-rate", "1e-3", "--epochs", "1",
                "--workloads", "xz"]
        assert main(argv + ["--seed", "7"]) == 0
        first = capsys.readouterr().out
        assert main(argv + ["--seed", "8"]) == 0
        second = capsys.readouterr().out
        assert first != second

    def test_trace_contains_fault_events(self, tmp_path, capsys):
        trace = str(tmp_path / "chaos.jsonl")
        code = main(
            ["chaos", "--seed", "7", "--fault-rate", "1e-3",
             "--epochs", "1", "--workloads", "xz", "--trace", trace]
        )
        assert code == 0
        capsys.readouterr()
        assert main(["inspect", trace]) == 0
        assert "fault" in capsys.readouterr().out


class TestAttack:
    def test_half_double_vs_aqua_mitigated(self, capsys):
        assert main(["attack", "--scheme", "aqua"]) == 0
        assert "mitigated" in capsys.readouterr().out

    def test_half_double_vs_victim_refresh_flips(self, capsys):
        assert main(["attack", "--scheme", "victim-refresh"]) == 1
        assert "BIT FLIPS" in capsys.readouterr().out

    def test_single_sided_vs_aqua(self, capsys):
        assert main(["attack", "--scheme", "aqua", "--pattern", "single"]) == 0


class TestParser:
    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])
