"""CLI: every subcommand produces a sane report and exit code."""

import json

import pytest

from repro.cli import main


class TestSizing:
    def test_default_point(self, capsys):
        assert main(["sizing"]) == 0
        out = capsys.readouterr().out
        assert "23,053" in out
        assert "1.1" in out

    def test_other_threshold(self, capsys):
        assert main(["sizing", "--trh", "2000"]) == 0
        assert "15,302" in capsys.readouterr().out


class TestStorage:
    def test_table_vii_columns(self, capsys):
        assert main(["storage"]) == 0
        out = capsys.readouterr().out
        for name in ("RRS-MG", "AQUA-MG", "RRS-Hydra", "AQUA-Hydra"):
            assert name in out


class TestSweep:
    def test_small_sweep(self, capsys):
        code = main(
            ["sweep", "--scheme", "aqua-sram", "--workloads", "xz", "wrf",
             "--epochs", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "xz" in out and "wrf" in out

    def test_unknown_workload_rejected(self, capsys):
        assert main(["sweep", "--workloads", "doom"]) == 2
        assert "unknown" in capsys.readouterr().out

    def test_zero_epochs_is_a_clean_parser_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--epochs", "0"])
        assert excinfo.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_negative_epochs_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--epochs", "-3"])
        assert excinfo.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_non_integer_epochs_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--epochs", "two"])
        assert excinfo.value.code == 2
        assert "not an integer" in capsys.readouterr().err

    def test_seed_changes_the_generated_trace(self, capsys):
        base = ["sweep", "--scheme", "aqua-sram", "--workloads", "gcc",
                "--epochs", "1"]
        assert main(base + ["--seed", "1"]) == 0
        first = capsys.readouterr().out
        assert main(base + ["--seed", "2"]) == 0
        second = capsys.readouterr().out
        assert first != second

    def test_metrics_flag_prints_table(self, capsys):
        code = main(
            ["sweep", "--scheme", "aqua-sram", "--workloads", "xz",
             "--epochs", "1", "--metrics"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "metrics [xz]:" in out
        assert "scheme_accesses_total{scheme=aqua}" in out

    def test_invalid_sample_rate_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--trace", "x.jsonl", "--trace-sample", "0"])
        assert excinfo.value.code == 2


class TestTraceAndInspect:
    def test_jsonl_trace_round_trips_through_inspect(
        self, tmp_path, capsys
    ):
        trace = str(tmp_path / "out.jsonl")
        code = main(
            ["sweep", "--scheme", "aqua-sram", "--workloads", "gcc",
             "--epochs", "1", "--trace", trace]
        )
        assert code == 0
        wrote = capsys.readouterr().out
        assert "wrote" in wrote
        assert main(["inspect", trace]) == 0
        out = capsys.readouterr().out
        assert "migration" in out
        assert "quarantine occupancy" in out
        assert "gcc" in out

    def test_chrome_trace_round_trips_through_inspect(
        self, tmp_path, capsys
    ):
        trace = str(tmp_path / "out.json")
        code = main(
            ["sweep", "--scheme", "aqua-sram", "--workloads", "gcc",
             "--epochs", "1", "--trace", trace,
             "--trace-format", "chrome"]
        )
        assert code == 0
        capsys.readouterr()
        assert main(["inspect", trace]) == 0
        assert "refresh_window" in capsys.readouterr().out

    def test_inspect_missing_file(self, capsys):
        assert main(["inspect", "/nonexistent/trace.jsonl"]) == 2
        assert "cannot read" in capsys.readouterr().out

    def test_inspect_fully_malformed_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n{]\n")
        assert main(["inspect", str(bad)]) == 2
        out = capsys.readouterr().out
        assert "skipped 2 corrupt line(s)" in out
        assert "no parseable events" in out

    def test_inspect_skips_corrupt_lines_but_succeeds(
        self, tmp_path, capsys
    ):
        mixed = tmp_path / "mixed.jsonl"
        mixed.write_text(
            '{"ts_ns": 1.0, "kind": "migration"}\n'
            "garbage line\n"
            '{"ts_ns": 2.0, "kind": "eviction"}\n'
            '{"ts_ns": 3.0, "kind": "migr'  # truncated trailing write
        )
        assert main(["inspect", str(mixed)]) == 0
        out = capsys.readouterr().out
        assert "skipped 2 corrupt line(s)" in out
        assert "2 valid events parsed" in out

    def test_inspect_empty_trace(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["inspect", str(empty)]) == 2
        assert "no parseable events" in capsys.readouterr().out


class TestSweepHardening:
    def test_failed_run_gives_summary_and_nonzero_exit(
        self, capsys, monkeypatch
    ):
        from repro.sim import runner

        real = runner.run_hardened

        def fail_on_wrf(factory, target, **kwargs):
            if target.name == "wrf":
                raise RuntimeError("synthetic crash")
            return real(factory, target, **kwargs)

        monkeypatch.setattr("repro.cli.runner.run_hardened", fail_on_wrf)
        code = main(
            ["sweep", "--scheme", "aqua-sram", "--workloads",
             "xz", "wrf", "gcc", "--epochs", "1"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "FAILED: RuntimeError: synthetic crash" in out
        assert "1 of 3 run(s) failed:" in out
        assert "xz" in out and "gcc" in out  # other runs still completed

    def test_checkpoint_then_resume_skips_finished_runs(
        self, tmp_path, capsys
    ):
        ck = str(tmp_path / "ck.jsonl")
        base = ["sweep", "--scheme", "aqua-sram", "--epochs", "1"]
        assert main(base + ["--workloads", "xz", "--checkpoint", ck]) == 0
        capsys.readouterr()
        assert main(base + ["--workloads", "xz", "wrf", "--resume", ck]) == 0
        out = capsys.readouterr().out
        assert "(resumed)" in out
        assert "wrf" in out

    def test_resumed_checkpoint_equals_uninterrupted(self, tmp_path, capsys):
        straight = str(tmp_path / "straight.jsonl")
        partial = str(tmp_path / "partial.jsonl")
        base = ["sweep", "--scheme", "aqua-sram", "--epochs", "1"]
        assert main(
            base + ["--workloads", "xz", "wrf", "--checkpoint", straight]
        ) == 0
        assert main(
            base + ["--workloads", "xz", "--checkpoint", partial]
        ) == 0
        assert main(
            base + ["--workloads", "xz", "wrf", "--resume", partial]
        ) == 0
        capsys.readouterr()
        assert open(partial).read() == open(straight).read()

    def test_resume_with_mismatched_parameters_rejected(
        self, tmp_path, capsys
    ):
        ck = str(tmp_path / "ck.jsonl")
        assert main(
            ["sweep", "--scheme", "aqua-sram", "--workloads", "xz",
             "--epochs", "1", "--checkpoint", ck]
        ) == 0
        capsys.readouterr()
        code = main(
            ["sweep", "--scheme", "aqua-sram", "--workloads", "xz",
             "--epochs", "1", "--trh", "2000", "--resume", ck]
        )
        assert code == 2
        assert "cannot resume" in capsys.readouterr().out


class TestChaos:
    def test_completes_suite_and_reports_faults(self, capsys):
        code = main(
            ["chaos", "--seed", "7", "--fault-rate", "1e-3",
             "--epochs", "1", "--workloads", "xz"]
        )
        assert code == 0
        out = capsys.readouterr().out
        for scheme in ("aqua-sram", "aqua-mm", "rrs", "blockhammer",
                       "victim-refresh"):
            assert f"{scheme}/xz" in out
        assert "0 broke" in out

    def test_two_invocations_identical_output(self, capsys):
        argv = ["chaos", "--seed", "7", "--fault-rate", "1e-3",
                "--epochs", "1", "--workloads", "xz"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second

    def test_different_seed_changes_the_schedule(self, capsys):
        argv = ["chaos", "--fault-rate", "1e-3", "--epochs", "1",
                "--workloads", "xz"]
        assert main(argv + ["--seed", "7"]) == 0
        first = capsys.readouterr().out
        assert main(argv + ["--seed", "8"]) == 0
        second = capsys.readouterr().out
        assert first != second

    def test_trace_contains_fault_events(self, tmp_path, capsys):
        trace = str(tmp_path / "chaos.jsonl")
        code = main(
            ["chaos", "--seed", "7", "--fault-rate", "1e-3",
             "--epochs", "1", "--workloads", "xz", "--trace", trace]
        )
        assert code == 0
        capsys.readouterr()
        assert main(["inspect", trace]) == 0
        assert "fault" in capsys.readouterr().out


class TestAttack:
    def test_half_double_vs_aqua_mitigated(self, capsys):
        assert main(["attack", "--scheme", "aqua"]) == 0
        assert "mitigated" in capsys.readouterr().out

    def test_half_double_vs_victim_refresh_flips(self, capsys):
        assert main(["attack", "--scheme", "victim-refresh"]) == 1
        assert "BIT FLIPS" in capsys.readouterr().out

    def test_single_sided_vs_aqua(self, capsys):
        assert main(["attack", "--scheme", "aqua", "--pattern", "single"]) == 0

    def test_out_writes_machine_readable_report(self, tmp_path, capsys):
        out = str(tmp_path / "attack.json")
        code = main(
            ["attack", "--scheme", "victim-refresh", "--out", out]
        )
        assert code == 1  # the attack still flips bits
        assert "wrote report" in capsys.readouterr().out
        document = json.loads(open(out, encoding="utf-8").read())
        assert document["pattern"] == "half-double"
        report = document["report"]
        assert report["scheme"] == "victim-refresh"
        assert report["succeeded"] is True
        assert report["flips"]  # each flip carries row/time/disturbance
        assert {"row", "time_ns", "disturbance"} <= set(report["flips"][0])
        assert report["slowdown"] == pytest.approx(
            report["elapsed_ns"] / report["unimpeded_ns"]
        )

    def test_out_report_for_mitigated_attack(self, tmp_path, capsys):
        out = str(tmp_path / "attack.json")
        assert main(["attack", "--scheme", "aqua", "--out", out]) == 0
        capsys.readouterr()
        report = json.loads(open(out, encoding="utf-8").read())["report"]
        assert report["succeeded"] is False
        assert report["flips"] == []
        assert report["migrations"] > 0


class TestService:
    """The serve/submit/status/fetch verbs against a live server."""

    @pytest.fixture
    def server(self, tmp_path):
        from repro.service import BackgroundServer, SimulationService

        service = SimulationService.open(
            str(tmp_path / "jobs.jsonl"), str(tmp_path / "cache")
        )
        with BackgroundServer(service) as background:
            yield background

    def submit_argv(self, port, extra=()):
        return [
            "submit", "--scheme", "aqua-sram", "--workloads", "xz",
            "--epochs", "1", "--seed", "7", "--port", str(port),
            *extra,
        ]

    def test_submit_wait_fetch_matches_direct_sweep(
        self, tmp_path, server, capsys
    ):
        fetched = str(tmp_path / "service.json")
        code = main(
            self.submit_argv(
                server.port,
                ["--wait", "--wait-timeout", "120", "--out", fetched],
            )
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "[queued]" in out
        assert "wrote result document" in out

        direct = str(tmp_path / "direct.json")
        assert main(
            ["sweep", "--scheme", "aqua-sram", "--workloads", "xz",
             "--epochs", "1", "--seed", "7", "--out", direct]
        ) == 0
        capsys.readouterr()
        assert open(fetched, "rb").read() == open(direct, "rb").read()

    def test_resubmit_is_a_cache_hit(self, server, capsys):
        assert main(
            self.submit_argv(
                server.port, ["--wait", "--wait-timeout", "120"]
            )
        ) == 0
        capsys.readouterr()
        assert main(self.submit_argv(server.port)) == 0
        assert "[cache hit]" in capsys.readouterr().out

    def test_status_lists_jobs_and_fetch_streams_the_result(
        self, server, capsys
    ):
        assert main(
            self.submit_argv(
                server.port, ["--wait", "--wait-timeout", "120"]
            )
        ) == 0
        first_line = capsys.readouterr().out.splitlines()[0]
        job_id = first_line.split()[1]

        assert main(["status", "--port", str(server.port)]) == 0
        out = capsys.readouterr().out
        assert "service ok" in out
        assert job_id in out and "done" in out

        assert main(["status", job_id, "--port", str(server.port)]) == 0
        detail = json.loads(capsys.readouterr().out)
        assert detail["state"] == "done"

        assert main(["fetch", job_id, "--port", str(server.port)]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["meta"]["scheme"] == "aqua-sram"

    def test_fetch_unknown_job_exits_2(self, server, capsys):
        assert main(
            ["fetch", "j9-nope", "--port", str(server.port)]
        ) == 2
        assert "error" in capsys.readouterr().out

    def test_submit_to_dead_server_is_a_clean_error(self, capsys):
        # Port 1 is never listening; the client error must not traceback.
        assert main(self.submit_argv(1)) == 2
        assert "cannot reach service" in capsys.readouterr().out


class TestParser:
    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])
