"""CLI: every subcommand produces a sane report and exit code."""

import pytest

from repro.cli import main


class TestSizing:
    def test_default_point(self, capsys):
        assert main(["sizing"]) == 0
        out = capsys.readouterr().out
        assert "23,053" in out
        assert "1.1" in out

    def test_other_threshold(self, capsys):
        assert main(["sizing", "--trh", "2000"]) == 0
        assert "15,302" in capsys.readouterr().out


class TestStorage:
    def test_table_vii_columns(self, capsys):
        assert main(["storage"]) == 0
        out = capsys.readouterr().out
        for name in ("RRS-MG", "AQUA-MG", "RRS-Hydra", "AQUA-Hydra"):
            assert name in out


class TestSweep:
    def test_small_sweep(self, capsys):
        code = main(
            ["sweep", "--scheme", "aqua-sram", "--workloads", "xz", "wrf",
             "--epochs", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "xz" in out and "wrf" in out

    def test_unknown_workload_rejected(self, capsys):
        assert main(["sweep", "--workloads", "doom"]) == 2
        assert "unknown" in capsys.readouterr().out


class TestAttack:
    def test_half_double_vs_aqua_mitigated(self, capsys):
        assert main(["attack", "--scheme", "aqua"]) == 0
        assert "mitigated" in capsys.readouterr().out

    def test_half_double_vs_victim_refresh_flips(self, capsys):
        assert main(["attack", "--scheme", "victim-refresh"]) == 1
        assert "BIT FLIPS" in capsys.readouterr().out

    def test_single_sided_vs_aqua(self, capsys):
        assert main(["attack", "--scheme", "aqua", "--pattern", "single"]) == 0


class TestParser:
    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])
