"""Property tests: the sliding-window ledger against a brute-force oracle."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.analysis.security import ActivationLedger


events = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=5),  # row
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False),  # dt
    ),
    max_size=80,
)


class TestAgainstBruteForce:
    @given(events)
    @settings(max_examples=200)
    def test_window_counts_match(self, deltas):
        window = 100.0
        ledger = ActivationLedger(window_ns=window)
        history = []
        now = 0.0
        for row, dt in deltas:
            now += dt
            ledger.record(row, now)
            history.append((row, now))
            brute = sum(
                1
                for r, t in history
                if r == row and t > now - window
            )
            assert ledger.window_count(row, now) == brute

    @given(events)
    @settings(max_examples=100)
    def test_peak_is_max_over_time(self, deltas):
        window = 100.0
        ledger = ActivationLedger(window_ns=window)
        history = []
        now = 0.0
        best = {}
        for row, dt in deltas:
            now += dt
            ledger.record(row, now)
            history.append((row, now))
            brute = sum(
                1 for r, t in history if r == row and t > now - window
            )
            best[row] = max(best.get(row, 0), brute)
        for row, peak in best.items():
            assert ledger.peak(row) == peak
