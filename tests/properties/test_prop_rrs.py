"""Property tests: RRS's indirection is always a permutation.

Any hammering sequence leaves the logical->physical map a bijection
(no two logical rows share a physical row, every logical row resolves
somewhere), and the data store always returns each row's own content.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.mitigations.rrs import RandomizedRowSwap

from tests.conftest import SMALL_GEOMETRY


hot_rows = st.integers(min_value=100, max_value=115)
streams = st.lists(
    st.tuples(hot_rows, st.integers(min_value=1, max_value=25)),
    max_size=30,
)


def run_stream(stream, seed):
    rrs = RandomizedRowSwap(
        rowhammer_threshold=60,  # swaps every 10 activations
        geometry=SMALL_GEOMETRY,
        seed=seed,
        tracker_entries_per_bank=64,
    )
    for row in range(100, 116):
        rrs.data.write(row, f"content-{row}")
    for row, burst in stream:
        rrs.access_batch(row, burst, 0.0)
    return rrs


class TestPermutation:
    @given(streams, st.integers(min_value=0, max_value=10))
    @settings(max_examples=120, deadline=None)
    def test_map_is_injective(self, stream, seed):
        rrs = run_stream(stream, seed)
        targets = list(rrs._map.values())
        assert len(targets) == len(set(targets))

    @given(streams, st.integers(min_value=0, max_value=10))
    @settings(max_examples=120, deadline=None)
    def test_forward_and_reverse_agree(self, stream, seed):
        rrs = run_stream(stream, seed)
        for logical, physical in rrs._map.items():
            assert rrs.logical_of(physical) == logical

    @given(streams, st.integers(min_value=0, max_value=10))
    @settings(max_examples=100, deadline=None)
    def test_data_integrity(self, stream, seed):
        rrs = run_stream(stream, seed)
        for row in range(100, 116):
            location = rrs._physical_of(row)
            assert rrs.data.read(location) == f"content-{row}"

    @given(streams, st.integers(min_value=0, max_value=10))
    @settings(max_examples=100, deadline=None)
    def test_partners_symmetric(self, stream, seed):
        rrs = run_stream(stream, seed)
        for row, partner in rrs._partner.items():
            assert rrs._partner[partner] == row
