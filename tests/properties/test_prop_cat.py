"""Property tests: the CAT behaves like a mapping under any op sequence."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.cat import CollisionAvoidanceTable


keys = st.integers(min_value=0, max_value=10_000)


@st.composite
def operations(draw):
    """A sequence of (op, key) pairs, bounded to avoid overflow."""
    return draw(
        st.lists(
            st.tuples(st.sampled_from(["insert", "remove", "lookup"]), keys),
            max_size=120,
        )
    )


class TestDictEquivalence:
    @given(operations())
    @settings(max_examples=200)
    def test_matches_reference_dict(self, ops):
        cat = CollisionAvoidanceTable(capacity=512, ways=8)
        reference = {}
        for op, key in ops:
            if op == "insert" and len(reference) < 300:
                cat.insert(key, key * 3)
                reference[key] = key * 3
            elif op == "remove":
                assert cat.remove(key) == (key in reference)
                reference.pop(key, None)
            else:
                assert cat.lookup(key) == reference.get(key)
        assert len(cat) == len(reference)
        assert dict(cat.items()) == reference

    @given(st.sets(keys, max_size=350))
    @settings(max_examples=100)
    def test_all_inserted_keys_retrievable(self, key_set):
        # 350 entries in a 512-slot CAT (68% load): everything placed.
        cat = CollisionAvoidanceTable(capacity=512, ways=8)
        for key in key_set:
            cat.insert(key, key + 1)
        for key in key_set:
            assert cat.lookup(key) == key + 1

    @given(st.sets(keys, min_size=1, max_size=300))
    @settings(max_examples=50)
    def test_remove_all_empties_table(self, key_set):
        cat = CollisionAvoidanceTable(capacity=512, ways=8)
        for key in key_set:
            cat.insert(key, key)
        for key in key_set:
            assert cat.remove(key)
        assert len(cat) == 0
        assert cat.max_bucket_occupancy() == 0
