"""Property tests: the resettable bloom filter never false-negatives."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.bloom import ResettableBloomFilter


rows = st.integers(min_value=0, max_value=255)


@st.composite
def insert_invalidate_sequences(draw):
    """Valid op sequences: invalidate only currently-inserted rows."""
    ops = []
    live = set()
    for _ in range(draw(st.integers(min_value=0, max_value=120))):
        if live and draw(st.booleans()):
            row = draw(st.sampled_from(sorted(live)))
            ops.append(("invalidate", row))
            live.discard(row)
        else:
            row = draw(rows)
            if row not in live:
                ops.append(("insert", row))
                live.add(row)
    return ops


class TestNoFalseNegatives:
    @given(insert_invalidate_sequences())
    @settings(max_examples=200)
    def test_mapped_rows_always_flagged(self, ops):
        bloom = ResettableBloomFilter(total_rows=256, group_size=16)
        live = set()
        for op, row in ops:
            if op == "insert":
                bloom.on_insert(row)
                live.add(row)
            else:
                bloom.on_invalidate(row)
                live.discard(row)
            for mapped in live:
                assert bloom.maybe_quarantined(mapped)

    @given(insert_invalidate_sequences())
    @settings(max_examples=200)
    def test_bit_clear_exactly_when_group_empty(self, ops):
        bloom = ResettableBloomFilter(total_rows=256, group_size=16)
        live = set()
        for op, row in ops:
            if op == "insert":
                bloom.on_insert(row)
                live.add(row)
            else:
                bloom.on_invalidate(row)
                live.discard(row)
        for group in range(bloom.num_groups):
            expected = any(r // 16 == group for r in live)
            probe = group * 16
            assert bloom.maybe_quarantined(probe) == expected

    @given(insert_invalidate_sequences())
    @settings(max_examples=100)
    def test_group_valid_count_consistent(self, ops):
        bloom = ResettableBloomFilter(total_rows=256, group_size=16)
        live = set()
        for op, row in ops:
            if op == "insert":
                bloom.on_insert(row)
                live.add(row)
            else:
                bloom.on_invalidate(row)
                live.discard(row)
        for row in range(0, 256, 16):
            expected = sum(1 for r in live if r // 16 == row // 16)
            assert bloom.group_valid_count(row) == expected
