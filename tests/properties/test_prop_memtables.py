"""Property tests: the memory-mapped table chain vs a reference map.

Whatever sequence of quarantines, releases, and lookups occurs, the
bloom + FPT-Cache + DRAM-FPT chain must resolve every row to exactly
what a plain dict would -- the filters are performance structures and
must never change answers.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.memtables import MemoryMappedTables


rows = st.integers(min_value=0, max_value=255)


@st.composite
def table_ops(draw):
    """Valid op sequences against a 32-slot quarantine space."""
    ops = []
    mapped = {}
    free_slots = list(range(32))
    for _ in range(draw(st.integers(min_value=0, max_value=80))):
        choice = draw(st.integers(min_value=0, max_value=2))
        if choice == 0 and free_slots:
            row = draw(rows)
            if row not in mapped:
                slot = free_slots.pop()
                ops.append(("quarantine", row, slot))
                mapped[row] = slot
                continue
        if choice == 1 and mapped:
            row = draw(st.sampled_from(sorted(mapped)))
            ops.append(("release", row, None))
            free_slots.append(mapped.pop(row))
            continue
        ops.append(("lookup", draw(rows), None))
    return ops


def build(ops):
    tables = MemoryMappedTables(
        total_rows=256,
        rqa_slots=32,
        bloom_group_size=16,
        fpt_cache_entries=16,  # tiny: forces cache churn
    )
    reference = {}
    for op, row, slot in ops:
        if op == "quarantine":
            tables.on_quarantine(row, slot)
            reference[row] = slot
        elif op == "release":
            tables.on_release(row)
            reference.pop(row, None)
        else:
            tables.lookup(row)
    return tables, reference


class TestChainEquivalence:
    @given(table_ops())
    @settings(max_examples=150, deadline=None)
    def test_lookups_match_reference(self, ops):
        tables, reference = build(ops)
        for row in range(256):
            assert tables.lookup(row).slot == reference.get(row)

    @given(table_ops())
    @settings(max_examples=150, deadline=None)
    def test_batch_lookups_match_reference(self, ops):
        tables, reference = build(ops)
        for row in range(0, 256, 7):
            assert tables.lookup_batch(row, 5).slot == reference.get(row)

    @given(table_ops())
    @settings(max_examples=100, deadline=None)
    def test_bloom_never_hides_mapped_rows(self, ops):
        tables, reference = build(ops)
        for row in reference:
            assert tables.bloom.maybe_quarantined(row)

    @given(table_ops())
    @settings(max_examples=100, deadline=None)
    def test_outcome_counts_total_queries(self, ops):
        tables, _ = build(ops)
        lookups = sum(1 for op, _, _ in ops if op == "lookup")
        assert sum(tables.outcome_counts.values()) == lookups
