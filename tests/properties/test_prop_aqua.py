"""Property tests: AQUA system invariants under arbitrary access streams.

These are the executable statements of the paper's design invariants:

* **Mapping consistency** -- FPT and RPT always agree (every valid RPT
  slot points back through the FPT, and vice versa).
* **Location uniqueness** -- no two logical rows resolve to the same
  physical row (accesses never alias).
* **Data integrity** -- a row's content survives any quarantine churn.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.aqua import AquaMitigation
from repro.core.memtables import SramTables
from repro.dram.refresh import EPOCH_NS

from tests.conftest import make_aqua_config


hot_rows = st.integers(min_value=100, max_value=119)


@st.composite
def access_streams(draw):
    """Bursty streams over 20 rows across up to 3 epochs."""
    stream = []
    epoch = 0
    for _ in range(draw(st.integers(min_value=1, max_value=40))):
        row = draw(hot_rows)
        burst = draw(st.integers(min_value=1, max_value=40))
        if epoch < 2 and draw(st.integers(min_value=0, max_value=9)) == 0:
            epoch += 1
        stream.append((row, burst, epoch))
    return stream


def fpt_slot(aqua, row):
    if isinstance(aqua.tables, SramTables):
        return aqua.tables.fpt._cat.lookup(row)
    return aqua.tables.dram_fpt.peek(row)


def check_mapping_consistency(aqua):
    # Every valid RPT slot's row maps back to that slot through the FPT.
    seen_rows = set()
    for slot in range(aqua.rqa.num_slots):
        row = aqua.rqa.resident_row(slot)
        if row is None:
            continue
        assert row not in seen_rows, "row resident in two slots"
        seen_rows.add(row)
        if aqua._pinned_fpt.get(row) == aqua.rqa_base + slot:
            continue  # table row, mapped via the SRAM-pinned entries
        assert fpt_slot(aqua, row) == slot


@st.composite
def table_modes(draw):
    return draw(st.sampled_from(["sram", "memory-mapped"]))


class TestSystemInvariants:
    @given(access_streams(), table_modes())
    @settings(max_examples=100, deadline=None)
    def test_fpt_rpt_agree(self, stream, mode):
        aqua = AquaMitigation(make_aqua_config(table_mode=mode, rqa_slots=128))
        for row, burst, epoch in stream:
            aqua.access_batch(row, burst, epoch * EPOCH_NS + 1.0)
        check_mapping_consistency(aqua)

    @given(access_streams(), table_modes())
    @settings(max_examples=100, deadline=None)
    def test_locations_never_alias(self, stream, mode):
        aqua = AquaMitigation(make_aqua_config(table_mode=mode, rqa_slots=128))
        for row, burst, epoch in stream:
            aqua.access_batch(row, burst, epoch * EPOCH_NS + 1.0)
        locations = [aqua.locate(row) for row in range(100, 120)]
        assert len(set(locations)) == len(locations)

    @given(access_streams(), table_modes())
    @settings(max_examples=100, deadline=None)
    def test_data_integrity(self, stream, mode):
        aqua = AquaMitigation(make_aqua_config(table_mode=mode, rqa_slots=128))
        for row in range(100, 120):
            aqua.data.write(row, f"token-{row}")
        for row, burst, epoch in stream:
            aqua.access_batch(row, burst, epoch * EPOCH_NS + 1.0)
        for row in range(100, 120):
            assert aqua.data.read(aqua.locate(row)) == f"token-{row}"

    @given(access_streams())
    @settings(max_examples=60, deadline=None)
    def test_routed_physical_matches_locate(self, stream):
        aqua = AquaMitigation(make_aqua_config(rqa_slots=128))
        for row, burst, epoch in stream:
            result = aqua.access_batch(row, burst, epoch * EPOCH_NS + 1.0)
            assert result.physical_row == aqua.locate(row)
