"""Property tests: the FPT-Cache never serves a stale or wrong entry."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.fpt_cache import FptCache


rows = st.integers(min_value=0, max_value=127)
slots = st.integers(min_value=0, max_value=31)


@st.composite
def cache_ops(draw):
    ops = []
    for _ in range(draw(st.integers(min_value=0, max_value=100))):
        kind = draw(st.integers(min_value=0, max_value=2))
        if kind == 0:
            ops.append(("install", draw(rows), draw(slots)))
        elif kind == 1:
            ops.append(("invalidate", draw(rows), None))
        else:
            ops.append(("lookup", draw(rows), None))
    return ops


class TestCacheCorrectness:
    @given(cache_ops())
    @settings(max_examples=200)
    def test_hits_always_return_last_installed_slot(self, ops):
        cache = FptCache(num_entries=32, ways=4, group_size=16)
        reference = {}
        for op, row, slot in ops:
            if op == "install":
                cache.install(row, slot, singleton=False)
                reference[row] = slot
            elif op == "invalidate":
                cache.invalidate(row)
                reference.pop(row, None)
            else:
                found = cache.lookup(row)
                # A miss is always allowed (capacity evictions); a hit
                # must return exactly the last installed slot.
                if found is not None:
                    assert found == reference.get(row)

    @given(cache_ops())
    @settings(max_examples=100)
    def test_occupancy_bounded(self, ops):
        cache = FptCache(num_entries=32, ways=4, group_size=16)
        for op, row, slot in ops:
            if op == "install":
                cache.install(row, slot, singleton=False)
            elif op == "invalidate":
                cache.invalidate(row)
        assert cache.occupancy() <= 32

    @given(st.lists(st.tuples(rows, slots), max_size=60))
    @settings(max_examples=100)
    def test_singleton_probe_never_satisfied_by_own_entry(self, installs):
        # The cache-level guarantee: a row's *own* entry never answers
        # its singleton probe.  (Cross-entry consistency of the
        # singleton bits is the table layer's invariant, covered by
        # the memtables property tests.)
        cache = FptCache(num_entries=256, ways=16, group_size=16)
        groups_seen = set()
        for row, slot in installs:
            group = row // 16
            cache.install(row, slot, singleton=group not in groups_seen)
            if group not in groups_seen:
                # Sole entry of its group: the probe must miss.
                assert not cache.covered_by_singleton(row)
            groups_seen.add(group)


class TestPerRowVsExact:
    @given(
        st.lists(
            st.tuples(rows, st.integers(min_value=1, max_value=20)),
            max_size=60,
        )
    )
    @settings(max_examples=100)
    def test_per_row_tracker_matches_exact(self, chunks):
        from repro.trackers.exact import ExactTracker
        from repro.trackers.per_row import PerRowCounterTracker

        exact = ExactTracker(threshold=16)
        per_row = PerRowCounterTracker(threshold=16, cache_entries=4)
        for row, count in chunks:
            assert exact.observe_batch(row, count) == per_row.observe_batch(
                row, count
            )
            assert exact.estimate(row) == per_row.estimate(row)
