"""Property tests: Hydra's conservative-estimation guarantee.

Property P1 depends on the tracker never under-counting; Hydra's group
inheritance ensures this for any access stream.
"""

from collections import Counter

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.trackers.hydra import HydraTracker


rows = st.integers(min_value=0, max_value=63)
streams = st.lists(rows, max_size=300)


class TestConservativeEstimation:
    @given(streams)
    @settings(max_examples=150)
    def test_never_undercounts(self, stream):
        tracker = HydraTracker(
            threshold=32, rows_per_group=8, group_threshold=8, rcc_entries=4
        )
        true = Counter()
        for row in stream:
            tracker.observe(row)
            true[row] += 1
            assert tracker.estimate(row) >= min(
                true[row], tracker.group_threshold
            )

    @given(streams)
    @settings(max_examples=150)
    def test_engaged_rows_strictly_dominate_truth(self, stream):
        tracker = HydraTracker(
            threshold=32, rows_per_group=8, group_threshold=8
        )
        true = Counter()
        for row in stream:
            tracker.observe(row)
            true[row] += 1
        for row, count in true.items():
            if row in tracker._rct:
                assert tracker.estimate(row) >= count

    @given(streams)
    @settings(max_examples=100)
    def test_detection_by_threshold(self, stream):
        threshold = 24
        tracker = HydraTracker(
            threshold=threshold, rows_per_group=8, group_threshold=8
        )
        true = Counter()
        fired = Counter()
        for row in stream:
            true[row] += 1
            if tracker.observe(row):
                fired[row] += 1
            if true[row] >= threshold:
                assert fired[row] >= 1
