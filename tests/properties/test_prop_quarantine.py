"""Property tests: the RQA never reuses a slot within one epoch."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.quarantine import RowQuarantineArea, RqaExhaustedError


@st.composite
def allocation_schedules(draw):
    """(row, epoch) pairs with non-decreasing epochs."""
    epochs = 0
    schedule = []
    for step in range(draw(st.integers(min_value=1, max_value=60))):
        if draw(st.booleans()):
            epochs += 1
        schedule.append((1000 + step, epochs))
    return schedule


class TestNoIntraEpochReuse:
    @given(allocation_schedules(), st.integers(min_value=2, max_value=16))
    @settings(max_examples=200)
    def test_slot_epochs_unique(self, schedule, num_slots):
        rqa = RowQuarantineArea(num_slots=num_slots)
        filled = []  # (slot, epoch) history
        for row, epoch in schedule:
            try:
                allocation = rqa.allocate(row, epoch)
            except RqaExhaustedError:
                # The guard fired: the head's slot was filled this epoch.
                continue
            assert (allocation.slot, epoch) not in filled
            filled.append((allocation.slot, epoch))

    @given(allocation_schedules(), st.integers(min_value=2, max_value=16))
    @settings(max_examples=200)
    def test_eviction_only_for_older_epochs(self, schedule, num_slots):
        rqa = RowQuarantineArea(num_slots=num_slots)
        install_epoch = {}
        for row, epoch in schedule:
            try:
                allocation = rqa.allocate(row, epoch)
            except RqaExhaustedError:
                continue
            if allocation.evicted_row is not None:
                assert install_epoch[allocation.evicted_row] < epoch
            install_epoch[row] = epoch

    @given(allocation_schedules(), st.integers(min_value=2, max_value=16))
    @settings(max_examples=100)
    def test_occupancy_never_exceeds_slots(self, schedule, num_slots):
        rqa = RowQuarantineArea(num_slots=num_slots)
        for row, epoch in schedule:
            try:
                rqa.allocate(row, epoch)
            except RqaExhaustedError:
                continue
            assert rqa.occupancy() <= num_slots
