"""Property tests: Misra-Gries detection guarantees under any stream.

The guarantee behind security property P1: the tracker never
*under*-estimates a row, so every row truly reaching the threshold
fires a mitigation by the time it does.
"""

from collections import Counter

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.trackers.misra_gries import MisraGriesBank


rows = st.integers(min_value=0, max_value=40)
streams = st.lists(rows, max_size=400)


class TestNeverUndercounts:
    @given(streams)
    @settings(max_examples=200)
    def test_tracked_estimate_at_least_true_count(self, stream):
        bank = MisraGriesBank(threshold=16, capacity=8)
        true = Counter()
        for row in stream:
            bank.observe(row)
            true[row] += 1
            estimate = bank.estimate(row)
            if estimate:
                assert estimate >= true[row]

    @given(streams)
    @settings(max_examples=200)
    def test_untracked_rows_bounded_by_spill(self, stream):
        bank = MisraGriesBank(threshold=16, capacity=8)
        true = Counter()
        for row in stream:
            bank.observe(row)
            true[row] += 1
        for row, count in true.items():
            if bank.estimate(row) == 0:
                assert count <= bank.spill


class TestDetectionGuarantee:
    @given(streams)
    @settings(max_examples=200)
    def test_rows_reaching_threshold_fire(self, stream):
        threshold = 16
        bank = MisraGriesBank(threshold=threshold, capacity=8)
        true = Counter()
        fired = Counter()
        for row in stream:
            true[row] += 1
            if bank.observe(row):
                fired[row] += 1
            if true[row] >= threshold:
                assert fired[row] >= 1, (
                    f"row {row} reached {true[row]} activations unflagged"
                )


class TestBatchEquivalence:
    @given(
        st.lists(
            st.tuples(rows, st.integers(min_value=1, max_value=12)),
            max_size=150,
        )
    )
    @settings(max_examples=200)
    def test_batch_matches_singles(self, chunks):
        single = MisraGriesBank(threshold=16, capacity=8)
        batched = MisraGriesBank(threshold=16, capacity=8)
        single_fires = 0
        batched_fires = 0
        for row, count in chunks:
            for _ in range(count):
                single_fires += single.observe(row)
            batched_fires += batched.observe_batch(row, count)
        assert single.spill == batched.spill
        assert single._counts == batched._counts
        # Fire totals may differ by at most the multi-crossing folding
        # within one batch; with batch <= 12 << threshold they match.
        assert single_fires == batched_fires


class TestMinPointer:
    @given(streams)
    @settings(max_examples=100)
    def test_min_count_is_true_minimum(self, stream):
        bank = MisraGriesBank(threshold=16, capacity=8)
        for row in stream:
            bank.observe(row)
        if len(bank):
            assert bank.min_count() == min(bank._counts.values())
