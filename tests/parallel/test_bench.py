"""The perf harness: schema, regression gate, CLI round trip."""

from __future__ import annotations

import json

import pytest

from repro import bench
from repro.cli import main as cli_main
from repro.errors import ConfigError
from repro.telemetry import MetricsRegistry


TINY = bench.BenchCase(
    "tiny", schemes=("aqua-sram",), workloads=("xz",), epochs=1
)


def make_report(**case_overrides) -> dict:
    """A schema-valid report without running anything."""
    case = {
        "wall_s": 1.0, "acts_per_s": 1e6, "peak_rss_kb": 1000.0,
        "stages": {}, "runs": 1, "failures": 0,
    }
    case.update(case_overrides)
    return {
        "schema_version": bench.BENCH_SCHEMA_VERSION,
        "rev": "test",
        "timestamp": 0.0,
        "config_digest": "d" * 64,
        "cases": {"tiny": case},
    }


class TestRunBench:
    def test_report_is_schema_valid(self):
        report = bench.run_bench((TINY,))
        bench.validate_report(report)  # must not raise
        case = report["cases"]["tiny"]
        assert case["wall_s"] > 0
        assert case["acts_per_s"] > 0
        assert case["peak_rss_kb"] > 0
        assert case["failures"] == 0
        assert set(case["stages"]) == {"expand", "execute", "aggregate"}

    def test_stage_walls_land_in_telemetry_registry(self):
        registry = MetricsRegistry()
        bench.run_case(TINY, registry)
        snapshot = registry.snapshot()
        assert (
            snapshot["bench_stage_seconds{case=tiny,stage=execute}"] > 0
        )
        assert "bench_acts_per_second{case=tiny}" in snapshot

    def test_config_digest_tracks_the_grid(self):
        other = bench.BenchCase(
            "tiny", schemes=("aqua-sram",), workloads=("xz",), epochs=2
        )
        assert bench.config_digest((TINY,)) != bench.config_digest((other,))
        assert bench.config_digest((TINY,)) == bench.config_digest((TINY,))


class TestValidateReport:
    def test_missing_key_rejected(self):
        report = make_report()
        del report["config_digest"]
        with pytest.raises(ConfigError, match="config_digest"):
            bench.validate_report(report)

    def test_wrong_schema_version_rejected(self):
        report = make_report()
        report["schema_version"] = 99
        with pytest.raises(ConfigError, match="schema_version"):
            bench.validate_report(report)

    def test_non_numeric_case_field_rejected(self):
        report = make_report(wall_s="fast")
        with pytest.raises(ConfigError, match="wall_s"):
            bench.validate_report(report)


class TestCompare:
    def test_within_tolerance_passes(self):
        current = make_report(wall_s=1.1)
        baseline = make_report(wall_s=1.0)
        regressions, warnings = bench.compare(current, baseline)
        assert regressions == []
        assert warnings == []

    def test_regression_detected(self):
        current = make_report(wall_s=2.0)
        baseline = make_report(wall_s=1.0)
        regressions, _ = bench.compare(current, baseline)
        assert len(regressions) == 1
        assert "tiny" in regressions[0]

    def test_slack_absorbs_noise_on_tiny_cases(self):
        # 0.05s vs 0.02s is +150% but far inside the absolute grace.
        current = make_report(wall_s=0.05)
        baseline = make_report(wall_s=0.02)
        regressions, _ = bench.compare(current, baseline)
        assert regressions == []
        regressions, _ = bench.compare(
            current, baseline, slack_s=0.0
        )
        assert len(regressions) == 1

    def test_digest_and_case_mismatches_warn_not_fail(self):
        current = make_report()
        current["cases"]["extra"] = dict(current["cases"]["tiny"])
        baseline = make_report()
        baseline["config_digest"] = "e" * 64
        baseline["cases"]["gone"] = dict(baseline["cases"]["tiny"])
        regressions, warnings = bench.compare(current, baseline)
        assert regressions == []
        assert len(warnings) == 3  # digest + extra-no-baseline + gone


class TestWriteReport:
    def test_directory_out_names_file_by_rev(self, tmp_path):
        path = bench.write_report(make_report(), str(tmp_path))
        assert path.endswith("BENCH_test.json")
        bench.validate_report(bench.load_report(path))

    def test_explicit_json_path_respected(self, tmp_path):
        target = tmp_path / "sub" / "baseline.json"
        path = bench.write_report(make_report(), str(target))
        assert path == str(target)
        assert target.exists()

    def test_load_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ConfigError, match="not valid JSON"):
            bench.load_report(str(bad))
        with pytest.raises(ConfigError, match="cannot read"):
            bench.load_report(str(tmp_path / "missing.json"))


class TestBenchCli:
    def test_quick_bench_emits_schema_valid_json(self, tmp_path, capsys):
        assert cli_main(["bench", "--quick", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "bench_stage_seconds" in out
        written = list(tmp_path.glob("BENCH_*.json"))
        assert len(written) == 1
        report = bench.load_report(str(written[0]))
        assert set(report["cases"]) == {
            case.name for case in bench.QUICK_CASES
        }

    def test_check_fails_on_regression_and_names_escape_hatch(
        self, tmp_path, capsys
    ):
        baseline = make_report(wall_s=1e-9)
        baseline["config_digest"] = bench.config_digest(bench.QUICK_CASES)
        baseline["cases"] = {
            case.name: dict(wall_s=1e-9, acts_per_s=1.0, peak_rss_kb=1.0)
            for case in bench.QUICK_CASES
        }
        baseline_path = tmp_path / "BENCH_baseline.json"
        baseline_path.write_text(json.dumps(baseline))
        code = cli_main(
            ["bench", "--quick", "--out", str(tmp_path / "out"),
             "--check", str(baseline_path),
             "--tolerance", "0", "--slack", "0"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "PERF REGRESSION" in out
        assert "--update-baseline" in out  # the documented escape hatch


class TestProfile:
    def test_profile_block_present_and_ranked(self):
        registry = MetricsRegistry()
        result = bench.run_case(TINY, registry, profile=True)
        rows = result["profile"]
        assert 0 < len(rows) <= bench.PROFILE_TOP
        for row in rows:
            assert set(row) == {"func", "ncalls", "tottime_s", "cumtime_s"}
        cums = [row["cumtime_s"] for row in rows]
        assert cums == sorted(cums, reverse=True)

    def test_profile_off_by_default(self):
        registry = MetricsRegistry()
        result = bench.run_case(TINY, registry)
        assert "profile" not in result

    def test_profiled_report_stays_schema_valid(self):
        report = bench.run_bench((TINY,), profile=True)
        bench.validate_report(report)

    def test_cli_profile_flag_emits_stderr_summary(self, tmp_path, capsys):
        assert cli_main(
            ["bench", "--quick", "--out", str(tmp_path), "--profile"]
        ) == 0
        captured = capsys.readouterr()
        assert "profile[" in captured.err
        written = list(tmp_path.glob("BENCH_*.json"))
        report = bench.load_report(str(written[0]))
        for case in report["cases"].values():
            assert case["profile"]


class TestParallelOverheadGate:
    def _paired_report(self, serial_s, parallel_s):
        report = make_report()
        report["cases"] = {
            "serial": dict(wall_s=serial_s, acts_per_s=1.0,
                           peak_rss_kb=1.0),
            "parallel-j2": dict(wall_s=parallel_s, acts_per_s=1.0,
                                peak_rss_kb=1.0),
        }
        return report

    def test_parallel_beating_serial_passes(self):
        report = self._paired_report(serial_s=1.0, parallel_s=0.8)
        assert bench.compare_parallel_overhead(report) == []

    def test_parallel_overhead_regression_detected(self):
        report = self._paired_report(serial_s=1.0, parallel_s=2.0)
        regressions = bench.compare_parallel_overhead(
            report, tolerance=0.25, slack_s=0.25
        )
        assert len(regressions) == 1
        assert "parallel-j2" in regressions[0]
        assert "serial" in regressions[0]

    def test_slack_absorbs_pool_noise(self):
        # +20ms over a 100ms serial wall: inside the absolute grace.
        report = self._paired_report(serial_s=0.1, parallel_s=0.12)
        assert bench.compare_parallel_overhead(report) == []

    def test_unpaired_cases_are_ignored(self):
        report = make_report()  # only "tiny" -- no pair present
        assert bench.compare_parallel_overhead(report) == []

    def test_compare_includes_overhead_gate(self):
        current = self._paired_report(serial_s=1.0, parallel_s=5.0)
        baseline = self._paired_report(serial_s=1.0, parallel_s=5.0)
        baseline["config_digest"] = current["config_digest"]
        regressions, _ = bench.compare(current, baseline)
        assert any("parallel-j2" in r for r in regressions)
