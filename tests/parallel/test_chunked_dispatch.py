"""Amortized chunk dispatch and parent-side trace prewarming."""

from __future__ import annotations

import multiprocessing

import pytest

from repro.parallel import expand_grid, run_sweep_parallel
from repro.parallel.executor import (
    _CHUNKS_PER_WORKER,
    ExecOptions,
    _chunk_points,
    _execute_chunk,
    _execute_point,
    _prewarm_trace_cache,
)
from repro.workloads import clear_trace_cache, trace_cache_stats


fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="relies on fork inheritance of the trace memo cache",
)


def _points(schemes=("aqua-sram", "victim-refresh"), workloads=("xz", "wrf")):
    return expand_grid(list(schemes), list(workloads), epochs=1, seed=7)


class TestChunkPoints:
    def test_empty_pending_yields_no_chunks(self):
        assert _chunk_points([], 4) == []

    def test_preserves_grid_order_and_loses_nothing(self):
        points = _points()
        chunks = _chunk_points(points, 2)
        flat = [p for chunk in chunks for p in chunk]
        assert flat == points

    def test_fewer_points_than_jobs_gives_singleton_chunks(self):
        points = _points(workloads=("xz",))  # 2 points
        chunks = _chunk_points(points, 8)
        assert [len(c) for c in chunks] == [1, 1]

    def test_large_grids_bound_task_count(self):
        points = _points(
            schemes=("aqua-sram",), workloads=("xz",)
        ) * 100  # synthetic long pending list
        jobs = 3
        chunks = _chunk_points(points, jobs)
        assert len(chunks) <= jobs * _CHUNKS_PER_WORKER
        assert sum(len(c) for c in chunks) == len(points)
        # Balanced: no chunk more than one point larger than another.
        sizes = {len(c) for c in chunks}
        assert max(sizes) - min(sizes) <= max(sizes)

    def test_single_job_still_chunks(self):
        points = _points()
        chunks = _chunk_points(points, 1)
        assert len(chunks) <= _CHUNKS_PER_WORKER
        assert [p for c in chunks for p in c] == points


class TestExecuteChunk:
    def test_chunk_payloads_match_pointwise_execution(self):
        clear_trace_cache()
        points = _points(workloads=("xz",))
        options = ExecOptions()
        chunked = _execute_chunk(points, options)
        pointwise = [_execute_point(p, options) for p in points]
        assert chunked == pointwise


class TestPrewarm:
    def test_prewarm_populates_cache_for_distinct_targets(self):
        clear_trace_cache()
        points = _points()  # 2 schemes x 2 workloads, same seed/epochs
        _prewarm_trace_cache(points)
        hits, misses, live = trace_cache_stats()
        # One generation per distinct (workload, seed, epochs) target.
        assert misses == 2
        assert live == 2
        assert hits == 0

    def test_prewarm_swallows_unknown_workloads(self):
        clear_trace_cache()
        points = _points(workloads=("xz",))
        bogus = [p.__class__(**{**p.__dict__, "workload": "no-such"})
                 for p in points[:1]]
        _prewarm_trace_cache(bogus + points)
        assert trace_cache_stats()[2] == 1

    @fork_only
    def test_sweep_runs_warm_after_prewarm(self):
        """jobs>1 sweeps prewarm in the parent: a following serial
        execution of the same grid is all cache hits."""
        clear_trace_cache()
        points = _points(workloads=("xz",))
        run_sweep_parallel(points, jobs=2)
        misses_after_parallel = trace_cache_stats()[1]
        run_sweep_parallel(points, jobs=1)
        hits, misses, _ = trace_cache_stats()
        assert misses == misses_after_parallel
        assert hits >= len(points)


class TestDeterminism:
    def test_chunked_jobs_equal_serial_results(self):
        points = _points()
        serial = run_sweep_parallel(points, jobs=1)
        chunked = run_sweep_parallel(points, jobs=3)
        assert {
            k: v.to_dict() for k, v in serial.results.items()
        } == {
            k: v.to_dict() for k, v in chunked.results.items()
        }
        assert list(serial.results) == list(chunked.results)
