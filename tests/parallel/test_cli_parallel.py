"""CLI surface of the parallel executor: --jobs, --out, resume."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


class TestJobsValidation:
    def test_zero_jobs_is_a_clean_parser_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--jobs", "0"])
        assert excinfo.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_negative_jobs_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--jobs", "-2"])
        assert excinfo.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_non_integer_jobs_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--jobs", "many"])
        assert excinfo.value.code == 2
        assert "not an integer" in capsys.readouterr().err


class TestParallelSweep:
    BASE = ["sweep", "--scheme", "aqua-sram", "--workloads", "xz", "wrf",
            "--epochs", "1", "--seed", "7"]

    def test_out_files_byte_identical_across_jobs(self, tmp_path, capsys):
        serial = tmp_path / "serial.json"
        parallel = tmp_path / "parallel.json"
        assert main(self.BASE + ["--jobs", "1", "--out", str(serial)]) == 0
        assert main(self.BASE + ["--jobs", "2", "--out", str(parallel)]) == 0
        assert serial.read_bytes() == parallel.read_bytes()

    def test_out_json_shape(self, tmp_path, capsys):
        out = tmp_path / "results.json"
        assert main(self.BASE + ["--out", str(out)]) == 0
        document = json.loads(out.read_text())
        assert document["meta"] == {
            "scheme": "aqua-sram", "trh": 1000, "epochs": 1, "seed": 7,
        }
        assert [r["workload"] for r in document["results"]] == ["xz", "wrf"]
        assert document["failures"] == []
        assert "slowdown" in document["results"][0]["result"]

    def test_parallel_resume_prints_resumed(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt.jsonl"
        partial = ["sweep", "--scheme", "aqua-sram", "--workloads", "xz",
                   "--epochs", "1", "--seed", "7",
                   "--checkpoint", str(ckpt)]
        assert main(partial) == 0
        capsys.readouterr()
        assert main(self.BASE + ["--jobs", "2", "--resume", str(ckpt)]) == 0
        out = capsys.readouterr().out
        assert "(resumed)" in out

    def test_jobs_header_is_reported(self, capsys):
        assert main(
            ["sweep", "--scheme", "aqua-sram", "--workloads", "xz",
             "--epochs", "1", "--jobs", "2"]
        ) == 0
        assert "2 jobs" in capsys.readouterr().out

    def test_parallel_metrics_table_matches_serial_format(self, capsys):
        args = ["sweep", "--scheme", "aqua-sram", "--workloads", "xz",
                "--epochs", "1", "--metrics", "--jobs", "2"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "metrics [xz]:" in out
        assert "scheme_accesses_total{scheme=aqua}" in out
