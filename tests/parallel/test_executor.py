"""Parallel sweep executor: determinism, crash ledger, checkpoint merge.

The determinism tests assert *byte* identity between ``jobs=1`` and
``jobs=N`` (the invariant the CI parallel-determinism step re-proves
on every PR); the crash tests rely on ``fork``-inherited scheme
registrations and are skipped on spawn platforms.
"""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest

from repro.errors import ConfigError
from repro.faults import FaultSpec
from repro.parallel import expand_grid, resolve_workload, run_sweep_parallel
from repro.sim import checkpoint as ckpt
from repro.sim import runner
from repro.sim.checkpoint import SweepCheckpoint
from repro.telemetry import Telemetry
from repro.workloads.mixes import all_mixes


fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="relies on fork inheritance of scheme registrations",
)


def small_points(workloads=("xz", "wrf"), epochs=1, seed=7, **kwargs):
    return expand_grid(
        ["aqua-sram"], list(workloads), epochs=epochs, seed=seed, **kwargs
    )


def canonical(report) -> str:
    """Byte-stable rendering of a report's results and failures."""
    return json.dumps(
        {
            "results": {
                "/".join(key): result.to_dict()
                for key, result in report.results.items()
            },
            "failures": [
                (f.scheme, f.workload, f.error) for f in report.failures
            ],
        },
        sort_keys=True,
    )


class TestGrid:
    def test_expansion_order_is_scheme_threshold_workload(self):
        points = expand_grid(
            ["aqua-sram", "victim-refresh"], ["xz", "gcc"],
            thresholds=(1000, 2000),
        )
        assert [(p.label, p.workload) for p in points] == [
            ("aqua-sram@1000", "xz"), ("aqua-sram@1000", "gcc"),
            ("aqua-sram@2000", "xz"), ("aqua-sram@2000", "gcc"),
            ("victim-refresh@1000", "xz"), ("victim-refresh@1000", "gcc"),
            ("victim-refresh@2000", "xz"), ("victim-refresh@2000", "gcc"),
        ]

    def test_single_threshold_keeps_bare_labels(self):
        points = expand_grid(["aqua-mm"], ["xz"])
        assert points[0].label == "aqua-mm"
        assert points[0].key == ("aqua-mm", "xz")

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ConfigError, match="unknown scheme"):
            expand_grid(["doom"], ["xz"])

    def test_empty_thresholds_rejected(self):
        with pytest.raises(ConfigError, match="threshold"):
            expand_grid(["aqua-mm"], ["xz"], thresholds=())

    def test_resolve_workload_spec_and_mix(self):
        assert resolve_workload("xz", seed=7).name == "xz"
        mix_name = all_mixes()[0].name
        assert resolve_workload(mix_name).name == mix_name
        with pytest.raises(ConfigError, match="unknown workload"):
            resolve_workload("doom")


class TestDeterminism:
    def test_parallel_results_byte_identical_to_serial(self):
        points = small_points()
        serial = run_sweep_parallel(points, jobs=1)
        parallel = run_sweep_parallel(points, jobs=2)
        assert canonical(serial) == canonical(parallel)

    def test_merge_order_is_grid_order_not_completion_order(self):
        # gcc takes ~10x longer than xz, so with 2 workers xz finishes
        # first; the merged dict must still lead with gcc.
        points = expand_grid(["aqua-sram"], ["gcc", "xz"], epochs=1, seed=7)
        report = run_sweep_parallel(points, jobs=2)
        assert list(report.results) == [p.key for p in points]

    def test_instrumented_runs_match_too(self):
        points = small_points(workloads=("xz",))
        serial = run_sweep_parallel(points, jobs=1, instrument=True)
        parallel = run_sweep_parallel(points, jobs=2, instrument=True)
        assert canonical(serial) == canonical(parallel)
        key = points[0].key
        assert serial.metrics[key] == parallel.metrics[key]


class TestValidation:
    def test_zero_jobs_rejected(self):
        with pytest.raises(ConfigError, match="jobs must be >= 1"):
            run_sweep_parallel(small_points(), jobs=0)

    def test_live_injector_factory_rejected(self):
        with pytest.raises(ConfigError, match="not process-safe"):
            run_sweep_parallel(
                small_points(),
                jobs=2,
                injector_factory=lambda scheme, name: None,
            )

    def test_duplicate_run_points_rejected(self):
        points = small_points(workloads=("xz",))
        with pytest.raises(ConfigError, match="duplicate"):
            run_sweep_parallel(points + points, jobs=1)


class TestFaultSpecParallelism:
    """Chaos under parallelism: fault seeds derive per run point."""

    def test_fault_schedule_independent_of_jobs(self):
        points = expand_grid(
            ["aqua-sram"], ["xz", "gcc"], epochs=1, seed=7,
            scheme_kwargs={"rqa_full_policy": "throttle"},
        )
        spec = FaultSpec(seed=7, fault_rate=0.01)
        serial = run_sweep_parallel(points, jobs=1, fault_spec=spec)
        parallel = run_sweep_parallel(points, jobs=2, fault_spec=spec)
        assert canonical(serial) == canonical(parallel)
        assert serial.faults == parallel.faults
        # The schedules actually fired (rate high enough to matter).
        assert any(
            fault["counts"] for fault in serial.faults.values()
        )

    def test_site_rate_overrides_survive_pickling(self):
        points = small_points(workloads=("xz",))
        spec = FaultSpec(
            seed=3, fault_rate=0.02, rates=(("tracker_drop", 0.0),)
        )
        report = run_sweep_parallel(points, jobs=2, fault_spec=spec)
        for fault in report.faults.values():
            assert "tracker_drop" not in fault["counts"]


class TestTelemetryMerge:
    def test_worker_snapshots_fold_into_parent_registry(self):
        points = small_points()
        telemetry = Telemetry()
        report = run_sweep_parallel(points, jobs=2, telemetry=telemetry)
        merged = telemetry.registry.snapshot()
        assert merged  # cross-process metrics arrived
        # The parent total equals the sum of the per-run snapshots.
        name = "scheme_accesses_total{scheme=aqua}"
        expected = sum(
            snap.get(name, 0.0) for snap in report.metrics.values()
        )
        assert merged[name] == pytest.approx(expected)
        assert expected > 0


@fork_only
class TestWorkerFaults:
    """A dying worker lands in the failure ledger, not a sweep abort."""

    @pytest.fixture
    def crash_scheme(self):
        def crash_builder(trh, **kwargs):
            def build(telemetry=None):
                os._exit(3)

            return build

        runner.register_scheme_builder("crash-test", crash_builder)
        yield "crash-test"
        runner.SCHEME_BUILDERS.pop("crash-test", None)

    @pytest.fixture
    def boom_scheme(self):
        def boom_builder(trh, **kwargs):
            def build(telemetry=None):
                raise RuntimeError("synthetic scheme failure")

            return build

        runner.register_scheme_builder("boom-test", boom_builder)
        yield "boom-test"
        runner.SCHEME_BUILDERS.pop("boom-test", None)

    def test_worker_crash_goes_to_ledger_and_bystanders_finish(
        self, crash_scheme
    ):
        points = expand_grid([crash_scheme], ["xz"], epochs=1, seed=7)
        points += small_points()
        report = run_sweep_parallel(points, jobs=2)
        assert len(report.failures) == 1
        failure = report.failures[0]
        assert failure.scheme == crash_scheme
        assert "worker process died" in failure.error
        assert len(report.results) == 2  # the innocent runs completed

    def test_python_exception_goes_to_ledger_without_pool_break(
        self, boom_scheme
    ):
        points = expand_grid([boom_scheme], ["xz"], epochs=1, seed=7)
        points += small_points()
        report = run_sweep_parallel(points, jobs=2)
        assert [f.scheme for f in report.failures] == [boom_scheme]
        assert "RuntimeError: synthetic scheme failure" in (
            report.failures[0].error
        )
        assert len(report.results) == 2


class TestCheckpointMerge:
    META = {"scheme": "aqua-sram", "trh": 1000, "epochs": 1, "seed": 7}

    def test_parallel_checkpoint_consolidates_and_resumes(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        points = small_points()
        with SweepCheckpoint.create(path, self.META) as checkpoint:
            first = run_sweep_parallel(points, jobs=2, checkpoint=checkpoint)
        assert first.resumed == 0
        assert ckpt.worker_journal_paths(path) == []  # sidecars absorbed
        with SweepCheckpoint.resume(path, self.META) as checkpoint:
            second = run_sweep_parallel(
                points, jobs=2, checkpoint=checkpoint
            )
        assert second.resumed == len(points)
        assert canonical(first) == canonical(second)

    def test_parallel_checkpoint_bytes_match_serial(self, tmp_path):
        serial_path = str(tmp_path / "serial.jsonl")
        parallel_path = str(tmp_path / "parallel.jsonl")
        points = small_points()
        with SweepCheckpoint.create(serial_path, self.META) as checkpoint:
            run_sweep_parallel(points, jobs=1, checkpoint=checkpoint)
        with SweepCheckpoint.create(parallel_path, self.META) as checkpoint:
            run_sweep_parallel(points, jobs=2, checkpoint=checkpoint)
        with open(serial_path, "rb") as fh:
            serial_bytes = fh.read()
        with open(parallel_path, "rb") as fh:
            parallel_bytes = fh.read()
        assert serial_bytes == parallel_bytes

    def test_resume_absorbs_orphaned_worker_journals(self, tmp_path):
        # A parallel sweep killed before consolidation leaves finished
        # work only in the sidecars; resume must not re-run it.
        points = small_points()
        donor = run_sweep_parallel(points, jobs=1)
        first = points[0]
        path = str(tmp_path / "ckpt.jsonl")
        SweepCheckpoint.create(path, self.META).close()
        ckpt.append_result_record(
            ckpt.worker_journal_path(path, 12345),
            first.label,
            first.workload,
            donor.results[first.key].to_dict(),
        )
        with SweepCheckpoint.resume(path, self.META) as checkpoint:
            report = run_sweep_parallel(points, jobs=1, checkpoint=checkpoint)
        assert report.resumed == 1  # the journaled run was salvaged
        assert ckpt.worker_journal_paths(path) == []
        assert canonical(report) == canonical(donor)

    def test_corrupt_sidecar_lines_are_skipped_not_fatal(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        sidecar = ckpt.worker_journal_path(path, 1)
        with open(sidecar, "w", encoding="utf-8") as fh:
            fh.write('{"record": "result", "scheme": "x"\n')  # truncated
        records, skipped = ckpt.load_result_records(sidecar)
        assert records == []
        assert skipped == 1

    def test_resume_after_absorb_does_not_double_count(self, tmp_path):
        # A parent that consolidated a sidecar but died before unlinking
        # it leaves the same record in the main file AND the sidecar;
        # resume must fold to exactly one record, one resumed run.
        points = small_points(workloads=("xz",))
        point = points[0]
        donor = run_sweep_parallel(points, jobs=1)
        path = str(tmp_path / "ckpt.jsonl")
        with SweepCheckpoint.create(path, self.META) as checkpoint:
            checkpoint.record(
                point.label, point.workload, donor.results[point.key]
            )
        ckpt.append_result_record(
            ckpt.worker_journal_path(path, 777),
            point.label,
            point.workload,
            donor.results[point.key].to_dict(),
        )
        with SweepCheckpoint.resume(path, self.META) as checkpoint:
            report = run_sweep_parallel(points, jobs=2, checkpoint=checkpoint)
        assert report.resumed == 1
        assert canonical(report) == canonical(donor)
        assert ckpt.worker_journal_paths(path) == []
        with open(path, encoding="utf-8") as fh:
            records = [json.loads(line) for line in fh if line.strip()]
        result_keys = [
            (record["scheme"], record["workload"])
            for record in records
            if record["record"] == "result"
        ]
        assert result_keys == [point.key]  # exactly one line survived


@fork_only
class TestCrashSalvage:
    """A run journaled to a sidecar before its worker died must be
    salvaged from the journal, never re-executed (re-running would
    waste the work and double-count against the checkpoint)."""

    def test_journaled_run_is_salvaged_not_rerun(self, tmp_path):
        # Donor result for the record the dying worker leaves behind.
        donor = run_sweep_parallel(small_points(workloads=("xz",)), jobs=1)
        donor_dict = donor.results[("aqua-sram", "xz")].to_dict()

        def journal_then_crash_builder(trh, **kwargs):
            # Mimics a worker that finished its run, journaled it, and
            # was killed before the future could report back.
            def build(telemetry=None):
                from repro.parallel import executor as ex

                ckpt.append_result_record(
                    ex._WORKER_JOURNAL, "salvage-test", "xz", donor_dict
                )
                os._exit(3)

            return build

        runner.register_scheme_builder(
            "salvage-test", journal_then_crash_builder
        )
        try:
            path = str(tmp_path / "ckpt.jsonl")
            points = expand_grid(["salvage-test"], ["xz"], epochs=1, seed=7)
            meta = {"scheme": "salvage-test", "trh": 1000, "epochs": 1,
                    "seed": 7}
            with SweepCheckpoint.create(path, meta) as checkpoint:
                report = run_sweep_parallel(
                    points, jobs=2, checkpoint=checkpoint
                )
        finally:
            runner.SCHEME_BUILDERS.pop("salvage-test", None)
        # Salvaged, not blamed: the journaled result made it into the
        # report and the crash never reached the failure ledger.
        assert report.failures == []
        assert report.results[("salvage-test", "xz")].to_dict() == donor_dict
        assert ckpt.worker_journal_paths(path) == []
        with open(path, encoding="utf-8") as fh:
            records = [json.loads(line) for line in fh if line.strip()]
        result_keys = [
            (record["scheme"], record["workload"])
            for record in records
            if record["record"] == "result"
        ]
        assert result_keys == [("salvage-test", "xz")]  # once, exactly
