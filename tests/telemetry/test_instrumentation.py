"""End-to-end instrumentation: events agree with scheme counters."""

import json

import pytest

from repro.core.aqua import AquaMitigation
from repro.core.config import AquaConfig
from repro.dram.geometry import DramGeometry
from repro.sim import runner
from repro.sim.stats import WorkloadResult
from repro.sim.system import SystemSimulator
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.workloads.spec import workload


GEOMETRY = DramGeometry(banks_per_rank=4, rows_per_bank=4096)


def _small_aqua(telemetry=None):
    return AquaMitigation(
        AquaConfig(
            rowhammer_threshold=128,
            geometry=GEOMETRY,
            rqa_slots=64,
            tracker_entries_per_bank=64,
        ),
        telemetry=telemetry,
    )


def _hammer(scheme, rows=16, per_row=150):
    """Drive enough hot rows through the scheme to force migrations
    (well under the RQA's 64 intra-epoch slots)."""
    now = 0.0
    for i in range(rows):
        scheme.access_batch(100 + 2 * i, per_row, now)
        now += 50_000.0
    return now


class TestEventCounterAgreement:
    def test_migration_events_match_stats(self):
        telemetry = Telemetry()
        scheme = _small_aqua(telemetry)
        _hammer(scheme)
        counts = telemetry.tracer.kind_counts()
        assert scheme.stats.migrations > 0
        assert counts["migration"] == scheme.stats.migrations
        assert counts.get("eviction", 0) == scheme.stats.evictions
        assert counts["quarantine_rotation"] == scheme.rqa.allocations

    def test_migration_counter_matches_events(self):
        telemetry = Telemetry()
        scheme = _small_aqua(telemetry)
        _hammer(scheme)
        total = sum(
            value
            for key, value in telemetry.registry.snapshot().items()
            if key.startswith("migrations_total{")
        )
        assert total == scheme.stats.migrations

    def test_event_timestamps_monotone_in_simulated_time(self):
        telemetry = Telemetry()
        scheme = _small_aqua(telemetry)
        _hammer(scheme)
        stamps = [event.ts_ns for event in telemetry.tracer.events()]
        assert stamps == sorted(stamps)
        assert stamps[-1] > 0.0


class TestNullPath:
    def test_default_scheme_uses_shared_null_object(self):
        scheme = _small_aqua()
        assert scheme.telemetry is NULL_TELEMETRY
        assert scheme.rqa.telemetry is NULL_TELEMETRY

    def test_uninstrumented_run_behaves_identically(self):
        plain = _small_aqua()
        traced = _small_aqua(Telemetry())
        _hammer(plain)
        _hammer(traced)
        assert plain.stats.migrations == traced.stats.migrations
        assert plain.stats.busy_ns == traced.stats.busy_ns
        assert plain.rqa.allocations == traced.rqa.allocations

    def test_simulator_result_has_no_timeline_without_telemetry(self):
        scheme = runner.aqua_memory_mapped(1000)()
        result = SystemSimulator(scheme).run(workload("xz"), epochs=1)
        assert result.timeline is None


@pytest.fixture(scope="module")
def traced_run():
    """One fully-telemetered gcc run, shared across assertions."""
    telemetry = Telemetry()
    scheme = runner.aqua_memory_mapped(1000)(telemetry=telemetry)
    simulator = SystemSimulator(scheme)
    result = simulator.run(workload("gcc"), epochs=2)
    return telemetry, simulator, result


class TestSimulatorTimeline:
    def test_timeline_one_snapshot_per_epoch(self, traced_run):
        telemetry, simulator, result = traced_run
        assert [s.epoch for s in result.timeline] == [0, 1]
        epoch_ns = simulator.timing.trefw_ns
        assert [s.ts_ns for s in result.timeline] == [
            epoch_ns, 2 * epoch_ns
        ]
        # The deltas cover collector-fed series: epoch totals sum to
        # the final counter values.
        migrated = sum(
            s.deltas.get("scheme_migrations_total{scheme=aqua}", 0.0)
            for s in result.timeline
        )
        assert migrated == result.migrations > 0

    def test_boundary_events_carry_rqa_occupancy(self, traced_run):
        telemetry, _, result = traced_run
        boundaries = [
            e for e in telemetry.tracer.events()
            if e.kind == "refresh_window"
        ]
        assert len(boundaries) == result.epochs == 2
        assert boundaries[-1].attrs["rqa_occupancy"] > 0
        assert boundaries[-1].attrs["workload"] == "gcc"

    def test_trace_agrees_with_result_counters(self, traced_run):
        telemetry, _, result = traced_run
        counts = telemetry.tracer.kind_counts()
        assert telemetry.tracer.dropped == 0
        assert counts["migration"] == result.migrations > 0
        assert counts.get("eviction", 0) == result.evictions
        assert counts["quarantine_rotation"] == (
            result.extra["rqa_allocations"]
        )


class TestResultSerialization:
    def test_to_dict_round_trips_through_json(self, traced_run):
        _, _, result = traced_run
        assert result.lookup_breakdown  # aqua tracks lookup outcomes
        assert result.extra["rqa_allocations"] > 0
        payload = json.loads(json.dumps(result.to_dict()))
        rebuilt = WorkloadResult.from_dict(payload)
        assert rebuilt == result

    def test_round_trip_without_optional_fields(self):
        result = WorkloadResult(
            workload="w", scheme="s", epochs=1, activations=10,
            migrations=1, row_moves=1, evictions=0, busy_ns=5.0,
            table_dram_ns=0.0, peak_stall_ns=0.0, slowdown=1.01,
            mem_fraction=0.5,
        )
        payload = json.loads(json.dumps(result.to_dict()))
        assert WorkloadResult.from_dict(payload) == result
