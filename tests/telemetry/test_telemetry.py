"""Telemetry facade: null object, collectors, epoch snapshots."""

import json

from repro.telemetry import (
    NULL_TELEMETRY,
    EpochSnapshot,
    NullTelemetry,
    Telemetry,
)


class TestNullTelemetry:
    def test_disabled_and_shared(self):
        assert NULL_TELEMETRY.enabled is False
        assert isinstance(NULL_TELEMETRY, NullTelemetry)
        # __slots__ = (): the null object carries no per-instance state.
        assert not hasattr(NULL_TELEMETRY, "__dict__")

    def test_every_method_is_a_noop(self):
        assert NULL_TELEMETRY.event("migration", 1.0, row=3) is False
        NULL_TELEMETRY.inc("x")
        NULL_TELEMETRY.set_gauge("x", 1.0)
        NULL_TELEMETRY.observe("x", 1.0)
        NULL_TELEMETRY.add_collector(lambda t: None)
        NULL_TELEMETRY.collect()
        assert NULL_TELEMETRY.epoch_snapshot(0, 1.0) is None
        assert NULL_TELEMETRY.timeline == ()


class TestTelemetry:
    def test_recording_helpers_hit_registry_and_tracer(self):
        telemetry = Telemetry()
        assert telemetry.enabled is True
        telemetry.inc("migrations_total", scheme="aqua")
        telemetry.set_gauge("occupancy", 5.0)
        telemetry.observe("lat", 3.0)
        assert telemetry.event("migration", 10.0, row=1) is True
        snapshot = telemetry.registry.snapshot()
        assert snapshot["migrations_total{scheme=aqua}"] == 1.0
        assert snapshot["occupancy"] == 5.0
        assert telemetry.tracer.kind_counts() == {"migration": 1}

    def test_collectors_run_at_snapshot_time_idempotent_add(self):
        telemetry = Telemetry()
        calls = []

        def collector(sink):
            calls.append(sink)
            sink.registry.counter("collected_total").set_total(7.0)

        telemetry.add_collector(collector)
        telemetry.add_collector(collector)  # registered once
        telemetry.collect()
        assert calls == [telemetry]
        assert telemetry.registry.snapshot()["collected_total"] == 7.0

    def test_epoch_snapshot_diffs_since_last_boundary(self):
        telemetry = Telemetry()
        telemetry.inc("migrations_total", 5.0)
        first = telemetry.epoch_snapshot(0, ts_ns=64.0, rqa_occupancy=5)
        assert first.deltas == {"migrations_total": 5.0}
        telemetry.inc("migrations_total", 2.0)
        second = telemetry.epoch_snapshot(1, ts_ns=128.0)
        assert second.deltas == {"migrations_total": 2.0}
        # Unchanged series are elided from the deltas entirely.
        third = telemetry.epoch_snapshot(2, ts_ns=192.0)
        assert third.deltas == {}
        assert telemetry.timeline == [first, second, third]

    def test_epoch_snapshot_emits_boundary_event_with_attrs(self):
        telemetry = Telemetry()
        telemetry.epoch_snapshot(3, ts_ns=256.0, rqa_occupancy=17)
        (event,) = telemetry.tracer.events()
        assert event.kind == "refresh_window"
        assert event.ts_ns == 256.0
        assert event.attrs == {"epoch": 3, "rqa_occupancy": 17}

    def test_reset_clears_everything(self):
        telemetry = Telemetry()
        telemetry.inc("x")
        telemetry.event("migration", 1.0)
        telemetry.epoch_snapshot(0, ts_ns=1.0)
        telemetry.reset()
        assert telemetry.registry.snapshot() == {}
        assert telemetry.tracer.events() == []
        assert telemetry.timeline == []
        # Baselines cleared too: the next delta starts from zero.
        telemetry.inc("x", 4.0)
        assert telemetry.epoch_snapshot(0, ts_ns=2.0).deltas == {"x": 4.0}


class TestEpochSnapshotSerialization:
    def test_round_trips_through_json(self):
        snapshot = EpochSnapshot(
            epoch=2, ts_ns=128e6, deltas={"migrations_total": 9.0}
        )
        payload = json.loads(json.dumps(snapshot.to_dict()))
        assert EpochSnapshot.from_dict(payload) == snapshot
