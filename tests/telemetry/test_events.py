"""Event tracer: ring bounds, sampling, and export round-trips."""

import json

import pytest

from repro.telemetry.events import (
    EventTracer,
    load_trace,
    write_chrome_trace,
    write_jsonl,
)


def _fill(tracer, n, kind="migration"):
    for i in range(n):
        tracer.emit(kind, float(i), row=i)


class TestRingBuffer:
    def test_capacity_honored(self):
        tracer = EventTracer(capacity=8)
        _fill(tracer, 20)
        events = tracer.events()
        assert len(events) == 8
        # Oldest events were overwritten: the ring keeps the tail.
        assert [e.attrs["row"] for e in events] == list(range(12, 20))
        assert tracer.offered == 20
        assert tracer.recorded == 20
        assert tracer.dropped == 12

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            EventTracer(capacity=0)
        with pytest.raises(ValueError):
            EventTracer(sample_rate=0.0)
        with pytest.raises(ValueError):
            EventTracer(sample_rate=1.5)

    def test_clear_resets_counters(self):
        tracer = EventTracer(capacity=4)
        _fill(tracer, 10)
        tracer.clear()
        assert tracer.events() == []
        assert tracer.offered == 0
        assert tracer.dropped == 0


class TestSampling:
    def test_deterministic_one_in_four(self):
        tracer = EventTracer(sample_rate=0.25)
        _fill(tracer, 100)
        assert tracer.recorded == 25
        assert tracer.sampled_out == 75
        # Error diffusion, no RNG: a second tracer records identically.
        other = EventTracer(sample_rate=0.25)
        _fill(other, 100)
        assert [e.ts_ns for e in other.events()] == [
            e.ts_ns for e in tracer.events()
        ]

    def test_full_rate_keeps_everything(self):
        tracer = EventTracer()
        _fill(tracer, 50)
        assert tracer.recorded == 50
        assert tracer.sampled_out == 0

    def test_kind_counts(self):
        tracer = EventTracer()
        _fill(tracer, 3, kind="migration")
        _fill(tracer, 2, kind="eviction")
        assert tracer.kind_counts() == {"migration": 3, "eviction": 2}


class TestExport:
    def test_jsonl_round_trip(self, tmp_path):
        tracer = EventTracer()
        tracer.emit("migration", 100.0, row=7, reason="demand")
        tracer.emit("eviction", 250.0, row=9)
        path = str(tmp_path / "trace.jsonl")
        assert tracer.export_jsonl(path, extra={"workload": "gcc"}) == 2
        records = load_trace(path)
        assert records == [
            {"ts_ns": 100.0, "kind": "migration", "row": 7,
             "reason": "demand", "workload": "gcc"},
            {"ts_ns": 250.0, "kind": "eviction", "row": 9,
             "workload": "gcc"},
        ]

    def test_single_line_jsonl_loads(self, tmp_path):
        # A one-event JSONL file is whole-file-parseable JSON; it must
        # still load as JSONL, not be mistaken for a Chrome trace.
        path = str(tmp_path / "one.jsonl")
        tracer = EventTracer()
        tracer.emit("migration", 1.0)
        tracer.export_jsonl(path)
        assert load_trace(path) == [{"ts_ns": 1.0, "kind": "migration"}]

    def test_chrome_round_trip_preserves_ts_and_args(self, tmp_path):
        tracer = EventTracer()
        tracer.emit("migration", 2_000.0, row=3)
        path = str(tmp_path / "trace.json")
        assert tracer.export_chrome_trace(
            path, extra={"workload": "xz"}
        ) == 1
        with open(path, encoding="utf-8") as fh:
            document = json.load(fh)
        (entry,) = document["traceEvents"]
        assert entry["name"] == "migration"
        assert entry["ph"] == "i"
        assert entry["ts"] == 2.0  # microseconds
        records = load_trace(path)
        assert records[0]["ts_ns"] == 2_000.0
        assert records[0]["kind"] == "migration"
        assert records[0]["row"] == 3
        assert records[0]["workload"] == "xz"

    def test_chrome_distinct_tags_get_distinct_tracks(self, tmp_path):
        tracer = EventTracer()
        tracer.emit("migration", 1.0)
        event = tracer.events()[0]
        path = str(tmp_path / "trace.json")
        write_chrome_trace(
            path,
            [(event, {"workload": "gcc"}), (event, {"workload": "xz"})],
        )
        with open(path, encoding="utf-8") as fh:
            entries = json.load(fh)["traceEvents"]
        assert entries[0]["tid"] != entries[1]["tid"]

    def test_write_jsonl_tagged_events(self, tmp_path):
        tracer = EventTracer()
        tracer.emit("migration", 1.0)
        event = tracer.events()[0]
        path = str(tmp_path / "trace.jsonl")
        count = write_jsonl(path, [(event, None), (event, {"w": "a"})])
        assert count == 2
        records = load_trace(path)
        assert "w" not in records[0]
        assert records[1]["w"] == "a"
