"""Metrics registry: counters, gauges, histograms, snapshot/reset."""

import math

import pytest

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    label_key,
    series_name,
)


class TestSeriesNaming:
    def test_unlabeled_series_is_bare_name(self):
        assert series_name("migrations_total", label_key({})) == (
            "migrations_total"
        )

    def test_labels_sorted_and_stringified(self):
        key = label_key({"scheme": "aqua", "reason": 7})
        assert series_name("migrations_total", key) == (
            "migrations_total{reason=7,scheme=aqua}"
        )

    def test_label_order_is_canonical(self):
        assert label_key({"a": 1, "b": 2}) == label_key({"b": 2, "a": 1})


class TestCounter:
    def test_inc_accumulates_per_label_set(self):
        counter = Counter("migrations_total")
        counter.inc(scheme="aqua")
        counter.inc(2.0, scheme="aqua")
        counter.inc(scheme="rrs")
        assert counter.value(scheme="aqua") == 3.0
        assert counter.value(scheme="rrs") == 1.0
        assert counter.value(scheme="unseen") == 0.0

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1.0)

    def test_set_total_overwrites_for_collectors(self):
        counter = Counter("scheme_accesses_total")
        counter.set_total(10.0, scheme="aqua")
        counter.set_total(25.0, scheme="aqua")
        assert counter.value(scheme="aqua") == 25.0


class TestGauge:
    def test_set_and_add(self):
        gauge = Gauge("rqa_occupancy")
        gauge.set(100.0)
        gauge.add(-25.0)
        assert gauge.value() == 75.0


class TestHistogram:
    def test_count_sum_mean(self):
        hist = Histogram("fpt_lookup_ns")
        for value in (1.0, 2.0, 300.0):
            hist.observe(value, scheme="aqua")
        assert hist.count(scheme="aqua") == 3
        assert hist.sum(scheme="aqua") == 303.0
        assert hist.mean(scheme="aqua") == pytest.approx(101.0)
        assert math.isnan(hist.mean(scheme="other"))

    def test_series_emits_cumulative_buckets(self):
        hist = Histogram("lat", buckets=(10.0, 100.0))
        hist.observe(5.0)
        hist.observe(50.0)
        hist.observe(5_000.0)  # beyond the last bound -> +Inf
        series = hist.series()
        assert series["lat_bucket{le=10}"] == 1.0
        assert series["lat_bucket{le=100}"] == 2.0
        assert series["lat_bucket{le=+Inf}"] == 3.0
        assert series["lat_count"] == 3.0
        assert series["lat_sum"] == 5_055.0

    def test_needs_at_least_one_bucket(self):
        with pytest.raises(ValueError):
            Histogram("empty", buckets=())


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_kind_clash_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(TypeError):
            registry.gauge("a")

    def test_snapshot_flattens_every_series(self):
        registry = MetricsRegistry()
        registry.counter("migrations_total").inc(scheme="aqua")
        registry.gauge("occupancy").set(42.0)
        snapshot = registry.snapshot()
        assert snapshot["migrations_total{scheme=aqua}"] == 1.0
        assert snapshot["occupancy"] == 42.0

    def test_reset_zeroes_but_keeps_registrations(self):
        registry = MetricsRegistry()
        registry.counter("migrations_total").inc()
        registry.reset()
        assert registry.snapshot() == {}
        assert registry.counter("migrations_total").value() == 0.0

    def test_render_table_hides_buckets(self):
        registry = MetricsRegistry()
        registry.histogram("lat").observe(5.0)
        table = registry.render_table()
        assert "_bucket{" not in table
        assert "lat_count" in table

    def test_render_table_empty(self):
        assert "no metrics" in MetricsRegistry().render_table()
