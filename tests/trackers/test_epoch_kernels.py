"""Array-kernel / scalar parity for the tracker epoch API.

``observe_epoch`` must equal chunk-by-chunk ``observe_batch`` calls --
crossings per chunk AND full internal state -- and the epoch planning
predicates (``epoch_cannot_cross``, ``sparse_feed_mask``,
``settle_epoch_counters``) must never change what a scheme could
observe.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.trackers import (
    ExactTracker,
    HydraTracker,
    MisraGriesTracker,
    PerRowCounterTracker,
)
from repro.trackers.cbf import CountingBloomFilter
from repro.trackers.misra_gries import MisraGriesBank


def _stream(seed: int, n: int = 300, rows: int = 40, zero_every: int = 0):
    rng = np.random.default_rng(seed)
    row_ids = rng.integers(0, rows, size=n).astype(np.int64)
    counts = rng.integers(1, 60, size=n).astype(np.int64)
    if zero_every:
        counts[::zero_every] = 0
    return row_ids, counts


TRACKER_FACTORIES = {
    "exact": lambda: ExactTracker(100),
    "per-row": lambda: PerRowCounterTracker(100, cache_entries=8),
    "misra-gries": lambda: MisraGriesTracker(100, num_banks=4),
    "misra-gries-tiny": lambda: MisraGriesTracker(
        100, num_banks=4, entries_per_bank=3
    ),
    "hydra": lambda: HydraTracker(100),
}


@pytest.mark.parametrize("name", sorted(TRACKER_FACTORIES))
@pytest.mark.parametrize("seed", (0, 1, 2))
@pytest.mark.parametrize("zero_every", (0, 7))
def test_observe_epoch_matches_batched_observe(name, seed, zero_every):
    rows, counts = _stream(seed, zero_every=zero_every)
    vec = TRACKER_FACTORIES[name]()
    ref = TRACKER_FACTORIES[name]()
    got = vec.observe_epoch(rows, counts)
    want = np.array(
        [ref.observe_batch(int(r), int(c)) for r, c in zip(rows, counts)],
        dtype=np.int64,
    )
    np.testing.assert_array_equal(got, want)
    assert vec.observations == ref.observations
    assert vec.triggers == ref.triggers
    for row in np.unique(rows).tolist():
        assert vec.estimate(int(row)) == ref.estimate(int(row))


def test_observe_fast_matches_observe_batch_state():
    """The inlined MG kernel must be indistinguishable from
    ``observe_batch`` under interleaved use."""
    fast = MisraGriesBank(50, capacity=4)
    slow = MisraGriesBank(50, capacity=4)
    rng = np.random.default_rng(11)
    for _ in range(500):
        row = int(rng.integers(0, 12))
        n = int(rng.integers(1, 30))
        assert fast.observe_fast(row, n) == slow.observe_batch(row, n)
    assert fast._counts == slow._counts
    assert fast._buckets == slow._buckets
    assert fast._min_count == slow._min_count
    assert fast.spill == slow.spill
    assert fast.observations == slow.observations
    assert fast.triggers == slow.triggers
    assert fast.spurious_installs == slow.spurious_installs


@pytest.mark.parametrize("name", sorted(TRACKER_FACTORIES))
@pytest.mark.parametrize("seed", (3, 4))
def test_epoch_cannot_cross_is_sound(name, seed):
    """A cannot-cross verdict must mean zero crossings when fed."""
    rows, counts = _stream(seed, n=60, rows=30)
    tracker = TRACKER_FACTORIES[name]()
    uniq, inverse = np.unique(rows, return_inverse=True)
    totals = np.bincount(
        inverse, weights=counts, minlength=len(uniq)
    ).astype(np.int64)
    if tracker.epoch_cannot_cross(uniq, totals):
        crossings = tracker.observe_epoch(rows, counts)
        assert int(crossings.sum()) == 0


def test_epoch_cannot_cross_rejects_hot_rows():
    tracker = ExactTracker(100)
    uniq = np.array([5], dtype=np.int64)
    totals = np.array([150], dtype=np.int64)
    assert not tracker.epoch_cannot_cross(uniq, totals)
    # Carry-in counts push a small epoch total over the line.
    tracker.observe_batch(7, 80)
    assert not tracker.epoch_cannot_cross(
        np.array([7], dtype=np.int64), np.array([30], dtype=np.int64)
    )


def test_sparse_feed_mask_omission_is_unobservable():
    """Feeding only the masked rows of a fresh bank (and settling the
    rest in bulk) must leave identical estimates and crossings for the
    fed rows, and identical rank/bank counters."""
    full = MisraGriesTracker(100, num_banks=2, entries_per_bank=32)
    sparse = MisraGriesTracker(100, num_banks=2, entries_per_bank=32)
    rows, counts = _stream(8, n=120, rows=20)
    uniq, inverse = np.unique(rows, return_inverse=True)
    totals = np.bincount(
        inverse, weights=counts, minlength=len(uniq)
    ).astype(np.int64)
    feed = sparse.sparse_feed_mask(uniq, totals)
    full_crossings = full.observe_epoch(rows, counts)
    chunk_feed = feed[inverse]
    sparse_crossings = sparse.observe_epoch(
        rows[chunk_feed], counts[chunk_feed]
    )
    sparse.settle_epoch_counters(rows[~chunk_feed], counts[~chunk_feed])
    np.testing.assert_array_equal(
        full_crossings[chunk_feed], sparse_crossings
    )
    assert int(full_crossings[~chunk_feed].sum()) == 0
    for row, must_feed in zip(uniq.tolist(), feed.tolist()):
        if must_feed:
            assert sparse.estimate(int(row)) == full.estimate(int(row))
    assert sparse.observations == full.observations
    assert sparse.triggers == full.triggers


def test_sparse_feed_mask_conservative_under_pressure():
    """Capacity pressure, reserve, carried state, or spill force a
    full feed (all-True mask)."""
    bank = MisraGriesBank(100, capacity=4)
    uniq = np.arange(6, dtype=np.int64)
    totals = np.full(6, 10, dtype=np.int64)
    assert bank.sparse_feed_mask(uniq, totals).all()  # over capacity
    small = uniq[:2]
    small_totals = totals[:2]
    assert not bank.sparse_feed_mask(small, small_totals).any()
    assert bank.sparse_feed_mask(small, small_totals, reserve=3).all()
    bank.observe_batch(99, 1)  # non-empty table
    assert bank.sparse_feed_mask(small, small_totals).all()


def test_settle_epoch_counters_matches_feeding_exact():
    """For exact counters the settled totals are observable state."""
    fed = ExactTracker(1000)
    settled = ExactTracker(1000)
    rows, counts = _stream(9, n=50, rows=10)
    fed.observe_epoch(rows, counts)
    settled.settle_epoch_counters(rows, counts)
    assert settled.observations == fed.observations
    for row in np.unique(rows).tolist():
        assert settled.estimate(int(row)) == fed.estimate(int(row))


def test_cbf_increment_batch_matches_sequential():
    batched = CountingBloomFilter(counters=64, hashes=3)
    sequential = CountingBloomFilter(counters=64, hashes=3)
    rng = np.random.default_rng(21)
    rows = rng.integers(0, 1000, size=200).astype(np.int64)
    amounts = rng.integers(0, 9, size=200).astype(np.int64)
    batched.increment_batch(rows, amounts)
    for row, amount in zip(rows.tolist(), amounts.tolist()):
        sequential.increment(int(row), int(amount))
    np.testing.assert_array_equal(batched._counters, sequential._counters)
    for row in np.unique(rows).tolist():
        assert batched.estimate(int(row)) == sequential.estimate(int(row))


def test_cbf_increment_batch_validates():
    cbf = CountingBloomFilter(counters=16, hashes=2)
    with pytest.raises(ValueError):
        cbf.increment_batch(
            np.array([1, 2], dtype=np.int64), np.array([1], dtype=np.int64)
        )
    with pytest.raises(ValueError):
        cbf.increment_batch(
            np.array([1], dtype=np.int64), np.array([-1], dtype=np.int64)
        )
