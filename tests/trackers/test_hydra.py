"""Hydra hybrid tracker: group counters, per-row engagement, RCC."""

import pytest

from repro.trackers.hydra import HydraTracker


class TestGroupPhase:
    def test_group_counts_shared_below_threshold(self):
        tracker = HydraTracker(
            threshold=100, rows_per_group=4, group_threshold=50
        )
        # Rows 0..3 share group 0.
        for _ in range(20):
            tracker.observe(0)
        assert tracker.estimate(1) == 20  # group estimate

    def test_per_row_engages_at_group_threshold(self):
        tracker = HydraTracker(
            threshold=100, rows_per_group=4, group_threshold=10
        )
        for _ in range(10):
            tracker.observe(0)
        assert tracker.tracked_rows == 1


class TestDetection:
    def test_never_undercounts(self):
        # The engaged per-row counter starts from the group count, so
        # the estimate is always >= the true count (property P1 holds).
        tracker = HydraTracker(
            threshold=100, rows_per_group=4, group_threshold=10
        )
        true = 0
        for _ in range(60):
            tracker.observe(0)
            true += 1
            assert tracker.estimate(0) >= true or tracker.estimate(0) == 0

    def test_trigger_fires_by_threshold(self):
        tracker = HydraTracker(
            threshold=50, rows_per_group=4, group_threshold=25
        )
        fired = any(tracker.observe(3) for _ in range(50))
        assert fired


class TestRcc:
    def test_dram_access_charged_on_miss(self):
        tracker = HydraTracker(
            threshold=100, rows_per_group=1, group_threshold=1, rcc_entries=2
        )
        for row in (1, 2, 3, 4):
            tracker.observe(row)
            tracker.observe(row)
        assert tracker.rct_dram_accesses >= 4

    def test_rcc_hit_on_hot_row(self):
        tracker = HydraTracker(
            threshold=100, rows_per_group=1, group_threshold=1
        )
        tracker.observe(1)
        tracker.observe(1)
        assert tracker.rcc_hits >= 1


class TestValidation:
    def test_reset(self):
        tracker = HydraTracker(threshold=100, rows_per_group=4)
        for _ in range(60):
            tracker.observe(0)
        tracker.reset()
        assert tracker.estimate(0) == 0
        assert tracker.tracked_rows == 0

    def test_invalid_group_threshold(self):
        with pytest.raises(ValueError):
            HydraTracker(threshold=10, group_threshold=11)

    def test_invalid_rows_per_group(self):
        with pytest.raises(ValueError):
            HydraTracker(threshold=10, rows_per_group=0)
