"""Misra-Gries tracker: Graphene trigger semantics (Sec. IV-B, IV-F)."""

import pytest

from repro.trackers.misra_gries import (
    MisraGriesBank,
    MisraGriesTracker,
    graphene_entries,
)


class TestProvisioning:
    def test_entries_follow_actmax_over_threshold(self):
        from repro.dram.timing import DDR4_2400

        assert graphene_entries(500) == DDR4_2400.act_max // 500
        assert graphene_entries(500) == pytest.approx(2720, abs=10)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            graphene_entries(0)


class TestBasicCounting:
    def test_trigger_at_threshold(self):
        bank = MisraGriesBank(threshold=10, capacity=8)
        fires = [bank.observe(1) for _ in range(10)]
        assert fires == [False] * 9 + [True]

    def test_trigger_repeats_at_multiples(self):
        bank = MisraGriesBank(threshold=10, capacity=8)
        fires = sum(bank.observe(1) for _ in range(30))
        assert fires == 3

    def test_estimate_tracks_count(self):
        bank = MisraGriesBank(threshold=10, capacity=8)
        for _ in range(7):
            bank.observe(5)
        assert bank.estimate(5) == 7
        assert bank.estimate(6) == 0

    def test_batch_equals_singles(self):
        single = MisraGriesBank(threshold=10, capacity=8)
        batched = MisraGriesBank(threshold=10, capacity=8)
        fires_single = sum(single.observe(1) for _ in range(25))
        fires_batched = batched.observe_batch(1, 25)
        assert fires_single == fires_batched
        assert single.estimate(1) == batched.estimate(1)


class TestSpill:
    def test_spill_grows_when_full(self):
        bank = MisraGriesBank(threshold=100, capacity=2)
        bank.observe(1)
        bank.observe(2)
        bank.observe(3)  # miss on full table
        assert bank.spill == 1

    def test_eviction_installs_with_spill_plus_one(self):
        bank = MisraGriesBank(threshold=100, capacity=2)
        bank.observe(1)
        bank.observe(2)
        # First miss: spill reaches min (1), evicts and installs at 2.
        bank.observe(3)
        assert bank.estimate(3) == 2
        assert len(bank) == 2

    def test_never_undercounts(self):
        # Misra-Gries guarantee: estimate >= true count for tracked rows,
        # and untracked rows have true count <= spill.
        bank = MisraGriesBank(threshold=1000, capacity=4)
        true_counts = {}
        stream = ([1] * 50 + [2] * 40 + [3, 4, 5, 6, 7] * 8) * 3
        for row in stream:
            bank.observe(row)
            true_counts[row] = true_counts.get(row, 0) + 1
        for row, true in true_counts.items():
            estimate = bank.estimate(row)
            if estimate:
                assert estimate >= true or bank.spill >= true - estimate
            else:
                assert true <= bank.spill + bank.min_count()

    def test_detection_guarantee_hot_row(self):
        # A row truly reaching the threshold always fires (property P1),
        # regardless of competing traffic.
        bank = MisraGriesBank(threshold=50, capacity=4)
        fired = False
        for i in range(49):
            bank.observe(100)
            bank.observe(1000 + i)  # interleaved cold misses
        fired = bank.observe(100)
        assert fired


class TestSpuriousMitigations:
    def test_spill_inherited_install_can_fire(self):
        # Sec. IV-F: installs inherit spill+1; when the spill crosses a
        # threshold multiple, the install fires without real ACTs.
        bank = MisraGriesBank(threshold=10, capacity=1)
        bank.observe(0)  # occupies the single slot
        fires = 0
        for row in range(1, 60):
            fires += bank.observe_batch(row, 1)
        assert bank.spurious_installs > 0
        assert fires >= bank.spurious_installs

    def test_no_spurious_when_table_large(self):
        bank = MisraGriesBank(threshold=10, capacity=128)
        for row in range(100):
            bank.observe(row)
        assert bank.spurious_installs == 0


class TestReset:
    def test_reset_clears_everything(self):
        bank = MisraGriesBank(threshold=10, capacity=2)
        for row in (1, 2, 3, 3, 3):
            bank.observe(row)
        bank.reset()
        assert bank.spill == 0
        assert len(bank) == 0
        assert bank.estimate(3) == 0
        assert bank.min_count() == 0


class TestPerBankComposition:
    def test_rows_route_to_their_bank(self):
        tracker = MisraGriesTracker(
            threshold=5, num_banks=4, entries_per_bank=8
        )
        for _ in range(5):
            tracker.observe(0)  # bank 0
        assert tracker.bank_tracker(0).estimate(0) == 5
        assert tracker.bank_tracker(1).estimate(0) == 0

    def test_trigger_counted_at_rank_level(self):
        tracker = MisraGriesTracker(
            threshold=5, num_banks=4, entries_per_bank=8
        )
        for _ in range(5):
            tracker.observe(1)
        assert tracker.triggers == 1

    def test_batch_observe_routes(self):
        tracker = MisraGriesTracker(
            threshold=5, num_banks=4, entries_per_bank=8
        )
        crossings = tracker.observe_batch(2, 12)
        assert crossings == 2
        assert tracker.bank_tracker(2).estimate(2) == 12
