"""Counting bloom filter and the dual-CBF RowBlocker."""

import pytest

from repro.dram.timing import DDR4_2400
from repro.trackers.cbf import CountingBloomFilter, RowBlocker


class TestCountingBloomFilter:
    def test_never_undercounts(self):
        cbf = CountingBloomFilter(counters=64, hashes=4)
        true = {}
        for row in [1, 2, 3, 1, 1, 2, 9, 9, 9, 9]:
            cbf.increment(row)
            true[row] = true.get(row, 0) + 1
        for row, count in true.items():
            assert cbf.estimate(row) >= count

    def test_exact_when_sparse(self):
        cbf = CountingBloomFilter(counters=4096, hashes=4)
        for _ in range(7):
            cbf.increment(42)
        assert cbf.estimate(42) == 7

    def test_aliasing_overcounts_gracefully(self):
        cbf = CountingBloomFilter(counters=4, hashes=2)
        for row in range(100):
            cbf.increment(row)
        # Tiny filter: estimates inflate but never go negative/missing.
        assert cbf.estimate(0) >= 1

    def test_clear(self):
        cbf = CountingBloomFilter(counters=64)
        cbf.increment(5, amount=10)
        cbf.clear()
        assert cbf.estimate(5) == 0

    def test_increment_amount(self):
        cbf = CountingBloomFilter(counters=4096)
        assert cbf.increment(7, amount=25) == 25

    def test_validation(self):
        with pytest.raises(ValueError):
            CountingBloomFilter(counters=0)
        with pytest.raises(ValueError):
            CountingBloomFilter(counters=16).increment(1, amount=-1)

    def test_sram_bytes(self):
        assert CountingBloomFilter(counters=8192).sram_bytes == 16 * 1024


class TestRowBlocker:
    HALF = DDR4_2400.trefw_ns / 2

    def test_estimates_accumulate_within_half_window(self):
        blocker = RowBlocker(counters=4096)
        for i in range(50):
            blocker.observe(7, float(i))
        assert blocker.estimate(7, 50.0) == 50

    def test_rotation_preserves_recent_history(self):
        blocker = RowBlocker(counters=4096)
        for i in range(50):
            blocker.observe(7, float(i))
        # After one rotation, the newly-active filter counted the
        # previous half-window too: history is not lost.
        assert blocker.estimate(7, self.HALF + 1.0) == 50
        assert blocker.rotations == 1

    def test_old_history_expires_after_two_rotations(self):
        blocker = RowBlocker(counters=4096)
        blocker.observe(7, 0.0, amount=50)
        assert blocker.estimate(7, 2 * self.HALF + 1.0) == 0

    def test_never_undercounts_within_window(self):
        blocker = RowBlocker(counters=4096)
        blocker.observe(7, 0.0, amount=30)
        blocker.observe(7, self.HALF + 1.0, amount=30)
        # Both bursts fall within one refresh window of each other; the
        # active estimate covers at least the most recent full half.
        assert blocker.estimate(7, self.HALF + 2.0) >= 60
