"""Tracker base class contracts."""

import pytest

from repro.trackers.base import PerBankTracker
from repro.trackers.exact import ExactTracker
from repro.trackers.misra_gries import MisraGriesBank


class TestValidation:
    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            ExactTracker(threshold=0)

    def test_per_bank_needs_banks(self):
        with pytest.raises(ValueError):
            PerBankTracker(
                threshold=5,
                num_banks=0,
                bank_of=lambda r: 0,
                factory=lambda t: ExactTracker(t),
            )


class TestDefaultBatch:
    def test_default_observe_batch_loops(self):
        tracker = ExactTracker(threshold=3)
        # The base-class default (loop over observe) must agree with
        # the override; exercise it via super().
        crossings = super(ExactTracker, tracker).observe_batch(1, 7)
        assert crossings == 2
        assert tracker.estimate(1) == 7

    def test_negative_batch_rejected(self):
        tracker = MisraGriesBank(threshold=3, capacity=4)
        with pytest.raises(ValueError):
            tracker.observe_batch(1, -2)

    def test_zero_batch_is_noop(self):
        tracker = MisraGriesBank(threshold=3, capacity=4)
        assert tracker.observe_batch(1, 0) == 0
        assert tracker.estimate(1) == 0


class TestPerBankStats:
    def test_observations_counted_at_both_levels(self):
        tracker = PerBankTracker(
            threshold=5,
            num_banks=2,
            bank_of=lambda r: r % 2,
            factory=lambda t: ExactTracker(t),
        )
        tracker.observe_batch(0, 4)
        tracker.observe(1)
        assert tracker.observations == 5
        assert tracker.bank_tracker(0).observations == 4
        assert tracker.bank_tracker(1).observations == 1
