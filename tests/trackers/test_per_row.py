"""Per-row DRAM counter tracker (CRA/Panopticon-style)."""

import pytest

from repro.trackers.per_row import PerRowCounterTracker


class TestExactness:
    def test_counts_are_exact(self):
        tracker = PerRowCounterTracker(threshold=100)
        for _ in range(37):
            tracker.observe(5)
        assert tracker.estimate(5) == 37

    def test_triggers_at_multiples(self):
        tracker = PerRowCounterTracker(threshold=10)
        fires = sum(tracker.observe(5) for _ in range(30))
        assert fires == 3

    def test_batch_matches_singles(self):
        a = PerRowCounterTracker(threshold=10)
        b = PerRowCounterTracker(threshold=10)
        fires_a = sum(a.observe(5) for _ in range(25))
        fires_b = b.observe_batch(5, 25)
        assert fires_a == fires_b
        assert a.estimate(5) == b.estimate(5)

    def test_no_spurious_mitigations_ever(self):
        # The contrast with Misra-Gries: streaming misses never trigger.
        tracker = PerRowCounterTracker(threshold=10, cache_entries=4)
        fires = sum(tracker.observe(row) for row in range(10_000))
        assert fires == 0


class TestCounterTraffic:
    def test_hot_rows_hit_the_cache(self):
        tracker = PerRowCounterTracker(threshold=1000, cache_entries=64)
        for _ in range(100):
            tracker.observe(5)
        assert tracker.cache_hits == 99
        assert tracker.counter_dram_accesses == 1

    def test_streaming_rows_thrash_to_dram(self):
        tracker = PerRowCounterTracker(threshold=1000, cache_entries=8)
        for row in range(1000):
            tracker.observe(row)
        # Every distinct row misses; evictions write back.
        assert tracker.counter_dram_accesses >= 1000
        assert tracker.dram_traffic_per_activation >= 1.0

    def test_writeback_toggle(self):
        lean = PerRowCounterTracker(
            threshold=1000, cache_entries=8, writeback=False
        )
        for row in range(1000):
            lean.observe(row)
        assert lean.counter_dram_accesses == 1000

    def test_reset(self):
        tracker = PerRowCounterTracker(threshold=10)
        tracker.observe_batch(5, 9)
        tracker.reset()
        assert tracker.estimate(5) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            PerRowCounterTracker(threshold=10, cache_entries=0)
        with pytest.raises(ValueError):
            PerRowCounterTracker(threshold=10).observe_batch(1, -1)
