"""Exact tracker: ideal per-row counters."""

import pytest

from repro.trackers.exact import ExactTracker


class TestCounting:
    def test_triggers_every_multiple(self):
        tracker = ExactTracker(threshold=4)
        fires = [tracker.observe(7) for _ in range(12)]
        assert [i + 1 for i, f in enumerate(fires) if f] == [4, 8, 12]

    def test_estimate_is_exact(self):
        tracker = ExactTracker(threshold=100)
        for _ in range(17):
            tracker.observe(3)
        assert tracker.estimate(3) == 17

    def test_batch_crossings(self):
        tracker = ExactTracker(threshold=10)
        assert tracker.observe_batch(1, 35) == 3
        assert tracker.observe_batch(1, 5) == 1  # 35 -> 40 crosses 40
        assert tracker.estimate(1) == 40

    def test_batch_zero(self):
        tracker = ExactTracker(threshold=10)
        assert tracker.observe_batch(1, 0) == 0

    def test_negative_batch_rejected(self):
        tracker = ExactTracker(threshold=10)
        with pytest.raises(ValueError):
            tracker.observe_batch(1, -1)


class TestAggregates:
    def test_rows_at_or_above(self):
        tracker = ExactTracker(threshold=1000)
        tracker.observe_batch(1, 5)
        tracker.observe_batch(2, 10)
        tracker.observe_batch(3, 20)
        assert tracker.rows_at_or_above(10) == 2
        assert tracker.rows_at_or_above(21) == 0

    def test_max_count(self):
        tracker = ExactTracker(threshold=1000)
        assert tracker.max_count() == 0
        tracker.observe_batch(9, 42)
        assert tracker.max_count() == 42

    def test_reset(self):
        tracker = ExactTracker(threshold=10)
        tracker.observe_batch(1, 9)
        tracker.reset()
        assert tracker.estimate(1) == 0
        assert tracker.max_count() == 0

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            ExactTracker(threshold=0)
