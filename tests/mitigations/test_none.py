"""Unprotected baseline scheme."""

import pytest

from repro.mitigations.none import NoMitigation


class TestPassThrough:
    def test_identity_translation(self):
        scheme = NoMitigation(total_rows=1024)
        result = scheme.access(100, 0.0)
        assert result.physical_row == 100
        assert result.busy_ns == 0.0
        assert not result.migrated

    def test_never_mitigates_under_hammering(self):
        scheme = NoMitigation(total_rows=1024)
        for _ in range(10_000):
            scheme.access(5, 0.0)
        assert scheme.stats.migrations == 0

    def test_batch_path(self):
        scheme = NoMitigation(total_rows=1024)
        result = scheme.access_batch(5, 500, 0.0)
        assert result.physical_row == 5
        assert scheme.stats.accesses == 500

    def test_bounds_checked(self):
        scheme = NoMitigation(total_rows=16)
        with pytest.raises(ValueError):
            scheme.access(16, 0.0)
