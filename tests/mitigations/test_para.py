"""PARA: probabilistic neighbour refresh."""

import pytest

from repro.attacks import patterns
from repro.attacks.adversary import AttackHarness
from repro.mitigations.para import Para, recommended_probability

from tests.conftest import SMALL_GEOMETRY


def make_para(trh=128, probability=0.05, seed=1):
    return Para(
        rowhammer_threshold=trh,
        geometry=SMALL_GEOMETRY,
        probability=probability,
        seed=seed,
    )


class TestProbability:
    def test_recommended_probability_monotone(self):
        # Lower thresholds need a higher refresh probability.
        assert recommended_probability(1000) > recommended_probability(100_000)

    def test_recommended_probability_bounds(self):
        p = recommended_probability(1000)
        assert 0.0 < p <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            recommended_probability(0)
        with pytest.raises(ValueError):
            recommended_probability(1000, target_failures=2.0)
        with pytest.raises(ValueError):
            make_para(probability=0.0)


class TestBehaviour:
    def test_refresh_rate_tracks_probability(self):
        para = make_para(probability=0.1)
        for i in range(5000):
            para.access(100 + (i % 7), 0.0)
        rate = para.stats.victim_refreshes / 5000
        assert rate == pytest.approx(0.1, abs=0.02)

    def test_refreshes_target_neighbors(self):
        para = make_para(probability=1.0)
        result = para.access(100, 0.0)
        assert len(result.refreshed_rows) == 1
        assert result.refreshed_rows[0] in para.mapper.neighbors(100)

    def test_rows_never_move(self):
        para = make_para(probability=1.0)
        result = para.access(100, 0.0)
        assert result.physical_row == 100

    def test_deterministic_with_seed(self):
        a = make_para(seed=7)
        b = make_para(seed=7)
        for i in range(100):
            ra = a.access(5, 0.0)
            rb = b.access(5, 0.0)
            assert ra.refreshed_rows == rb.refreshed_rows


class TestSecurity:
    def test_blocks_classic_hammering_at_adequate_probability(self):
        trh = 128
        para = make_para(trh=trh, probability=0.2, seed=3)
        harness = AttackHarness(
            para, rowhammer_threshold=trh, geometry=SMALL_GEOMETRY
        )
        # Short enough that PARA's own refreshes stay below T_RH per
        # neighbour (see the Half-Double test below for what happens
        # when they do not).
        pattern = patterns.single_sided(harness.mapper, 1, 100, 1000)
        report = harness.run(pattern)
        assert not report.succeeded

    def test_paras_own_refreshes_cause_half_double(self):
        # Sustained hammering makes PARA refresh the direct neighbours
        # hundreds of times -- and each refresh is an activation that
        # disturbs the rows at distance 2.  Half-Double emerges from a
        # plain single-sided pattern, with no help from the attacker.
        trh = 128
        para = make_para(trh=trh, probability=0.2, seed=3)
        harness = AttackHarness(
            para, rowhammer_threshold=trh, geometry=SMALL_GEOMETRY
        )
        aggressor = harness.mapper.encode(1, 100)
        pattern = patterns.single_sided(harness.mapper, 1, 100, 3000)
        report = harness.run(pattern)
        assert report.succeeded
        flipped = {flip.row for flip in report.flips}
        # The directly protected neighbours did NOT flip...
        assert not flipped & set(harness.mapper.neighbors(aggressor))
        # ...but distance-2 rows did.
        distance_two = set(harness.mapper.neighbors(aggressor, distance=2))
        assert flipped & distance_two

    def test_vulnerable_when_probability_too_low(self):
        # PARA tuned for a high threshold fails at a low one: the
        # scaling pitfall of probabilistic victim refresh.
        trh = 128
        para = make_para(trh=trh, probability=0.001, seed=3)
        harness = AttackHarness(
            para, rowhammer_threshold=trh, geometry=SMALL_GEOMETRY
        )
        pattern = patterns.single_sided(harness.mapper, 1, 100, 400)
        report = harness.run(pattern)
        assert report.succeeded
