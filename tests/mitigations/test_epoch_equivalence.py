"""Scalar/vector equivalence of every scheme's ``access_epoch``.

The scalar chunk loop in :meth:`MitigationScheme.access_epoch` defines
the semantics; every vectorized override must produce an *identical*
:class:`WorkloadResult` (``to_dict`` equality, floats included) for the
same trace.  These tests run every registered scheme over several seeds
with the override active and with it forced back to the scalar loop,
and require exact equality.
"""

from __future__ import annotations

import pytest

from repro.core.aqua import AquaMitigation
from repro.mitigations.base import MitigationScheme
from repro.mitigations.blockhammer import Blockhammer
from repro.mitigations.none import NoMitigation
from repro.mitigations.rrs import RandomizedRowSwap
from repro.mitigations.victim_refresh import VictimRefresh
from repro.sim.runner import SCHEME_BUILDERS, baseline, run_hardened
from repro.workloads import SyntheticWorkload, WorkloadSpec, clear_trace_cache

#: Every class that overrides ``access_epoch`` (the monkeypatch targets).
_OVERRIDING = (
    AquaMitigation,
    VictimRefresh,
    RandomizedRowSwap,
    Blockhammer,
    NoMitigation,
)

#: A Table-II-shaped spec small enough to run every scheme quickly but
#: with rows in all three bands (so mitigations actually fire) and
#: background traffic (so spill/settle paths engage).
TINY_SPEC = WorkloadSpec(
    name="tiny-equiv", mpki=8.0, act_166_plus=10, act_500_plus=6,
    act_1k_plus=3,
)

#: Background-only spec: exercises the eventless-skip and sparse-feed
#: paths (no row crosses any threshold at T=1000).
COLD_SPEC = WorkloadSpec(
    name="cold-equiv", mpki=4.0, act_166_plus=0, act_500_plus=0,
    act_1k_plus=0,
)

SEEDS = (0, 7, 13)


def _tiny_workload(spec: WorkloadSpec, seed: int) -> SyntheticWorkload:
    return SyntheticWorkload(spec, seed=seed, max_background_acts=3000)


def _result(factory, target, epochs=2):
    return run_hardened(factory, target, epochs=epochs)


def _scalar_reference(monkeypatch, factory, target, epochs=2):
    """The same run with every override forced to the scalar loop."""
    for cls in _OVERRIDING:
        monkeypatch.setattr(
            cls, "access_epoch", MitigationScheme.access_epoch
        )
    try:
        return _result(factory, target, epochs=epochs)
    finally:
        monkeypatch.undo()


@pytest.mark.parametrize("scheme", sorted(SCHEME_BUILDERS))
@pytest.mark.parametrize("seed", SEEDS)
def test_registered_schemes_match_scalar(monkeypatch, scheme, seed):
    clear_trace_cache()
    target = _tiny_workload(TINY_SPEC, seed)
    builder = SCHEME_BUILDERS[scheme]
    fused = _result(builder(1000), target)
    scalar = _scalar_reference(monkeypatch, builder(1000), target)
    assert fused.to_dict() == scalar.to_dict()


@pytest.mark.parametrize("scheme", sorted(SCHEME_BUILDERS))
def test_cold_stream_matches_scalar(monkeypatch, scheme):
    """The eventless-skip / sparse-feed regime must also be exact."""
    clear_trace_cache()
    target = _tiny_workload(COLD_SPEC, 3)
    builder = SCHEME_BUILDERS[scheme]
    fused = _result(builder(1000), target)
    scalar = _scalar_reference(monkeypatch, builder(1000), target)
    assert fused.to_dict() == scalar.to_dict()


def test_baseline_scheme_matches_scalar(monkeypatch):
    target = _tiny_workload(TINY_SPEC, 1)
    fused = _result(baseline(), target)
    scalar = _scalar_reference(monkeypatch, baseline(), target)
    assert fused.to_dict() == scalar.to_dict()


@pytest.mark.parametrize("scheme", ("aqua-mm", "aqua-sram"))
def test_aqua_spurious_install_path_matches_scalar(monkeypatch, scheme):
    """A 4-entry ART forces evictions, spill growth, and spurious
    installs -- the fused loop's surprise-crossing fallback path."""
    target = _tiny_workload(TINY_SPEC, 5)
    builder = SCHEME_BUILDERS[scheme]
    kwargs = {"tracker_entries_per_bank": 4}
    fused = _result(builder(1000, **kwargs), target)
    scalar = _scalar_reference(monkeypatch, builder(1000, **kwargs), target)
    assert fused.to_dict() == scalar.to_dict()


def test_blockhammer_cbf_estimator_uses_scalar_loop():
    """The CBF RowBlocker is order-sensitive, so its epoch feed must
    keep the scalar loop (the override falls back)."""
    scheme = Blockhammer(rowhammer_threshold=1000, estimator="cbf")
    import numpy as np

    rows = np.array([1, 2, 1], dtype=np.int64)
    counts = np.array([5, 5, 5], dtype=np.int64)
    scheme.access_epoch(rows, counts, 0.0, 10.0)
    assert scheme.stats.accesses == 15
