"""Victim refresh: neighbour refreshes and their Half-Double exposure."""

import pytest

from repro.dram.address import AddressMapper
from repro.mitigations.victim_refresh import VictimRefresh

from tests.conftest import SMALL_GEOMETRY, at_epoch


def make_vr(trh=64, blast_radius=1):
    return VictimRefresh(
        rowhammer_threshold=trh,
        geometry=SMALL_GEOMETRY,
        blast_radius=blast_radius,
        tracker_entries_per_bank=64,
    )


def hammer(scheme, row, times, now=0.0):
    result = None
    for _ in range(times):
        result = scheme.access(row, now)
    return result


class TestRefreshAction:
    def test_trigger_refreshes_both_neighbors(self):
        vr = make_vr()
        mapper = AddressMapper(SMALL_GEOMETRY)
        aggressor = mapper.encode(1, 100)
        result = hammer(vr, aggressor, 32)
        assert set(result.refreshed_rows) == set(mapper.neighbors(aggressor))
        assert vr.stats.victim_refreshes == 2

    def test_rows_never_move(self):
        vr = make_vr()
        result = hammer(vr, 100, 32)
        assert result.physical_row == 100
        assert not result.migrated

    def test_refresh_busy_time(self):
        vr = make_vr()
        result = hammer(vr, SMALL_GEOMETRY.banks_per_rank + 100 * 4, 32)
        assert result.busy_ns == pytest.approx(2 * 45.0, rel=0.01)

    def test_repeated_triggers_at_multiples(self):
        vr = make_vr()
        hammer(vr, 100, 64)
        assert vr.stats.migrations == 2  # trigger count


class TestBlastRadius:
    def test_radius_two_refreshes_four_rows(self):
        vr = make_vr(blast_radius=2)
        mapper = AddressMapper(SMALL_GEOMETRY)
        aggressor = mapper.encode(1, 100)
        result = hammer(vr, aggressor, 32)
        assert len(result.refreshed_rows) == 4

    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            make_vr(blast_radius=0)


class TestEpoch:
    def test_tracker_resets(self):
        vr = make_vr()
        hammer(vr, 100, 31, now=at_epoch(0))
        result = hammer(vr, 100, 31, now=at_epoch(1))
        assert vr.stats.migrations == 0
