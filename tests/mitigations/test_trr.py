"""TRR sampler model and the TRRespass many-sided bypass."""

import pytest

from repro.attacks import patterns
from repro.attacks.adversary import AttackHarness
from repro.mitigations.trr import TargetRowRefresh

from tests.conftest import SMALL_GEOMETRY


def make_trr(sampler_entries=4, refresh_burst=16):
    return TargetRowRefresh(
        geometry=SMALL_GEOMETRY,
        sampler_entries=sampler_entries,
        refresh_burst=refresh_burst,
    )


class TestSampler:
    def test_sampler_tracks_recent_rows(self):
        trr = make_trr()
        trr.access(100, 0.0)
        trr.access(104, 0.0)
        bank = trr.mapper.bank_of(100)
        assert 100 in trr.sampled_rows(bank)

    def test_fifo_replacement_cycles_entries(self):
        trr = make_trr(sampler_entries=2)
        # Three same-bank rows: the first one must get cycled out.
        rows = [trr.mapper.encode(1, r) for r in (10, 20, 30)]
        for row in rows:
            trr.access(row, 0.0)
        assert rows[0] not in trr.sampled_rows(1)

    def test_refresh_fires_every_burst(self):
        trr = make_trr(refresh_burst=8)
        refreshed = []
        for i in range(32):
            result = trr.access(trr.mapper.encode(1, 100), 0.0)
            refreshed.extend(result.refreshed_rows)
        assert trr.stats.migrations == 4
        assert refreshed  # the hot row's neighbours got refreshed

    def test_validation(self):
        with pytest.raises(ValueError):
            make_trr(sampler_entries=0)
        with pytest.raises(ValueError):
            make_trr(refresh_burst=0)


class TestSecurity:
    TRH = 192

    def _harness(self, sampler_entries=4):
        return AttackHarness(
            make_trr(sampler_entries=sampler_entries, refresh_burst=16),
            rowhammer_threshold=self.TRH,
            geometry=SMALL_GEOMETRY,
        )

    def test_blocks_double_sided(self):
        harness = self._harness()
        pattern = patterns.double_sided(
            harness.mapper, 1, 100, pairs=3 * self.TRH
        )
        report = harness.run(pattern)
        assert not report.succeeded

    def test_trrespass_many_sided_bypasses(self):
        # More concurrent aggressors than sampler entries: some
        # aggressor always escapes sampling and its victims flip.
        harness = self._harness(sampler_entries=4)
        pattern = patterns.many_sided(
            harness.mapper,
            bank=1,
            first_bank_row=100,
            aggressors=12,
            rounds=2 * self.TRH,
        )
        report = harness.run(pattern)
        assert report.succeeded

    def test_bigger_sampler_resists_the_same_pattern(self):
        harness = self._harness(sampler_entries=24)
        pattern = patterns.many_sided(
            harness.mapper,
            bank=1,
            first_bank_row=100,
            aggressors=12,
            rounds=2 * self.TRH,
        )
        report = harness.run(pattern)
        assert not report.succeeded
