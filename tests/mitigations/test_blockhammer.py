"""Blockhammer: blacklisting, throttling, and the 1280x worst case."""

import pytest

from repro.mitigations.blockhammer import Blockhammer

from tests.conftest import SMALL_GEOMETRY, at_epoch


def make_bh(trh=1000, blacklist=8):
    return Blockhammer(
        rowhammer_threshold=trh,
        geometry=SMALL_GEOMETRY,
        blacklist_threshold=blacklist,
    )


class TestBlacklisting:
    def test_below_blacklist_no_stall(self):
        bh = make_bh()
        for i in range(7):
            result = bh.access(5, float(i))
            assert result.stalled_ns == 0.0

    def test_blacklisted_row_throttles(self):
        bh = make_bh()
        for i in range(8):
            bh.access(5, float(i))
        # Row is blacklisted; back-to-back accesses now stall.
        bh.access(5, 10.0)
        result = bh.access(5, 11.0)
        assert result.stalled_ns > 0
        assert bh.throttled_accesses >= 1

    def test_other_rows_unaffected(self):
        bh = make_bh()
        for i in range(20):
            bh.access(5, float(i))
        result = bh.access(6, 21.0)
        assert result.stalled_ns == 0.0


class TestQuota:
    def test_quota_is_half_threshold(self):
        bh = make_bh(trh=1000)
        assert bh.quota == 500
        assert bh.min_interval_ns == pytest.approx(64e6 / 500)

    def test_spaced_accesses_do_not_stall(self):
        bh = make_bh()
        now = 0.0
        for _ in range(8):
            bh.access(5, now)
            now += 1.0
        result = bh.access(5, now + bh.min_interval_ns * 2)
        assert result.stalled_ns == 0.0


class TestWorstCase:
    def test_worst_case_is_about_1280x(self):
        # Sec. VII-B: two conflicting rows at 100 ns/round vs 500
        # rounds/64 ms once blacklisted.
        bh = Blockhammer(rowhammer_threshold=1000)
        assert bh.worst_case_slowdown() == pytest.approx(1280.0, rel=0.01)

    def test_worst_case_improves_at_higher_threshold(self):
        relaxed = Blockhammer(rowhammer_threshold=32_000)
        assert relaxed.worst_case_slowdown() < 100


class TestBatchPath:
    def test_batch_counts_throttled_accesses(self):
        bh = make_bh()
        result = bh.access_batch(5, 20, 0.0)
        # 8 free (blacklist threshold), 12 throttled.
        assert bh.throttled_accesses == 12
        assert result.stalled_ns == pytest.approx(12 * bh.min_interval_ns)

    def test_epoch_peak_row_stall(self):
        bh = make_bh()
        bh.access_batch(5, 20, 0.0)
        bh.access_batch(6, 10, 0.0)
        assert bh.epoch_peak_row_stall_ns() == pytest.approx(
            12 * bh.min_interval_ns
        )


class TestEpochReset:
    def test_blacklist_clears_at_epoch(self):
        bh = make_bh()
        bh.access_batch(5, 20, at_epoch(0))
        result = bh.access(5, at_epoch(1))
        assert result.stalled_ns == 0.0
        assert bh.epoch_peak_row_stall_ns() == 0.0


class TestValidation:
    def test_bad_blacklist_threshold(self):
        with pytest.raises(ValueError):
            Blockhammer(blacklist_threshold=0)
