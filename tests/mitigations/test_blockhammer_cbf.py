"""Blockhammer with the dual-CBF RowBlocker estimator."""

import pytest

from repro.mitigations.blockhammer import Blockhammer

from tests.conftest import SMALL_GEOMETRY


def make_bh(estimator, blacklist=8, counters=4096):
    return Blockhammer(
        rowhammer_threshold=1000,
        geometry=SMALL_GEOMETRY,
        blacklist_threshold=blacklist,
        estimator=estimator,
        cbf_counters=counters,
    )


class TestCbfEstimator:
    def test_blacklists_hot_row_like_exact(self):
        exact = make_bh("exact")
        cbf = make_bh("cbf")
        exact_stall = cbf_stall = 0.0
        for i in range(20):
            exact_stall += exact.access(5, float(i)).stalled_ns
            cbf_stall += cbf.access(5, float(i)).stalled_ns
        # With a roomy CBF the estimates are exact: same throttling.
        assert cbf.throttled_accesses == exact.throttled_accesses
        assert cbf_stall == pytest.approx(exact_stall)

    def test_never_underthrottles(self):
        # Aliasing can only make the CBF *more* aggressive.
        cbf = make_bh("cbf", counters=32)
        for i in range(20):
            cbf.access(5, float(i))
        exact = make_bh("exact")
        for i in range(20):
            exact.access(5, float(i))
        assert cbf.throttled_accesses >= exact.throttled_accesses

    def test_batch_path_matches_exact_when_sparse(self):
        exact = make_bh("exact")
        cbf = make_bh("cbf")
        r_exact = exact.access_batch(5, 30, 0.0)
        r_cbf = cbf.access_batch(5, 30, 0.0)
        assert r_cbf.stalled_ns == pytest.approx(r_exact.stalled_ns)

    def test_estimator_validated(self):
        with pytest.raises(ValueError):
            make_bh("psychic")

    def test_rowblocker_only_for_cbf(self):
        assert make_bh("exact").row_blocker is None
        assert make_bh("cbf").row_blocker is not None
