"""Scheme base class: epoch sync and batch-path bookkeeping."""

import pytest

from repro.core.aqua import AquaMitigation
from repro.dram.refresh import EPOCH_NS

from tests.conftest import make_aqua_config


class TestEpochSync:
    def test_epochs_counted(self):
        scheme = AquaMitigation(make_aqua_config())
        scheme.access(1, 0.0)
        scheme.access(1, EPOCH_NS + 1)
        scheme.access(1, 3 * EPOCH_NS + 1)
        assert scheme.current_epoch == 3
        assert scheme.stats.epochs == 2

    def test_stats_accumulate(self):
        scheme = AquaMitigation(make_aqua_config())
        for _ in range(10):
            scheme.access(1, 0.0)
        assert scheme.stats.accesses == 10


class TestBatchValidation:
    def test_zero_batch_rejected(self):
        scheme = AquaMitigation(make_aqua_config())
        with pytest.raises(ValueError):
            scheme.access_batch(1, 0, 0.0)

    def test_batch_counts_accesses(self):
        scheme = AquaMitigation(make_aqua_config())
        scheme.access_batch(1, 25, 0.0)
        assert scheme.stats.accesses == 25
