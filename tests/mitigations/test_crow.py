"""CROW analytical model: Table V and the 1060%/530% overhead claims."""

import pytest

from repro.mitigations.crow import (
    CrowModel,
    SUBARRAY_ROWS,
    TABLE_V_COPY_ROWS,
    crow_table_v,
)


class TestTableV:
    # (copy_rows -> overhead %, aggressors, tolerated T_RH) from Table V.
    PAPER = {
        8: (0.016, 4, 340_000),
        32: (0.063, 16, 85_000),
        128: (0.25, 64, 21_300),
        512: (1.0, 256, 5_300),
    }

    @pytest.mark.parametrize("copy_rows", TABLE_V_COPY_ROWS)
    def test_rows_match_paper(self, copy_rows):
        overhead, aggressors, trh = self.PAPER[copy_rows]
        model = CrowModel()
        assert model.dram_overhead(copy_rows) == pytest.approx(
            overhead, rel=0.03
        )
        assert model.aggressors_tolerated(copy_rows) == aggressors
        assert model.trh_tolerated(copy_rows) == pytest.approx(trh, rel=0.05)

    def test_table_v_generation(self):
        table = crow_table_v()
        assert [row.copy_rows for row in table] == list(TABLE_V_COPY_ROWS)
        assert table[0].trh_tolerated > table[-1].trh_tolerated


class TestSecurityAtOneK:
    def test_crow_needs_1060_percent(self):
        # Sec. VII-B / Table VI: CROW requires ~1060% DRAM at T_RH=1K.
        model = CrowModel()
        assert model.dram_overhead_at(1000) == pytest.approx(10.6, rel=0.05)

    def test_crow_agg_needs_half(self):
        agg = CrowModel(aggressor_only=True)
        assert agg.dram_overhead_at(1000) == pytest.approx(5.3, rel=0.05)

    def test_even_full_duplication_insufficient_at_current_thresholds(self):
        # Sec. VII-B: 100% extra rows only tolerates T_RH >= 5.3K, above
        # the 4.8K already observed in LPDDR4.
        model = CrowModel()
        assert model.trh_tolerated(SUBARRAY_ROWS) > 4_800


class TestEdges:
    def test_zero_copy_rows_tolerates_nothing(self):
        model = CrowModel()
        assert model.aggressors_tolerated(1) == 0
        assert model.trh_tolerated(1) == float("inf")

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            CrowModel().copy_rows_required(1)
