"""Randomized Row-Swap baseline: swap semantics and cost accounting."""

import pytest

from repro.mitigations.rrs import RRS_THRESHOLD_DIVISOR, RandomizedRowSwap

from tests.conftest import SMALL_GEOMETRY, at_epoch


def make_rrs(trh=60, **kwargs):
    kwargs.setdefault("geometry", SMALL_GEOMETRY)
    kwargs.setdefault("tracker_entries_per_bank", 64)
    return RandomizedRowSwap(rowhammer_threshold=trh, **kwargs)


def hammer(scheme, row, times, now=0.0):
    result = None
    for _ in range(times):
        result = scheme.access(row, now)
    return result


class TestThreshold:
    def test_swap_threshold_is_one_sixth(self):
        rrs = make_rrs(trh=600)
        assert rrs.swap_threshold == 100
        assert RRS_THRESHOLD_DIVISOR == 6

    def test_too_small_threshold_rejected(self):
        with pytest.raises(ValueError):
            RandomizedRowSwap(rowhammer_threshold=5)


class TestSwap:
    def test_swap_at_threshold(self):
        rrs = make_rrs(trh=60)  # swaps at 10
        result = hammer(rrs, 100, 10)
        assert result.migrated
        assert rrs.swaps == 1
        assert rrs.stats.row_moves == 2
        # The row now lives somewhere else.
        assert rrs._physical_of(100) != 100

    def test_swap_cost_is_two_moves(self):
        rrs = make_rrs(trh=60)
        result = hammer(rrs, 100, 10)
        assert result.busy_ns == pytest.approx(2 * 1370.0, rel=0.01)

    def test_partner_mapping_is_symmetric(self):
        rrs = make_rrs(trh=60)
        hammer(rrs, 100, 10)
        partner = rrs._partner[100]
        assert rrs._partner[partner] == 100
        assert rrs._physical_of(partner) == 100

    def test_mapping_is_permutation(self):
        rrs = make_rrs(trh=60)
        for row in (100, 200, 300):
            hammer(rrs, row, 10)
        physicals = [rrs._physical_of(r) for r in range(SMALL_GEOMETRY.rows_per_rank)]
        # Spot check: no duplicate physical targets among the mapped rows.
        mapped = list(rrs._map.values())
        assert len(mapped) == len(set(mapped))


class TestReswap:
    def test_reswap_costs_four_moves(self):
        # Sec. IV-F: re-swapping an already-swapped row needs 4 row
        # migrations (restore the pair + fresh swap).
        rrs = make_rrs(trh=60)
        hammer(rrs, 100, 10)
        moves_before = rrs.stats.row_moves
        # Keep hammering the same logical row: the tracker now counts
        # the new physical location (10 more ACTs re-trigger).
        hammer(rrs, 100, 10)
        assert rrs.stats.row_moves - moves_before == 4
        assert rrs.unswaps == 1

    def test_reswap_relocates_again(self):
        rrs = make_rrs(trh=60)
        hammer(rrs, 100, 10)
        first = rrs._physical_of(100)
        hammer(rrs, 100, 10)
        assert rrs._physical_of(100) != first


class TestDataIntegrity:
    def test_swap_preserves_both_contents(self):
        rrs = make_rrs(trh=60)
        rrs.data.write(100, "mine")
        hammer(rrs, 100, 10)
        assert rrs.data.read(rrs._physical_of(100)) == "mine"

    def test_unswap_returns_content_home(self):
        rrs = make_rrs(trh=60)
        rrs.data.write(100, "mine")
        hammer(rrs, 100, 10)
        partner = rrs._partner[100]
        rrs._unswap(100)
        assert rrs.data.read(rrs._physical_of(100)) == "mine"
        assert rrs._physical_of(100) == 100
        assert rrs._physical_of(partner) == partner


class TestEpoch:
    def test_tracker_resets_but_mappings_persist(self):
        rrs = make_rrs(trh=60)
        hammer(rrs, 100, 10, now=at_epoch(0))
        location = rrs._physical_of(100)
        rrs.access(100, at_epoch(1))
        assert rrs._physical_of(100) == location


class TestDeterminism:
    def test_same_seed_same_destinations(self):
        a = make_rrs(seed=42)
        b = make_rrs(seed=42)
        hammer(a, 100, 10)
        hammer(b, 100, 10)
        assert a._physical_of(100) == b._physical_of(100)

    def test_different_seed_differs(self):
        a = make_rrs(seed=1)
        b = make_rrs(seed=2)
        hammer(a, 100, 10)
        hammer(b, 100, 10)
        assert a._physical_of(100) != b._physical_of(100)


class TestStorage:
    def test_rit_sram_matches_paper_at_1k(self):
        rrs = RandomizedRowSwap(rowhammer_threshold=1000)
        # Sec. II-F: ~2.4 MB per rank at T_RH = 1K (decimal MB).
        assert rrs.sram_bytes() == pytest.approx(2.4e6, rel=0.05)
