"""Storage model: Table VII and the per-structure sizes."""

import pytest

from repro.analysis.storage import (
    aqua_mapping_bytes,
    hydra_tracker_bytes,
    misra_gries_tracker_bytes,
    rrs_rit_bytes,
    table_vii,
)

KB = 1024


class TestTrackers:
    def test_misra_gries_matches_paper(self):
        # Appendix B: 396 KB per rank at the default threshold.
        assert misra_gries_tracker_bytes(500) / KB == pytest.approx(
            396, rel=0.05
        )

    def test_misra_gries_scales_inversely(self):
        assert misra_gries_tracker_bytes(250) > misra_gries_tracker_bytes(500)

    def test_hydra_matches_paper(self):
        # Appendix B: ~28-30 KB per rank.
        assert 26 * KB < hydra_tracker_bytes() < 34 * KB


class TestMappingTables:
    def test_rrs_rit_at_1k(self):
        assert rrs_rit_bytes(1000) == pytest.approx(2.4e6, rel=0.05)

    def test_rrs_rit_at_4k(self):
        # Sec. II-F: 0.65 MB per rank at T_RH = 4K.
        assert rrs_rit_bytes(4000) == pytest.approx(0.65e6, rel=0.15)

    def test_aqua_sram_tables_at_1k(self):
        # Sec. IV-C: 172 KB for FPT + RPT.
        assert aqua_mapping_bytes(1000, "sram") / KB == pytest.approx(
            172, rel=0.05
        )

    def test_aqua_memory_mapped_tables(self):
        # Sec. V-G: ~32.6 KB (bloom + cache + pinned entries).
        assert aqua_mapping_bytes(1000, "memory-mapped") / KB == pytest.approx(
            32.6, rel=0.05
        )

    def test_aqua_mapping_12x_smaller_than_rrs(self):
        # Sec. IV-C: AQUA's SRAM tables are ~12x smaller than RRS's RIT.
        ratio = rrs_rit_bytes(1000) / aqua_mapping_bytes(1000, "sram")
        assert ratio == pytest.approx(12, rel=0.25)

    def test_fig1b_shape_rit_grows_as_threshold_falls(self):
        # Fig. 1b: RRS's SRAM blows up as T_RH drops, AQUA's
        # memory-mapped budget stays flat.
        rit = [rrs_rit_bytes(trh) for trh in (4000, 2000, 1000, 500)]
        assert rit == sorted(rit)
        assert rit[-1] / rit[0] > 6
        aqua = [
            aqua_mapping_bytes(trh, "memory-mapped")
            for trh in (4000, 2000, 1000, 500)
        ]
        assert max(aqua) == min(aqua)


class TestTableVII:
    def test_columns(self):
        reports = {r.name: r for r in table_vii(1000)}
        assert set(reports) == {
            "RRS-MG",
            "AQUA-MG",
            "RRS-Hydra",
            "AQUA-Hydra",
        }

    def test_totals_match_paper(self):
        # Appendix B, Table VII: 2870 / 437 / 2502 / 71 KB.
        reports = {r.name: r for r in table_vii(1000)}
        assert reports["RRS-MG"].total_bytes / KB == pytest.approx(
            2870, rel=0.1
        )
        assert reports["AQUA-MG"].total_bytes / KB == pytest.approx(
            437, rel=0.1
        )
        assert reports["RRS-Hydra"].total_bytes / KB == pytest.approx(
            2502, rel=0.1
        )
        assert reports["AQUA-Hydra"].total_bytes / KB == pytest.approx(
            71, rel=0.1
        )

    def test_buffer_sizes(self):
        reports = {r.name: r for r in table_vii(1000)}
        assert reports["RRS-MG"].buffer_bytes == 16 * KB
        assert reports["AQUA-MG"].buffer_bytes == 8 * KB

    def test_as_kb_helper(self):
        report = table_vii(1000)[0]
        kb = report.as_kb()
        assert kb["total_kb"] == pytest.approx(
            kb["tracker_kb"] + kb["mapping_kb"] + kb["buffer_kb"]
        )
