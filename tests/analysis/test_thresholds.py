"""Rowhammer threshold timeline (Fig. 2)."""

import pytest

from repro.analysis.thresholds import THRESHOLD_TIMELINE, threshold_trend


class TestTimeline:
    def test_endpoints_match_paper(self):
        assert THRESHOLD_TIMELINE[0].rowhammer_threshold == 139_000
        assert THRESHOLD_TIMELINE[0].year == 2014
        assert THRESHOLD_TIMELINE[-1].rowhammer_threshold == 4_800
        assert THRESHOLD_TIMELINE[-1].year == 2020

    def test_monotonic_decline(self):
        thresholds = [p.rowhammer_threshold for p in THRESHOLD_TIMELINE]
        assert thresholds == sorted(thresholds, reverse=True)

    def test_trend_reduction_factor(self):
        trend = threshold_trend()
        # The paper: "almost 30x" decline 2014 -> 2020.
        assert trend["reduction_factor"] == pytest.approx(29, rel=0.05)
        assert trend["span_years"] == 6
