"""Appendix A analytical model (Fig. 12)."""

import pytest

from repro.analysis.migration_model import (
    empirical_ratio,
    f_for_ratio,
    fig12_series,
    guaranteed_floor,
    migration_ratio,
)


class TestModel:
    def test_floor_is_six(self):
        # Best case for RRS: r(1) = 6 (Appendix A).
        assert guaranteed_floor() == pytest.approx(6.0)

    def test_ratio_monotonically_decreases_in_f(self):
        assert migration_ratio(0.1) > migration_ratio(0.5) > migration_ratio(1.0)

    def test_paper_average_corresponds_to_f_04(self):
        # The measured average r = 9 corresponds to f = 0.4.
        assert migration_ratio(0.4) == pytest.approx(9.0)
        assert f_for_ratio(9.0) == pytest.approx(0.4)

    def test_inverse_round_trip(self):
        for f in (0.1, 0.25, 0.7):
            assert f_for_ratio(migration_ratio(f)) == pytest.approx(f)

    def test_domain_validation(self):
        with pytest.raises(ValueError):
            migration_ratio(0.0)
        with pytest.raises(ValueError):
            migration_ratio(1.1)
        with pytest.raises(ValueError):
            f_for_ratio(5.0)


class TestSeries:
    def test_fig12_series_shape(self):
        series = fig12_series()
        assert series[-1] == (1.0, pytest.approx(6.0))
        ratios = [r for _, r in series]
        assert ratios == sorted(ratios, reverse=True)

    def test_empirical_ratio(self):
        assert empirical_ratio(100, 900) == pytest.approx(9.0)
        with pytest.raises(ValueError):
            empirical_ratio(0, 1)
