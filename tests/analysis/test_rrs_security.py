"""RRS birthday-paradox security model (Sec. II-F)."""

import pytest

from repro.analysis.rrs_security import (
    expected_attack_years,
    success_probability_per_window,
    swaps_per_window,
)


class TestModel:
    def test_swap_rate_scales_inversely_with_threshold(self):
        assert swaps_per_window(1000) > swaps_per_window(4000)

    def test_probability_in_unit_interval(self):
        p = success_probability_per_window(1000)
        assert 0.0 < p < 1.0

    def test_attack_time_order_of_years_at_1k(self):
        # Sec. II-F: "an attacker can still cause a successful attack on
        # average within 4 years".
        years = expected_attack_years(1000)
        assert 0.1 < years < 50.0

    def test_many_machines_divide_the_time(self):
        one = expected_attack_years(1000, machines=1)
        thousand = expected_attack_years(1000, machines=1000)
        assert thousand == pytest.approx(one / 1000)

    def test_lower_threshold_is_easier_to_attack(self):
        assert expected_attack_years(1000) < expected_attack_years(4000)

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_attack_years(1000, machines=0)
