"""Consolidated report builder."""

import os

from repro.analysis.report import SECTIONS, build_report, collect, write_report


def seed_results(tmp_path, stems):
    for stem in stems:
        (tmp_path / f"{stem}.txt").write_text(f"table for {stem}\n")
    return str(tmp_path)


class TestCollect:
    def test_collects_present_tables_only(self, tmp_path):
        directory = seed_results(
            tmp_path, ["table3_rqa_sizing", "fig07_performance"]
        )
        tables = collect(directory)
        assert set(tables) == {"table3", "fig07"}

    def test_empty_dir(self, tmp_path):
        assert collect(str(tmp_path)) == {}


class TestBuild:
    def test_sections_in_paper_order(self, tmp_path):
        directory = seed_results(
            tmp_path,
            ["fig07_performance", "table3_rqa_sizing", "fig02_threshold_trend"],
        )
        report = build_report(directory)
        fig02 = report.index("Figure 2")
        table3 = report.index("Table III")
        fig07 = report.index("Figure 7")
        assert fig02 < table3 < fig07

    def test_content_embedded(self, tmp_path):
        directory = seed_results(tmp_path, ["table3_rqa_sizing"])
        report = build_report(directory)
        assert "table for table3_rqa_sizing" in report

    def test_counts_header(self, tmp_path):
        directory = seed_results(tmp_path, ["table3_rqa_sizing"])
        report = build_report(directory)
        assert f"1 of {len(SECTIONS)} experiments" in report


class TestWrite:
    def test_writes_report_file(self, tmp_path):
        directory = seed_results(tmp_path, ["table3_rqa_sizing"])
        path = write_report(results_dir=directory)
        assert os.path.exists(path)
        with open(path) as handle:
            assert "AQUA reproduction" in handle.read()
