"""Security oracles: sliding-window ledger and disturbance model."""

import pytest

from repro.analysis.security import ActivationLedger, DisturbanceOracle


def line_neighbors(row):
    """1-D adjacency used by oracle unit tests."""
    return [row - 1, row + 1] if row > 0 else [row + 1]


class TestLedger:
    def test_counts_within_window(self):
        ledger = ActivationLedger(window_ns=100.0)
        for t in (0.0, 10.0, 20.0):
            ledger.record(5, t)
        assert ledger.window_count(5, 20.0) == 3

    def test_old_events_age_out(self):
        ledger = ActivationLedger(window_ns=100.0)
        ledger.record(5, 0.0)
        ledger.record(5, 150.0)
        assert ledger.window_count(5, 150.0) == 1

    def test_peak_tracks_maximum(self):
        ledger = ActivationLedger(window_ns=100.0)
        for t in range(5):
            ledger.record(5, float(t))
        ledger.record(5, 1000.0)
        assert ledger.peak(5) == 5
        assert ledger.max_peak() == 5
        assert ledger.worst_row() == 5

    def test_violations(self):
        ledger = ActivationLedger(window_ns=100.0)
        for t in range(10):
            ledger.record(7, float(t))
        assert ledger.violations(10) == [7]
        assert ledger.violations(11) == []

    def test_empty_ledger(self):
        ledger = ActivationLedger()
        assert ledger.max_peak() == 0
        assert ledger.worst_row() is None


class TestDisturbanceOracle:
    def test_activation_disturbs_neighbors(self):
        oracle = DisturbanceOracle(line_neighbors, rowhammer_threshold=100)
        oracle.record_activation(5, 0.0)
        assert oracle.disturbance(4) == 1
        assert oracle.disturbance(6) == 1
        assert oracle.disturbance(5) == 0

    def test_own_activation_restores(self):
        oracle = DisturbanceOracle(line_neighbors, rowhammer_threshold=100)
        for _ in range(10):
            oracle.record_activation(5, 0.0)
        oracle.record_activation(4, 0.0)  # restores row 4
        assert oracle.disturbance(4) == 0
        assert oracle.disturbance(6) == 10

    def test_flip_beyond_threshold(self):
        oracle = DisturbanceOracle(line_neighbors, rowhammer_threshold=5)
        for _ in range(6):
            oracle.record_activation(5, 1.0)
        assert oracle.flips
        assert {flip.row for flip in oracle.flips} == {4, 6}
        assert oracle.flipped_rows == {4, 6}

    def test_flip_records_once_per_row(self):
        oracle = DisturbanceOracle(line_neighbors, rowhammer_threshold=5)
        for _ in range(20):
            oracle.record_activation(5, 1.0)
        assert len(oracle.flips) == 2

    def test_refresh_restores_but_disturbs_outward(self):
        # The Half-Double mechanism in miniature.
        oracle = DisturbanceOracle(line_neighbors, rowhammer_threshold=100)
        for _ in range(50):
            oracle.record_activation(5, 0.0)
        oracle.record_refresh(6, 0.0)  # victim refresh of row 6
        assert oracle.disturbance(6) == 0  # restored
        assert oracle.disturbance(7) == 1  # hammered at distance 2 from 5

    def test_epoch_reset_clears_disturbance(self):
        oracle = DisturbanceOracle(line_neighbors, rowhammer_threshold=100)
        oracle.record_activation(5, 0.0)
        oracle.end_epoch()
        assert oracle.disturbance(4) == 0

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            DisturbanceOracle(line_neighbors, rowhammer_threshold=0)
