"""Power analysis (Sec. V-H)."""

import pytest

from repro.analysis.power import AquaPowerReport, sram_static_mw
from repro.dram.power import DramEnergyCounters


class TestSramPower:
    def test_bloom_filter_matches_cacti(self):
        # Sec. V-H: 5.4 mW for the 16 KB bloom filter.
        assert sram_static_mw(16 * 1024) == pytest.approx(5.4, abs=0.1)

    def test_copy_buffer(self):
        # Sec. V-H: 2.8 mW for the 8 KB copy-buffer.
        assert sram_static_mw(8 * 1024) == pytest.approx(2.7, abs=0.2)

    def test_total_is_13_6_mw(self):
        report = AquaPowerReport()
        assert report.sram_total_mw == pytest.approx(13.6, rel=0.05)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            sram_static_mw(-1)


class TestDramOverhead:
    def test_overhead_fraction_below_two_percent(self):
        # Sec. V-H: AQUA adds ~0.7% DRAM power at ~1100 migrations per
        # epoch plus table traffic.
        report = AquaPowerReport()
        base = DramEnergyCounters(
            activations=4_000_000, line_reads=6_000_000, line_writes=2_000_000
        )
        mitigated = DramEnergyCounters(
            activations=base.activations,
            line_reads=base.line_reads,
            line_writes=base.line_writes,
        )
        for _ in range(1100):
            mitigated.add_migration(8 * 1024)
        fraction = report.dram_overhead_fraction(base, mitigated, 64e6)
        assert 0.0 < fraction < 0.02

    def test_overhead_mw_positive(self):
        report = AquaPowerReport()
        base = DramEnergyCounters()
        mitigated = DramEnergyCounters()
        mitigated.add_migration(8 * 1024)
        assert report.dram_overhead_mw(base, mitigated, 64e6) > 0
