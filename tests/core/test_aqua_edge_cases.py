"""AQUA edge cases beyond the main lifecycle tests."""


from repro.core.aqua import AquaMitigation
from repro.core.memtables import MemoryMappedTables
from repro.dram.refresh import EPOCH_NS

from tests.conftest import make_aqua_config


class TestExactTrackerVariant:
    def test_exact_tracker_quarantines_precisely(self):
        aqua = AquaMitigation(make_aqua_config(tracker="exact"))
        for _ in range(31):
            aqua.access(100, 0.0)
        assert not aqua.is_quarantined(100)
        aqua.access(100, 0.0)
        assert aqua.is_quarantined(100)

    def test_no_spurious_with_exact_tracker(self):
        aqua = AquaMitigation(make_aqua_config(tracker="exact"))
        for row in range(500):
            aqua.access(500 + row, 0.0)
        assert aqua.stats.migrations == 0


class TestEpochSkips:
    def test_long_idle_gap_resets_once(self):
        # Jumping several epochs forward must not confuse the epoch
        # bookkeeping (the ART resets, quarantines persist).
        aqua = AquaMitigation(make_aqua_config())
        for _ in range(32):
            aqua.access(100, 0.0)
        assert aqua.is_quarantined(100)
        aqua.access(200, 5 * EPOCH_NS)
        assert aqua.current_epoch == 5
        assert aqua.is_quarantined(100)

    def test_drain_after_long_gap(self):
        aqua = AquaMitigation(make_aqua_config())
        for _ in range(32):
            aqua.access(100, 0.0)
        aqua.access(200, 7 * EPOCH_NS)
        assert aqua.drain_stale() == 1
        assert not aqua.is_quarantined(100)


class TestLocateWithoutSideEffects:
    def test_locate_does_not_touch_lookup_stats(self):
        aqua = AquaMitigation(make_aqua_config(table_mode="memory-mapped"))
        for _ in range(32):
            aqua.access(100, 0.0)
        tables = aqua.tables
        assert isinstance(tables, MemoryMappedTables)
        before = dict(tables.outcome_counts)
        reads_before = tables.dram_fpt.dram_reads
        aqua.locate(100)
        aqua.is_quarantined(100)
        assert dict(tables.outcome_counts) == before
        assert tables.dram_fpt.dram_reads == reads_before


class TestDataTrackingDisabled:
    def test_track_data_false_still_migrates(self):
        aqua = AquaMitigation(make_aqua_config(track_data=False))
        assert aqua.data is None
        for _ in range(32):
            aqua.access(100, 0.0)
        assert aqua.is_quarantined(100)
