"""Set-associative table: the CAT's ablation baseline."""

import pytest

from repro.core.cat import CollisionAvoidanceTable
from repro.core.setassoc import SetAssociativeTable


class TestBasicMap:
    def test_insert_lookup_remove(self):
        table = SetAssociativeTable(capacity=64, ways=4)
        table.insert(5, "a")
        assert table.lookup(5) == "a"
        assert table.remove(5)
        assert table.lookup(5) is None

    def test_update_in_place(self):
        table = SetAssociativeTable(capacity=64, ways=4)
        table.insert(5, "a")
        assert table.insert(5, "b") is None
        assert table.lookup(5) == "b"
        assert len(table) == 1

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            SetAssociativeTable(capacity=10, ways=4)


class TestConflictEviction:
    def test_set_overflow_evicts_lru(self):
        table = SetAssociativeTable(capacity=4, ways=4)  # one set
        for key in range(4):
            assert table.insert(key, key) is None
        table.lookup(0)  # refresh key 0
        evicted = table.insert(99, 99)
        assert evicted == 1  # key 1 is now the LRU
        assert table.evictions == 1

    def test_load_at_first_eviction(self):
        table = SetAssociativeTable(capacity=64, ways=4)
        held = table.load_at_first_eviction(range(10_000))
        assert 0 < held < 64


class TestAblationVsCat:
    def test_cat_holds_far_more_before_conflict(self):
        # The Sec. IV-C motivation, quantified: at the paper's 23K/32K
        # occupancy ratio, a plain set-associative table conflicts long
        # before the CAT does.
        capacity = 2048
        target = int(capacity * 23 / 32)
        plain = SetAssociativeTable(capacity=capacity, ways=8)
        held = plain.load_at_first_eviction(
            key * 7919 + 13 for key in range(capacity)
        )
        assert held < target
        cat = CollisionAvoidanceTable(capacity=capacity, ways=8)
        for key in range(target):
            cat.insert(key * 7919 + 13, key)
        assert len(cat) == target
