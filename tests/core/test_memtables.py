"""Table backends: SRAM vs memory-mapped lookup chains (Fig. 8/10)."""

import pytest

from repro.core.memtables import (
    LookupOutcome,
    MemoryMappedTables,
    SramTables,
)


@pytest.fixture
def tables():
    return MemoryMappedTables(
        total_rows=512,
        rqa_slots=32,
        bloom_group_size=16,
        fpt_cache_entries=64,
        table_base_row=400,
    )


class TestSramBackend:
    def test_lookup_chain(self):
        tables = SramTables(rqa_slots=32)
        assert tables.lookup(5).slot is None
        tables.on_quarantine(5, 9)
        lookup = tables.lookup(5)
        assert lookup.slot == 9
        assert lookup.outcome is LookupOutcome.SRAM
        tables.on_release(5)
        assert tables.lookup(5).slot is None

    def test_sram_bytes_positive(self):
        assert SramTables(rqa_slots=23_053).sram_bytes() > 150 * 1024

    def test_batch_lookup_weights_stats(self):
        tables = SramTables(rqa_slots=32)
        tables.on_quarantine(5, 9)
        lookup = tables.lookup_batch(5, 10)
        assert lookup.slot == 9
        assert tables.fpt.lookups == 10
        assert tables.fpt.hits == 10
        tables.lookup_batch(6, 4)
        assert tables.fpt.lookups == 14
        assert tables.fpt.hits == 10


class TestMemoryMappedChain:
    def test_bloom_filters_non_quarantined(self, tables):
        lookup = tables.lookup(100)
        assert lookup.outcome is LookupOutcome.BLOOM_FILTERED
        assert lookup.slot is None
        assert lookup.dram_accesses == 0

    def test_quarantine_then_cache_hit(self, tables):
        tables.on_quarantine(100, 7)
        lookup = tables.lookup(100)
        assert lookup.slot == 7
        assert lookup.outcome is LookupOutcome.CACHE_HIT

    def test_dram_access_after_cache_invalidation(self, tables):
        tables.on_quarantine(100, 7)
        tables.cache.invalidate(100)
        lookup = tables.lookup(100)
        assert lookup.slot == 7
        assert lookup.outcome is LookupOutcome.DRAM_ACCESS
        assert lookup.dram_accesses == 1
        assert lookup.table_row is not None
        # And the entry is re-cached now.
        assert tables.lookup(100).outcome is LookupOutcome.CACHE_HIT

    def test_singleton_filters_group_mates(self, tables):
        tables.on_quarantine(100, 7)  # group of rows 96..111
        lookup = tables.lookup(101)
        assert lookup.slot is None
        assert lookup.outcome is LookupOutcome.SINGLETON

    def test_multi_entry_group_goes_to_dram(self, tables):
        tables.on_quarantine(100, 7)
        tables.on_quarantine(101, 8)
        lookup = tables.lookup(102)
        assert lookup.outcome is LookupOutcome.DRAM_ACCESS
        assert lookup.slot is None
        assert tables.false_positive_dram_lookups == 1

    def test_false_positive_singleton_installs_from_line(self, tables):
        # A FP DRAM read in a singleton group installs the group's
        # entry, so the next FP access singleton-filters.
        tables.on_quarantine(100, 7)
        tables.cache.invalidate(100)
        first = tables.lookup(101)
        assert first.outcome is LookupOutcome.DRAM_ACCESS
        second = tables.lookup(102)
        assert second.outcome is LookupOutcome.SINGLETON


class TestRelease:
    def test_release_restores_bloom_filtering(self, tables):
        tables.on_quarantine(100, 7)
        tables.on_release(100)
        assert tables.lookup(100).outcome is LookupOutcome.BLOOM_FILTERED

    def test_release_restores_singleton_of_survivor(self, tables):
        tables.on_quarantine(100, 7)
        tables.on_quarantine(101, 8)
        tables.on_release(100)
        # 101 is the group's sole survivor; accesses to 102 should
        # singleton-filter via 101's cached entry.
        tables.lookup(101)  # ensure cached
        assert tables.lookup(102).outcome in (
            LookupOutcome.SINGLETON,
            LookupOutcome.DRAM_ACCESS,
        )

    def test_release_of_unmapped_row_is_noop(self, tables):
        assert tables.on_release(55) == 0.0


class TestBatchWeighting:
    def test_batch_bloom_filtered(self, tables):
        tables.lookup_batch(100, 10)
        assert tables.outcome_counts[LookupOutcome.BLOOM_FILTERED] == 10

    def test_batch_quarantined_row_counts_cache_hits(self, tables):
        tables.on_quarantine(100, 7)
        tables.cache.invalidate(100)
        tables.lookup_batch(100, 10)
        assert tables.outcome_counts[LookupOutcome.DRAM_ACCESS] == 1
        assert tables.outcome_counts[LookupOutcome.CACHE_HIT] == 9

    def test_batch_fp_multi_group_counts_dram(self, tables):
        tables.on_quarantine(100, 7)
        tables.on_quarantine(101, 8)
        lookup = tables.lookup_batch(102, 5)
        assert tables.outcome_counts[LookupOutcome.DRAM_ACCESS] == 5
        assert lookup.dram_accesses == 5

    def test_breakdown_sums_to_one(self, tables):
        tables.on_quarantine(100, 7)
        tables.lookup_batch(100, 5)
        tables.lookup_batch(3, 5)
        breakdown = tables.lookup_breakdown()
        assert sum(breakdown.values()) == pytest.approx(1.0)


class TestInternalMigrationUpdates:
    def test_requarantine_updates_slot_without_double_bloom(self, tables):
        # Internal migration: same row moves to a new slot.  The bloom
        # group count must stay 1 (one valid entry) and lookups must
        # resolve to the new slot.
        tables.on_quarantine(100, 7)
        tables.on_quarantine(100, 9)
        assert tables.bloom.group_valid_count(100) == 1
        assert tables.lookup(100).slot == 9
        tables.on_release(100)
        assert tables.bloom.group_valid_count(100) == 0
        assert tables.lookup(100).outcome is LookupOutcome.BLOOM_FILTERED


class TestTableRowPlacement:
    def test_table_row_is_in_table_region(self, tables):
        tables.on_quarantine(100, 7)
        tables.cache.invalidate(100)
        lookup = tables.lookup(100)
        assert lookup.table_row >= 400

    def test_no_placement_means_no_table_row(self):
        tables = MemoryMappedTables(total_rows=512, rqa_slots=32)
        tables.on_quarantine(100, 7)
        tables.cache.invalidate(100)
        assert tables.lookup(100).table_row is None
