"""RQA sizing: Equations 1-3 and the exact Table III values."""

import pytest

from repro.core.sizing import (
    RqaSizing,
    TABLE_III_THRESHOLDS,
    aggression_time_ns,
    batch_time_ns,
    default_rqa_rows,
    rqa_rows,
    table_iii,
)


class TestEquations:
    def test_eq1_aggression_time(self):
        # 500 activations x 45 ns = 22.5 us.
        assert aggression_time_ns(500) == pytest.approx(22_500.0)

    def test_eq2_batch_time(self):
        # t_AGG + 16 banks x 1.37 us.
        assert batch_time_ns(500, banks=16) == pytest.approx(
            22_500.0 + 16 * 1370.0
        )

    def test_eq3_rows_at_default_point(self):
        # The headline number: 23,053 rows at A=500 (Sec. IV-E).
        assert rqa_rows(500, banks=16) == 23_053

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            aggression_time_ns(0)

    def test_invalid_banks(self):
        with pytest.raises(ValueError):
            batch_time_ns(500, banks=0)


class TestTableIII:
    # The exact (threshold -> rows) pairs printed in Table III.
    PAPER_ROWS = {
        1000: 15_302,
        500: 23_053,
        250: 30_872,
        125: 37_176,
        50: 42_367,
        1: 46_620,
    }

    @pytest.mark.parametrize("threshold,rows", sorted(PAPER_ROWS.items()))
    def test_rows_match_paper(self, threshold, rows):
        assert rqa_rows(threshold, banks=16) == rows

    def test_table_iii_order(self):
        table = table_iii()
        assert [row.effective_threshold for row in table] == list(
            TABLE_III_THRESHOLDS
        )

    def test_dram_overhead_at_default_is_1_1_percent(self):
        sizing = RqaSizing.for_threshold(500)
        assert sizing.dram_overhead == pytest.approx(0.011, abs=0.0005)
        assert sizing.size_mb == pytest.approx(180, rel=0.01)

    def test_overhead_bounded_even_at_threshold_one(self):
        # Sec. IV-E: even at an effective threshold of 1, <= 2.2%.
        sizing = RqaSizing.for_threshold(1)
        assert sizing.dram_overhead <= 0.023


class TestDefaults:
    def test_default_uses_half_threshold(self):
        assert default_rqa_rows(1000) == rqa_rows(500)

    def test_lower_threshold_needs_more_rows(self):
        assert rqa_rows(125) > rqa_rows(500) > rqa_rows(1000)
