"""Collision-Avoidance Table: placement, relocation, overflow."""

import pytest

from repro.core.cat import CollisionAvoidanceTable, TableOverflowError


@pytest.fixture
def cat():
    return CollisionAvoidanceTable(capacity=128, ways=4)


class TestBasicMap:
    def test_insert_lookup(self, cat):
        cat.insert(10, "a")
        assert cat.lookup(10) == "a"
        assert 10 in cat
        assert len(cat) == 1

    def test_missing_key(self, cat):
        assert cat.lookup(99) is None
        assert 99 not in cat

    def test_update_in_place(self, cat):
        cat.insert(10, "a")
        cat.insert(10, "b")
        assert cat.lookup(10) == "b"
        assert len(cat) == 1

    def test_remove(self, cat):
        cat.insert(10, "a")
        assert cat.remove(10)
        assert cat.lookup(10) is None
        assert not cat.remove(10)

    def test_items_round_trip(self, cat):
        entries = {i: i * 2 for i in range(20)}
        for key, value in entries.items():
            cat.insert(key, value)
        assert dict(cat.items()) == entries


class TestLoadBehaviour:
    def test_fills_well_past_half(self):
        # Power-of-two-choices + relocation: a CAT holds ~80%+ load
        # without overflow (why 32K slots hold 23K entries, Sec. IV-C).
        cat = CollisionAvoidanceTable(capacity=1024, ways=8)
        target = int(1024 * 0.72)  # the paper's FPT ratio (23K/32K)
        for key in range(target):
            cat.insert(key * 7919, key)
        assert len(cat) == target

    def test_load_factor(self, cat):
        for key in range(64):
            cat.insert(key, key)
        assert cat.load_factor == pytest.approx(0.5)

    def test_overflow_raises_loudly(self):
        cat = CollisionAvoidanceTable(capacity=16, ways=2, max_relocations=4)
        with pytest.raises(TableOverflowError):
            for key in range(17):
                cat.insert(key, key)

    def test_max_bucket_occupancy_bounded_by_ways(self, cat):
        for key in range(100):
            cat.insert(key, key)
        assert cat.max_bucket_occupancy() <= 4


class TestRelocation:
    def test_relocations_preserve_entries(self):
        cat = CollisionAvoidanceTable(capacity=64, ways=2)
        inserted = {}
        for key in range(48):
            cat.insert(key, key + 1000)
            inserted[key] = key + 1000
        for key, value in inserted.items():
            assert cat.lookup(key) == value
        assert cat.relocations >= 0


class TestValidation:
    def test_too_small_capacity(self):
        with pytest.raises(ValueError):
            CollisionAvoidanceTable(capacity=4, ways=8)

    def test_determinism(self):
        a = CollisionAvoidanceTable(capacity=128, ways=4, seed=7)
        b = CollisionAvoidanceTable(capacity=128, ways=4, seed=7)
        for key in range(60):
            a.insert(key, key)
            b.insert(key, key)
        assert dict(a.items()) == dict(b.items())
