"""Forward-Pointer Table: SRAM CAT variant and in-DRAM variant."""

import pytest

from repro.core.cat import TableOverflowError
from repro.core.fpt import DramForwardPointerTable, ForwardPointerTable


class TestSramFpt:
    def test_lookup_insert_remove(self):
        fpt = ForwardPointerTable(capacity=256)
        assert fpt.lookup(5) is None
        fpt.insert(5, 17)
        assert fpt.lookup(5) == 17
        assert 5 in fpt
        assert fpt.remove(5)
        assert fpt.lookup(5) is None

    def test_update_slot(self):
        fpt = ForwardPointerTable(capacity=256)
        fpt.insert(5, 1)
        fpt.insert(5, 2)  # internal migration updates the pointer
        assert fpt.lookup(5) == 2
        assert len(fpt) == 1

    def test_hit_statistics(self):
        fpt = ForwardPointerTable(capacity=256)
        fpt.insert(1, 0)
        fpt.lookup(1)
        fpt.lookup(2)
        assert fpt.lookups == 2
        assert fpt.hits == 1

    def test_max_valid_guard(self):
        fpt = ForwardPointerTable(capacity=256, max_valid=2)
        fpt.insert(1, 0)
        fpt.insert(2, 1)
        with pytest.raises(TableOverflowError):
            fpt.insert(3, 2)

    def test_negative_slot_rejected(self):
        fpt = ForwardPointerTable(capacity=256)
        with pytest.raises(ValueError):
            fpt.insert(1, -1)

    def test_sram_bytes_matches_paper(self):
        # Sec. IV-C: 32K-entry FPT is 108 KB.
        size_kb = ForwardPointerTable.sram_bytes(32 * 1024) / 1024
        assert size_kb == pytest.approx(108, rel=0.05)


class TestDramFpt:
    def test_entry_per_row_layout(self):
        table = DramForwardPointerTable(total_rows=2 * 1024 * 1024)
        # Sec. V-A: 4 MB of DRAM for 2M rows.
        assert table.dram_bytes == 4 * 1024 * 1024
        assert table.entries_per_line == 32

    def test_line_of_groups_32_rows(self):
        table = DramForwardPointerTable(total_rows=1024)
        assert table.line_of(0) == table.line_of(31)
        assert table.line_of(32) == 1

    def test_read_write_counts_dram_accesses(self):
        table = DramForwardPointerTable(total_rows=1024)
        table.write(5, 9)
        assert table.read(5) == 9
        assert table.dram_reads == 1
        assert table.dram_writes == 1

    def test_peek_is_free(self):
        table = DramForwardPointerTable(total_rows=1024)
        table.write(5, 9)
        assert table.peek(5) == 9
        assert table.dram_reads == 0

    def test_invalidate_with_none(self):
        table = DramForwardPointerTable(total_rows=1024)
        table.write(5, 9)
        table.write(5, None)
        assert table.peek(5) is None
        assert len(table) == 0

    def test_valid_in_line(self):
        table = DramForwardPointerTable(total_rows=1024)
        table.write(0, 1)
        table.write(31, 2)
        table.write(32, 3)
        assert table.valid_in_line(0) == 2
        assert table.valid_in_line(1) == 1

    def test_out_of_range_rejected(self):
        table = DramForwardPointerTable(total_rows=16)
        with pytest.raises(ValueError):
            table.read(16)
