"""Row Quarantine Area: circular allocation, lazy drain, reuse guard."""

import pytest

from repro.core.quarantine import RowQuarantineArea, RqaExhaustedError


class TestCircularAllocation:
    def test_allocations_advance_head(self):
        rqa = RowQuarantineArea(num_slots=4)
        slots = [rqa.allocate(row, epoch=0).slot for row in (10, 11, 12)]
        assert slots == [0, 1, 2]
        assert rqa.head == 3

    def test_head_wraps(self):
        rqa = RowQuarantineArea(num_slots=2)
        rqa.allocate(1, epoch=0)
        rqa.allocate(2, epoch=0)
        allocation = rqa.allocate(3, epoch=1)
        assert allocation.slot == 0

    def test_occupancy(self):
        rqa = RowQuarantineArea(num_slots=4)
        rqa.allocate(1, epoch=0)
        rqa.allocate(2, epoch=0)
        assert rqa.occupancy() == 2


class TestLazyDrain:
    def test_stale_resident_is_evicted_on_reuse(self):
        rqa = RowQuarantineArea(num_slots=2)
        rqa.allocate(10, epoch=0)
        rqa.allocate(11, epoch=0)
        allocation = rqa.allocate(12, epoch=1)
        assert allocation.evicted_row == 10
        assert rqa.evictions == 1
        assert rqa.resident_row(0) == 12

    def test_fresh_slot_has_no_eviction(self):
        rqa = RowQuarantineArea(num_slots=4)
        assert rqa.allocate(10, epoch=0).evicted_row is None

    def test_stale_slots_listing(self):
        rqa = RowQuarantineArea(num_slots=4)
        rqa.allocate(10, epoch=0)
        rqa.allocate(11, epoch=1)
        assert rqa.stale_slots(current_epoch=1) == [0]


class TestReuseGuard:
    def test_same_epoch_reuse_raises(self):
        rqa = RowQuarantineArea(num_slots=2)
        rqa.allocate(1, epoch=0)
        rqa.allocate(2, epoch=0)
        with pytest.raises(RqaExhaustedError):
            rqa.allocate(3, epoch=0)

    def test_released_slot_still_guarded_within_epoch(self):
        # A slot vacated by an internal migration must sit out the rest
        # of its fill epoch.
        rqa = RowQuarantineArea(num_slots=2)
        rqa.allocate(1, epoch=0)
        rqa.allocate(2, epoch=0)
        rqa.release(0)
        with pytest.raises(RqaExhaustedError):
            rqa.allocate(3, epoch=0)

    def test_next_epoch_reuse_allowed(self):
        rqa = RowQuarantineArea(num_slots=1)
        rqa.allocate(1, epoch=0)
        allocation = rqa.allocate(2, epoch=1)
        assert allocation.slot == 0
        assert allocation.evicted_row == 1


class TestRelease:
    def test_release_returns_row(self):
        rqa = RowQuarantineArea(num_slots=2)
        rqa.allocate(5, epoch=0)
        assert rqa.release(0) == 5
        assert rqa.occupancy() == 0

    def test_release_empty_slot(self):
        rqa = RowQuarantineArea(num_slots=2)
        assert rqa.release(1) is None


class TestForcedFullOccupancy:
    """Wraparound and drain behaviour with every slot held occupied."""

    def test_wraparound_under_full_occupancy_evicts_in_fifo_order(self):
        rqa = RowQuarantineArea(num_slots=4)
        for row in (10, 11, 12, 13):
            rqa.allocate(row, epoch=0)
        assert rqa.occupancy() == 4
        # A full lap in the next epoch: each allocation reuses the
        # oldest slot and evicts its resident, strict FIFO.
        evicted = [
            rqa.allocate(row, epoch=1).evicted_row
            for row in (20, 21, 22, 23)
        ]
        assert evicted == [10, 11, 12, 13]
        assert rqa.occupancy() == 4
        assert [rqa.resident_row(s) for s in range(4)] == [20, 21, 22, 23]

    def test_head_blocked_probe_tracks_epoch_tags(self):
        rqa = RowQuarantineArea(num_slots=2)
        assert not rqa.head_blocked(epoch=0)
        rqa.allocate(1, epoch=0)
        rqa.allocate(2, epoch=0)
        assert rqa.head_blocked(epoch=0)  # wrapped onto this epoch's fill
        assert not rqa.head_blocked(epoch=1)

    def test_head_collides_with_undrained_stale_row(self):
        rqa = RowQuarantineArea(num_slots=2)
        rqa.allocate(1, epoch=0)
        rqa.allocate(2, epoch=0)
        # Epoch 1: head is back at slot 0, whose epoch-0 resident was
        # never drained -- allocation must still succeed by evicting it.
        allocation = rqa.allocate(3, epoch=1)
        assert allocation.slot == 0
        assert allocation.evicted_row == 1
        assert rqa.resident_row(0) == 3


class TestDrainStaleUnderFullOccupancy:
    def test_drain_stale_frees_only_stale_slots(self, aqua):
        from tests.conftest import at_epoch

        threshold = aqua.config.effective_threshold
        for row in (5, 6, 7):
            for i in range(threshold):
                aqua.access(row, at_epoch(0, (row * threshold + i) * 10.0))
        assert aqua.rqa.occupancy() == 3
        # Same epoch: nothing is stale yet.
        assert aqua.drain_stale() == 0
        aqua.access(99, at_epoch(1))
        drained = aqua.drain_stale()
        assert drained == 3
        assert aqua.rqa.occupancy() == 0
        for row in (5, 6, 7):
            assert not aqua.is_quarantined(row)

    def test_drain_stale_respects_max_rows(self, aqua):
        from tests.conftest import at_epoch

        threshold = aqua.config.effective_threshold
        for row in (5, 6, 7):
            for i in range(threshold):
                aqua.access(row, at_epoch(0, (row * threshold + i) * 10.0))
        aqua.access(99, at_epoch(1))
        assert aqua.drain_stale(max_rows=2) == 2
        assert aqua.rqa.occupancy() == 1
        assert aqua.drain_stale(max_rows=2) == 1


class TestValidation:
    def test_zero_slots_rejected(self):
        with pytest.raises(ValueError):
            RowQuarantineArea(0)

    def test_mismatched_rpt_rejected(self):
        from repro.core.rpt import ReversePointerTable

        with pytest.raises(ValueError):
            RowQuarantineArea(4, rpt=ReversePointerTable(8))
