"""Row Quarantine Area: circular allocation, lazy drain, reuse guard."""

import pytest

from repro.core.quarantine import RowQuarantineArea, RqaExhaustedError


class TestCircularAllocation:
    def test_allocations_advance_head(self):
        rqa = RowQuarantineArea(num_slots=4)
        slots = [rqa.allocate(row, epoch=0).slot for row in (10, 11, 12)]
        assert slots == [0, 1, 2]
        assert rqa.head == 3

    def test_head_wraps(self):
        rqa = RowQuarantineArea(num_slots=2)
        rqa.allocate(1, epoch=0)
        rqa.allocate(2, epoch=0)
        allocation = rqa.allocate(3, epoch=1)
        assert allocation.slot == 0

    def test_occupancy(self):
        rqa = RowQuarantineArea(num_slots=4)
        rqa.allocate(1, epoch=0)
        rqa.allocate(2, epoch=0)
        assert rqa.occupancy() == 2


class TestLazyDrain:
    def test_stale_resident_is_evicted_on_reuse(self):
        rqa = RowQuarantineArea(num_slots=2)
        rqa.allocate(10, epoch=0)
        rqa.allocate(11, epoch=0)
        allocation = rqa.allocate(12, epoch=1)
        assert allocation.evicted_row == 10
        assert rqa.evictions == 1
        assert rqa.resident_row(0) == 12

    def test_fresh_slot_has_no_eviction(self):
        rqa = RowQuarantineArea(num_slots=4)
        assert rqa.allocate(10, epoch=0).evicted_row is None

    def test_stale_slots_listing(self):
        rqa = RowQuarantineArea(num_slots=4)
        rqa.allocate(10, epoch=0)
        rqa.allocate(11, epoch=1)
        assert rqa.stale_slots(current_epoch=1) == [0]


class TestReuseGuard:
    def test_same_epoch_reuse_raises(self):
        rqa = RowQuarantineArea(num_slots=2)
        rqa.allocate(1, epoch=0)
        rqa.allocate(2, epoch=0)
        with pytest.raises(RqaExhaustedError):
            rqa.allocate(3, epoch=0)

    def test_released_slot_still_guarded_within_epoch(self):
        # A slot vacated by an internal migration must sit out the rest
        # of its fill epoch.
        rqa = RowQuarantineArea(num_slots=2)
        rqa.allocate(1, epoch=0)
        rqa.allocate(2, epoch=0)
        rqa.release(0)
        with pytest.raises(RqaExhaustedError):
            rqa.allocate(3, epoch=0)

    def test_next_epoch_reuse_allowed(self):
        rqa = RowQuarantineArea(num_slots=1)
        rqa.allocate(1, epoch=0)
        allocation = rqa.allocate(2, epoch=1)
        assert allocation.slot == 0
        assert allocation.evicted_row == 1


class TestRelease:
    def test_release_returns_row(self):
        rqa = RowQuarantineArea(num_slots=2)
        rqa.allocate(5, epoch=0)
        assert rqa.release(0) == 5
        assert rqa.occupancy() == 0

    def test_release_empty_slot(self):
        rqa = RowQuarantineArea(num_slots=2)
        assert rqa.release(1) is None


class TestValidation:
    def test_zero_slots_rejected(self):
        with pytest.raises(ValueError):
            RowQuarantineArea(0)

    def test_mismatched_rpt_rejected(self):
        from repro.core.rpt import ReversePointerTable

        with pytest.raises(ValueError):
            RowQuarantineArea(4, rpt=ReversePointerTable(8))
