"""AquaConfig: derived quantities and validation."""

import pytest

from repro.core.config import AquaConfig
from repro.core.sizing import rqa_rows
from repro.errors import ConfigError, ReproError


class TestDefaults:
    def test_effective_threshold_is_half(self):
        assert AquaConfig(rowhammer_threshold=1000).effective_threshold == 500
        assert AquaConfig(rowhammer_threshold=2000).effective_threshold == 1000

    def test_default_rqa_from_equation_3(self):
        config = AquaConfig(rowhammer_threshold=1000)
        assert config.derived_rqa_slots == rqa_rows(500, banks=16)
        assert config.derived_rqa_slots == 23_053

    def test_rqa_override(self):
        config = AquaConfig(rqa_slots=100)
        assert config.derived_rqa_slots == 100

    def test_dram_overhead_about_one_percent_sram_mode(self):
        config = AquaConfig(table_mode="sram")
        assert config.dram_overhead == pytest.approx(0.011, abs=0.001)

    def test_dram_overhead_memory_mapped_adds_tables(self):
        # Sec. V-G: +4 MB FPT (512 rows) and ~0.1 MB RPT; total 1.13%.
        config = AquaConfig(table_mode="memory-mapped")
        assert config.table_dram_rows >= 512
        assert config.dram_overhead == pytest.approx(0.0113, abs=0.0005)

    def test_layout_is_partition(self):
        config = AquaConfig(table_mode="memory-mapped")
        total = config.geometry.rows_per_rank
        assert (
            config.visible_rows
            + config.table_dram_rows
            + config.derived_rqa_slots
            == total
        )
        assert config.table_base_row == config.visible_rows
        assert config.rqa_base_row == total - config.derived_rqa_slots


class TestValidation:
    def test_bad_table_mode(self):
        with pytest.raises(ValueError):
            AquaConfig(table_mode="flash")

    def test_bad_tracker(self):
        with pytest.raises(ValueError):
            AquaConfig(tracker="oracle")

    def test_bad_threshold(self):
        with pytest.raises(ValueError):
            AquaConfig(rowhammer_threshold=1)

    def test_bad_rqa_slots(self):
        with pytest.raises(ValueError):
            AquaConfig(rqa_slots=0).derived_rqa_slots

    def test_bad_fpt_capacity(self):
        with pytest.raises(ValueError):
            AquaConfig(fpt_capacity=0).derived_fpt_capacity


class TestConstructionTimeValidation:
    """__post_init__ raises ConfigError naming the field and its range."""

    def test_config_error_is_a_value_error(self):
        # Backward compatibility: every pre-existing `except ValueError`
        # continues to catch configuration problems.
        assert issubclass(ConfigError, ValueError)
        assert issubclass(ConfigError, ReproError)

    @pytest.mark.parametrize(
        "kwargs, field, range_hint",
        [
            ({"rowhammer_threshold": 1}, "rowhammer_threshold", ">= 2"),
            ({"table_mode": "flash"}, "table_mode", "sram"),
            ({"tracker": "oracle"}, "tracker", "misra-gries"),
            ({"rqa_slots": 0}, "rqa_slots", ">= 1"),
            ({"fpt_capacity": -5}, "fpt_capacity", ">= 1"),
            ({"bloom_group_size": 0}, "bloom_group_size", ">= 1"),
            ({"fpt_cache_entries": 0}, "fpt_cache_entries", "multiple"),
            ({"fpt_cache_entries": 24}, "fpt_cache_entries", "multiple"),
            (
                {"tracker_entries_per_bank": 0},
                "tracker_entries_per_bank",
                ">= 1",
            ),
            ({"rqa_full_policy": "panic"}, "rqa_full_policy", "throttle"),
            ({"migration_max_retries": -1}, "migration_max_retries", ">= 0"),
        ],
    )
    def test_error_names_field_and_range(self, kwargs, field, range_hint):
        with pytest.raises(ConfigError) as excinfo:
            AquaConfig(**kwargs)
        message = str(excinfo.value)
        assert field in message
        assert range_hint in message

    def test_valid_policy_values_accepted(self):
        assert AquaConfig(rqa_full_policy="fail").rqa_full_policy == "fail"
        assert (
            AquaConfig(rqa_full_policy="throttle").rqa_full_policy
            == "throttle"
        )
        assert AquaConfig(migration_max_retries=0).migration_max_retries == 0

    def test_oversized_reservation_rejected_at_construction(self):
        from repro.dram.geometry import DramGeometry

        tiny = DramGeometry(banks_per_rank=1, rows_per_bank=64)
        with pytest.raises(ConfigError):
            AquaConfig(geometry=tiny, rqa_slots=100)


class TestDerivedFptCapacity:
    def test_default_point_uses_paper_capacity(self):
        # 23,053-slot RQA -> the paper's 32K CAT.
        assert AquaConfig().derived_fpt_capacity == 32 * 1024

    def test_scales_with_larger_rqa(self):
        big = AquaConfig(rqa_slots=40_000)
        assert big.derived_fpt_capacity > 32 * 1024
        # ~1.4x over-provisioning, rounded to bucket multiples.
        assert big.derived_fpt_capacity >= 40_000 * 32 // 23

    def test_override_wins(self):
        assert AquaConfig(fpt_capacity=1024).derived_fpt_capacity == 1024
