"""Canonical serialization: stable bytes, pinned digests.

The pinned hex digests below are the regression contract for the
service cache: if one of these tests starts failing, every cached
result and every checkpoint digest in the wild is invalidated, and the
change needs a ``CACHE_KEY_VERSION`` bump, not a test update.
"""

import math

import pytest

from repro.core.canon import canonical_dumps, content_digest, short_digest
from repro.core.config import AquaConfig
from repro.errors import ConfigError
from repro.parallel import RunPoint


class TestCanonicalDumps:
    def test_sorts_keys_and_fixes_separators(self):
        assert canonical_dumps({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_tuples_normalize_to_lists(self):
        assert canonical_dumps((1, (2, 3))) == "[1,[2,3]]"

    def test_equal_values_equal_bytes_regardless_of_insertion_order(self):
        first = {"x": 1, "y": {"p": [1, 2], "q": None}}
        second = {"y": {"q": None, "p": [1, 2]}, "x": 1}
        assert canonical_dumps(first) == canonical_dumps(second)

    def test_non_ascii_is_escaped(self):
        assert "\\u" in canonical_dumps({"k": "héllo"})

    def test_rejects_nan_and_infinity(self):
        with pytest.raises(ConfigError):
            canonical_dumps({"x": math.nan})
        with pytest.raises(ConfigError):
            canonical_dumps({"x": math.inf})

    def test_rejects_non_json_types(self):
        with pytest.raises(ConfigError):
            canonical_dumps({"x": object()})
        with pytest.raises(ConfigError):
            canonical_dumps({"x": {1: "non-str key"}})


class TestContentDigest:
    PINNED = "89e0b792b163aa339e094f1f922ea731e9a416a0ca4ac4f15854879af0f7fd96"

    def test_pinned_digest(self):
        value = {"b": 1, "a": [1, 2, "x"], "c": None}
        assert content_digest(value) == self.PINNED

    def test_short_digest_is_a_prefix(self):
        value = {"b": 1, "a": [1, 2, "x"], "c": None}
        assert self.PINNED.startswith(short_digest(value))
        assert len(short_digest(value)) == 16

    def test_key_order_does_not_change_the_digest(self):
        assert content_digest({"a": 1, "b": 2}) == content_digest(
            {"b": 2, "a": 1}
        )


class TestAquaConfigDigest:
    PINNED = "73b203ed939be3873328f30fea77cbf8de8ab5c2aa6ecbafb8213356dcaa3617"

    def test_default_config_digest_is_pinned(self):
        assert AquaConfig().digest() == self.PINNED

    def test_to_dict_roundtrips_through_canonical_json(self):
        # Every field must be canonically serializable (the digest
        # raises otherwise), and the dict carries the configured value,
        # not a derived one.
        data = AquaConfig(rowhammer_threshold=2000).to_dict()
        assert data["rowhammer_threshold"] == 2000
        assert "derived_rqa_slots" not in data
        assert canonical_dumps(data)

    def test_parameter_changes_change_the_digest(self):
        base = AquaConfig().digest()
        assert AquaConfig(rowhammer_threshold=2000).digest() != base
        assert AquaConfig(table_mode="memory-mapped").digest() != base
        assert AquaConfig(tracker="exact").digest() != base


class TestRunPointDigest:
    PINNED = "4a230bb7eda002fee0ad1158f297b23acab505d66659d20288236fcbc78454c5"

    def point(self, **overrides):
        fields = dict(
            label="aqua-sram",
            scheme="aqua-sram",
            workload="xz",
            threshold=1000,
            epochs=1,
            seed=7,
        )
        fields.update(overrides)
        return RunPoint(**fields)

    def test_pinned_digest(self):
        assert content_digest(self.point().to_dict()) == self.PINNED

    def test_roundtrip(self):
        point = self.point(scheme_kwargs=(("tracker", "exact"),))
        assert RunPoint.from_dict(point.to_dict()) == point

    def test_every_field_is_identity_bearing(self):
        base = content_digest(self.point().to_dict())
        for overrides in (
            {"workload": "gcc"},
            {"threshold": 2000},
            {"epochs": 2},
            {"seed": 8},
            {"scheme_kwargs": (("tracker", "exact"),)},
        ):
            assert content_digest(self.point(**overrides).to_dict()) != base

    def test_malformed_dict_is_a_config_error(self):
        with pytest.raises(ConfigError):
            RunPoint.from_dict({"label": "x"})
