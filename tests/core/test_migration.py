"""Migration cost model: the Sec. IV-D latency arithmetic."""

import pytest

from repro.core.migration import DEFAULT_COSTS, MigrationCosts


class TestDefaultCosts:
    def test_transfer_685ns(self):
        assert DEFAULT_COSTS.transfer_ns == pytest.approx(685.0)

    def test_migration_1_37us(self):
        assert DEFAULT_COSTS.migration_ns == pytest.approx(1370.0)

    def test_eviction_path_2_74us(self):
        assert DEFAULT_COSTS.migration_with_eviction_ns == pytest.approx(
            2740.0
        )

    def test_rrs_swap_costs_double(self):
        # A swap moves two rows: 2x the one-way AQUA migration.
        assert DEFAULT_COSTS.swap_ns == pytest.approx(
            2 * DEFAULT_COSTS.migration_ns
        )


class TestScaling:
    def test_smaller_rows_cost_less(self):
        small = MigrationCosts.for_row(row_bytes=2 * 1024)
        assert small.migration_ns < DEFAULT_COSTS.migration_ns
