"""Resettable grouped bloom filter (Sec. V-B)."""

import pytest

from repro.core.bloom import ResettableBloomFilter


@pytest.fixture
def bloom():
    return ResettableBloomFilter(total_rows=256, group_size=16)


class TestSoundness:
    def test_clear_bit_is_definitive(self, bloom):
        # bit=0 must NEVER hide a quarantined row (no false negatives).
        bloom.on_insert(17)
        for row in range(256):
            if bloom.group_of(row) == bloom.group_of(17):
                assert bloom.maybe_quarantined(row)
        assert not bloom.maybe_quarantined(0)

    def test_group_sharing_causes_false_positives(self, bloom):
        bloom.on_insert(16)  # group 1
        assert bloom.maybe_quarantined(17)  # same group: maybe

    def test_queries_counted(self, bloom):
        bloom.maybe_quarantined(0)
        bloom.maybe_quarantined(1)
        assert bloom.queries == 2
        assert bloom.filtered == 2
        assert bloom.filter_rate == 1.0


class TestResettability:
    def test_bit_clears_when_group_empties(self, bloom):
        bloom.on_insert(17)
        bloom.on_invalidate(17)
        assert not bloom.maybe_quarantined(17)

    def test_bit_persists_while_group_nonempty(self, bloom):
        bloom.on_insert(16)
        bloom.on_insert(17)
        bloom.on_invalidate(16)
        assert bloom.maybe_quarantined(17)
        bloom.on_invalidate(17)
        assert not bloom.maybe_quarantined(17)

    def test_unmatched_invalidate_rejected(self, bloom):
        with pytest.raises(ValueError):
            bloom.on_invalidate(3)

    def test_group_valid_count(self, bloom):
        bloom.on_insert(16)
        bloom.on_insert(18)
        assert bloom.group_valid_count(17) == 2


class TestSizing:
    def test_default_design_point(self):
        # Sec. V-B: 2M rows / 16-row groups = 128K entries = 16 KB.
        bloom = ResettableBloomFilter(2 * 1024 * 1024, group_size=16)
        assert bloom.num_groups == 128 * 1024
        assert bloom.sram_bytes == 16 * 1024

    def test_set_groups(self, bloom):
        bloom.on_insert(0)
        bloom.on_insert(1)  # same group
        bloom.on_insert(200)
        assert bloom.set_groups() == 2

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ResettableBloomFilter(0)
        with pytest.raises(ValueError):
            ResettableBloomFilter(16, group_size=0)

    def test_out_of_range_row(self, bloom):
        with pytest.raises(ValueError):
            bloom.group_of(256)
