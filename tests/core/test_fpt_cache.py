"""FPT-Cache: RRIP replacement, group indexing, singleton probes (Sec. V-C/D)."""

import pytest

from repro.core.fpt_cache import FptCache


@pytest.fixture
def cache():
    return FptCache(num_entries=64, ways=4, group_size=16)


class TestBasicCaching:
    def test_miss_then_hit(self, cache):
        assert cache.lookup(10) is None
        cache.install(10, slot=3, singleton=False)
        assert cache.lookup(10) == 3
        assert cache.hits == 1
        assert cache.misses == 1

    def test_install_updates_existing(self, cache):
        cache.install(10, 3, singleton=False)
        cache.install(10, 7, singleton=False)
        assert cache.lookup(10) == 7
        assert cache.occupancy() == 1

    def test_invalidate(self, cache):
        cache.install(10, 3, singleton=False)
        assert cache.invalidate(10)
        assert cache.lookup(10) is None
        assert not cache.invalidate(10)


class TestGroupIndexing:
    def test_same_group_same_set(self, cache):
        # All rows of a group must map to one set for the singleton
        # second-probe to work.
        for row in range(16):  # one full group
            cache.install(row, row, singleton=False)
        # With 4 ways, a 16-row group cannot all fit in one set: at
        # most 4 survive, proving they share a set.
        survivors = sum(1 for row in range(16) if cache.lookup(row) is not None)
        assert survivors == 4


class TestRripReplacement:
    def test_victim_prefers_invalid_ways(self, cache):
        cache.install(0, 0, singleton=False)
        cache.install(16 * 4, 1, singleton=False)  # same set (4 sets)
        assert cache.occupancy() == 2

    def test_hot_entry_survives(self, cache):
        cache.install(0, 0, singleton=False)
        for _ in range(4):
            cache.lookup(0)  # promote to rrpv 0
        # Flood the set with same-set groups (num_sets=1 here? ensure same set)
        for i in range(1, 6):
            cache.install(i * 16 * cache.num_sets, i, singleton=False)
            cache.lookup(0)
        assert cache.lookup(0) == 0


class TestSingleton:
    def test_singleton_covers_group_mates(self, cache):
        cache.install(16, slot=5, singleton=True)
        assert cache.covered_by_singleton(17)
        assert cache.singleton_filtered == 1

    def test_singleton_does_not_cover_self(self, cache):
        cache.install(16, slot=5, singleton=True)
        assert not cache.covered_by_singleton(16)

    def test_non_singleton_does_not_cover(self, cache):
        cache.install(16, slot=5, singleton=False)
        assert not cache.covered_by_singleton(17)

    def test_set_group_singleton_updates_cached(self, cache):
        cache.install(16, 5, singleton=True)
        cache.set_group_singleton(1, False)
        assert not cache.covered_by_singleton(17)
        cache.set_group_singleton(1, True)
        assert cache.covered_by_singleton(17)

    def test_other_group_not_covered(self, cache):
        cache.install(16, slot=5, singleton=True)
        assert not cache.covered_by_singleton(33)


class TestSizing:
    def test_default_is_16kb(self):
        cache = FptCache(num_entries=4096, ways=16)
        assert cache.sram_bytes == 16 * 1024
        assert cache.num_sets == 256

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            FptCache(num_entries=65, ways=4)
