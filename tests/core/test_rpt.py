"""Reverse-Pointer Table: slot bookkeeping and epoch retention."""

import pytest

from repro.core.rpt import ReversePointerTable


@pytest.fixture
def rpt():
    return ReversePointerTable(num_slots=8)


class TestInstallInvalidate:
    def test_install_and_resident(self, rpt):
        rpt.install(3, row_id=42, epoch=1)
        assert rpt.is_valid(3)
        assert rpt.resident_row(3) == 42
        assert rpt.entry(3).epoch == 1

    def test_invalidate_returns_row(self, rpt):
        rpt.install(3, 42, 1)
        assert rpt.invalidate(3) == 42
        assert not rpt.is_valid(3)
        assert rpt.resident_row(3) is None

    def test_invalidate_empty_slot(self, rpt):
        assert rpt.invalidate(0) is None

    def test_epoch_retained_after_invalidate(self, rpt):
        # The no-intra-epoch-reuse rule applies to freed slots too.
        rpt.install(3, 42, 7)
        rpt.invalidate(3)
        assert rpt.entry(3).epoch == 7

    def test_valid_count(self, rpt):
        rpt.install(0, 1, 0)
        rpt.install(1, 2, 0)
        rpt.invalidate(0)
        assert rpt.valid_count() == 1


class TestValidation:
    def test_slot_bounds(self, rpt):
        with pytest.raises(ValueError):
            rpt.entry(8)
        with pytest.raises(ValueError):
            rpt.install(-1, 0, 0)

    def test_negative_row_rejected(self, rpt):
        with pytest.raises(ValueError):
            rpt.install(0, -5, 0)

    def test_zero_slots_rejected(self):
        with pytest.raises(ValueError):
            ReversePointerTable(0)


class TestStorageModel:
    def test_sram_bytes_matches_paper(self):
        # Sec. IV-C: 23K entries at 22 bits each ~= 64 KB.
        size_kb = ReversePointerTable.sram_bytes(23_053, 21) / 1024
        assert size_kb == pytest.approx(64, rel=0.05)

    def test_dram_bytes_matches_paper(self):
        # Sec. V-A: RPT in DRAM is ~0.1 MB.
        size_mb = ReversePointerTable.dram_bytes(23_053) / (1024 * 1024)
        assert size_mb == pytest.approx(0.1, rel=0.2)
