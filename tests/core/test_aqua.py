"""AQUA orchestrator: quarantine lifecycle end-to-end (Sec. IV)."""

import pytest

from repro.core.aqua import AquaMitigation
from repro.core.memtables import LookupOutcome
from repro.core.quarantine import RqaExhaustedError

from tests.conftest import at_epoch, make_aqua_config


def hammer(scheme, row, times, now=0.0):
    """Issue ``times`` activations of ``row``; return the last result."""
    result = None
    for _ in range(times):
        result = scheme.access(row, now)
    return result


@pytest.fixture
def aqua():
    return AquaMitigation(make_aqua_config())  # T_RH=64, trigger at 32


class TestTranslation:
    def test_non_quarantined_row_is_identity(self, aqua):
        result = aqua.access(100, 0.0)
        assert result.physical_row == 100
        assert not result.migrated

    def test_out_of_range_row_rejected(self, aqua):
        with pytest.raises(ValueError):
            aqua.access(aqua.visible_rows, 0.0)

    def test_visible_rows_exclude_rqa(self, aqua):
        geometry = aqua.config.geometry
        assert aqua.visible_rows == geometry.rows_per_rank - 64


class TestQuarantine:
    def test_threshold_crossing_quarantines(self, aqua):
        result = hammer(aqua, 100, 32)
        assert result.migrated
        assert result.physical_row == aqua.rqa_base
        assert aqua.is_quarantined(100)
        assert aqua.locate(100) == aqua.rqa_base
        assert aqua.stats.migrations == 1

    def test_below_threshold_never_quarantines(self, aqua):
        hammer(aqua, 100, 31)
        assert not aqua.is_quarantined(100)
        assert aqua.stats.migrations == 0

    def test_accesses_route_to_quarantine(self, aqua):
        hammer(aqua, 100, 32)
        result = aqua.access(100, 0.0)
        assert result.physical_row == aqua.rqa_base

    def test_migration_busy_time(self, aqua):
        result = hammer(aqua, 100, 32)
        # One row move, no eviction: 1.37 us.
        assert result.busy_ns == pytest.approx(1370.0, rel=0.01)

    def test_migration_reports_written_rows(self, aqua):
        result = hammer(aqua, 100, 32)
        # Only the destination write is charged (the source read
        # restores the departing row, like a refresh).
        assert result.extra_activations == (aqua.rqa_base,)


class TestInternalMigration:
    def test_continued_hammering_moves_within_rqa(self, aqua):
        hammer(aqua, 100, 32)
        hammer(aqua, 100, 32)  # hammer the quarantine location
        assert aqua.internal_migrations == 1
        assert aqua.locate(100) == aqua.rqa_base + 1
        # The vacated slot is free but epoch-guarded.
        assert aqua.rqa.resident_row(0) is None

    def test_tracker_indexed_by_physical_row(self, aqua):
        # Property P3: after quarantine, counting continues at the new
        # physical location, so 32 *more* activations re-trigger.
        hammer(aqua, 100, 32)
        result = hammer(aqua, 100, 31)
        assert not result.migrated
        result = aqua.access(100, 0.0)
        assert result.migrated


class TestEpochBehaviour:
    def test_tracker_resets_at_epoch_boundary(self, aqua):
        hammer(aqua, 100, 31, now=at_epoch(0))
        # Crossing into epoch 1 resets the ART; 31 more do not trigger.
        result = hammer(aqua, 100, 31, now=at_epoch(1))
        assert not result.migrated
        assert aqua.stats.migrations == 0

    def test_quarantine_persists_across_epochs(self, aqua):
        hammer(aqua, 100, 32, now=at_epoch(0))
        assert aqua.is_quarantined(100)
        aqua.access(100, at_epoch(1))
        assert aqua.is_quarantined(100)

    def test_lazy_drain_evicts_stale_rows(self, aqua):
        # Fill all 64 slots in epoch 0, then trigger one quarantine in
        # epoch 1: the head wraps and drains the oldest stale row home.
        for row in range(64):
            hammer(aqua, 1000 + row, 32, now=at_epoch(0))
        assert aqua.rqa.occupancy() == 64
        result = hammer(aqua, 5000, 32, now=at_epoch(1))
        assert result.evicted
        assert not aqua.is_quarantined(1000)
        assert aqua.locate(1000) == 1000
        assert aqua.stats.evictions == 1
        # Eviction + install: 2.74 us on that access.
        assert result.busy_ns == pytest.approx(2740.0, rel=0.01)

    def test_rqa_exhaustion_raises(self, aqua):
        with pytest.raises(RqaExhaustedError):
            for row in range(65):
                hammer(aqua, 1000 + row, 32, now=at_epoch(0))


class TestDrainStale:
    def test_background_drain(self, aqua):
        for row in range(8):
            hammer(aqua, 1000 + row, 32, now=at_epoch(0))
        aqua.access(0, at_epoch(1))  # roll the epoch
        drained = aqua.drain_stale(max_rows=4)
        assert drained == 4
        assert aqua.rqa.occupancy() == 4
        assert not aqua.is_quarantined(1000)

    def test_drain_ignores_current_epoch_rows(self, aqua):
        hammer(aqua, 100, 32, now=at_epoch(0))
        assert aqua.drain_stale() == 0


class TestDataIntegrity:
    def test_data_follows_row_through_quarantine(self, aqua):
        aqua.data.write(100, "payload")
        hammer(aqua, 100, 32)
        assert aqua.data.read(aqua.locate(100)) == "payload"
        assert aqua.data.read(100) is None

    def test_data_returns_home_on_eviction(self, aqua):
        aqua.data.write(1000, "homeward")
        for row in range(64):
            hammer(aqua, 1000 + row, 32, now=at_epoch(0))
        hammer(aqua, 5000, 32, now=at_epoch(1))
        assert aqua.data.read(1000) == "homeward"


class TestMemoryMappedMode:
    def test_quarantine_with_memory_mapped_tables(self):
        aqua = AquaMitigation(make_aqua_config(table_mode="memory-mapped"))
        hammer(aqua, 100, 32)
        assert aqua.is_quarantined(100)
        result = aqua.access(100, 0.0)
        assert result.physical_row == aqua.rqa_base
        assert result.lookup_outcome in (
            LookupOutcome.CACHE_HIT,
            LookupOutcome.DRAM_ACCESS,
        )

    def test_lookup_breakdown_fractions(self):
        aqua = AquaMitigation(make_aqua_config(table_mode="memory-mapped"))
        hammer(aqua, 100, 32)
        hammer(aqua, 200, 10)
        breakdown = aqua.lookup_breakdown()
        assert sum(breakdown.values()) == pytest.approx(1.0)
        assert breakdown[LookupOutcome.BLOOM_FILTERED] > 0

    def test_table_dram_busy_accumulates(self):
        aqua = AquaMitigation(make_aqua_config(table_mode="memory-mapped"))
        hammer(aqua, 100, 32)
        assert aqua.table_dram_busy_ns() > 0

    def test_sram_mode_has_no_table_dram(self, aqua):
        hammer(aqua, 100, 32)
        assert aqua.table_dram_busy_ns() == 0.0


class TestTableRowProtection:
    def test_hammered_table_row_is_quarantined(self):
        # Sec. VI-B: rows storing the FPT/RPT are themselves protected.
        aqua = AquaMitigation(make_aqua_config(table_mode="memory-mapped"))
        table_row = aqua.config.table_base_row
        aqua._observe_table_row(table_row, count=32)
        assert aqua.table_row_quarantines == 1
        assert aqua._pinned_fpt[table_row] >= aqua.rqa_base

    def test_table_row_internal_migration(self):
        aqua = AquaMitigation(make_aqua_config(table_mode="memory-mapped"))
        table_row = aqua.config.table_base_row
        aqua._observe_table_row(table_row, count=32)
        first = aqua._pinned_fpt[table_row]
        aqua._observe_table_row(table_row, count=32)
        assert aqua._pinned_fpt[table_row] != first
        assert aqua.table_row_quarantines == 2


class TestBatchEquivalence:
    def test_batched_access_matches_singles(self):
        single = AquaMitigation(make_aqua_config())
        batched = AquaMitigation(make_aqua_config())
        for _ in range(40):
            single.access(100, 0.0)
        batched.access_batch(100, 40, 0.0)
        assert single.is_quarantined(100) == batched.is_quarantined(100)
        assert single.stats.migrations == batched.stats.migrations
        assert single.locate(100) == batched.locate(100)


class TestStorage:
    def test_sram_mode_storage(self, aqua):
        assert aqua.sram_bytes() > 8 * 1024  # at least the copy-buffer

    def test_memory_mapped_smaller_at_scale(self):
        from repro.core.config import AquaConfig

        sram = AquaMitigation(AquaConfig(table_mode="sram"))
        mm = AquaMitigation(AquaConfig(table_mode="memory-mapped"))
        assert mm.sram_bytes() < sram.sram_bytes()
        # Sec. V-G: ~41 KB total for mapping + migration structures.
        assert mm.sram_bytes() == pytest.approx(41 * 1024, rel=0.05)
