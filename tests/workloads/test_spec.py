"""Synthetic SPEC workloads: calibration against Table II."""

import pytest

from repro.workloads.spec import workload
from repro.workloads.table2 import TABLE_II


class TestCalibration:
    @pytest.mark.parametrize("name", ["lbm", "gcc", "roms", "xz"])
    def test_hot_row_bands_match_table_ii(self, name):
        spec = TABLE_II[name]
        trace = workload(name).epoch_trace(0)
        assert trace.rows_at_or_above(166) == spec.act_166_plus
        assert trace.rows_at_or_above(500) == spec.act_500_plus
        assert trace.rows_at_or_above(1000) == spec.act_1k_plus

    def test_cold_workload_has_no_hot_rows(self):
        trace = workload("wrf").epoch_trace(0)
        assert trace.rows_at_or_above(166) == 0
        assert trace.total_activations > 0

    def test_memory_boundness_ordering(self):
        assert (
            workload("lbm").memory_boundness
            > workload("mcf").memory_boundness
            > workload("xz").memory_boundness
        )


class TestDeterminism:
    def test_same_epoch_same_trace(self):
        a = workload("gcc").epoch_trace(0)
        b = workload("gcc").epoch_trace(0)
        assert (a.rows == b.rows).all()
        assert (a.counts == b.counts).all()

    def test_different_epochs_differ(self):
        a = workload("gcc").epoch_trace(0)
        b = workload("gcc").epoch_trace(1)
        assert a.row_totals() != b.row_totals()

    def test_seed_changes_rows(self):
        a = workload("gcc", seed=0).epoch_trace(0)
        b = workload("gcc", seed=1).epoch_trace(0)
        assert a.row_totals() != b.row_totals()


class TestAddressing:
    def test_rows_stay_out_of_reserved_region(self):
        target = workload("lbm")
        trace = target.epoch_trace(0)
        assert int(trace.rows.max()) < target.addressable_rows

    def test_region_confines_rows(self):
        target = workload("gcc", region_base=50_000, region_rows=200_000)
        trace = target.epoch_trace(0)
        assert int(trace.rows.min()) >= 50_000
        assert int(trace.rows.max()) < 250_000

    def test_invalid_region_rejected(self):
        with pytest.raises(ValueError):
            workload("gcc", region_base=0, region_rows=10**9)


class TestValidation:
    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            workload("quake")

    def test_background_cap_respected(self):
        target = workload("imagick", max_background_acts=1000)
        trace = target.epoch_trace(0)
        assert trace.total_activations <= 1100
