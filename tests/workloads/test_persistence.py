"""Trace archives: record, save, load, replay."""

import numpy as np
import pytest

from repro.sim.system import SystemSimulator
from repro.mitigations.none import NoMitigation
from repro.workloads.persistence import TraceArchive
from repro.workloads.spec import workload

from tests.conftest import SMALL_GEOMETRY


class TestRoundTrip:
    def test_save_load_preserves_traces(self, tmp_path):
        archive = TraceArchive.record(workload("roms"), epochs=2)
        path = str(tmp_path / "roms.npz")
        archive.save(path)
        loaded = TraceArchive.load(path)
        assert loaded.name == "roms"
        assert loaded.epochs == 2
        for epoch in range(2):
            original = archive.epoch_trace(epoch)
            restored = loaded.epoch_trace(epoch)
            assert (original.rows == restored.rows).all()
            assert (original.counts == restored.counts).all()

    def test_metadata_preserved(self, tmp_path):
        archive = TraceArchive.record(workload("xz"), epochs=1)
        path = str(tmp_path / "xz.npz")
        archive.save(path)
        loaded = TraceArchive.load(path)
        assert loaded.mpki == pytest.approx(0.41)
        assert loaded.memory_boundness == pytest.approx(
            workload("xz").memory_boundness
        )


class TestReplay:
    def test_archive_drives_the_simulator(self, tmp_path):
        archive = TraceArchive.record(workload("xz"), epochs=1)
        path = str(tmp_path / "xz.npz")
        archive.save(path)
        loaded = TraceArchive.load(path)
        scheme = NoMitigation(total_rows=SMALL_GEOMETRY.rows_per_rank * 512)
        result = SystemSimulator(scheme).run(loaded, epochs=1)
        assert result.activations == archive.epoch_trace(0).total_activations

    def test_epochs_cycle_past_recording(self):
        archive = TraceArchive.record(workload("xz"), epochs=2)
        cycled = archive.epoch_trace(5)
        assert (cycled.rows == archive.epoch_trace(1).rows).all()


class TestValidation:
    def test_empty_archive_rejected(self):
        with pytest.raises(ValueError):
            TraceArchive("x", 0.0, [])

    def test_zero_epoch_recording_rejected(self):
        with pytest.raises(ValueError):
            TraceArchive.record(workload("xz"), epochs=0)

    def test_version_check(self, tmp_path):
        import json

        path = str(tmp_path / "bad.npz")
        meta = np.frombuffer(
            json.dumps({"version": 99, "epochs": 0, "name": "x",
                        "mpki": 0}).encode(),
            dtype=np.uint8,
        )
        np.savez_compressed(path, meta=meta)
        with pytest.raises(ValueError):
            TraceArchive.load(path)
