"""Mixed workloads: composition, scaling, interleaving."""

import pytest

from repro.workloads.mixes import (
    MixWorkload,
    all_mixes,
    mix_compositions,
    single_copy,
)
from repro.workloads.table2 import TABLE_II


class TestComposition:
    def test_sixteen_mixes_of_four(self):
        mixes = all_mixes()
        assert len(mixes) == 16
        for mix in mixes:
            assert len(mix.names) == 4
            assert len(set(mix.names)) == 4

    def test_compositions_deterministic(self):
        assert mix_compositions() == mix_compositions()

    def test_names(self):
        assert all_mixes()[3].name == "mix03"


class TestSingleCopyScaling:
    def test_quarter_intensity(self):
        scaled = single_copy(TABLE_II["lbm"])
        assert scaled.mpki == pytest.approx(20.9 / 4)
        assert scaled.act_500_plus == 5437 // 4

    def test_bands_stay_consistent(self):
        for spec in TABLE_II.values():
            scaled = single_copy(spec)
            assert scaled.act_166_plus >= scaled.act_500_plus


class TestTraces:
    def test_trace_unions_members(self):
        mix = all_mixes()[0]
        trace = mix.epoch_trace(0)
        member_total = sum(
            member.epoch_trace(0).total_activations
            for member in mix.members
        )
        assert trace.total_activations == member_total

    def test_members_use_disjoint_regions(self):
        mix = all_mixes()[0]
        member_rows = [
            set(member.epoch_trace(0).rows.tolist())
            for member in mix.members
        ]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not (member_rows[i] & member_rows[j])

    def test_mix_mpki_is_member_sum(self):
        mix = all_mixes()[0]
        assert mix.mpki == pytest.approx(
            sum(member.mpki for member in mix.members)
        )

    def test_wrong_member_count_rejected(self):
        with pytest.raises(ValueError):
            MixWorkload(0, ["lbm", "gcc"])
