"""Epoch-trace memoization: identity, keying, LRU bounds, safety."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads import (
    TRACE_CACHE_ENTRIES,
    SyntheticWorkload,
    WorkloadSpec,
    clear_trace_cache,
    trace_cache_stats,
)

SPEC = WorkloadSpec(
    name="memo-spec", mpki=6.0, act_166_plus=4, act_500_plus=2,
    act_1k_plus=1,
)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_trace_cache()
    yield
    clear_trace_cache()


def _workload(**kwargs) -> SyntheticWorkload:
    kwargs.setdefault("max_background_acts", 2000)
    return SyntheticWorkload(SPEC, **kwargs)


def test_repeat_call_hits_cache_and_returns_same_object():
    target = _workload(seed=3)
    first = target.epoch_trace(0)
    second = target.epoch_trace(0)
    assert second is first
    hits, misses, live = trace_cache_stats()
    assert (hits, misses, live) == (1, 1, 1)


def test_key_is_content_not_identity():
    """Two identically-configured generators share one entry."""
    a = _workload(seed=3)
    b = _workload(seed=3)
    assert b.epoch_trace(1) is a.epoch_trace(1)
    hits, misses, live = trace_cache_stats()
    assert (hits, misses, live) == (1, 1, 1)


@pytest.mark.parametrize(
    "kwargs",
    (
        {"seed": 4},
        {"seed": 3, "chunk": 8},
        {"seed": 3, "region_base": 64},
        {"seed": 3, "max_background_acts": 500},
    ),
)
def test_distinct_configs_get_distinct_entries(kwargs):
    base = _workload(seed=3)
    other = _workload(**kwargs)
    assert other.epoch_trace(0) is not base.epoch_trace(0)
    hits, misses, live = trace_cache_stats()
    assert (hits, misses, live) == (0, 2, 2)


def test_distinct_epochs_get_distinct_entries():
    target = _workload(seed=3)
    assert target.epoch_trace(1) is not target.epoch_trace(0)


def test_cached_arrays_are_frozen():
    trace = _workload(seed=3).epoch_trace(0)
    with pytest.raises(ValueError):
        trace.rows[0] = 1
    with pytest.raises(ValueError):
        trace.counts[0] = 1


def test_lru_eviction_bounds_cache():
    target = _workload(seed=5)
    for epoch in range(TRACE_CACHE_ENTRIES + 8):
        target.epoch_trace(epoch)
    hits, misses, live = trace_cache_stats()
    assert live == TRACE_CACHE_ENTRIES
    assert misses == TRACE_CACHE_ENTRIES + 8
    # Epoch 0 was the oldest entry: evicted, so it re-misses...
    target.epoch_trace(0)
    assert trace_cache_stats()[1] == misses + 1
    # ...while the newest epoch is still resident.
    target.epoch_trace(TRACE_CACHE_ENTRIES + 7)
    assert trace_cache_stats()[0] == hits + 1


def test_clear_trace_cache_resets_everything():
    target = _workload(seed=3)
    target.epoch_trace(0)
    target.epoch_trace(0)
    clear_trace_cache()
    assert trace_cache_stats() == (0, 0, 0)
    # A post-clear call regenerates (fresh miss), equal content.
    again = target.epoch_trace(0)
    assert trace_cache_stats() == (0, 1, 1)
    np.testing.assert_array_equal(again.rows, target.epoch_trace(0).rows)


def test_memoized_trace_is_deterministic():
    """Cache on or off, the trace content is identical."""
    target = _workload(seed=9)
    cached = target.epoch_trace(2)
    fresh = target._generate_trace(2)
    np.testing.assert_array_equal(cached.rows, fresh.rows)
    np.testing.assert_array_equal(cached.counts, fresh.counts)
    assert cached.total_activations == fresh.total_activations
