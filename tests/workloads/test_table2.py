"""Table II data integrity."""

import pytest

from repro.workloads.table2 import (
    SPEC_NAMES,
    TABLE_II,
    WorkloadSpec,
    average_mpki,
)


class TestTableII:
    def test_eighteen_workloads(self):
        assert len(TABLE_II) == 18
        assert SPEC_NAMES[0] == "lbm"

    def test_average_mpki_matches_paper(self):
        # The paper prints "3.5"; the mean of its printed per-workload
        # values is 3.28 (the table's own rounding).
        assert average_mpki() == pytest.approx(3.3, abs=0.25)

    def test_lbm_row(self):
        lbm = TABLE_II["lbm"]
        assert lbm.mpki == 20.9
        assert lbm.act_166_plus == 6794
        assert lbm.act_500_plus == 5437
        assert lbm.act_1k_plus == 0

    def test_bands_partition(self):
        for spec in TABLE_II.values():
            assert (
                spec.band_166 + spec.band_500 + spec.band_1k
                == spec.act_166_plus
            )

    def test_eleven_workloads_have_no_hot_rows(self):
        # Table II: perlbench through parest have zero 166+ rows.
        cold = [s for s in TABLE_II.values() if s.act_166_plus == 0]
        assert len(cold) == 11

    def test_monotonic_bands_enforced(self):
        with pytest.raises(ValueError):
            WorkloadSpec("bad", 1.0, 10, 20, 0)
