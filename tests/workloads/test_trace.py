"""Trace utilities: chunking, totals, memory-boundness."""

import numpy as np
import pytest

from repro.workloads.trace import (
    EpochTrace,
    acts_per_epoch,
    chunk_counts,
    memory_boundness,
)


class TestChunking:
    def test_totals_preserved(self):
        rows = np.array([1, 2, 3], dtype=np.int64)
        totals = np.array([700, 64, 10], dtype=np.int64)
        chunk_rows, counts = chunk_counts(rows, totals, chunk=64)
        assert counts.sum() == 774
        by_row = {}
        for row, count in zip(chunk_rows, counts):
            by_row[row] = by_row.get(row, 0) + count
        assert by_row == {1: 700, 2: 64, 3: 10}

    def test_chunk_sizes_bounded(self):
        rows = np.array([1], dtype=np.int64)
        totals = np.array([1000], dtype=np.int64)
        _, counts = chunk_counts(rows, totals, chunk=64)
        assert counts.max() <= 64

    def test_empty_input(self):
        empty = np.empty(0, dtype=np.int64)
        chunk_rows, counts = chunk_counts(empty, empty.copy())
        assert len(chunk_rows) == 0

    def test_invalid_chunk(self):
        with pytest.raises(ValueError):
            chunk_counts(np.array([1]), np.array([5]), chunk=0)


class TestEpochTrace:
    def test_row_totals_and_thresholds(self):
        trace = EpochTrace(
            rows=np.array([1, 2, 1], dtype=np.int64),
            counts=np.array([64, 30, 36], dtype=np.int64),
        )
        assert trace.total_activations == 130
        assert trace.row_totals() == {1: 100, 2: 30}
        assert trace.rows_at_or_above(100) == 1
        assert trace.rows_at_or_above(30) == 2

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError):
            EpochTrace(
                rows=np.array([1, 2]), counts=np.array([1])
            )


class TestModels:
    def test_memory_boundness_monotonic(self):
        assert memory_boundness(0.0) == 0.0
        assert memory_boundness(20.9) > memory_boundness(0.41)
        assert memory_boundness(1000.0) < 1.0

    def test_memory_boundness_rejects_negative(self):
        with pytest.raises(ValueError):
            memory_boundness(-1.0)

    def test_acts_per_epoch_scales_with_mpki(self):
        assert acts_per_epoch(20.9) > acts_per_epoch(2.0) > 0
        assert acts_per_epoch(0.0) == 0
