"""Shared fixtures: scaled-down configurations for fast unit tests.

The full AQUA design point (2M rows, 23K-slot RQA) is exercised by the
benchmarks; unit and integration tests use a small geometry with an
explicit RQA size so that state-machine edges (RQA wrap-around, lazy
drain, epoch reuse guards) are reachable in a few hundred accesses.
"""

from __future__ import annotations

import pytest

from repro.core.config import AquaConfig
from repro.core.aqua import AquaMitigation
from repro.dram.geometry import DramGeometry
from repro.dram.timing import DDR4_2400


SMALL_GEOMETRY = DramGeometry(banks_per_rank=4, rows_per_bank=4096)
"""16K-row geometry used across the unit tests."""


@pytest.fixture
def small_geometry() -> DramGeometry:
    return SMALL_GEOMETRY


def make_aqua_config(
    rowhammer_threshold: int = 64,
    table_mode: str = "sram",
    rqa_slots: int = 64,
    tracker: str = "misra-gries",
    **kwargs,
) -> AquaConfig:
    """A small, fast AQUA configuration for unit tests."""
    kwargs.setdefault("geometry", SMALL_GEOMETRY)
    kwargs.setdefault("tracker_entries_per_bank", 64)
    return AquaConfig(
        rowhammer_threshold=rowhammer_threshold,
        table_mode=table_mode,
        rqa_slots=rqa_slots,
        tracker=tracker,
        **kwargs,
    )


@pytest.fixture
def aqua_config() -> AquaConfig:
    return make_aqua_config()


@pytest.fixture
def aqua() -> AquaMitigation:
    return AquaMitigation(make_aqua_config())


@pytest.fixture
def aqua_mm() -> AquaMitigation:
    return AquaMitigation(make_aqua_config(table_mode="memory-mapped"))


EPOCH_NS = DDR4_2400.trefw_ns


def at_epoch(epoch: int, offset_ns: float = 0.0) -> float:
    """Timestamp helper: ``offset_ns`` into the given epoch."""
    return epoch * EPOCH_NS + offset_ns
