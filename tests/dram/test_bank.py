"""Bank state machine: row-buffer semantics and ACT-to-ACT timing."""

import pytest

from repro.dram.bank import BankState
from repro.dram.timing import DDR4_2400


@pytest.fixture
def bank():
    return BankState()


class TestRowBuffer:
    def test_first_access_is_miss(self, bank):
        assert not bank.is_hit(10)
        bank.access(10, 0.0)
        assert bank.acts_this_epoch == 1

    def test_repeat_access_is_hit(self, bank):
        bank.access(10, 0.0)
        done = bank.access(10, 1000.0)
        assert bank.acts_this_epoch == 1
        assert bank.row_hits_this_epoch == 1
        assert done == pytest.approx(1000.0 + DDR4_2400.tcl_ns)

    def test_conflict_reopens_row(self, bank):
        bank.access(10, 0.0)
        bank.access(11, 1000.0)
        assert bank.open_row == 11
        assert bank.acts_this_epoch == 2


class TestTiming:
    def test_miss_latency_includes_precharge_activate_cas(self, bank):
        t = DDR4_2400
        done = bank.access(10, 0.0)
        assert done == pytest.approx(t.trp_ns + t.trcd_ns + t.tcl_ns)

    def test_act_to_act_respects_trc(self, bank):
        first = bank.activate(1, 0.0)
        second = bank.activate(2, 0.0)
        assert second - first == pytest.approx(DDR4_2400.trc_ns)

    def test_activation_after_gap_starts_immediately(self, bank):
        bank.activate(1, 0.0)
        start = bank.activate(2, 1_000.0)
        assert start == pytest.approx(1_000.0)


class TestEpoch:
    def test_reset_clears_counters_and_precharges(self, bank):
        bank.access(10, 0.0)
        bank.access(10, 100.0)
        bank.reset_epoch()
        assert bank.acts_this_epoch == 0
        assert bank.row_hits_this_epoch == 0
        assert bank.open_row == -1

    def test_precharge_forces_next_miss(self, bank):
        bank.access(10, 0.0)
        bank.precharge()
        bank.access(10, 1000.0)
        assert bank.acts_this_epoch == 2
