"""Address mapping: interleaving, encode/decode round trips, adjacency."""

import pytest

from repro.dram.address import AddressMapper
from repro.dram.geometry import DEFAULT_GEOMETRY


@pytest.fixture
def mapper():
    return AddressMapper(DEFAULT_GEOMETRY)


class TestInterleaved:
    def test_consecutive_rows_round_robin_banks(self, mapper):
        banks = [mapper.bank_of(row) for row in range(16)]
        assert banks == list(range(16))

    def test_encode_decode_round_trip(self, mapper):
        for row_id in (0, 1, 12345, DEFAULT_GEOMETRY.rows_per_rank - 1):
            bank = mapper.bank_of(row_id)
            bank_row = mapper.bank_row_of(row_id)
            assert mapper.encode(bank, bank_row) == row_id

    def test_decode_fields(self, mapper):
        addr = mapper.decode(17)
        assert addr.bank == 17 % 16
        assert addr.row == 17 // 16


class TestBlocked:
    def test_blocked_policy_contiguous(self):
        mapper = AddressMapper(DEFAULT_GEOMETRY, policy="blocked")
        rows_per_bank = DEFAULT_GEOMETRY.rows_per_bank
        assert mapper.bank_of(0) == 0
        assert mapper.bank_of(rows_per_bank - 1) == 0
        assert mapper.bank_of(rows_per_bank) == 1

    def test_blocked_round_trip(self):
        mapper = AddressMapper(DEFAULT_GEOMETRY, policy="blocked")
        for row_id in (0, 99, 2**20):
            assert mapper.encode(
                mapper.bank_of(row_id), mapper.bank_row_of(row_id)
            ) == row_id

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            AddressMapper(DEFAULT_GEOMETRY, policy="bogus")


class TestNeighbors:
    def test_neighbors_are_same_bank(self, mapper):
        row = mapper.encode(5, 100)
        for neighbor in mapper.neighbors(row):
            assert mapper.bank_of(neighbor) == 5

    def test_distance_one(self, mapper):
        row = mapper.encode(3, 50)
        neighbors = mapper.neighbors(row)
        assert mapper.encode(3, 49) in neighbors
        assert mapper.encode(3, 51) in neighbors
        assert len(neighbors) == 2

    def test_distance_two(self, mapper):
        row = mapper.encode(3, 50)
        neighbors = mapper.neighbors(row, distance=2)
        assert mapper.encode(3, 48) in neighbors
        assert mapper.encode(3, 52) in neighbors

    def test_edge_rows_have_one_neighbor(self, mapper):
        bottom = mapper.encode(0, 0)
        assert len(mapper.neighbors(bottom)) == 1
        top = mapper.encode(0, DEFAULT_GEOMETRY.rows_per_bank - 1)
        assert len(mapper.neighbors(top)) == 1

    def test_invalid_distance(self, mapper):
        with pytest.raises(ValueError):
            mapper.neighbors(0, distance=0)


class TestByteAddresses:
    def test_byte_address_round_trip(self, mapper):
        row = 12345
        address = mapper.byte_address_of_row(row)
        assert mapper.row_of_byte_address(address) == row
        assert mapper.row_of_byte_address(address + 8191) == row
        assert mapper.row_of_byte_address(address + 8192) == row + 1
