"""Channel model: bank ownership and migration busy-time accounting."""

import pytest

from repro.dram.channel import Channel
from repro.dram.geometry import DramGeometry


@pytest.fixture
def channel():
    return Channel(geometry=DramGeometry(banks_per_rank=4, rows_per_bank=1024))


class TestBanks:
    def test_one_bank_state_per_bank(self, channel):
        assert len(channel.banks) == 4
        assert channel.bank(0) is not channel.bank(1)


class TestMigrationReservation:
    def test_reservation_accumulates_busy_time(self, channel):
        end = channel.reserve_for_migration(0.0, 1370.0)
        assert end == pytest.approx(1370.0)
        assert channel.migration_busy_ns == pytest.approx(1370.0)
        assert channel.migrations == 1

    def test_reservations_serialize(self, channel):
        channel.reserve_for_migration(0.0, 1370.0)
        end = channel.reserve_for_migration(100.0, 1370.0)
        # Second migration queues behind the first.
        assert end == pytest.approx(2740.0)

    def test_earliest_issue_respects_busy_until(self, channel):
        channel.reserve_for_migration(0.0, 1000.0)
        assert channel.earliest_issue(500.0) == pytest.approx(1000.0)
        assert channel.earliest_issue(2000.0) == pytest.approx(2000.0)


class TestEpochReset:
    def test_reset_clears_bank_epoch_counters(self, channel):
        channel.bank(0).access(5, 0.0)
        channel.reset_epoch()
        assert channel.bank(0).acts_this_epoch == 0

    def test_reset_keeps_migration_totals(self, channel):
        channel.reserve_for_migration(0.0, 1370.0)
        channel.reset_epoch()
        assert channel.migrations == 1
