"""DRAM power model: energy counting and overhead accounting."""

import pytest

from repro.dram.power import DramEnergyCounters, DramPowerModel


class TestCounters:
    def test_add_migration_counts_full_row(self):
        counters = DramEnergyCounters()
        counters.add_migration(8 * 1024)
        assert counters.activations == 2
        assert counters.line_reads == 128
        assert counters.line_writes == 128
        assert counters.row_migrations == 1

    def test_merge(self):
        a = DramEnergyCounters(activations=1, line_reads=2)
        b = DramEnergyCounters(activations=3, table_line_accesses=5)
        a.merge(b)
        assert a.activations == 4
        assert a.table_line_accesses == 5


class TestPower:
    def test_energy_scales_with_events(self):
        model = DramPowerModel()
        one = DramEnergyCounters()
        one.add_migration(8 * 1024)
        two = DramEnergyCounters()
        two.add_migration(8 * 1024)
        two.add_migration(8 * 1024)
        assert model.energy_nj(two) == pytest.approx(2 * model.energy_nj(one))

    def test_average_power_includes_background(self):
        model = DramPowerModel()
        idle = model.average_power_mw(DramEnergyCounters(), 1e9)
        assert idle == pytest.approx(model.background_mw)

    def test_overhead_is_difference(self):
        model = DramPowerModel()
        base = DramEnergyCounters()
        mitigated = DramEnergyCounters()
        mitigated.add_migration(8 * 1024)
        overhead = model.overhead_mw(base, mitigated, 64e6)
        assert overhead > 0

    def test_migration_power_overhead_is_small(self):
        # Sec. V-H: AQUA's DRAM power overhead is ~8.5 mW (0.7%).
        # ~1100 migrations per 64ms epoch (Fig. 6 average).
        model = DramPowerModel()
        base = DramEnergyCounters()
        mitigated = DramEnergyCounters()
        for _ in range(1100):
            mitigated.add_migration(8 * 1024)
        overhead = model.overhead_mw(base, mitigated, 64e6)
        assert 1.0 < overhead < 30.0

    def test_zero_interval_rejected(self):
        model = DramPowerModel()
        with pytest.raises(ValueError):
            model.average_power_mw(DramEnergyCounters(), 0.0)
