"""DDR4 timing constants and the paper's derived quantities (Sec. II-B, IV-D)."""

import pytest

from repro.dram.timing import DDR4Timing, DDR4_2400


class TestDefaults:
    def test_table_i_values(self):
        t = DDR4_2400
        assert t.trc_ns == 45.0
        assert t.trcd_ns == t.tcl_ns == t.trp_ns == 14.2
        assert t.tccd_s_ns == 3.3
        assert t.tccd_l_ns == 5.0

    def test_refresh_window_is_64ms(self):
        assert DDR4_2400.trefw_ns == 64_000_000.0

    def test_refresh_interval_and_cycle(self):
        assert DDR4_2400.trefi_ns == 7_800.0
        assert DDR4_2400.trfc_ns == 350.0


class TestDerived:
    def test_act_max_matches_paper(self):
        # Sec. II-B: ACTmax = tREFW (1 - tRFC/tREFI) / tRC ~ 1360K.
        assert DDR4_2400.act_max == pytest.approx(1_360_000, rel=0.01)

    def test_refresh_availability(self):
        assert DDR4_2400.refresh_availability == pytest.approx(
            1 - 350.0 / 7800.0
        )

    def test_row_transfer_is_685ns(self):
        # Sec. IV-D: 45ns activation + 128 lines x 5ns = 685ns.
        assert DDR4_2400.row_transfer_ns(8 * 1024) == pytest.approx(685.0)

    def test_migration_is_1_37us(self):
        assert DDR4_2400.migration_ns(8 * 1024) == pytest.approx(1370.0)

    def test_migration_with_eviction_is_2_74us(self):
        assert DDR4_2400.migration_with_eviction_ns(8 * 1024) == pytest.approx(
            2740.0
        )

    def test_transfer_scales_with_row_size(self):
        half = DDR4_2400.row_transfer_ns(4 * 1024)
        full = DDR4_2400.row_transfer_ns(8 * 1024)
        assert half < full
        assert full - half == pytest.approx(64 * 5.0)


class TestCustomTiming:
    def test_faster_part_changes_act_max(self):
        fast = DDR4Timing(trc_ns=30.0)
        assert fast.act_max > DDR4_2400.act_max

    def test_frozen(self):
        with pytest.raises(Exception):
            DDR4_2400.trc_ns = 50.0
