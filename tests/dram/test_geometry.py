"""Geometry arithmetic: the 16 GB baseline of Table I."""

import pytest

from repro.dram.geometry import DramGeometry, DEFAULT_GEOMETRY, RowAddress


class TestDefaultGeometry:
    def test_two_million_rows_per_rank(self):
        assert DEFAULT_GEOMETRY.rows_per_rank == 2 * 1024 * 1024

    def test_sixteen_gb_rank(self):
        assert DEFAULT_GEOMETRY.rank_bytes == 16 * 1024**3

    def test_banks_and_rows(self):
        assert DEFAULT_GEOMETRY.banks_per_rank == 16
        assert DEFAULT_GEOMETRY.rows_per_bank == 128 * 1024

    def test_row_pointer_is_21_bits(self):
        # Sec. IV-C: the RPT holds 21-bit reverse pointers.
        assert DEFAULT_GEOMETRY.row_pointer_bits == 21

    def test_bank_pointer_bits(self):
        assert DEFAULT_GEOMETRY.bank_pointer_bits() == 4


class TestValidation:
    def test_validate_row_accepts_bounds(self):
        DEFAULT_GEOMETRY.validate_row(0)
        DEFAULT_GEOMETRY.validate_row(DEFAULT_GEOMETRY.rows_per_rank - 1)

    def test_validate_row_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            DEFAULT_GEOMETRY.validate_row(DEFAULT_GEOMETRY.rows_per_rank)
        with pytest.raises(ValueError):
            DEFAULT_GEOMETRY.validate_row(-1)


class TestCustomGeometry:
    def test_total_rows_scales_with_channels(self):
        geo = DramGeometry(channels=2, ranks_per_channel=2)
        assert geo.total_rows == 4 * geo.rows_per_rank

    def test_row_address_tuple(self):
        addr = RowAddress(channel=0, rank=0, bank=3, row=17)
        assert addr.bank == 3
        assert addr.row == 17
