"""Row-content store: the data-integrity contract of migrations."""

from repro.dram.data import RowDataStore


class TestReadWrite:
    def test_unwritten_rows_read_none(self):
        store = RowDataStore()
        assert store.read(42) is None

    def test_write_then_read(self):
        store = RowDataStore()
        store.write(42, "payload")
        assert store.read(42) == "payload"
        assert len(store) == 1


class TestMove:
    def test_move_transfers_and_clears_source(self):
        store = RowDataStore()
        store.write(1, "a")
        store.move(1, 2)
        assert store.read(2) == "a"
        assert store.read(1) is None

    def test_move_of_empty_row_clears_destination(self):
        store = RowDataStore()
        store.write(2, "stale")
        store.move(1, 2)
        assert store.read(2) is None


class TestSwap:
    def test_swap_exchanges(self):
        store = RowDataStore()
        store.write(1, "a")
        store.write(2, "b")
        store.swap(1, 2)
        assert store.read(1) == "b"
        assert store.read(2) == "a"

    def test_swap_with_empty_side(self):
        store = RowDataStore()
        store.write(1, "a")
        store.swap(1, 2)
        assert store.read(1) is None
        assert store.read(2) == "a"

    def test_double_swap_is_identity(self):
        store = RowDataStore()
        store.write(1, "a")
        store.write(2, "b")
        store.swap(1, 2)
        store.swap(1, 2)
        assert store.read(1) == "a"
        assert store.read(2) == "b"
