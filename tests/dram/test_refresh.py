"""Refresh scheduler: epoch indexing and refresh overhead."""

import pytest

from repro.dram.refresh import EPOCH_NS, RefreshScheduler


@pytest.fixture
def scheduler():
    return RefreshScheduler()


class TestEpochIndexing:
    def test_epoch_zero(self, scheduler):
        assert scheduler.epoch_of(0.0) == 0
        assert scheduler.epoch_of(EPOCH_NS - 1) == 0

    def test_epoch_boundary(self, scheduler):
        assert scheduler.epoch_of(EPOCH_NS) == 1
        assert scheduler.epoch_of(2.5 * EPOCH_NS) == 2

    def test_epoch_start_end(self, scheduler):
        assert scheduler.epoch_start(3) == pytest.approx(3 * EPOCH_NS)
        assert scheduler.epoch_end(3) == pytest.approx(4 * EPOCH_NS)

    def test_time_into_epoch(self, scheduler):
        assert scheduler.time_into_epoch(EPOCH_NS + 42.0) == pytest.approx(42.0)

    def test_negative_time_rejected(self, scheduler):
        with pytest.raises(ValueError):
            scheduler.epoch_of(-1.0)


class TestCrossing:
    def test_crossed_epoch_detection(self, scheduler):
        assert scheduler.crossed_epoch(EPOCH_NS - 1, EPOCH_NS + 1)
        assert not scheduler.crossed_epoch(10.0, 20.0)


class TestRefreshOverhead:
    def test_busy_fraction_matches_trfc_trefi(self, scheduler):
        busy = scheduler.refresh_busy_ns(EPOCH_NS)
        assert busy / EPOCH_NS == pytest.approx(350.0 / 7800.0, rel=1e-6)

    def test_negative_interval_rejected(self, scheduler):
        with pytest.raises(ValueError):
            scheduler.refresh_busy_ns(-1.0)
