"""Blacksmith-style non-uniform patterns and scheme responses."""

import pytest

from repro.attacks import patterns
from repro.attacks.adversary import AttackHarness
from repro.core.aqua import AquaMitigation
from repro.dram.address import AddressMapper
from repro.mitigations.trr import TargetRowRefresh

from tests.conftest import SMALL_GEOMETRY, make_aqua_config


TRH = 192


@pytest.fixture
def mapper():
    return AddressMapper(SMALL_GEOMETRY)


class TestPattern:
    def test_length_and_rows(self, mapper):
        pattern = patterns.blacksmith(
            mapper, bank=1, first_bank_row=100, aggressors=6,
            total_activations=500,
        )
        assert len(pattern) == 500
        assert 1 < len(set(pattern)) <= 6

    def test_frequencies_are_non_uniform(self, mapper):
        from collections import Counter

        pattern = patterns.blacksmith(
            mapper, 1, 100, aggressors=6, total_activations=3000
        )
        counts = Counter(pattern)
        assert max(counts.values()) > 2 * min(counts.values())

    def test_deterministic_by_seed(self, mapper):
        a = patterns.blacksmith(mapper, 1, 100, 4, 200, seed=1)
        b = patterns.blacksmith(mapper, 1, 100, 4, 200, seed=1)
        assert a == b
        assert a != patterns.blacksmith(mapper, 1, 100, 4, 200, seed=2)

    def test_validation(self, mapper):
        with pytest.raises(ValueError):
            patterns.blacksmith(mapper, 1, 100, 0, 10)


class TestSchemesUnderBlacksmith:
    def test_small_trr_sampler_falls(self):
        # Enough concurrent non-uniform aggressors that the sampler's
        # round-robin refresh coverage cannot keep every victim below
        # the threshold between visits.
        trr = TargetRowRefresh(
            geometry=SMALL_GEOMETRY, sampler_entries=2, refresh_burst=32
        )
        harness = AttackHarness(
            trr, rowhammer_threshold=TRH, geometry=SMALL_GEOMETRY
        )
        pattern = patterns.blacksmith(
            harness.mapper, 1, 100, aggressors=24,
            total_activations=24 * TRH * 8,
        )
        report = harness.run(pattern)
        assert report.succeeded

    def test_aqua_holds(self):
        aqua = AquaMitigation(
            make_aqua_config(rowhammer_threshold=TRH, rqa_slots=512)
        )
        harness = AttackHarness(
            aqua, rowhammer_threshold=TRH, geometry=SMALL_GEOMETRY
        )
        pattern = patterns.blacksmith(
            harness.mapper, 1, 100, aggressors=10,
            total_activations=10 * TRH * 3,
        )
        report = harness.run(pattern)
        assert not report.succeeded
        assert harness.invariant_holds()
